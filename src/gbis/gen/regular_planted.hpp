// The Gbreg(2n, b, d) model of Bui-Chaudhuri-Leighton-Sipser
// (Combinatorica 1987), the paper's primary benchmark family (section
// IV): simple d-regular graphs on 2n vertices with bisection width b.
// Its virtue is that the planted bisection is, with high probability,
// the unique minimum and far below a random cut — unlike Gnp — and the
// model stays meaningful at small average degree — unlike G2set.
//
// Exact uniform sampling over that class is impractical; as in the
// original work we *construct*: plant exactly b cross edges between the
// halves {0..n-1} and {n..2n-1}, then complete each half to
// d-regularity with a configuration-model stub pairing, repairing
// self-loops and parallel edges by random 2-swaps (restarting on the
// rare stall).
#pragma once

#include <cstdint>

#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Parameters of a Gbreg instance.
struct RegularPlantedParams {
  std::uint32_t two_n = 0;  ///< total vertices (even, >= 4)
  std::uint64_t b = 0;      ///< planted bisection width (cross edges)
  std::uint32_t d = 0;      ///< uniform degree (1 <= d < two_n/2)
};

/// Samples a Gbreg(2n, b, d) instance: d-regular, simple, with exactly
/// b edges between the two halves. Requires n*d - b even and b <= n*d
/// (throws std::invalid_argument otherwise); throws std::runtime_error
/// if construction fails repeatedly (essentially impossible for the
/// paper's parameter ranges).
Graph make_regular_planted(const RegularPlantedParams& params, Rng& rng);

/// Validates parameters without sampling; returns false when
/// make_regular_planted would throw std::invalid_argument.
bool regular_planted_params_valid(const RegularPlantedParams& params);

}  // namespace gbis
