#include "gbis/gen/planted.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "gbis/gen/gnp.hpp"
#include "gbis/graph/builder.hpp"

namespace gbis {

namespace {

/// Adds a G(n, p) sample over vertices [base, base+n) to the builder
/// via geometric skipping.
void add_gnp_block(GraphBuilder& builder, Vertex base, std::uint32_t n,
                   double p, Rng& rng) {
  if (n < 2 || p <= 0.0) return;
  if (p >= 1.0) {
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        builder.add_edge(base + u, base + v);
      }
    }
    return;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t v = 1, w = static_cast<std::uint64_t>(-1);
  while (v < n) {
    const double r = 1.0 - rng.real01();
    w += 1 + static_cast<std::uint64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) {
      builder.add_edge(base + static_cast<Vertex>(v),
                       base + static_cast<Vertex>(w));
    }
  }
}

}  // namespace

Graph make_planted(const PlantedParams& params, Rng& rng) {
  const std::uint32_t two_n = params.two_n;
  if (two_n < 4 || two_n % 2 != 0) {
    throw std::invalid_argument("make_planted: two_n must be even and >= 4");
  }
  if (!(params.p_a >= 0.0 && params.p_a <= 1.0) ||
      !(params.p_b >= 0.0 && params.p_b <= 1.0)) {
    throw std::invalid_argument("make_planted: probabilities in [0, 1]");
  }
  const std::uint64_t n = two_n / 2;
  if (params.bis > n * n) {
    throw std::invalid_argument("make_planted: bis exceeds n*n cross pairs");
  }

  GraphBuilder builder(two_n);
  add_gnp_block(builder, 0, static_cast<std::uint32_t>(n), params.p_a, rng);
  add_gnp_block(builder, static_cast<Vertex>(n), static_cast<std::uint32_t>(n),
                params.p_b, rng);

  // Exactly `bis` distinct cross pairs, uniform over the n*n choices.
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(params.bis * 2);
  while (chosen.size() < params.bis) {
    const std::uint64_t a = rng.below(n);
    const std::uint64_t b = rng.below(n);
    const std::uint64_t key = a * n + b;
    if (chosen.insert(key).second) {
      builder.add_edge(static_cast<Vertex>(a), static_cast<Vertex>(n + b));
    }
  }
  return builder.build();
}

PlantedParams planted_params_for_degree(std::uint32_t two_n,
                                        double avg_degree,
                                        std::uint64_t bis) {
  if (two_n < 4 || two_n % 2 != 0) {
    throw std::invalid_argument(
        "planted_params_for_degree: two_n must be even and >= 4");
  }
  const double n = two_n / 2.0;
  // Total expected edges: 2 * C(n,2) * p + bis = two_n * avg_degree / 2.
  const double internal_edges =
      two_n * avg_degree / 2.0 - static_cast<double>(bis);
  if (internal_edges < 0.0) {
    throw std::invalid_argument(
        "planted_params_for_degree: bis alone exceeds the degree budget");
  }
  const double pairs_per_side = n * (n - 1.0) / 2.0;
  const double p = internal_edges / (2.0 * pairs_per_side);
  if (p > 1.0) {
    throw std::invalid_argument(
        "planted_params_for_degree: degree unreachable with simple sides");
  }
  return PlantedParams{two_n, p, p, bis};
}

std::vector<std::uint8_t> planted_sides(std::uint32_t two_n) {
  std::vector<std::uint8_t> sides(two_n, 0);
  for (std::uint32_t v = two_n / 2; v < two_n; ++v) sides[v] = 1;
  return sides;
}

}  // namespace gbis
