// The Gnp(2n, p) model (paper section IV): every pair of vertices is an
// edge independently with probability p. The paper notes this model's
// weakness for benchmarking bisection — its minimum cut is close to a
// random cut — but includes it for comparability with earlier work
// ([JAMS84]); we do the same (appendix tables "Gnp(5000,p)",
// "Gnp(2000,p)").
#pragma once

#include <cstdint>

#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Samples G(n, p). Uses geometric skipping (Batagelj-Brandes), so the
/// cost is O(n + |E|) rather than O(n^2) — exact for all p in [0, 1].
Graph make_gnp(std::uint32_t n, double p, Rng& rng);

/// The edge probability giving expected average degree `avg_degree` in
/// G(n, p): p = avg_degree / (n - 1).
double gnp_p_for_degree(std::uint32_t n, double avg_degree);

}  // namespace gbis
