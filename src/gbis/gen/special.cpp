#include "gbis/gen/special.hpp"

#include <stdexcept>

#include "gbis/graph/builder.hpp"

namespace gbis {

Graph make_path(std::uint32_t n) {
  if (n < 1) throw std::invalid_argument("make_path: n >= 1 required");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_cycle(std::uint32_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: n >= 3 required");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph make_union_of_cycles(std::span<const std::uint32_t> sizes) {
  std::uint64_t total = 0;
  for (std::uint32_t s : sizes) {
    if (s < 3) {
      throw std::invalid_argument("make_union_of_cycles: cycle size >= 3");
    }
    total += s;
  }
  if (total > 0xFFFFFFFFull) {
    throw std::invalid_argument("make_union_of_cycles: too many vertices");
  }
  GraphBuilder b(static_cast<std::uint32_t>(total));
  Vertex base = 0;
  for (std::uint32_t s : sizes) {
    for (Vertex v = 0; v + 1 < s; ++v) b.add_edge(base + v, base + v + 1);
    b.add_edge(base + s - 1, base);
    base += s;
  }
  return b.build();
}

Graph make_ladder(std::uint32_t rungs) {
  if (rungs < 1) throw std::invalid_argument("make_ladder: rungs >= 1");
  GraphBuilder b(2 * rungs);
  for (std::uint32_t r = 0; r < rungs; ++r) {
    b.add_edge(2 * r, 2 * r + 1);  // rung
    if (r + 1 < rungs) {
      b.add_edge(2 * r, 2 * (r + 1));          // rail 0
      b.add_edge(2 * r + 1, 2 * (r + 1) + 1);  // rail 1
    }
  }
  return b.build();
}

Graph make_circular_ladder(std::uint32_t rungs) {
  if (rungs < 3) {
    throw std::invalid_argument("make_circular_ladder: rungs >= 3");
  }
  GraphBuilder b(2 * rungs);
  for (std::uint32_t r = 0; r < rungs; ++r) {
    const std::uint32_t next = (r + 1) % rungs;
    b.add_edge(2 * r, 2 * r + 1);
    b.add_edge(2 * r, 2 * next);
    b.add_edge(2 * r + 1, 2 * next + 1);
  }
  return b.build();
}

Graph make_grid(std::uint32_t rows, std::uint32_t cols) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("make_grid: rows, cols >= 1");
  }
  const std::uint64_t n = static_cast<std::uint64_t>(rows) * cols;
  if (n > 0xFFFFFFFFull) throw std::invalid_argument("make_grid: too large");
  GraphBuilder b(static_cast<std::uint32_t>(n));
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const Vertex v = r * cols + c;
      if (c + 1 < cols) b.add_edge(v, v + 1);
      if (r + 1 < rows) b.add_edge(v, v + cols);
    }
  }
  return b.build();
}

Graph make_torus(std::uint32_t rows, std::uint32_t cols) {
  if (rows < 3 || cols < 3) {
    throw std::invalid_argument("make_torus: rows, cols >= 3");
  }
  const std::uint64_t n = static_cast<std::uint64_t>(rows) * cols;
  if (n > 0xFFFFFFFFull) throw std::invalid_argument("make_torus: too large");
  GraphBuilder b(static_cast<std::uint32_t>(n));
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const Vertex v = r * cols + c;
      b.add_edge(v, r * cols + (c + 1) % cols);
      b.add_edge(v, ((r + 1) % rows) * cols + c);
    }
  }
  return b.build();
}

Graph make_binary_tree(std::uint32_t n) {
  if (n < 1) throw std::invalid_argument("make_binary_tree: n >= 1");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return b.build();
}

Graph make_caterpillar(std::uint32_t spine, std::uint32_t legs) {
  if (spine < 1) throw std::invalid_argument("make_caterpillar: spine >= 1");
  const std::uint64_t n =
      static_cast<std::uint64_t>(spine) * (1 + static_cast<std::uint64_t>(legs));
  if (n > 0xFFFFFFFFull) {
    throw std::invalid_argument("make_caterpillar: too large");
  }
  GraphBuilder b(static_cast<std::uint32_t>(n));
  for (std::uint32_t s = 0; s < spine; ++s) {
    if (s + 1 < spine) b.add_edge(s, s + 1);
    for (std::uint32_t l = 0; l < legs; ++l) {
      b.add_edge(s, spine + s * legs + l);
    }
  }
  return b.build();
}

Graph make_hypercube(std::uint32_t dim) {
  if (dim > 20) throw std::invalid_argument("make_hypercube: dim <= 20");
  const std::uint32_t n = 1u << dim;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dim; ++bit) {
      const Vertex w = v ^ (1u << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return b.build();
}

Graph make_complete(std::uint32_t n) {
  if (n < 1) throw std::invalid_argument("make_complete: n >= 1");
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph make_complete_bipartite(std::uint32_t a, std::uint32_t b_size) {
  if (a < 1 || b_size < 1) {
    throw std::invalid_argument("make_complete_bipartite: sides >= 1");
  }
  GraphBuilder b(a + b_size);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = a; v < a + b_size; ++v) b.add_edge(u, v);
  }
  return b.build();
}

}  // namespace gbis
