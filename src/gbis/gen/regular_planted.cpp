#include "gbis/gen/regular_planted.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "gbis/graph/builder.hpp"

namespace gbis {

namespace {

using StubPair = std::pair<Vertex, Vertex>;

std::uint64_t edge_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// Randomly pairs the given stubs (vertex ids with multiplicity), then
/// repairs self-loops and parallel pairs by random 2-swaps. Returns
/// true and appends the pairs to `out` on success; false if the repair
/// stalls (caller restarts with fresh randomness).
bool pair_stubs_simple(std::vector<Vertex> stubs, Rng& rng,
                       std::vector<StubPair>& out) {
  if (stubs.size() % 2 != 0) return false;
  rng.shuffle(stubs);
  const std::size_t m = stubs.size() / 2;
  std::vector<StubPair> pairs(m);
  for (std::size_t i = 0; i < m; ++i) {
    pairs[i] = {stubs[2 * i], stubs[2 * i + 1]};
  }

  auto count_conflicts = [&](std::unordered_map<std::uint64_t, int>& mult) {
    mult.clear();
    for (const auto& [u, v] : pairs) {
      if (u != v) ++mult[edge_key(u, v)];
    }
  };
  std::unordered_map<std::uint64_t, int> mult;
  count_conflicts(mult);

  auto is_bad = [&](std::size_t i) {
    const auto& [u, v] = pairs[i];
    return u == v || mult[edge_key(u, v)] > 1;
  };

  // Random 2-swaps: resolve each conflicted pair by exchanging a
  // partner with a uniformly random other pair. Expected O(#conflicts)
  // rounds for sparse instances; cap generously and report a stall.
  const std::size_t max_steps = 200 + 50 * m;
  std::size_t steps = 0;
  bool any_bad = true;
  while (any_bad) {
    any_bad = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (!is_bad(i)) continue;
      any_bad = true;
      if (++steps > max_steps) return false;
      const std::size_t j = static_cast<std::size_t>(rng.below(m));
      if (j == i) continue;
      auto& [iu, iv] = pairs[i];
      auto& [ju, jv] = pairs[j];
      // Remove both pairs' keys, swap partners, re-add.
      if (iu != iv) --mult[edge_key(iu, iv)];
      if (ju != jv) --mult[edge_key(ju, jv)];
      std::swap(iv, jv);
      if (iu != iv) ++mult[edge_key(iu, iv)];
      if (ju != jv) ++mult[edge_key(ju, jv)];
    }
  }
  out.insert(out.end(), pairs.begin(), pairs.end());
  return true;
}

}  // namespace

bool regular_planted_params_valid(const RegularPlantedParams& params) {
  const std::uint32_t two_n = params.two_n;
  if (two_n < 4 || two_n % 2 != 0) return false;
  const std::uint64_t n = two_n / 2;
  if (params.d < 1 || params.d >= n) return false;
  const std::uint64_t stubs_per_side = n * params.d;
  if (params.b > stubs_per_side) return false;
  if ((stubs_per_side - params.b) % 2 != 0) return false;
  return true;
}

Graph make_regular_planted(const RegularPlantedParams& params, Rng& rng) {
  if (!regular_planted_params_valid(params)) {
    throw std::invalid_argument(
        "make_regular_planted: need even two_n >= 4, 1 <= d < n, "
        "b <= n*d, and n*d - b even");
  }
  const std::uint32_t n = params.two_n / 2;
  const std::uint32_t d = params.d;
  const std::uint64_t b = params.b;

  constexpr int kMaxAttempts = 200;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    // Stub lists per side: each vertex appears d times.
    std::vector<Vertex> stubs_a, stubs_b;
    stubs_a.reserve(static_cast<std::size_t>(n) * d);
    stubs_b.reserve(static_cast<std::size_t>(n) * d);
    for (Vertex v = 0; v < n; ++v) {
      for (std::uint32_t k = 0; k < d; ++k) {
        stubs_a.push_back(v);
        stubs_b.push_back(n + v);
      }
    }
    rng.shuffle(stubs_a);
    rng.shuffle(stubs_b);

    // Cross edges: pair the first b stubs of each side, then repair
    // duplicate cross pairs by re-pairing with a random other cross
    // stub. (Cross pairs cannot self-loop.)
    std::vector<StubPair> cross(b);
    for (std::uint64_t i = 0; i < b; ++i) {
      cross[i] = {stubs_a[i], stubs_b[i]};
    }
    bool cross_ok = true;
    if (b > 1) {
      std::unordered_map<std::uint64_t, int> mult;
      for (const auto& [u, v] : cross) ++mult[edge_key(u, v)];
      std::size_t steps = 0;
      const std::size_t max_steps = 200 + 50 * b;
      bool any_bad = true;
      while (any_bad && cross_ok) {
        any_bad = false;
        for (std::uint64_t i = 0; i < b; ++i) {
          if (mult[edge_key(cross[i].first, cross[i].second)] <= 1) continue;
          any_bad = true;
          if (++steps > max_steps) {
            cross_ok = false;
            break;
          }
          const std::uint64_t j = rng.below(b);
          if (j == i) continue;
          --mult[edge_key(cross[i].first, cross[i].second)];
          --mult[edge_key(cross[j].first, cross[j].second)];
          std::swap(cross[i].second, cross[j].second);
          ++mult[edge_key(cross[i].first, cross[i].second)];
          ++mult[edge_key(cross[j].first, cross[j].second)];
        }
      }
    }
    if (!cross_ok) continue;

    // Internal pairings over the remaining stubs of each side.
    std::vector<StubPair> internal;
    const std::vector<Vertex> rest_a(stubs_a.begin() + static_cast<std::ptrdiff_t>(b),
                                     stubs_a.end());
    const std::vector<Vertex> rest_b(stubs_b.begin() + static_cast<std::ptrdiff_t>(b),
                                     stubs_b.end());
    if (!pair_stubs_simple(rest_a, rng, internal)) continue;
    if (!pair_stubs_simple(rest_b, rng, internal)) continue;

    GraphBuilder builder(params.two_n);
    for (const auto& [u, v] : cross) builder.add_edge(u, v);
    for (const auto& [u, v] : internal) builder.add_edge(u, v);
    Graph g = builder.build();
    // Parallel edges would have merged into weights; regularity check
    // below catches that (merged edges reduce degree), making the graph
    // simple-by-construction when it passes.
    bool regular = true;
    for (Vertex v = 0; v < params.two_n && regular; ++v) {
      regular = g.degree(v) == d;
    }
    if (regular) return g;
  }
  throw std::runtime_error(
      "make_regular_planted: failed to construct a simple instance");
}

}  // namespace gbis
