// Additional random graph models beyond the paper's three, for model
// breadth in tests and benches:
//  - random geometric graphs: vertices as points in the unit square,
//    edges within a radius — the locality structure of placed circuits
//    (small bisection widths, like the paper's special graphs but
//    randomized);
//  - Watts-Strogatz small world: ring lattice with rewired shortcuts;
//  - Barabasi-Albert preferential attachment: heavy-tailed degrees.
#pragma once

#include <cstdint>

#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Random geometric graph: n points uniform in [0,1]^2, edge iff
/// Euclidean distance <= radius. Built on a grid index, O(n + |E|)
/// expected.
Graph make_geometric(std::uint32_t n, double radius, Rng& rng);

/// The radius giving expected average degree `avg_degree` in a unit
/// square (ignoring boundary effects): deg ~ n * pi * r^2.
double geometric_radius_for_degree(std::uint32_t n, double avg_degree);

/// Watts-Strogatz: ring of n vertices each tied to its k/2 nearest
/// neighbors per side (k even), then each edge's far endpoint rewired
/// with probability beta (avoiding loops/duplicates).
Graph make_small_world(std::uint32_t n, std::uint32_t k, double beta,
                       Rng& rng);

/// Barabasi-Albert: starts from a clique on m+1 vertices; each new
/// vertex attaches m edges preferentially by degree.
Graph make_preferential_attachment(std::uint32_t n, std::uint32_t m,
                                   Rng& rng);

}  // namespace gbis
