#include "gbis/gen/models.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gbis/graph/builder.hpp"

namespace gbis {

Graph make_geometric(std::uint32_t n, double radius, Rng& rng) {
  if (!(radius >= 0.0)) {
    throw std::invalid_argument("make_geometric: radius >= 0");
  }
  std::vector<double> x(n), y(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    x[i] = rng.real01();
    y[i] = rng.real01();
  }
  GraphBuilder builder(n);
  if (n == 0 || radius == 0.0) return builder.build();

  // Bucket grid with cell size = radius: only neighbor cells can hold
  // partners.
  const auto cells =
      static_cast<std::uint32_t>(std::max(1.0, std::floor(1.0 / radius)));
  std::vector<std::vector<Vertex>> grid(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](double coord) {
    auto c = static_cast<std::uint32_t>(coord * cells);
    return std::min(c, cells - 1);
  };
  for (Vertex v = 0; v < n; ++v) {
    grid[static_cast<std::size_t>(cell_of(y[v])) * cells + cell_of(x[v])]
        .push_back(v);
  }
  const double r2 = radius * radius;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint32_t cx = cell_of(x[v]);
    const std::uint32_t cy = cell_of(y[v]);
    for (std::uint32_t dy = (cy == 0 ? 0 : cy - 1);
         dy <= std::min(cy + 1, cells - 1); ++dy) {
      for (std::uint32_t dx = (cx == 0 ? 0 : cx - 1);
           dx <= std::min(cx + 1, cells - 1); ++dx) {
        for (Vertex w : grid[static_cast<std::size_t>(dy) * cells + dx]) {
          if (w <= v) continue;
          const double ddx = x[v] - x[w];
          const double ddy = y[v] - y[w];
          if (ddx * ddx + ddy * ddy <= r2) builder.add_edge(v, w);
        }
      }
    }
  }
  return builder.build();
}

double geometric_radius_for_degree(std::uint32_t n, double avg_degree) {
  if (n < 2 || !(avg_degree > 0.0)) {
    throw std::invalid_argument("geometric_radius_for_degree: bad params");
  }
  return std::sqrt(avg_degree / (static_cast<double>(n) * 3.14159265358979));
}

Graph make_small_world(std::uint32_t n, std::uint32_t k, double beta,
                       Rng& rng) {
  if (k % 2 != 0 || k == 0 || k >= n) {
    throw std::invalid_argument(
        "make_small_world: k must be even, 0 < k < n");
  }
  if (!(beta >= 0.0 && beta <= 1.0)) {
    throw std::invalid_argument("make_small_world: beta in [0, 1]");
  }
  // Adjacency staging in a set-like structure for duplicate avoidance
  // during rewiring.
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(static_cast<std::size_t>(n) * k / 2);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      edges.emplace_back(v, (v + j) % n);
    }
  }
  // Membership test over current edges (small n*k; hash set of keys).
  auto key = [](Vertex a, Vertex b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::vector<std::uint64_t> keys;
  keys.reserve(edges.size());
  for (auto& [a, b] : edges) keys.push_back(key(a, b));
  std::sort(keys.begin(), keys.end());
  auto exists = [&](Vertex a, Vertex b) {
    return std::binary_search(keys.begin(), keys.end(), key(a, b));
  };

  for (auto& [a, b] : edges) {
    if (!rng.bernoulli(beta)) continue;
    // Rewire the far endpoint to a uniform random target.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto t = static_cast<Vertex>(rng.below(n));
      if (t == a || t == b || exists(a, t)) continue;
      // Update the key multiset (lazy: rebuild is O(E log E) if done
      // often; here we insert-sort the single change).
      const std::uint64_t old_key = key(a, b);
      const std::uint64_t new_key = key(a, t);
      auto it = std::lower_bound(keys.begin(), keys.end(), old_key);
      keys.erase(it);
      keys.insert(std::lower_bound(keys.begin(), keys.end(), new_key),
                  new_key);
      b = t;
      break;
    }
  }
  GraphBuilder builder(n);
  for (const auto& [a, b] : edges) builder.add_edge(a, b);
  return builder.build();
}

Graph make_preferential_attachment(std::uint32_t n, std::uint32_t m,
                                   Rng& rng) {
  if (m == 0 || m + 1 > n) {
    throw std::invalid_argument(
        "make_preferential_attachment: need 1 <= m and m + 1 <= n");
  }
  GraphBuilder builder(n);
  // Endpoint pool: each edge contributes both endpoints, so sampling
  // uniformly from the pool is degree-proportional sampling.
  std::vector<Vertex> pool;
  for (Vertex u = 0; u <= m; ++u) {
    for (Vertex v = u + 1; v <= m; ++v) {
      builder.add_edge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  std::vector<Vertex> chosen;
  for (Vertex v = m + 1; v < n; ++v) {
    chosen.clear();
    // Draw m distinct targets degree-proportionally (rejection).
    while (chosen.size() < m) {
      const Vertex t = pool[static_cast<std::size_t>(rng.below(pool.size()))];
      bool dup = false;
      for (Vertex c : chosen) dup = dup || c == t;
      if (!dup) chosen.push_back(t);
    }
    for (Vertex t : chosen) {
      builder.add_edge(v, t);
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return builder.build();
}

}  // namespace gbis
