// Deterministic structured graph families.
//
// The paper's evaluation uses grids, ladders, and binary trees as
// "special graphs" (Table 1 and three appendix tables); ladders and
// binary trees are the classes on which simulated annealing beats
// Kernighan-Lin (Observation 4) and on which KL is known to fail badly
// (section I cites the ladder graph). The remaining families support
// tests and examples.
//
// All generators return simple unweighted graphs with vertices numbered
// in the natural layout order described per function.
#pragma once

#include <cstdint>
#include <span>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Path on n vertices: 0-1-2-...-(n-1). n >= 1.
Graph make_path(std::uint32_t n);

/// Simple cycle on n vertices. n >= 3.
Graph make_cycle(std::uint32_t n);

/// Disjoint union of simple cycles with the given sizes (each >= 3).
/// Vertices are numbered cycle by cycle.
Graph make_union_of_cycles(std::span<const std::uint32_t> sizes);

/// Ladder: two parallel paths of `rungs` vertices joined by rungs.
/// 2*rungs vertices; vertex (r, side) is 2*r + side. rungs >= 1.
/// Optimal bisection width is 2 for rungs >= 2 (cut one pair of rails).
Graph make_ladder(std::uint32_t rungs);

/// Circular ladder (prism graph): ladder with both rails closed into
/// cycles. rungs >= 3. Optimal bisection width is 4.
Graph make_circular_ladder(std::uint32_t rungs);

/// rows x cols grid; vertex (r, c) is r*cols + c. rows, cols >= 1.
/// For an N x N grid with N even, the optimal bisection width is N.
Graph make_grid(std::uint32_t rows, std::uint32_t cols);

/// rows x cols torus (grid with wraparound). rows, cols >= 3.
Graph make_torus(std::uint32_t rows, std::uint32_t cols);

/// Binary tree on n vertices in heap shape: vertex i's parent is
/// (i-1)/2. Works for every n >= 1 (the paper's "binary tree with N
/// nodes" for even N). Complete when n = 2^k - 1.
Graph make_binary_tree(std::uint32_t n);

/// Caterpillar: a spine path of `spine` vertices, each with `legs`
/// pendant leaves. spine >= 1.
Graph make_caterpillar(std::uint32_t spine, std::uint32_t legs);

/// Hypercube of the given dimension (2^dim vertices). dim <= 20.
/// Optimal bisection width is 2^(dim-1).
Graph make_hypercube(std::uint32_t dim);

/// Complete graph on n vertices. n >= 1.
Graph make_complete(std::uint32_t n);

/// Complete bipartite graph K_{a,b}; side A first.
Graph make_complete_bipartite(std::uint32_t a, std::uint32_t b);

}  // namespace gbis
