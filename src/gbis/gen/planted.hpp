// The G2set(2n, pA, pB, bis) model (paper section IV): vertices split
// into halves A = {0..n-1} and B = {n..2n-1}; edges inside A appear
// with probability pA, inside B with probability pB, and exactly `bis`
// edges are placed uniformly at random between the halves — an upper
// bound of bis on the bisection width.
//
// The planted bisection is always (first half, second half); helpers
// below expose it so experiments can compare found cuts against it.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Parameters of a G2set instance.
struct PlantedParams {
  std::uint32_t two_n = 0;  ///< total vertex count (even, >= 4)
  double p_a = 0.0;         ///< edge probability inside side A
  double p_b = 0.0;         ///< edge probability inside side B
  std::uint64_t bis = 0;    ///< exact number of cross edges (<= n*n)
};

/// Samples a G2set instance. Throws std::invalid_argument on
/// inconsistent parameters.
Graph make_planted(const PlantedParams& params, Rng& rng);

/// Parameters for a target average degree with symmetric sides:
/// expected average degree = (n-1)*p + 2*bis/(2n), solved for p.
/// Matches the paper's "G2set(5000, pA, pB, b) with average degree D"
/// table setups.
PlantedParams planted_params_for_degree(std::uint32_t two_n,
                                        double avg_degree,
                                        std::uint64_t bis);

/// The planted side assignment for any half/half model instance on
/// two_n vertices: 0 for the first half, 1 for the second.
std::vector<std::uint8_t> planted_sides(std::uint32_t two_n);

}  // namespace gbis
