#include "gbis/gen/gnp.hpp"

#include <cmath>
#include <stdexcept>

#include "gbis/graph/builder.hpp"

namespace gbis {

Graph make_gnp(std::uint32_t n, double p, Rng& rng) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("make_gnp: p must be in [0, 1]");
  }
  GraphBuilder builder(n);
  if (n < 2 || p == 0.0) return builder.build();

  if (p == 1.0) {
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) builder.add_edge(u, v);
    }
    return builder.build();
  }

  // Batagelj-Brandes: walk the strictly-upper-triangular pair sequence,
  // jumping a geometrically distributed number of non-edges each step.
  const double log1mp = std::log1p(-p);
  std::uint64_t v = 1, w = static_cast<std::uint64_t>(-1);
  while (v < n) {
    const double r = 1.0 - rng.real01();  // in (0, 1]
    w += 1 + static_cast<std::uint64_t>(std::floor(std::log(r) / log1mp));
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) {
      builder.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(w));
    }
  }
  return builder.build();
}

double gnp_p_for_degree(std::uint32_t n, double avg_degree) {
  if (n < 2) throw std::invalid_argument("gnp_p_for_degree: n >= 2");
  const double p = avg_degree / static_cast<double>(n - 1);
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("gnp_p_for_degree: degree out of range");
  }
  return p;
}

}  // namespace gbis
