// Method registry: every solver the harness can run, described as
// data — scripting/display names, the quality tier it serves, a rough
// cost model, and the per-method service counter — instead of
// hard-coded switch branches scattered across the CLI, the policy,
// and the experiment drivers. `harness/runner` name lookups,
// `svc/policy`'s ladder portfolios, and the stats/Prometheus
// `solve_by_method` surface all read this one table, so adding a
// method is one row here plus its `run_one_start` case.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "gbis/harness/runner.hpp"
#include "gbis/obs/metrics.hpp"

namespace gbis {

/// Quality tier of the service's quality-vs-latency ladder. The tier
/// names are protocol vocabulary (the request "quality" enum), so
/// they are append-only stable API like method names.
enum class QualityTier : std::uint8_t {
  kFast = 0,  ///< microsecond rung: bounded-latency construction
  kBalanced,  ///< milliseconds: one pass of the strong refiners
  kBest,      ///< the full racing portfolio (the pre-ladder default)
};
inline constexpr std::size_t kNumQualityTiers = 3;

/// Protocol name ("fast" / "balanced" / "best").
const char* quality_tier_name(QualityTier tier);

/// Reverse lookup for protocol parsing; false when `name` is unknown
/// (present-but-invalid quality is a parse error, never a default).
bool quality_tier_from_name(const std::string& name, QualityTier& out);

/// One registry row.
struct MethodInfo {
  Method method = Method::kKl;
  const char* name = "";          ///< scripting name ("kl", "path", ...)
  const char* display_name = "";  ///< table/response name ("KL", "PO", ...)
  /// Cheapest ladder rung whose portfolio races this method.
  QualityTier tier = QualityTier::kBest;
  /// Advisory cost model: rough per-trial cost relative to one
  /// two-start KL run on the same graph (measured on the EXPERIMENTS.md
  /// classes; bench/svc_throughput prices the rungs end to end).
  double relative_cost = 1.0;
  /// Service counter bumped when this method wins an ok cold solve
  /// ("svc.solve_by.*"; methods outside the ladder share
  /// kSvcSolveByOther).
  Counter solve_counter = Counter::kSvcSolveByOther;
};

/// All registered methods, in Method enum order (so
/// `method_registry()[static_cast<size_t>(m)]` is m's row).
std::span<const MethodInfo> method_registry();

/// Registry row for `method`.
const MethodInfo& method_info(Method method);

/// Lookup by scripting name; nullptr when unknown.
const MethodInfo* method_info_by_name(const std::string& name);

/// The racing portfolio of one ladder rung: trial i of a request runs
/// portfolio[i % size]. kBest is the historical 5-method service
/// portfolio with path optimization appended, so pre-ladder request
/// streams (budget <= 5) replay byte-identically.
std::span<const Method> quality_portfolio(QualityTier tier);

}  // namespace gbis
