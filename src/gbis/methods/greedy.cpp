#include "gbis/methods/greedy.hpp"

#include <cstdint>

#include "gbis/baseline/greedy.hpp"
#include "gbis/baseline/hill_climb.hpp"

namespace gbis {

Bisection greedy_hc_bisection(const Graph& g, Rng& rng,
                              const GreedyHcOptions& options) {
  Bisection b = greedy_bisection(g, rng);
  HillClimbOptions climb;
  const double n = static_cast<double>(g.num_vertices());
  climb.max_proposals = static_cast<std::uint64_t>(options.proposal_factor * n);
  climb.patience_factor = options.patience_factor;
  if (climb.max_proposals > 0) hill_climb(b, rng, climb);
  return b;
}

}  // namespace gbis
