#include "gbis/methods/path_opt.hpp"

#include <cstddef>

#include "gbis/obs/metrics.hpp"
#include "gbis/partition/gains.hpp"

namespace gbis {

Weight path_opt_pass(Bisection& bisection, PathOptStats* stats,
                     const PathOptOptions& options) {
  const Graph& g = bisection.graph();
  const std::size_t n = g.num_vertices();
  const Weight cut_before = bisection.cut();

  // Virtual flip state: `sides` and `gains` track the partition as if
  // the sequence's flips had been applied. Unlocked vertices never
  // flip before they are picked, so an unlocked vertex's virtual side
  // is its real side and the `required` test below reads `sides`
  // directly.
  std::vector<std::uint8_t> sides(bisection.sides().begin(),
                                  bisection.sides().end());
  std::vector<Weight> gains = all_gains(bisection);
  std::vector<std::uint8_t> locked(n, 0);

  // Walk stamps: every flip restamps its neighbors with a fresh clock
  // tick (one tick per neighbor, so later updates always outrank
  // earlier ones). Gain ties then prefer the highest stamp — the
  // vertex the sequence touched most recently, which is a neighbor of
  // the last flip whenever one is eligible. This is Berry & Goldberg's
  // near-greedy walk as a *bias* instead of a restriction: the
  // sequence follows edges while the walk stays gain-optimal and
  // teleports to the global best otherwise. (It is also exactly the
  // locality KL inherits from its LIFO gain buckets; with first-scan
  // ties instead, the planted and ladder classes stall 2-3x above
  // KL's local optima.)
  std::vector<std::uint64_t> stamp(n, 0);
  std::uint64_t clock = 0;

  std::vector<Vertex> path;
  path.reserve(n);
  Weight cumulative = 0, best_cumulative = 0;
  std::size_t best_len = 0;
  std::uint64_t polls = 0;

  // Grow one flip sequence in balance pairs — side 0 first, side 1
  // second, like a KL pair — until either side runs out of unlocked
  // vertices. Flipping any even prefix moves equal counts each way,
  // so every even prefix is a balance-preserving candidate.
  for (;;) {
    if ((path.size() & 31u) == 0) {
      options.deadline.check();
      ++polls;
    }
    const std::uint8_t required = (path.size() & 1u) != 0 ? 1 : 0;
    // Selection: max gain over eligible vertices; ties prefer the
    // most recent stamp, then the lowest id (first scanned).
    bool found = false;
    Vertex pick = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (locked[v] != 0 || sides[v] != required) continue;
      if (!found || gains[v] > gains[pick] ||
          (gains[v] == gains[pick] && stamp[v] > stamp[pick])) {
        found = true;
        pick = v;
      }
    }
    if (!found) break;  // one side exhausted; the tail can't pair up

    path.push_back(pick);
    locked[pick] = 1;
    cumulative += gains[pick];
    for (const Vertex u : g.neighbors(pick)) stamp[u] = ++clock;
    update_gains_after_move(g, sides, pick, gains);
    sides[pick] ^= 1;

    // Best even prefix; on ties keep the longest (a zero-gain plateau
    // still shifts the cut, which later passes exploit — but only once
    // a strictly improving prefix exists, so a no-gain pass stays a
    // no-op and refine's fixpoint test remains sound).
    if ((path.size() & 1u) == 0 &&
        (cumulative > best_cumulative ||
         (cumulative == best_cumulative && best_len > 0))) {
      best_cumulative = cumulative;
      best_len = path.size();
    }
  }

  // Commit the best prefix for real; the virtual tail is simply
  // abandoned (sides/gains die with this call frame).
  for (std::size_t k = 0; k < best_len; ++k) bisection.move(path[k]);

  if (stats != nullptr) {
    stats->paths += path.empty() ? 0 : 1;
    stats->flips_proposed += path.size();
    stats->flips_applied += best_len;
  }
  if (MetricsSink* sink = options.metrics; sink != nullptr) {
    sink->add(Counter::kPoPaths, path.empty() ? 0 : 1);
    sink->add(Counter::kPoFlipsProposed, path.size());
    sink->add(Counter::kPoFlipsApplied, best_len);
    sink->add(Counter::kDeadlinePolls, polls);
  }
  return cut_before - bisection.cut();
}

PathOptStats path_opt_refine(Bisection& bisection,
                             const PathOptOptions& options) {
  PathOptStats stats;
  stats.initial_cut = bisection.cut();
  for (;;) {
    options.deadline.check();
    const Weight improvement = path_opt_pass(bisection, &stats, options);
    ++stats.passes;
    if (MetricsSink* sink = options.metrics; sink != nullptr) {
      sink->add(Counter::kPoPasses);
      sink->add(Counter::kDeadlinePolls);  // the per-pass check above
      sink->trace_point(TraceSource::kPo, bisection.cut());
    }
    if (improvement == 0) break;
    if (options.max_passes != 0 && stats.passes >= options.max_passes) break;
  }
  stats.final_cut = bisection.cut();
  return stats;
}

}  // namespace gbis
