// The microsecond rung of the quality-vs-latency ladder: greedy
// region-growing construction (baseline/greedy.hpp) polished by a
// tightly budgeted hill climb (baseline/hill_climb.hpp). Berry &
// Goldberg's near-greedy analysis (PAPERS.md) is the justification:
// on the sparse geometric/random classes the generators emit, a
// greedy construction already lands near the good local optima, so a
// handful of improving swaps buys most of the remaining quality at a
// fraction of a KL pass's cost.
//
// This is deliberately *not* a refiner loop-until-fixpoint method:
// the proposal budget is a hard constant multiple of |V|, so the
// latency is predictable enough to serve "quality":"fast" requests
// without consulting the deadline at all (the whole run costs less
// than one cooperative poll interval of the heavier methods).
// Determinism: one greedy seed draw + the hill climb's proposal
// stream, all from the trial Rng — a pure function of (graph, rng).
#pragma once

#include <cstdint>

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the fast rung.
struct GreedyHcOptions {
  /// Hill-climb proposal budget as a multiple of |V| (hard cap, not a
  /// patience window — the rung must have bounded latency).
  double proposal_factor = 4.0;
  /// Patience passed through to the climber, as a multiple of |V|.
  double patience_factor = 2.0;
};

/// Greedy region growing + bounded hill climb. Balanced by
/// construction; never worse than the plain greedy bisection.
Bisection greedy_hc_bisection(const Graph& g, Rng& rng,
                              const GreedyHcOptions& options = {});

}  // namespace gbis
