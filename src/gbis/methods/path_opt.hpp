// Berry-Goldberg path optimization for graph bisection (PAPERS.md:
// "Path Optimization and Near-Greedy Analysis for Graph Partitioning").
//
// Where KL interchanges *pairs*, path optimization moves a *path*: one
// long sequence of single-vertex flips in strict side-0/side-1
// alternation, so that flipping any even-length prefix preserves the
// balance exactly (each side contributes half the flips). One pass
// grows the sequence greedily — each step flips the max-gain unlocked
// vertex of the required side, with gain ties broken toward the vertex
// whose gain was touched most recently. That recency bias is the
// near-greedy walk of the paper: while a neighbor of the last flip
// stays gain-optimal the sequence follows edges, and when the walk
// dies it teleports to the global best (an adjacency *bias*, not a
// restriction; it is also the move locality KL inherits from its LIFO
// gain buckets, without which the planted/ladder classes stall far
// above KL's local optima). The pass then applies the even prefix with
// the best cumulative gain, preferring the longest on ties — the KL
// best-prefix rule transplanted from the pair sequence to the flip
// walk. Every flipped vertex is locked for the rest of the pass, so a
// pass proposes at most |V| flips and termination is unconditional.
// Passes repeat until one yields no improvement (or a configured cap),
// exactly like kl_refine.
//
// Tie-breaking is deterministic everywhere (max gain, then freshest
// stamp, then lowest vertex id) and the refiner consumes no
// randomness, so a path-opt trial is a pure function of
// (graph, starting bisection) — the same contract the KL/SA/FM
// refiners honor, which is what lets the method join the service
// portfolio without touching the byte-identity replay guarantees.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/partition/bisection.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

class MetricsSink;

/// Tuning knobs for the path-optimization driver. Mirrors KlOptions:
/// the deadline is polled cooperatively inside the growth loop (every
/// 32 flips) and once per pass, and the sink is flushed once per pass.
struct PathOptOptions {
  /// Maximum number of passes; 0 means run until a pass gives no
  /// improvement.
  std::uint32_t max_passes = 0;
  /// Cooperative wall-clock budget; expiry throws DeadlineExceeded
  /// (the trial runner maps it to a timed-out trial).
  Deadline deadline;
  /// Observability sink; nullptr records nothing.
  MetricsSink* metrics = nullptr;
};

/// Per-run diagnostics.
struct PathOptStats {
  std::uint32_t passes = 0;        ///< passes executed
  std::uint64_t paths = 0;         ///< paths grown (incl. zero-gain ones)
  std::uint64_t flips_proposed = 0;  ///< vertices visited by some path
  std::uint64_t flips_applied = 0;   ///< flips kept by a best prefix
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Runs path-optimization passes on `bisection` in place until
/// fixpoint (or options.max_passes). Never increases the cut and
/// preserves the balance exactly. Returns diagnostics.
PathOptStats path_opt_refine(Bisection& bisection,
                             const PathOptOptions& options = {});

/// Runs exactly one pass; returns the cut improvement (>= 0).
/// Exposed for tests and pass-level experiments.
Weight path_opt_pass(Bisection& bisection, PathOptStats* stats = nullptr,
                     const PathOptOptions& options = {});

}  // namespace gbis
