#include "gbis/methods/registry.hpp"

#include <array>

namespace gbis {

namespace {

// Rows are indexed by the Method enum value — keep both in lockstep
// (method_registry() asserts the correspondence in debug builds).
// relative_cost calibration notes: CKL/CSA amortize their refinement
// over the compacted graph, path-opt costs about one KL run's passes
// with cheaper per-step work, SA dominates everything.
constexpr std::array<MethodInfo, 12> kRegistry = {{
    {Method::kKl, "kl", "KL", QualityTier::kBest, 1.0,
     Counter::kSvcSolveByKl},
    {Method::kSa, "sa", "SA", QualityTier::kBest, 8.0,
     Counter::kSvcSolveBySa},
    {Method::kCkl, "ckl", "CKL", QualityTier::kBalanced, 0.6,
     Counter::kSvcSolveByCkl},
    {Method::kCsa, "csa", "CSA", QualityTier::kBest, 4.0,
     Counter::kSvcSolveByCsa},
    {Method::kFm, "fm", "FM", QualityTier::kBest, 0.8,
     Counter::kSvcSolveByOther},
    {Method::kCfm, "cfm", "CFM", QualityTier::kBest, 0.5,
     Counter::kSvcSolveByOther},
    {Method::kMultilevelKl, "mlkl", "MLKL", QualityTier::kBalanced, 1.5,
     Counter::kSvcSolveByMlkl},
    {Method::kGreedy, "greedy", "Greedy", QualityTier::kFast, 0.05,
     Counter::kSvcSolveByOther},
    {Method::kSpectral, "spectral", "Spectral", QualityTier::kBest, 0.5,
     Counter::kSvcSolveByOther},
    {Method::kRandom, "random", "Random", QualityTier::kFast, 0.02,
     Counter::kSvcSolveByOther},
    {Method::kPathOpt, "path", "PO", QualityTier::kBalanced, 0.7,
     Counter::kSvcSolveByPath},
    {Method::kGreedyHc, "greedy_hc", "GreedyHC", QualityTier::kFast, 0.1,
     Counter::kSvcSolveByGreedyHc},
}};

// The ladder rung portfolios (quality_portfolio). kBest preserves the
// historical dispatch order — CKL, CSA, KL, SA, MLKL — and appends
// path optimization, so a pre-ladder "auto" request with budget <= 5
// runs exactly the trials it always ran.
constexpr std::array<Method, 1> kFastPortfolio = {Method::kGreedyHc};
constexpr std::array<Method, 3> kBalancedPortfolio = {
    Method::kCkl, Method::kPathOpt, Method::kMultilevelKl};
constexpr std::array<Method, 6> kBestPortfolio = {
    Method::kCkl, Method::kCsa, Method::kKl,
    Method::kSa,  Method::kMultilevelKl, Method::kPathOpt};

}  // namespace

const char* quality_tier_name(QualityTier tier) {
  switch (tier) {
    case QualityTier::kFast: return "fast";
    case QualityTier::kBalanced: return "balanced";
    case QualityTier::kBest: return "best";
  }
  return "best";
}

bool quality_tier_from_name(const std::string& name, QualityTier& out) {
  if (name == "fast") out = QualityTier::kFast;
  else if (name == "balanced") out = QualityTier::kBalanced;
  else if (name == "best") out = QualityTier::kBest;
  else return false;
  return true;
}

std::span<const MethodInfo> method_registry() { return kRegistry; }

const MethodInfo& method_info(Method method) {
  return kRegistry[static_cast<std::size_t>(method)];
}

const MethodInfo* method_info_by_name(const std::string& name) {
  for (const MethodInfo& info : kRegistry) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

std::span<const Method> quality_portfolio(QualityTier tier) {
  switch (tier) {
    case QualityTier::kFast: return kFastPortfolio;
    case QualityTier::kBalanced: return kBalancedPortfolio;
    case QualityTier::kBest: return kBestPortfolio;
  }
  return kBestPortfolio;
}

}  // namespace gbis
