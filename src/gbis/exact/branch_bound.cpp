#include "gbis/exact/branch_bound.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace gbis {

namespace {

/// Search state shared across the recursion.
struct Solver {
  const Graph* g;
  std::uint32_t n;
  std::uint32_t cap[2];            // side capacities (ceil, floor)
  std::vector<Vertex> order;       // branching order (degree desc)
  std::vector<std::int8_t> side;   // -1 undecided, else 0/1
  std::vector<Weight> to_side[2];  // decided-edge weight per vertex
  Weight best;
  std::vector<std::int8_t> best_sides;
  std::uint64_t nodes = 0;
  std::uint64_t pruned = 0;
  std::uint64_t max_nodes;
  std::vector<Weight> scratch;

  /// Capacity-aware lower bound on the cut still to be paid between
  /// undecided and decided vertices (undecided-undecided edges are
  /// optimistically free): place exactly r0 undecided on side 0,
  /// choosing the r0 with the smallest regret wB - wA.
  Weight lower_bound(std::uint32_t depth, std::uint32_t used0,
                     std::uint32_t used1) {
    const std::uint32_t r0 = cap[0] - used0;
    Weight base = 0;
    scratch.clear();
    for (std::uint32_t i = depth; i < n; ++i) {
      const Vertex v = order[i];
      // Cost if v lands on side 0: its edges to decided side-1 pay.
      base += to_side[1][v];
      scratch.push_back(to_side[0][v] - to_side[1][v]);  // regret of side 1
    }
    // Everyone priced at side 0; the (u - r0) vertices forced to side 1
    // swap in their regret. Pick the smallest regrets.
    const std::size_t to_side1 = scratch.size() - r0;
    if (to_side1 > 0) {
      std::nth_element(scratch.begin(),
                       scratch.begin() + static_cast<std::ptrdiff_t>(to_side1 - 1),
                       scratch.end());
      base += std::accumulate(
          scratch.begin(),
          scratch.begin() + static_cast<std::ptrdiff_t>(to_side1), Weight{0});
    }
    (void)used1;
    return base;
  }

  void assign(Vertex v, int s, Weight& cut) {
    side[v] = static_cast<std::int8_t>(s);
    cut += to_side[1 - s][v];
    const auto nbrs = g->neighbors(v);
    const auto wts = g->edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      to_side[s][nbrs[i]] += wts[i];
    }
  }

  void unassign(Vertex v, int s, Weight& cut) {
    side[v] = -1;
    cut -= to_side[1 - s][v];
    const auto nbrs = g->neighbors(v);
    const auto wts = g->edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      to_side[s][nbrs[i]] -= wts[i];
    }
  }

  void search(std::uint32_t depth, std::uint32_t used0, std::uint32_t used1,
              Weight cut) {
    if (++nodes > max_nodes && max_nodes != 0) {
      throw std::runtime_error("branch_bound_bisection: node cap exceeded");
    }
    if (cut >= best) {
      ++pruned;
      return;
    }
    if (depth == n) {
      best = cut;
      best_sides.assign(side.begin(), side.end());
      return;
    }
    if (cut + lower_bound(depth, used0, used1) >= best) {
      ++pruned;
      return;
    }
    const Vertex v = order[depth];
    // Try the cheaper side first (better incumbents earlier).
    int first = to_side[1][v] <= to_side[0][v] ? 0 : 1;
    for (int attempt = 0; attempt < 2; ++attempt) {
      const int s = attempt == 0 ? first : 1 - first;
      const std::uint32_t used = s == 0 ? used0 : used1;
      if (used >= cap[s]) continue;
      assign(v, s, cut);
      search(depth + 1, used0 + (s == 0), used1 + (s == 1), cut);
      unassign(v, s, cut);
    }
  }
};

}  // namespace

ExactBisection branch_bound_bisection(const Graph& g,
                                      const BranchBoundOptions& options,
                                      BranchBoundStats* stats) {
  const std::uint32_t n = g.num_vertices();
  if (n > 64) {
    throw std::invalid_argument("branch_bound_bisection: n <= 64");
  }
  if (n == 0) return {0, {}};

  Solver solver;
  solver.g = &g;
  solver.n = n;
  solver.cap[0] = (n + 1) / 2;
  solver.cap[1] = n / 2;
  solver.order.resize(n);
  for (Vertex v = 0; v < n; ++v) solver.order[v] = v;
  std::sort(solver.order.begin(), solver.order.end(),
            [&](Vertex a, Vertex b) { return g.degree(a) > g.degree(b); });
  solver.side.assign(n, -1);
  solver.to_side[0].assign(n, 0);
  solver.to_side[1].assign(n, 0);
  solver.best = options.initial_upper_bound >= 0
                    ? options.initial_upper_bound + 1
                    : std::numeric_limits<Weight>::max();
  solver.max_nodes = options.max_nodes;

  // Symmetry breaking: for even n the sides are interchangeable, so
  // the first branching vertex can be pinned to side 0. (For odd n the
  // sides have different capacities, so both choices must be explored.)
  if (n % 2 == 0) {
    Weight cut = 0;
    solver.assign(solver.order[0], 0, cut);
    solver.search(1, 1, 0, cut);
  } else {
    solver.search(0, 0, 0, 0);
  }

  if (stats != nullptr) {
    stats->nodes = solver.nodes;
    stats->pruned = solver.pruned;
  }
  if (solver.best_sides.empty()) {
    throw std::runtime_error(
        "branch_bound_bisection: no solution within the upper bound");
  }
  ExactBisection result;
  result.cut = solver.best;
  result.sides.assign(solver.best_sides.begin(), solver.best_sides.end());
  return result;
}

}  // namespace gbis
