// Exact minimum bisection for forests via tree knapsack DP.
//
// The paper tests binary trees (and finds KL struggles on them); this
// solver provides the true optimum to compare against. For a vertex v
// the DP state is f[s][j]: the minimum weight of cut tree edges inside
// v's subtree when v lies on side s and exactly j subtree vertices lie
// on side 1. Children merge knapsack-style, paying w(v,c) when v and c
// take different sides. Subtree-size-bounded tables keep the total work
// O(n^2) and memory O(n * depth).
#pragma once

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Exact minimum bisection cut weight of a forest (splits sizes
/// floor(n/2) / ceil(n/2)). Throws std::invalid_argument if the graph
/// contains a cycle.
Weight tree_bisection_width(const Graph& g);

}  // namespace gbis
