// Exact minimum bisection for disjoint unions of simple cycles.
//
// Degree-2 Gbreg instances "must consist only of a collection of
// [chordless] cycles", for which the paper notes the problem is
// solvable exactly (section VI). Structure: a side of the bisection
// that is a union of whole cycles cuts nothing; otherwise one cycle can
// donate an arc at a cost of exactly 2 cut edges. Hence the optimum is
// 0 when some subset of cycle lengths sums to floor(n/2), else 2 —
// decided by a subset-sum DP in O(n * #cycles) <= O(n^2).
#pragma once

#include "gbis/exact/brute.hpp"
#include "gbis/graph/graph.hpp"

namespace gbis {

/// Exact minimum bisection (value and witness sides) of a union of
/// simple cycles. Throws std::invalid_argument if some vertex does not
/// have degree 2. Edge weights are ignored (the family is unweighted by
/// construction); the returned cut counts edges.
ExactBisection cycles_bisection(const Graph& g);

}  // namespace gbis
