#include "gbis/exact/cycles.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gbis/graph/ops.hpp"

namespace gbis {

ExactBisection cycles_bisection(const Graph& g) {
  if (!is_union_of_cycles(g)) {
    throw std::invalid_argument(
        "cycles_bisection: graph is not a union of simple cycles");
  }
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t target = n / 2;

  const Components comps = connected_components(g);
  const std::vector<std::uint32_t> sizes = comps.sizes();
  const std::uint32_t num_cycles = comps.count;

  // Subset-sum over cycle sizes: reach[j] true if some subset of whole
  // cycles has total size j; choice[c][j] records whether cycle c was
  // taken to reach j (for witness reconstruction).
  std::vector<std::uint8_t> reach(target + 1, 0);
  reach[0] = 1;
  std::vector<std::vector<std::uint8_t>> choice(
      num_cycles, std::vector<std::uint8_t>(target + 1, 0));
  for (std::uint32_t c = 0; c < num_cycles; ++c) {
    const std::uint32_t s = sizes[c];
    for (std::uint32_t j = target; j + 1 > s; --j) {  // j >= s, unsigned-safe
      if (!reach[j] && reach[j - s]) {
        reach[j] = 1;
        choice[c][j] = 1;
      }
    }
  }

  ExactBisection result;
  result.sides.assign(n, 0);

  // Best achievable whole-cycle total not exceeding target.
  std::uint32_t best_sum = target;
  while (!reach[best_sum]) --best_sum;

  // Mark the chosen whole cycles as side 1 by backtracking.
  std::vector<std::uint8_t> cycle_on_side1(num_cycles, 0);
  {
    std::uint32_t j = best_sum;
    for (std::uint32_t c = num_cycles; c-- > 0;) {
      if (choice[c][j]) {
        cycle_on_side1[c] = 1;
        j -= sizes[c];
      }
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (cycle_on_side1[comps.label[v]]) result.sides[v] = 1;
  }

  const std::uint32_t remainder = target - best_sum;
  if (remainder == 0) {
    result.cut = 0;
    return result;
  }

  // One partial arc of `remainder` vertices from an unchosen cycle that
  // is strictly longer (such a cycle always exists: otherwise adding a
  // short unchosen cycle would improve best_sum). Cost: exactly 2.
  result.cut = 2;
  for (std::uint32_t c = 0; c < num_cycles; ++c) {
    if (cycle_on_side1[c] || sizes[c] <= remainder) continue;
    // Walk the cycle from any member vertex and flip `remainder`
    // consecutive vertices.
    Vertex start = kUnreachable;
    for (Vertex v = 0; v < n && start == kUnreachable; ++v) {
      if (comps.label[v] == c) start = v;
    }
    Vertex prev = start, cur = start;
    for (std::uint32_t taken = 0; taken < remainder; ++taken) {
      result.sides[cur] = 1;
      const auto nbrs = g.neighbors(cur);
      const Vertex next = (nbrs[0] != prev || nbrs.size() < 2)
                              ? nbrs[0]
                              : nbrs[1];
      prev = cur;
      cur = next;
    }
    return result;
  }
  throw std::logic_error("cycles_bisection: no donor cycle found");
}

}  // namespace gbis
