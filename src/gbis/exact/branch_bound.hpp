// Exact minimum bisection by branch and bound — a stronger oracle than
// brute force: prunes by (current cut) + (a lower bound on forced
// future cut), reaching n ~ 40-60 on structured instances where
// enumeration caps at ~28. Used by tests to certify planted widths at
// sizes the heuristics actually run on.
//
// Branching: vertices in descending-degree order (decisions about
// high-degree vertices prune earliest); side-symmetry broken by
// pinning the first vertex. Bound: edges between undecided vertices
// can still be saved, but each undecided vertex v must eventually pay
// min(w(v->A), w(v->B)) to the decided sides, and side capacities
// force |remaining slots| constraints.
#pragma once

#include <cstdint>

#include "gbis/exact/brute.hpp"
#include "gbis/graph/graph.hpp"

namespace gbis {

/// Controls for the branch-and-bound solver.
struct BranchBoundOptions {
  /// Hard cap on explored nodes; 0 = unlimited. When the cap is hit a
  /// std::runtime_error is thrown (the incumbent may not be optimal).
  std::uint64_t max_nodes = 50'000'000;
  /// Optional initial upper bound (e.g. a heuristic cut); tightens
  /// pruning from the start. Negative = none.
  Weight initial_upper_bound = -1;
};

/// Diagnostics of a solve.
struct BranchBoundStats {
  std::uint64_t nodes = 0;    ///< search-tree nodes visited
  std::uint64_t pruned = 0;   ///< subtrees cut off by the bound
};

/// Exact minimum bisection (sizes floor(n/2)/ceil(n/2)). Throws
/// std::invalid_argument for graphs over 64 vertices and
/// std::runtime_error when the node cap is exceeded.
ExactBisection branch_bound_bisection(const Graph& g,
                                      const BranchBoundOptions& options = {},
                                      BranchBoundStats* stats = nullptr);

}  // namespace gbis
