#include "gbis/exact/brute.hpp"

#include <stdexcept>

namespace gbis {

ExactBisection brute_force_bisection(const Graph& g,
                                     std::uint32_t max_vertices) {
  const std::uint32_t n = g.num_vertices();
  if (n == 0) return {0, {}};
  if (n > max_vertices || n > 32) {
    throw std::invalid_argument("brute_force_bisection: graph too large");
  }
  const std::uint32_t k = n / 2;  // size of side 1
  const std::vector<Edge> edges = g.edges();

  // Iterate k-subsets of [0, n) as bitmasks via Gosper's hack. When n
  // is even, pin vertex 0 to side 0 (complement symmetry halves work).
  const bool pin = (n % 2 == 0) && n >= 2;
  std::uint32_t mask = (k == 0) ? 0 : (1u << k) - 1;
  const std::uint64_t limit = 1ull << n;

  Weight best = -1;
  std::uint32_t best_mask = 0;
  auto consider = [&](std::uint32_t m) {
    if (pin && (m & 1u)) return;  // vertex 0 must stay on side 0
    Weight cut = 0;
    for (const Edge& e : edges) {
      const bool su = (m >> e.u) & 1u;
      const bool sv = (m >> e.v) & 1u;
      if (su != sv) cut += e.weight;
    }
    if (best < 0 || cut < best) {
      best = cut;
      best_mask = m;
    }
  };

  if (k == 0) {
    consider(0);
  } else {
    while (mask < limit) {
      consider(static_cast<std::uint32_t>(mask));
      // Gosper's hack: next k-subset in increasing order.
      const std::uint32_t c = mask & static_cast<std::uint32_t>(-static_cast<std::int32_t>(mask));
      const std::uint32_t r = mask + c;
      if (r >= limit) break;
      mask = (((r ^ mask) >> 2) / c) | r;
    }
  }

  ExactBisection result;
  result.cut = best;
  result.sides.assign(n, 0);
  for (std::uint32_t v = 0; v < n; ++v) {
    result.sides[v] = static_cast<std::uint8_t>((best_mask >> v) & 1u);
  }
  return result;
}

}  // namespace gbis
