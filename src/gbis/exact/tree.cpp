#include "gbis/exact/tree.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "gbis/graph/ops.hpp"

namespace gbis {

namespace {

constexpr Weight kInf = std::numeric_limits<Weight>::max() / 4;

/// DP table for one rooted subtree: cost[s][j], j in [0, size].
struct SubtreeTable {
  std::uint32_t size = 0;
  std::vector<Weight> cost[2];
};

}  // namespace

Weight tree_bisection_width(const Graph& g) {
  if (!is_forest(g)) {
    throw std::invalid_argument("tree_bisection_width: graph has a cycle");
  }
  const std::uint32_t n = g.num_vertices();
  if (n <= 1) return 0;

  std::vector<SubtreeTable> tables(n);
  std::vector<Vertex> parent(n, kUnreachable);
  std::vector<std::uint8_t> visited(n, 0);

  // best[j] = min cut using the components processed so far with j
  // vertices total on side 1.
  std::vector<Weight> best{0};

  for (Vertex root = 0; root < n; ++root) {
    if (visited[root]) continue;

    // Iterative post-order over this component.
    std::vector<std::pair<Vertex, std::size_t>> stack{{root, 0}};
    std::vector<Vertex> postorder;
    visited[root] = 1;
    parent[root] = kUnreachable;
    while (!stack.empty()) {
      auto& [v, idx] = stack.back();
      const auto nbrs = g.neighbors(v);
      if (idx < nbrs.size()) {
        const Vertex c = nbrs[idx++];
        if (!visited[c]) {
          visited[c] = 1;
          parent[c] = v;
          stack.emplace_back(c, 0);
        }
      } else {
        postorder.push_back(v);
        stack.pop_back();
      }
    }

    for (Vertex v : postorder) {
      SubtreeTable& tv = tables[v];
      tv.size = 1;
      tv.cost[0] = {0, kInf};   // j = 0 with v on side 0; j = 1 invalid
      tv.cost[1] = {kInf, 0};   // j = 1 with v on side 1
      const auto nbrs = g.neighbors(v);
      const auto wts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Vertex c = nbrs[i];
        if (parent[c] != v) continue;  // only children
        SubtreeTable& tc = tables[c];
        const Weight edge_w = wts[i];
        const std::uint32_t new_size = tv.size + tc.size;
        std::vector<Weight> merged[2] = {
            std::vector<Weight>(new_size + 1, kInf),
            std::vector<Weight>(new_size + 1, kInf)};
        for (int sv = 0; sv < 2; ++sv) {
          for (std::uint32_t j = 0; j <= tv.size; ++j) {
            if (tv.cost[sv][j] >= kInf) continue;
            for (int sc = 0; sc < 2; ++sc) {
              const Weight cross = (sv != sc) ? edge_w : 0;
              for (std::uint32_t jc = 0; jc <= tc.size; ++jc) {
                if (tc.cost[sc][jc] >= kInf) continue;
                merged[sv][j + jc] =
                    std::min(merged[sv][j + jc],
                             tv.cost[sv][j] + tc.cost[sc][jc] + cross);
              }
            }
          }
        }
        tv.cost[0] = std::move(merged[0]);
        tv.cost[1] = std::move(merged[1]);
        tv.size = new_size;
        // Child table no longer needed; free its memory.
        tc.cost[0].clear();
        tc.cost[0].shrink_to_fit();
        tc.cost[1].clear();
        tc.cost[1].shrink_to_fit();
      }
    }

    // Fold this component's root table into the cross-component
    // knapsack (components share no edges).
    const SubtreeTable& tr = tables[root];
    std::vector<Weight> folded(best.size() + tr.size, kInf);
    for (std::size_t j = 0; j < best.size(); ++j) {
      if (best[j] >= kInf) continue;
      for (std::uint32_t jc = 0; jc <= tr.size; ++jc) {
        const Weight c =
            std::min(tr.cost[0][jc], tr.cost[1][jc]);
        if (c >= kInf) continue;
        folded[j + jc] = std::min(folded[j + jc], best[j] + c);
      }
    }
    best = std::move(folded);
  }

  return best[n / 2];
}

}  // namespace gbis
