// Exact minimum bisection by exhaustive enumeration, for tiny graphs.
// The test oracle against which every heuristic is validated.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// An exact bisection result: the optimal cut and one witness split.
struct ExactBisection {
  Weight cut = 0;
  std::vector<std::uint8_t> sides;
};

/// Enumerates all balanced splits (sizes differing by at most 1) and
/// returns a minimum-cut witness. Throws std::invalid_argument for
/// graphs larger than `max_vertices` (default 28; cost grows as
/// C(n, n/2) * E).
ExactBisection brute_force_bisection(const Graph& g,
                                     std::uint32_t max_vertices = 28);

}  // namespace gbis
