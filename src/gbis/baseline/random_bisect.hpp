// Random bisection baseline: the expected cut of a uniformly random
// balanced split. The paper's section IV argument that Gnp graphs
// cannot separate good heuristics from mediocre ones rests on random
// cuts being near-optimal there; this module lets benches show that
// explicitly.
#pragma once

#include <cstdint>

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Best of `trials` uniformly random balanced bisections.
Bisection best_random_bisection(const Graph& g, Rng& rng,
                                std::uint32_t trials = 1);

/// Expected cut of a uniformly random balanced bisection:
/// sum of edge weights * (n/2) / (n - 1) * ... exactly:
/// each edge crosses with probability n/(2(n-1)) for even n.
double expected_random_cut(const Graph& g);

}  // namespace gbis
