#include "gbis/baseline/greedy.hpp"

#include <queue>
#include <tuple>
#include <utility>
#include <vector>

namespace gbis {

namespace {
constexpr Vertex kNilVertex = 0xFFFFFFFFu;
}  // namespace

Bisection greedy_bisection(const Graph& g, Rng& rng) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint8_t> sides(n, 1);
  if (n == 0) return Bisection(g, std::move(sides));

  const std::uint32_t target = (n + 1) / 2;
  std::vector<Weight> attachment(n, 0);  // weight into the grown region
  std::vector<std::uint8_t> absorbed(n, 0);

  // Lazy-deletion max-heap over the frontier, keyed by (attachment,
  // -insertion_seq): strongest attachment first, FIFO among ties so
  // equal-attachment growth stays BFS-contiguous (a max-id tie-break
  // can ride one rail of a ladder and shred the region).
  using Entry = std::tuple<Weight, std::int64_t, Vertex>;
  std::priority_queue<Entry> frontier;
  std::int64_t seq = 0;

  std::uint32_t grown = 0;
  while (grown < target) {
    Vertex v = kNilVertex;
    while (!frontier.empty()) {
      const auto [key, neg_seq, candidate] = frontier.top();
      frontier.pop();
      if (!absorbed[candidate] && attachment[candidate] == key) {
        v = candidate;
        break;
      }
    }
    if (v == kNilVertex) {
      // Frontier empty: seed a new region at a random free vertex.
      do {
        v = static_cast<Vertex>(rng.below(n));
      } while (absorbed[v]);
    }
    absorbed[v] = 1;
    sides[v] = 0;
    ++grown;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!absorbed[nbrs[i]]) {
        attachment[nbrs[i]] += wts[i];
        frontier.emplace(attachment[nbrs[i]], -(++seq), nbrs[i]);
      }
    }
  }
  return Bisection(g, std::move(sides));
}

}  // namespace gbis
