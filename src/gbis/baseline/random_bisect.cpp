#include "gbis/baseline/random_bisect.hpp"

#include <stdexcept>
#include <utility>

namespace gbis {

Bisection best_random_bisection(const Graph& g, Rng& rng,
                                std::uint32_t trials) {
  if (trials == 0) {
    throw std::invalid_argument("best_random_bisection: trials >= 1");
  }
  Bisection best = Bisection::random(g, rng);
  for (std::uint32_t t = 1; t < trials; ++t) {
    Bisection candidate = Bisection::random(g, rng);
    if (candidate.cut() < best.cut()) best = std::move(candidate);
  }
  return best;
}

double expected_random_cut(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  if (n < 2) return 0.0;
  // For a uniformly random balanced split with sides of size
  // ceil(n/2) and floor(n/2), an edge's endpoints land on opposite
  // sides with probability 2 * ceil * floor / (n * (n - 1)).
  const double half_up = (n + 1) / 2;
  const double half_down = n / 2;
  const double p_cross = 2.0 * half_up * half_down /
                         (static_cast<double>(n) * (n - 1.0));
  return p_cross * static_cast<double>(g.total_edge_weight());
}

}  // namespace gbis
