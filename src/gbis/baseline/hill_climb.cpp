#include "gbis/baseline/hill_climb.hpp"

#include <algorithm>

#include "gbis/partition/gains.hpp"

namespace gbis {

HillClimbStats hill_climb(Bisection& bisection, Rng& rng,
                          const HillClimbOptions& options) {
  const Graph& g = bisection.graph();
  const std::uint32_t n = g.num_vertices();
  HillClimbStats stats;
  stats.initial_cut = bisection.cut();
  stats.final_cut = stats.initial_cut;
  if (n < 2 || bisection.side_count(0) == 0 || bisection.side_count(1) == 0) {
    return stats;
  }

  const auto patience = static_cast<std::uint64_t>(
      std::max(1.0, options.patience_factor * n));
  std::uint64_t since_improvement = 0;

  auto random_on_side = [&](int side) {
    for (;;) {
      const auto v = static_cast<Vertex>(rng.below(n));
      if (bisection.side(v) == side) return v;
    }
  };

  while (since_improvement < patience) {
    if (options.max_proposals != 0 &&
        stats.proposals >= options.max_proposals) {
      break;
    }
    ++stats.proposals;
    const Vertex a = random_on_side(0);
    const Vertex b = random_on_side(1);
    const Weight gab = pair_gain(g, a, b, bisection.gain(a),
                                 bisection.gain(b));
    if (gab > 0) {
      bisection.swap(a, b);
      ++stats.improvements;
      since_improvement = 0;
    } else {
      ++since_improvement;
    }
  }
  stats.final_cut = bisection.cut();
  return stats;
}

}  // namespace gbis
