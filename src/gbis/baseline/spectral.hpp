// Spectral bisection baseline: split by the sign structure of the
// Fiedler vector (the Laplacian eigenvector with second-smallest
// eigenvalue), computed with deflated power iteration — no external
// linear-algebra dependency.
//
// Not in the 1989 paper (spectral partitioning entered the VLSI
// mainstream shortly after); included as an extension comparator for
// the benches: it is strong exactly where KL without compaction is weak
// (sparse structured graphs), which sharpens the compaction story.
#pragma once

#include <cstdint>

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the spectral solver.
struct SpectralOptions {
  std::uint32_t max_iterations = 500;
  double tolerance = 1e-7;  ///< relative Rayleigh-quotient change to stop
};

/// Computes an approximate Fiedler vector by power iteration on
/// (c*I - L), deflating the constant vector, then splits at the median
/// coordinate (guaranteeing balance). rng seeds the start vector.
Bisection spectral_bisection(const Graph& g, Rng& rng,
                             const SpectralOptions& options = {});

}  // namespace gbis
