// Greedy region-growing bisection: BFS from a random seed until half
// the vertices are absorbed, preferring frontier vertices with the most
// already-absorbed neighbors. A classic cheap constructive baseline —
// exact on paths/ladders/cycles-like graphs with localized structure,
// poor on expanders — used by benches to contextualize KL/SA numbers
// and by tests as a sanity comparator. (The paper's section VI remarks
// that a DFS-style approach beats both heuristics on degree-2 graphs;
// this is that idea, strengthened.)
#pragma once

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Grows side 0 from a random seed vertex, always absorbing the
/// frontier vertex with maximum (weighted) attachment to the grown
/// region, until it holds ceil(n/2) vertices; when the frontier
/// empties (disconnected graphs) a fresh random seed is drawn.
Bisection greedy_bisection(const Graph& g, Rng& rng);

}  // namespace gbis
