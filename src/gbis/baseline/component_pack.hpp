// Component packing: the right way to bisect disconnected graphs.
//
// Generalizes the paper's degree-2 observation (a union of cycles has
// cut 0 iff some subset of cycle sizes sums to n/2): for ANY graph, if
// a subset of connected components packs to exactly half the vertices,
// the optimal bisection is 0 and a subset-sum DP finds it. Otherwise
// the DP still yields the most balanced whole-component split, which
// makes an excellent seed: only one component must then be split, and
// the refiner works inside it instead of fighting the packing.
//
// Move-based heuristics handle this badly from random starts (their
// gain surfaces say nothing about component boundaries), so this is
// both a baseline and a practical preprocessing step.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Result of the packing analysis.
struct ComponentPacking {
  /// True if whole components pack to exactly floor(n/2) (optimal cut 0).
  bool perfect = false;
  /// Side assignment realizing the best whole-component packing; when
  /// !perfect, the remainder is carved greedily (BFS region) out of
  /// one donor component, so the split is balanced but may cut edges.
  std::vector<std::uint8_t> sides;
};

/// Computes the best whole-component packing toward floor(n/2) by
/// subset-sum DP (O(n * #components)), completing the balance with a
/// BFS-grown region from a donor component when needed.
ComponentPacking pack_components(const Graph& g, Rng& rng);

/// Convenience: the packing as a Bisection (balanced; cut 0 when
/// perfect).
Bisection component_pack_bisection(const Graph& g, Rng& rng);

}  // namespace gbis
