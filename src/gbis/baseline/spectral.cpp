#include "gbis/baseline/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace gbis {

Bisection spectral_bisection(const Graph& g, Rng& rng,
                             const SpectralOptions& options) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint8_t> sides(n, 1);
  if (n < 2) {
    sides.assign(n, 0);
    return Bisection(g, std::move(sides));
  }

  // Shift: c >= lambda_max(L); 2 * max weighted degree suffices
  // (Gershgorin: lambda_max <= 2 * max_wdeg).
  Weight max_wdeg = 1;
  for (Vertex v = 0; v < n; ++v) {
    max_wdeg = std::max(max_wdeg, g.weighted_degree(v));
  }
  const double shift = 2.0 * static_cast<double>(max_wdeg);

  std::vector<double> x(n), y(n);
  for (double& coord : x) coord = rng.real01() - 0.5;

  auto deflate_and_normalize = [&](std::vector<double>& vec) {
    // Remove the constant component (eigenvector of lambda = 0).
    const double mean =
        std::accumulate(vec.begin(), vec.end(), 0.0) / static_cast<double>(n);
    for (double& coord : vec) coord -= mean;
    double norm = 0.0;
    for (double coord : vec) norm += coord * coord;
    norm = std::sqrt(norm);
    if (norm < 1e-30) {
      // Degenerate start (constant vector): re-randomize.
      for (double& coord : vec) coord = rng.real01() - 0.5;
      return false;
    }
    for (double& coord : vec) coord /= norm;
    return true;
  };
  deflate_and_normalize(x);

  double prev_rayleigh = 0.0;
  for (std::uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    // y = (shift*I - L) x = shift*x - D*x + A*x.
    for (Vertex v = 0; v < n; ++v) {
      double acc =
          (shift - static_cast<double>(g.weighted_degree(v))) * x[v];
      const auto nbrs = g.neighbors(v);
      const auto wts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        acc += static_cast<double>(wts[i]) * x[nbrs[i]];
      }
      y[v] = acc;
    }
    // Rayleigh quotient of the shifted operator before normalization.
    double rayleigh = 0.0;
    for (Vertex v = 0; v < n; ++v) rayleigh += x[v] * y[v];
    x.swap(y);
    if (!deflate_and_normalize(x)) continue;
    if (iter > 0 &&
        std::abs(rayleigh - prev_rayleigh) <=
            options.tolerance * std::abs(rayleigh)) {
      break;
    }
    prev_rayleigh = rayleigh;
  }

  // Median split for exact balance.
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  std::nth_element(order.begin(), order.begin() + (n + 1) / 2, order.end(),
                   [&](Vertex a, Vertex b) { return x[a] < x[b]; });
  for (std::uint32_t i = 0; i < (n + 1) / 2; ++i) sides[order[i]] = 0;
  return Bisection(g, std::move(sides));
}

}  // namespace gbis
