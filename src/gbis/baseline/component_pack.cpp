#include "gbis/baseline/component_pack.hpp"

#include <algorithm>

#include "gbis/graph/ops.hpp"

namespace gbis {

ComponentPacking pack_components(const Graph& g, Rng& rng) {
  const std::uint32_t n = g.num_vertices();
  ComponentPacking packing;
  packing.sides.assign(n, 0);
  if (n < 2) {
    packing.perfect = true;
    return packing;
  }
  const std::uint32_t target = n / 2;

  const Components comps = connected_components(g);
  const std::vector<std::uint32_t> sizes = comps.sizes();
  const std::uint32_t count = comps.count;

  // Subset-sum over component sizes toward `target`.
  std::vector<std::uint8_t> reach(target + 1, 0);
  reach[0] = 1;
  std::vector<std::vector<std::uint8_t>> took(
      count, std::vector<std::uint8_t>(target + 1, 0));
  for (std::uint32_t c = 0; c < count; ++c) {
    const std::uint32_t s = sizes[c];
    for (std::uint32_t j = target; j + 1 > s; --j) {
      if (!reach[j] && reach[j - s]) {
        reach[j] = 1;
        took[c][j] = 1;
      }
    }
  }
  std::uint32_t best_sum = target;
  while (!reach[best_sum]) --best_sum;
  packing.perfect = best_sum == target;

  // Mark the chosen components as side 1.
  std::vector<std::uint8_t> on_side1(count, 0);
  {
    std::uint32_t j = best_sum;
    for (std::uint32_t c = count; c-- > 0;) {
      if (took[c][j]) {
        on_side1[c] = 1;
        j -= sizes[c];
      }
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (on_side1[comps.label[v]]) packing.sides[v] = 1;
  }
  if (packing.perfect) return packing;

  // Top up side 1 with a BFS-grown region from the largest unchosen
  // component that can donate `remainder` vertices (one always exists:
  // otherwise adding it whole would have improved best_sum).
  const std::uint32_t remainder = target - best_sum;
  std::uint32_t donor = count;
  for (std::uint32_t c = 0; c < count; ++c) {
    if (!on_side1[c] && sizes[c] > remainder &&
        (donor == count || sizes[c] > sizes[donor])) {
      donor = c;
    }
  }
  // BFS from a random seed inside the donor, flipping `remainder`
  // vertices (a connected chunk keeps the induced cut small).
  std::vector<Vertex> members;
  for (Vertex v = 0; v < n; ++v) {
    if (comps.label[v] == donor) members.push_back(v);
  }
  const Vertex seed =
      members[static_cast<std::size_t>(rng.below(members.size()))];
  std::vector<std::uint8_t> visited(n, 0);
  std::vector<Vertex> queue{seed};
  visited[seed] = 1;
  std::uint32_t taken = 0;
  for (std::size_t head = 0; head < queue.size() && taken < remainder;
       ++head) {
    const Vertex v = queue[head];
    packing.sides[v] = 1;
    ++taken;
    for (Vertex w : g.neighbors(v)) {
      if (!visited[w]) {
        visited[w] = 1;
        queue.push_back(w);
      }
    }
  }
  return packing;
}

Bisection component_pack_bisection(const Graph& g, Rng& rng) {
  ComponentPacking packing = pack_components(g, rng);
  return Bisection(g, std::move(packing.sides));
}

}  // namespace gbis
