// Plain iterative improvement ("neighborhood search") — the technique
// the paper's section II presents as simulated annealing's ancestor:
// "an initial solution is repeatedly improved by making small local
// changes until no such alteration yields a better solution", whose
// weakness ("stopping at a local, but not global, optimum") SA's
// uphill moves exist to fix. In the Kirkpatrick analogy this is the
// "extremely rapid quenching from high temperature to zero".
//
// Neighborhood: opposite-side pair swaps (keeps the bisection exact).
// Accepting only strict improvements, in random order, to a local
// optimum — bench/obs_quench_vs_anneal quantifies the gap to SA.
#pragma once

#include <cstdint>

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the hill climber.
struct HillClimbOptions {
  /// Consecutive non-improving proposals before declaring a local
  /// optimum, as a multiple of |V| (exhaustive certainty would need
  /// O(|V|^2) probes; this is the standard stochastic cut-off).
  double patience_factor = 8.0;
  /// Hard cap on proposals; 0 = none.
  std::uint64_t max_proposals = 0;
};

/// Per-run diagnostics.
struct HillClimbStats {
  std::uint64_t proposals = 0;
  std::uint64_t improvements = 0;
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Descends `bisection` by random improving swaps until the patience
/// budget finds nothing better. Never worsens the cut; preserves
/// balance exactly.
HillClimbStats hill_climb(Bisection& bisection, Rng& rng,
                          const HillClimbOptions& options = {});

}  // namespace gbis
