// SplitMix64: a tiny, fast 64-bit generator used here exclusively to
// expand a single user seed into full generator states (Vigna's
// recommended seeding procedure for xoshiro-family generators).
#pragma once

#include <cstdint>

namespace gbis {

/// Stateless-step SplitMix64 seeder. Each call to next() advances the
/// internal counter by the golden-ratio increment and returns a fully
/// mixed 64-bit value. Quality is sufficient for state initialization.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value in the sequence.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace gbis
