// SplitMix64: a tiny, fast 64-bit generator used here exclusively to
// expand a single user seed into full generator states (Vigna's
// recommended seeding procedure for xoshiro-family generators).
#pragma once

#include <cstdint>

namespace gbis {

/// Stateless-step SplitMix64 seeder. Each call to next() advances the
/// internal counter by the golden-ratio increment and returns a fully
/// mixed 64-bit value. Quality is sufficient for state initialization.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value in the sequence.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// The `index`-th output (0-based) of the SplitMix64 stream seeded with
/// `seed`, computed in O(1) by jumping the additive counter. Because the
/// stream's state is `seed + i * gamma`, any position can be evaluated
/// directly — the property the parallel harness uses to give every
/// trial id its own independent seed without serializing draws.
constexpr std::uint64_t splitmix64_at(std::uint64_t seed,
                                      std::uint64_t index) noexcept {
  return SplitMix64(seed + index * 0x9e3779b97f4a7c15ULL).next();
}

}  // namespace gbis
