// Lagged Fibonacci generator, provided for historical fidelity: the
// paper's experiments used "a Fibonacci random number generator" on a
// VAX 780 (section IX). This is the classical additive lagged Fibonacci
// recurrence with Knuth's lags (55, 24):
//
//   X[i] = (X[i-55] + X[i-24]) mod 2^64
//
// Additive LFGs have known low-bit weaknesses; the library default is
// xoshiro256** (see Rng in rng.hpp). This engine exists so experiments
// can be run with an RNG of the same family the authors used.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gbis {

/// Additive lagged Fibonacci engine with lags (55, 24).
/// Satisfies std::uniform_random_bit_generator.
class LaggedFibonacci {
 public:
  using result_type = std::uint64_t;

  static constexpr int kLongLag = 55;
  static constexpr int kShortLag = 24;

  /// Seeds the 55-word state from a 64-bit seed via SplitMix64, then
  /// discards an initial warm-up run to decorrelate from the seeder.
  explicit LaggedFibonacci(std::uint64_t seed) noexcept;

  /// Advances the recurrence and returns the next 64-bit output.
  std::uint64_t next() noexcept;

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::array<std::uint64_t, kLongLag> state_{};
  int pos_ = 0;  // index of X[i-55]; X[i-24] is (pos_ + 55 - 24) mod 55
};

}  // namespace gbis
