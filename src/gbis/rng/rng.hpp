// Rng: the library-wide random source. Wraps a choice of engine
// (xoshiro256** by default, the paper-era lagged Fibonacci generator on
// request) behind unbiased integer/real distribution helpers.
//
// All stochastic components in gbis take an Rng& and never construct
// their own entropy, so every experiment is reproducible from a single
// 64-bit seed.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "gbis/rng/fibonacci.hpp"
#include "gbis/rng/xoshiro.hpp"

namespace gbis {

/// Which underlying engine an Rng advances.
enum class RngEngine {
  kXoshiro,    ///< xoshiro256** (library default)
  kFibonacci,  ///< additive lagged Fibonacci (paper-era family)
};

/// Seedable random source with unbiased helpers. Satisfies
/// std::uniform_random_bit_generator so it also works with <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs an xoshiro256**-backed source from a seed.
  explicit Rng(std::uint64_t seed) : Rng(RngEngine::kXoshiro, seed) {}

  /// Constructs a source backed by the given engine.
  Rng(RngEngine engine, std::uint64_t seed)
      : engine_(engine), xoshiro_(seed), fibonacci_(seed) {}

  /// Raw 64 random bits.
  std::uint64_t next() {
    return engine_ == RngEngine::kXoshiro ? xoshiro_.next()
                                          : fibonacci_.next();
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  RngEngine engine() const { return engine_; }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    assert(bound > 0);
    using u128 = unsigned __int128;
    std::uint64_t x = next();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const auto width =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    // width == 0 means the full 64-bit range: no rejection needed.
    const std::uint64_t draw = (width == 0) ? next() : below(width);
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
  }

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double real01() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return real01() < p;
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Chooses k distinct indices from [0, n) uniformly at random
  /// (partial Fisher-Yates; O(n) space, O(k) swaps). Requires k <= n.
  std::vector<std::uint32_t> sample_indices(std::uint32_t n,
                                            std::uint32_t k) {
    assert(k <= n);
    std::vector<std::uint32_t> pool(n);
    for (std::uint32_t i = 0; i < n; ++i) pool[i] = i;
    for (std::uint32_t i = 0; i < k; ++i) {
      const auto j =
          i + static_cast<std::uint32_t>(below(static_cast<std::uint64_t>(n - i)));
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// Derives an independent child source (for parallel or per-instance
  /// streams) by mixing a stream index into fresh output.
  Rng spawn(std::uint64_t stream) {
    return Rng(engine_, next() ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  }

 private:
  RngEngine engine_;
  Xoshiro256ss xoshiro_;
  LaggedFibonacci fibonacci_;
};

}  // namespace gbis
