// xoshiro256**: the library's default pseudo-random engine.
// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
// generators" (2018). Self-contained implementation; no std::mt19937
// dependency so streams are identical across platforms and compilers.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace gbis {

/// xoshiro256** engine. Satisfies std::uniform_random_bit_generator.
/// Period 2^256 - 1; passes BigCrush. State is seeded from a single
/// 64-bit value via SplitMix64.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from a single 64-bit seed.
  explicit Xoshiro256ss(std::uint64_t seed) noexcept;

  /// Advances the engine and returns the next 64-bit output.
  std::uint64_t next() noexcept;

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Jump function: advances the stream by 2^128 steps. Used to derive
  /// independent substreams from one seed (one jump per substream).
  void jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace gbis
