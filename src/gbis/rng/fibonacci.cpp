#include "gbis/rng/fibonacci.hpp"

#include "gbis/rng/splitmix.hpp"

namespace gbis {

LaggedFibonacci::LaggedFibonacci(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  bool any_odd = false;
  for (auto& word : state_) {
    word = sm.next();
    any_odd = any_odd || (word & 1ULL);
  }
  // The additive recurrence preserves all-even states forever; force at
  // least one odd word so every bit position has full period.
  if (!any_odd) state_[0] |= 1ULL;
  for (int i = 0; i < 10 * kLongLag; ++i) next();
}

std::uint64_t LaggedFibonacci::next() noexcept {
  const int short_pos = pos_ + (kLongLag - kShortLag) >= kLongLag
                            ? pos_ - kShortLag
                            : pos_ + (kLongLag - kShortLag);
  const std::uint64_t value = state_[pos_] + state_[short_pos];
  state_[pos_] = value;
  pos_ = (pos_ + 1 == kLongLag) ? 0 : pos_ + 1;
  return value;
}

}  // namespace gbis
