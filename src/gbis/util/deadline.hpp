// Cooperative per-run deadlines for the refinement step loops. A
// Deadline is a tiny copyable handle (a steady_clock expiry or
// "unlimited") that KlOptions/SaOptions/FmOptions carry into their
// pass/temperature/step loops; the loops poll it at throttled
// intervals and throw DeadlineExceeded when it has passed. The trial
// runner turns that exception into a `timed_out` trial status instead
// of letting one hung schedule poison a whole campaign.
//
// The checks are cooperative: a method that never polls (greedy,
// spectral, random — all bounded-time anyway) is not interruptible.
#pragma once

#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

namespace gbis {

/// Thrown by step loops (and the injected-hang fault) when a Deadline
/// expires. Derives from std::runtime_error so un-aware callers still
/// see an ordinary error; the trial runner catches it first and maps
/// it to TrialStatus::kTimedOut.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded() : std::runtime_error("deadline exceeded") {}
  explicit DeadlineExceeded(const std::string& what)
      : std::runtime_error(what) {}
};

/// Wall-clock deadline handle. Default-constructed deadlines never
/// expire, so option structs can embed one with zero overhead until a
/// caller opts in via Deadline::after().
class Deadline {
 public:
  /// Unlimited: expired() is always false.
  Deadline() = default;

  /// Expires `seconds` of wall clock from now. seconds <= 0 expires
  /// immediately (useful in tests).
  static Deadline after(double seconds) {
    Deadline d;
    d.unlimited_ = false;
    d.expiry_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    return d;
  }

  bool unlimited() const { return unlimited_; }

  bool expired() const {
    return !unlimited_ && std::chrono::steady_clock::now() >= expiry_;
  }

  /// Seconds left; +infinity when unlimited, <= 0 when expired.
  double remaining_seconds() const {
    if (unlimited_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(expiry_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

  /// Throws DeadlineExceeded if expired. The polling primitive the
  /// step loops call (throttled — a steady_clock read per call).
  void check() const {
    if (expired()) throw DeadlineExceeded();
  }

 private:
  bool unlimited_ = true;
  std::chrono::steady_clock::time_point expiry_{};
};

}  // namespace gbis
