#include "gbis/util/json_lite.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gbis {

namespace {

constexpr std::size_t npos = std::string::npos;
/// Nesting bound for skipped object/array values. The protocol is
/// flat; the checkpoint journal nests at most object -> array ->
/// array. Anything deeper is hostile input.
constexpr int kMaxDepth = 8;

std::size_t skip_ws(const std::string& line, std::size_t i) {
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  return i;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Consumes a string token starting at the opening quote; returns the
/// index one past the closing quote, or npos when the token is
/// unterminated, contains a raw control character, or carries a \u
/// escape without four hex digits. Escaped characters other than u are
/// skipped without validation here — json_parse_string enforces the
/// legal escape set when a string is actually decoded.
std::size_t skip_string_token(const std::string& line, std::size_t i) {
  ++i;  // opening quote
  while (i < line.size()) {
    const unsigned char c = static_cast<unsigned char>(line[i]);
    if (c == '"') return i + 1;
    if (c < 0x20) return npos;
    if (c == '\\') {
      if (i + 1 >= line.size()) return npos;
      if (line[i + 1] == 'u') {
        if (i + 5 >= line.size()) return npos;
        for (std::size_t d = i + 2; d < i + 6; ++d) {
          if (hex_digit(line[d]) < 0) return npos;
        }
        i += 6;
      } else {
        i += 2;
      }
    } else {
      ++i;
    }
  }
  return npos;
}

bool is_scalar_char(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
         (c >= 'A' && c <= 'Z') || c == '+' || c == '-' || c == '.';
}

/// Consumes a strictly-grammatical JSON number; npos when the token
/// does not match `-?int frac? exp?`.
std::size_t skip_number_strict(const std::string& line, std::size_t i) {
  if (i < line.size() && line[i] == '-') ++i;
  const std::size_t int_start = i;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
  if (i == int_start) return npos;
  // JSON int part: "0" or [1-9][0-9]* — no leading zeros.
  if (line[int_start] == '0' && i - int_start > 1) return npos;
  if (i < line.size() && line[i] == '.') {
    ++i;
    const std::size_t frac_start = i;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
    if (i == frac_start) return npos;
  }
  if (i < line.size() && (line[i] == 'e' || line[i] == 'E')) {
    ++i;
    if (i < line.size() && (line[i] == '+' || line[i] == '-')) ++i;
    const std::size_t exp_start = i;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') ++i;
    if (i == exp_start) return npos;
  }
  return i;
}

std::size_t skip_value(const std::string& line, std::size_t i, int depth,
                       bool strict);

/// Consumes `{...}` (want == '}') or `[...]` (want == ']') including
/// the closing bracket; npos on malformed contents.
std::size_t skip_container(const std::string& line, std::size_t i, int depth,
                           bool strict, char want) {
  if (depth >= kMaxDepth) return npos;
  i = skip_ws(line, i + 1);  // past the opening bracket
  if (i < line.size() && line[i] == want) return i + 1;
  while (i < line.size()) {
    if (want == '}') {  // object member: "key" : value
      if (line[i] != '"') return npos;
      i = skip_string_token(line, i);
      if (i == npos) return npos;
      i = skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') return npos;
      i = skip_ws(line, i + 1);
    }
    i = skip_value(line, i, depth + 1, strict);
    if (i == npos) return npos;
    i = skip_ws(line, i);
    if (i >= line.size()) return npos;
    if (line[i] == want) return i + 1;
    if (line[i] != ',') return npos;
    i = skip_ws(line, i + 1);
  }
  return npos;
}

std::size_t skip_value(const std::string& line, std::size_t i, int depth,
                       bool strict) {
  if (i >= line.size()) return npos;
  const char c = line[i];
  if (c == '"') return skip_string_token(line, i);
  if (c == '{') return skip_container(line, i, depth, strict, '}');
  if (c == '[') return skip_container(line, i, depth, strict, ']');
  if (strict) {
    if (line.compare(i, 4, "true") == 0) return i + 4;
    if (line.compare(i, 5, "false") == 0) return i + 5;
    if (line.compare(i, 4, "null") == 0) return i + 4;
    return skip_number_strict(line, i);
  }
  // Lenient scalar: any bare token (numbers, literals, historical
  // journal oddities like inf). At least one character.
  const std::size_t start = i;
  while (i < line.size() && is_scalar_char(line[i])) ++i;
  return i > start ? i : npos;
}

/// The shared top-level walk: visits each `"key": value` member of the
/// line's object in order. Returns the value index for `key` (first
/// occurrence), or npos when the key is absent / the line is broken.
/// With strict == true additionally requires the object to close and
/// the line to end in whitespace (the json_object_valid path, called
/// with key == nullptr).
std::size_t scan_object(const std::string& line, const std::string* key,
                        bool strict) {
  std::size_t i = skip_ws(line, 0);
  if (i >= line.size() || line[i] != '{') return npos;
  i = skip_ws(line, i + 1);
  if (i < line.size() && line[i] == '}') {
    if (!strict) return npos;
    return skip_ws(line, i + 1) == line.size() ? 0 : npos;
  }
  while (i < line.size()) {
    if (line[i] != '"') return npos;
    const std::size_t key_start = i + 1;
    i = skip_string_token(line, i);
    if (i == npos) return npos;
    const std::size_t key_len = i - 1 - key_start;
    i = skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return npos;
    i = skip_ws(line, i + 1);
    if (key != nullptr && line.compare(key_start, key_len, *key) == 0) {
      return i;
    }
    i = skip_value(line, i, 1, strict);
    if (i == npos) return npos;
    i = skip_ws(line, i);
    if (i >= line.size()) return npos;
    if (line[i] == '}') {
      if (!strict) return npos;  // key not found in a well-formed line
      return skip_ws(line, i + 1) == line.size() ? 0 : npos;
    }
    if (line[i] != ',') return npos;
    i = skip_ws(line, i + 1);
  }
  return npos;
}

/// Encodes one Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Parses the four hex digits after `\u`; false on truncation or any
/// non-hex digit (the old strtoul path parsed "ZZZZ" as 0, silently
/// embedding a NUL).
bool parse_u_escape(const std::string& line, std::size_t i,
                    std::uint32_t& out) {
  if (i + 4 > line.size()) return false;
  std::uint32_t value = 0;
  for (std::size_t d = 0; d < 4; ++d) {
    const int digit = hex_digit(line[i + d]);
    if (digit < 0) return false;
    value = (value << 4) | static_cast<std::uint32_t>(digit);
  }
  out = value;
  return true;
}

}  // namespace

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char raw : value) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

std::size_t json_find_value(const std::string& line, const std::string& key) {
  return scan_object(line, &key, /*strict=*/false);
}

bool json_object_valid(const std::string& line) {
  return scan_object(line, nullptr, /*strict=*/true) != npos;
}

bool json_parse_string(const std::string& line, const std::string& key,
                       std::string& out) {
  std::size_t i = json_find_value(line, key);
  if (i == npos || i >= line.size() || line[i] != '"') return false;
  ++i;
  std::string result;
  while (i < line.size()) {
    const unsigned char c = static_cast<unsigned char>(line[i]);
    if (c == '"') {
      out = std::move(result);
      return true;
    }
    if (c < 0x20) return false;  // raw control character
    if (c != '\\') {
      result += line[i++];
      continue;
    }
    if (i + 1 >= line.size()) return false;  // dangling backslash
    const char esc = line[i + 1];
    switch (esc) {
      case '"': result += '"'; i += 2; break;
      case '\\': result += '\\'; i += 2; break;
      case '/': result += '/'; i += 2; break;
      case 'b': result += '\b'; i += 2; break;
      case 'f': result += '\f'; i += 2; break;
      case 'n': result += '\n'; i += 2; break;
      case 'r': result += '\r'; i += 2; break;
      case 't': result += '\t'; i += 2; break;
      case 'u': {
        std::uint32_t cp = 0;
        if (!parse_u_escape(line, i + 2, cp)) return false;
        i += 6;
        if (cp >= 0xDC00 && cp <= 0xDFFF) return false;  // lone low
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: require the paired \uDC00..\uDFFF.
          std::uint32_t low = 0;
          if (i + 1 >= line.size() || line[i] != '\\' || line[i + 1] != 'u' ||
              !parse_u_escape(line, i + 2, low) ||
              low < 0xDC00 || low > 0xDFFF) {
            return false;
          }
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          i += 6;
        }
        append_utf8(result, cp);
        break;
      }
      default: return false;  // not a JSON escape
    }
  }
  return false;  // unterminated string
}

bool json_parse_u64(const std::string& line, const std::string& key,
                    std::uint64_t& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == npos || i >= line.size()) return false;
  // strtoull itself accepts a leading '-' and wraps ({"budget":-1}
  // would parse as 2^64-1) and a non-JSON '+': reject both up front.
  if (line[i] == '-' || line[i] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(line.c_str() + i, &end, 10);
  if (end == line.c_str() + i || errno == ERANGE) return false;
  out = value;
  return true;
}

bool json_parse_i64(const std::string& line, const std::string& key,
                    std::int64_t& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == npos || i >= line.size()) return false;
  if (line[i] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const std::int64_t value = std::strtoll(line.c_str() + i, &end, 10);
  if (end == line.c_str() + i || errno == ERANGE) return false;
  out = value;
  return true;
}

bool json_parse_double(const std::string& line, const std::string& key,
                       double& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == npos || i >= line.size()) return false;
  if (line[i] == '+') return false;
  char* end = nullptr;
  const double value = std::strtod(line.c_str() + i, &end);
  // Overflow saturates to +/-inf and strtod also accepts literal
  // inf/nan tokens; none of those are JSON numbers.
  if (end == line.c_str() + i || !std::isfinite(value)) return false;
  out = value;
  return true;
}

bool json_parse_bool(const std::string& line, const std::string& key,
                     bool& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == npos) return false;
  if (line.compare(i, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(i, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

bool json_parse_u64_array(const std::string& line, const std::string& key,
                          std::vector<std::uint64_t>& out,
                          std::size_t max_elements) {
  std::size_t i = json_find_value(line, key);
  if (i == npos || i >= line.size() || line[i] != '[') return false;
  std::vector<std::uint64_t> result;
  i = skip_ws(line, i + 1);
  if (i < line.size() && line[i] == ']') {
    out = std::move(result);
    return true;
  }
  while (i < line.size()) {
    // Strict element grammar first (rejects signs, leading zeros,
    // floats, exponents), then the bounded-range decode.
    const std::size_t end = skip_number_strict(line, i);
    if (end == npos || line[i] == '-') return false;
    if (line.find_first_of(".eE", i) < end) return false;
    if (result.size() >= max_elements) return false;
    errno = 0;
    char* parse_end = nullptr;
    const std::uint64_t value = std::strtoull(line.c_str() + i, &parse_end, 10);
    if (parse_end != line.c_str() + end || errno == ERANGE) return false;
    result.push_back(value);
    i = skip_ws(line, end);
    if (i >= line.size()) return false;  // unterminated array
    if (line[i] == ']') {
      out = std::move(result);
      return true;
    }
    if (line[i] != ',') return false;
    i = skip_ws(line, i + 1);
  }
  return false;
}

JsonEnumStatus json_parse_enum(const std::string& line,
                               const std::string& key,
                               const char* const* allowed, std::size_t count,
                               std::string& out) {
  if (json_find_value(line, key) == npos) return JsonEnumStatus::kAbsent;
  std::string value;
  if (!json_parse_string(line, key, value)) {
    out.clear();  // present but not a string — nothing quotable
    return JsonEnumStatus::kInvalid;
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (value == allowed[i]) {
      out = std::move(value);
      return JsonEnumStatus::kValid;
    }
  }
  out = std::move(value);
  return JsonEnumStatus::kInvalid;
}

std::string to_hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

bool parse_hex16(const std::string& text, std::uint64_t& out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

}  // namespace gbis
