#include "gbis/util/json_lite.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gbis {

void append_json_string(std::string& out, const std::string& value) {
  out += '"';
  for (const char raw : value) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

std::size_t json_find_value(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

bool json_parse_string(const std::string& line, const std::string& key,
                       std::string& out) {
  std::size_t i = json_find_value(line, key);
  if (i == std::string::npos || i >= line.size() || line[i] != '"') {
    return false;
  }
  ++i;
  out.clear();
  while (i < line.size() && line[i] != '"') {
    if (line[i] == '\\' && i + 1 < line.size()) {
      const char esc = line[i + 1];
      switch (esc) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (i + 5 < line.size()) {
            out += static_cast<char>(
                std::strtoul(line.substr(i + 2, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += esc;
      }
      i += 2;
    } else {
      out += line[i++];
    }
  }
  return i < line.size();  // must end on the closing quote
}

bool json_parse_u64(const std::string& line, const std::string& key,
                    std::uint64_t& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == std::string::npos) return false;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(line.c_str() + i, &end, 10);
  if (end == line.c_str() + i) return false;
  out = value;
  return true;
}

bool json_parse_i64(const std::string& line, const std::string& key,
                    std::int64_t& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == std::string::npos) return false;
  char* end = nullptr;
  const std::int64_t value = std::strtoll(line.c_str() + i, &end, 10);
  if (end == line.c_str() + i) return false;
  out = value;
  return true;
}

bool json_parse_double(const std::string& line, const std::string& key,
                       double& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == std::string::npos) return false;
  char* end = nullptr;
  const double value = std::strtod(line.c_str() + i, &end);
  if (end == line.c_str() + i) return false;
  out = value;
  return true;
}

bool json_parse_bool(const std::string& line, const std::string& key,
                     bool& out) {
  const std::size_t i = json_find_value(line, key);
  if (i == std::string::npos) return false;
  if (line.compare(i, 4, "true") == 0) {
    out = true;
    return true;
  }
  if (line.compare(i, 5, "false") == 0) {
    out = false;
    return true;
  }
  return false;
}

std::string to_hex16(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace gbis
