// Minimal flat-JSON helpers shared by every NDJSON surface in gbis —
// the checkpoint journal (harness/checkpoint.*) and the service
// protocol (svc/protocol.*). This is deliberately not a JSON library:
// every producer in this repo emits one flat object per line with
// known keys, so the consumers scan for `"key":` and parse the value
// token in place, no DOM, no allocation beyond the output string.
//
// Scanner contract (the same one the checkpoint journal has always
// had): keys are located by their first `"key":` occurrence, so a
// *string value* containing a properly-escaped key sequence cannot
// spoof a field (the escaping backslashes break the needle), but
// consumers should still emit free-form text fields (error messages,
// payloads) after the scalar fields they scan for.
#pragma once

#include <cstdint>
#include <string>

namespace gbis {

/// Appends `value` as a JSON string literal (quotes included) with
/// ", \, and control characters escaped.
void append_json_string(std::string& out, const std::string& value);

/// Finds `"key":` in a flat one-line JSON object and returns the index
/// of the raw value token, or std::string::npos.
std::size_t json_find_value(const std::string& line, const std::string& key);

/// Parses a string field; handles \n \r \t \uXXXX and escaped quotes.
/// Returns false when the key is missing or the value is not a
/// well-terminated string.
bool json_parse_string(const std::string& line, const std::string& key,
                       std::string& out);

/// Scalar field parsers: false when the key is missing or the value
/// token does not parse. `out` is untouched on failure.
bool json_parse_u64(const std::string& line, const std::string& key,
                    std::uint64_t& out);
bool json_parse_i64(const std::string& line, const std::string& key,
                    std::int64_t& out);
bool json_parse_double(const std::string& line, const std::string& key,
                       double& out);
/// Accepts the literals `true` / `false` only.
bool json_parse_bool(const std::string& line, const std::string& key,
                     bool& out);

/// 16-digit zero-padded lower-case hex (the fingerprint wire format).
std::string to_hex16(std::uint64_t value);

}  // namespace gbis
