// Minimal flat-JSON helpers shared by every NDJSON surface in gbis —
// the checkpoint journal (harness/checkpoint.*) and the service
// protocol (svc/protocol.*). This is deliberately not a JSON library:
// every producer in this repo emits one flat object per line with
// known keys, so the consumers scan for keys and parse the value
// token in place, no DOM, no allocation beyond the output string.
//
// Scanner contract: json_find_value walks the line as a token stream —
// string tokens are consumed whole (escapes included), nested
// object/array values are skipped atomically — so only *top-level
// keys* of the line's object can match, and text embedded inside a
// string value can never spoof a field. When the same key appears
// twice at the top level, the first occurrence wins. Keys are compared
// on their raw bytes between the quotes (no unescaping): the keys this
// repo emits are plain identifiers, and a key smuggled in via \u
// escapes deliberately does not match.
//
// The scanner is lenient about *scalar* token contents (any bare
// token of [0-9A-Za-z .+-] is skipped) so that historical journal
// lines keep parsing; json_object_valid is the strict structural
// check the socket-facing protocol layer runs first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gbis {

/// Appends `value` as a JSON string literal (quotes included) with
/// ", \, and control characters escaped.
void append_json_string(std::string& out, const std::string& value);

/// Finds top-level key `key` in a flat one-line JSON object and
/// returns the index of its raw value token (whitespace after the
/// colon skipped), or std::string::npos when the key is absent or the
/// line is structurally broken before the key appears.
std::size_t json_find_value(const std::string& line, const std::string& key);

/// Strict structural check for one request line: a single JSON object,
/// string keys, values that are strings (with valid escapes — \uXXXX
/// must carry four hex digits), strictly-grammatical numbers,
/// true/false/null, or nested objects/arrays (depth-capped), and
/// nothing but whitespace after the closing brace. The socket protocol
/// runs this before any field scan so malformed input fails loudly
/// instead of misparsing.
bool json_object_valid(const std::string& line);

/// Parses a string field. Handles the full JSON escape set
/// (\" \\ \/ \b \f \n \r \t \uXXXX, surrogate pairs included; non-BMP
/// and non-ASCII code points are emitted as UTF-8). Returns false when
/// the key is missing, the value is not a well-terminated string, or
/// any escape is malformed — a truncated or non-hex \u sequence fails
/// the parse instead of silently embedding garbage.
bool json_parse_string(const std::string& line, const std::string& key,
                       std::string& out);

/// Scalar field parsers: false when the key is missing or the value
/// token does not parse. `out` is untouched on failure. Range errors
/// fail: a negative or overflowing value is rejected by json_parse_u64
/// (no strtoull wraparound), an out-of-range magnitude by
/// json_parse_i64, and a non-finite result by json_parse_double.
bool json_parse_u64(const std::string& line, const std::string& key,
                    std::uint64_t& out);
bool json_parse_i64(const std::string& line, const std::string& key,
                    std::int64_t& out);
bool json_parse_double(const std::string& line, const std::string& key,
                       double& out);
/// Accepts the literals `true` / `false` only.
bool json_parse_bool(const std::string& line, const std::string& key,
                     bool& out);

/// Parses a flat array of unsigned integers: `[1,2,3]` (or `[]`).
/// Strict element validation: every element must be a grammatical
/// non-negative JSON integer (no signs, no leading zeros, no floats,
/// no nested containers or strings), and the array must hold at most
/// `max_elements` entries — anything else returns false with `out`
/// untouched. Quote/escape-aware like every scanner here: a "[...]"
/// embedded in a string value can never match. The mutate op's edit
/// batches are the first consumer (docs/SERVICE.md).
bool json_parse_u64_array(const std::string& line, const std::string& key,
                          std::vector<std::uint64_t>& out,
                          std::size_t max_elements);

/// How a string-enum field parsed (json_parse_enum).
enum class JsonEnumStatus : std::uint8_t {
  kAbsent = 0,  ///< key not present; caller applies its default
  kValid,       ///< value is one of the allowed names; `out` holds it
  kInvalid,     ///< present but wrong type or unknown name — a parse
                ///  error, never a silent default
};

/// Strict closed-vocabulary string field: when `key` is present its
/// value must be a JSON string equal to one of the `count` names in
/// `allowed`. On kValid `out` receives the name; on kInvalid `out`
/// receives the offending string when the value at least parsed as a
/// string (so error messages can quote it) and "" when it was not a
/// string at all. Protocol enums ("quality", stats "format") route
/// through this so present-but-invalid fails loudly.
JsonEnumStatus json_parse_enum(const std::string& line,
                               const std::string& key,
                               const char* const* allowed, std::size_t count,
                               std::string& out);

/// 16-digit zero-padded lower-case hex (the fingerprint wire format).
std::string to_hex16(std::uint64_t value);

/// Strict inverse of to_hex16: exactly 16 lower-case hex digits, no
/// prefix, no sign. The lenient strtoull would accept "0x...", signs,
/// and short strings — all of which should fail a fingerprint
/// reference or a CRC-guarded journal field instead.
bool parse_hex16(const std::string& text, std::uint64_t& out);

}  // namespace gbis
