// Partition quality metrics beyond the raw cut: the quantities later
// partitioning literature standardized (conductance, expansion) plus
// paper-specific ratios (cut relative to the expected random cut, the
// yardstick section IV uses to dismiss the Gnp model).
#pragma once

#include "gbis/partition/bisection.hpp"

namespace gbis {

/// Quality summary of a bisection.
struct BisectionMetrics {
  Weight cut = 0;
  /// cut / min(vol(A), vol(B)) where vol is total weighted degree;
  /// 0 when a side has no incident edge weight.
  double conductance = 0.0;
  /// cut / min(|A|, |B|) (vertex-count expansion); 0 for an empty side.
  double expansion = 0.0;
  /// cut divided by the expected cut of a uniformly random balanced
  /// bisection; < 1 means better than random. 0 when the graph has no
  /// edges.
  double vs_random = 0.0;
};

/// Computes all metrics for the current state of `bisection`.
BisectionMetrics bisection_metrics(const Bisection& bisection);

}  // namespace gbis
