#include "gbis/partition/metrics.hpp"

#include <algorithm>

#include "gbis/baseline/random_bisect.hpp"

namespace gbis {

BisectionMetrics bisection_metrics(const Bisection& bisection) {
  const Graph& g = bisection.graph();
  BisectionMetrics m;
  m.cut = bisection.cut();

  Weight volume[2] = {0, 0};
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    volume[bisection.side(v)] += g.weighted_degree(v);
  }
  const Weight min_volume = std::min(volume[0], volume[1]);
  if (min_volume > 0) {
    m.conductance =
        static_cast<double>(m.cut) / static_cast<double>(min_volume);
  }

  const std::uint32_t min_count =
      std::min(bisection.side_count(0), bisection.side_count(1));
  if (min_count > 0) {
    m.expansion = static_cast<double>(m.cut) / min_count;
  }

  const double random_cut = expected_random_cut(g);
  if (random_cut > 0.0) {
    m.vs_random = static_cast<double>(m.cut) / random_cut;
  }
  return m;
}

}  // namespace gbis
