// FM-style gain buckets: a doubly-linked bucket list keyed by gain,
// supporting O(1) insert/remove/update and O(range) max queries.
// Shared by the Kernighan-Lin pair-selection scan and the
// Fiduccia-Mattheyses refinement loop.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Buckets over gains in [-max_gain, +max_gain] holding vertex ids.
/// All operations are O(1) except max_gain_present(), which amortizes
/// to O(1) across a monotone sequence of extractions but is O(range)
/// worst case after arbitrary updates.
class GainBuckets {
 public:
  /// Creates empty buckets for vertices in [0, capacity) and gains in
  /// [-max_gain, +max_gain].
  GainBuckets(std::uint32_t capacity, Weight max_gain)
      : max_gain_(max_gain),
        head_(static_cast<std::size_t>(2 * max_gain + 1), kNil),
        next_(capacity, kNil),
        prev_(capacity, kNil),
        gain_(capacity, 0),
        present_(capacity, 0) {}

  /// Highest gain with a nonempty bucket; kEmpty if none.
  static constexpr Weight kEmpty = std::numeric_limits<Weight>::min();
  Weight max_gain_present() const {
    for (Weight g = cursor_; g >= -max_gain_; --g) {
      if (head_[index(g)] != kNil) {
        cursor_ = g;
        return g;
      }
    }
    cursor_ = -max_gain_;
    return kEmpty;
  }

  bool contains(Vertex v) const { return present_[v] != 0; }

  Weight gain(Vertex v) const {
    assert(present_[v]);
    return gain_[v];
  }

  /// First vertex in the bucket for `g`; kNil if empty.
  static constexpr std::int64_t kNil = -1;
  std::int64_t bucket_head(Weight g) const { return head_[index(g)]; }

  /// Next vertex after v within its bucket; kNil at the end.
  std::int64_t bucket_next(Vertex v) const { return next_[v]; }

  void insert(Vertex v, Weight g) {
    assert(!present_[v]);
    assert(g >= -max_gain_ && g <= max_gain_);
    const std::size_t idx = index(g);
    next_[v] = head_[idx];
    prev_[v] = kNil;
    if (head_[idx] != kNil) prev_[static_cast<Vertex>(head_[idx])] = v;
    head_[idx] = v;
    gain_[v] = g;
    present_[v] = 1;
    if (g > cursor_) cursor_ = g;
  }

  void remove(Vertex v) {
    assert(present_[v]);
    const std::size_t idx = index(gain_[v]);
    if (prev_[v] != kNil) {
      next_[static_cast<Vertex>(prev_[v])] = next_[v];
    } else {
      head_[idx] = next_[v];
    }
    if (next_[v] != kNil) prev_[static_cast<Vertex>(next_[v])] = prev_[v];
    present_[v] = 0;
  }

  /// Moves v to a new gain bucket (no-op if unchanged).
  void update(Vertex v, Weight g) {
    assert(present_[v]);
    if (gain_[v] == g) return;
    remove(v);
    insert(v, g);
  }

  bool empty() const { return max_gain_present() == kEmpty; }

  /// The configured gain bound: valid gains are [-max_gain(), max_gain()].
  Weight max_gain() const { return max_gain_; }

 private:
  std::size_t index(Weight g) const {
    assert(g >= -max_gain_ && g <= max_gain_);
    return static_cast<std::size_t>(g + max_gain_);
  }

  Weight max_gain_;
  mutable Weight cursor_ = 0;  // descending search hint
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> next_;
  std::vector<std::int64_t> prev_;
  std::vector<Weight> gain_;
  std::vector<std::uint8_t> present_;
};

}  // namespace gbis
