#include "gbis/partition/balance.hpp"

#include <queue>
#include <utility>
#include <vector>

namespace gbis {

std::uint32_t rebalance(Bisection& bisection) {
  std::uint32_t moved = 0;
  if (bisection.is_balanced()) return moved;

  const Graph& g = bisection.graph();
  const int heavy = bisection.side_count(0) >= bisection.side_count(1) ? 0 : 1;

  // Lazy-deletion max-heap of (gain, vertex) over the heavy side.
  // Entries go stale as moves change gains; each pop is re-validated
  // against the live gain.
  using Entry = std::pair<Weight, Vertex>;
  std::priority_queue<Entry> heap;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (bisection.side(v) == heavy) heap.emplace(bisection.gain(v), v);
  }

  while (!bisection.is_balanced() && !heap.empty()) {
    const auto [stale_gain, v] = heap.top();
    heap.pop();
    if (bisection.side(v) != heavy) continue;  // already moved
    const Weight live_gain = bisection.gain(v);
    if (live_gain != stale_gain) {
      heap.emplace(live_gain, v);  // reinsert with the fresh key
      continue;
    }
    bisection.move(v);
    ++moved;
  }
  return moved;
}

}  // namespace gbis
