#include "gbis/partition/gains.hpp"

namespace gbis {

std::vector<Weight> all_gains(const Bisection& bisection) {
  const Graph& g = bisection.graph();
  std::vector<Weight> gains(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    gains[v] = bisection.gain(v);
  }
  return gains;
}

Weight pair_gain(const Graph& g, Vertex a, Vertex b, Weight gain_a,
                 Weight gain_b) {
  return gain_a + gain_b - 2 * g.edge_weight(a, b);
}

void update_gains_after_swap(const Graph& g,
                             const std::vector<std::uint8_t>& sides, Vertex a,
                             Vertex b, std::vector<Weight>& gains) {
  const std::uint8_t side_a = sides[a];
  {
    const auto nbrs = g.neighbors(a);
    const auto wts = g.edge_weights(a);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Vertex x = nbrs[i];
      if (x == b) continue;
      // a leaves x's side (or arrives at it): same-side neighbors of a
      // gain an external edge; opposite-side neighbors lose one.
      gains[x] += (sides[x] == side_a) ? 2 * wts[i] : -2 * wts[i];
    }
  }
  {
    const auto nbrs = g.neighbors(b);
    const auto wts = g.edge_weights(b);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Vertex y = nbrs[i];
      if (y == a) continue;
      gains[y] += (sides[y] != side_a) ? 2 * wts[i] : -2 * wts[i];
    }
  }
}

void update_gains_after_move(const Graph& g,
                             const std::vector<std::uint8_t>& sides, Vertex v,
                             std::vector<Weight>& gains) {
  const std::uint8_t side_v = sides[v];
  const auto nbrs = g.neighbors(v);
  const auto wts = g.edge_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const Vertex x = nbrs[i];
    gains[x] += (sides[x] == side_v) ? 2 * wts[i] : -2 * wts[i];
  }
  gains[v] = -gains[v];
}

}  // namespace gbis
