// Bisection: a two-way partition of a graph's vertices with
// incrementally maintained cut weight and per-side totals.
//
// This is the common state object every algorithm in gbis manipulates.
// Moves and swaps update the cut in O(deg); recompute_cut() provides
// the from-scratch value for verification (tests assert the two always
// agree under arbitrary move sequences).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// A two-way vertex partition. Holds a reference to the graph, which
/// must outlive the Bisection.
class Bisection {
 public:
  /// Adopts an explicit side assignment (one entry per vertex, each 0
  /// or 1) and computes the cut. Throws std::invalid_argument on a size
  /// mismatch or an entry other than 0/1.
  Bisection(const Graph& g, std::vector<std::uint8_t> sides);

  /// Uniformly random split with ceil(n/2) vertices on side 0 — the
  /// "randomly generated initial bisection" of the paper's protocol.
  /// Balanced by vertex *count*; when vertex weights are uniform (every
  /// gbis contraction keeps them uniform) this is also weight-balanced.
  static Bisection random(const Graph& g, Rng& rng);

  /// Uniformly random split with exactly `side0_count` vertices on
  /// side 0 (throws std::invalid_argument if it exceeds |V|). KL
  /// refinement preserves any such ratio, which is what the recursive
  /// k-way driver exploits for non-power-of-two part counts.
  static Bisection random_split(const Graph& g, std::uint32_t side0_count,
                                Rng& rng);

  /// The first-half/second-half split (the planted bisection of the
  /// G2set and Gbreg models).
  static Bisection planted(const Graph& g);

  const Graph& graph() const { return *graph_; }

  /// Side of vertex v (0 or 1).
  std::uint8_t side(Vertex v) const { return sides_[v]; }

  std::span<const std::uint8_t> sides() const { return sides_; }

  /// Current cut weight (sum of weights of edges crossing the split).
  Weight cut() const { return cut_; }

  /// Number of vertices on a side.
  std::uint32_t side_count(int side) const { return counts_[side]; }

  /// Total vertex weight on a side.
  Weight side_weight(int side) const { return weights_[side]; }

  /// |side_weight(0) - side_weight(1)|.
  Weight weight_imbalance() const;

  /// |side_count(0) - side_count(1)|.
  std::uint32_t count_imbalance() const;

  /// True if vertex counts differ by at most 1 (a legal bisection for
  /// odd n too).
  bool is_balanced() const { return count_imbalance() <= 1; }

  /// Gain of moving v to the other side: cut reduction (may be
  /// negative). O(deg v).
  Weight gain(Vertex v) const;

  /// Weight of edges from v into side s. O(deg v).
  Weight weight_to_side(Vertex v, int s) const;

  /// Moves v to the other side, updating cut and side totals. O(deg v).
  void move(Vertex v);

  /// Swaps opposite-side vertices a and b (the KL primitive). Updates
  /// the cut accounting for a shared edge. Requires side(a) != side(b).
  void swap(Vertex a, Vertex b);

  /// Recomputes the cut from scratch. O(V + E). For verification.
  Weight recompute_cut() const;

  /// Asserts internal consistency (cut, counts, weights). For tests.
  bool validate() const;

 private:
  const Graph* graph_;
  std::vector<std::uint8_t> sides_;
  Weight cut_ = 0;
  std::uint32_t counts_[2] = {0, 0};
  Weight weights_[2] = {0, 0};
};

}  // namespace gbis
