// Balance repair: restore an exact bisection after algorithms that
// tolerate transient imbalance (simulated annealing with the
// imbalance-penalty cost, projections of odd structures).
//
// Policy: repeatedly move the best-gain vertex from the larger side
// until the vertex counts differ by at most 1. Greedy by gain keeps the
// cut damage minimal; with the max-heap this is
// O((imbalance) * log V + V + E).
#pragma once

#include "gbis/partition/bisection.hpp"

namespace gbis {

/// Moves best-gain vertices from the larger side until
/// count_imbalance() <= 1. Returns the number of vertices moved.
std::uint32_t rebalance(Bisection& bisection);

}  // namespace gbis
