#include "gbis/partition/bisection.hpp"

#include <stdexcept>

namespace gbis {

Bisection::Bisection(const Graph& g, std::vector<std::uint8_t> sides)
    : graph_(&g), sides_(std::move(sides)) {
  if (sides_.size() != g.num_vertices()) {
    throw std::invalid_argument("Bisection: sides size != num_vertices");
  }
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (sides_[v] > 1) {
      throw std::invalid_argument("Bisection: side entries must be 0 or 1");
    }
    ++counts_[sides_[v]];
    weights_[sides_[v]] += g.vertex_weight(v);
  }
  cut_ = recompute_cut();
}

Bisection Bisection::random(const Graph& g, Rng& rng) {
  return random_split(g, (g.num_vertices() + 1) / 2, rng);
}

Bisection Bisection::random_split(const Graph& g, std::uint32_t side0_count,
                                  Rng& rng) {
  const std::uint32_t n = g.num_vertices();
  if (side0_count > n) {
    throw std::invalid_argument("Bisection::random_split: count > |V|");
  }
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  rng.shuffle(order);
  std::vector<std::uint8_t> sides(n, 1);
  for (std::uint32_t i = 0; i < side0_count; ++i) sides[order[i]] = 0;
  return Bisection(g, std::move(sides));
}

Bisection Bisection::planted(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint8_t> sides(n, 0);
  for (Vertex v = n / 2; v < n; ++v) sides[v] = 1;
  return Bisection(g, std::move(sides));
}

Weight Bisection::weight_imbalance() const {
  return weights_[0] >= weights_[1] ? weights_[0] - weights_[1]
                                    : weights_[1] - weights_[0];
}

std::uint32_t Bisection::count_imbalance() const {
  return counts_[0] >= counts_[1] ? counts_[0] - counts_[1]
                                  : counts_[1] - counts_[0];
}

Weight Bisection::weight_to_side(Vertex v, int s) const {
  const auto nbrs = graph_->neighbors(v);
  const auto wts = graph_->edge_weights(v);
  Weight sum = 0;
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (sides_[nbrs[i]] == s) sum += wts[i];
  }
  return sum;
}

Weight Bisection::gain(Vertex v) const {
  const auto nbrs = graph_->neighbors(v);
  const auto wts = graph_->edge_weights(v);
  Weight external = 0, internal = 0;
  const std::uint8_t my_side = sides_[v];
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (sides_[nbrs[i]] == my_side) {
      internal += wts[i];
    } else {
      external += wts[i];
    }
  }
  return external - internal;
}

void Bisection::move(Vertex v) {
  const Weight g = gain(v);
  const std::uint8_t from = sides_[v];
  const std::uint8_t to = from ^ 1;
  cut_ -= g;
  sides_[v] = to;
  --counts_[from];
  ++counts_[to];
  const Weight vw = graph_->vertex_weight(v);
  weights_[from] -= vw;
  weights_[to] += vw;
}

void Bisection::swap(Vertex a, Vertex b) {
  if (sides_[a] == sides_[b]) {
    throw std::invalid_argument("Bisection::swap: same-side vertices");
  }
  // g_ab = g_a + g_b - 2 w(a,b)  (paper section III); realized here as
  // two single moves, which double-count the shared edge in between.
  move(a);
  move(b);
}

Weight Bisection::recompute_cut() const {
  Weight cut = 0;
  for (Vertex v = 0; v < graph_->num_vertices(); ++v) {
    const auto nbrs = graph_->neighbors(v);
    const auto wts = graph_->edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i] && sides_[v] != sides_[nbrs[i]]) cut += wts[i];
    }
  }
  return cut;
}

bool Bisection::validate() const {
  std::uint32_t counts[2] = {0, 0};
  Weight weights[2] = {0, 0};
  for (Vertex v = 0; v < graph_->num_vertices(); ++v) {
    if (sides_[v] > 1) return false;
    ++counts[sides_[v]];
    weights[sides_[v]] += graph_->vertex_weight(v);
  }
  return counts[0] == counts_[0] && counts[1] == counts_[1] &&
         weights[0] == weights_[0] && weights[1] == weights_[1] &&
         recompute_cut() == cut_;
}

}  // namespace gbis
