// Gain bookkeeping shared by the move-based heuristics.
//
// Definitions (paper section III): for a bisection (A, B) the gain of a
// vertex a is g_a = (weight of edges to the other side) - (weight of
// edges to its own side); the pair gain of a in A and b in B is
// g_ab = g_a + g_b - 2 w(a, b). Positive gain means the cut shrinks.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/graph/graph.hpp"
#include "gbis/partition/bisection.hpp"

namespace gbis {

/// All vertex gains for the current bisection. O(V + E).
std::vector<Weight> all_gains(const Bisection& bisection);

/// Pair gain g_ab = g_a + g_b - 2 w(a, b); gains passed in to avoid
/// recomputation. a and b must be on opposite sides for the value to
/// mean "cut reduction if swapped".
Weight pair_gain(const Graph& g, Vertex a, Vertex b, Weight gain_a,
                 Weight gain_b);

/// Updates `gains` in place after vertices a (side 0) and b (side 1)
/// are hypothetically interchanged, per the paper's Figure 2 lines 6-8:
///   for x on a's side:  g_x += 2 w(x,a) - 2 w(x,b)
///   for y on b's side:  g_y += 2 w(y,b) - 2 w(y,a)
/// `sides` must describe the partition *before* the interchange.
/// The entries for a and b themselves are left stale (callers lock
/// them). O(deg a + deg b).
void update_gains_after_swap(const Graph& g,
                             const std::vector<std::uint8_t>& sides, Vertex a,
                             Vertex b, std::vector<Weight>& gains);

/// Updates `gains` in place after a single vertex v moves to the other
/// side (FM/SA primitive): for each neighbor x,
///   g_x += (x was on v's old side) ? 2 w(x,v) : -2 w(x,v),
/// and g_v flips sign. `sides` must describe the partition *before* the
/// move. O(deg v).
void update_gains_after_move(const Graph& g,
                             const std::vector<std::uint8_t>& sides, Vertex v,
                             std::vector<Weight>& gains);

}  // namespace gbis
