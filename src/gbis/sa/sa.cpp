#include "gbis/sa/sa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "gbis/obs/metrics.hpp"
#include "gbis/partition/balance.hpp"
#include "gbis/sa/schedule.hpp"

namespace gbis {

namespace {

/// Signed count difference count(0) - count(1).
std::int64_t signed_diff(const Bisection& b) {
  return static_cast<std::int64_t>(b.side_count(0)) -
         static_cast<std::int64_t>(b.side_count(1));
}

/// Cost change of flipping v: -gain (cut part) plus the penalty delta.
double flip_delta(const Bisection& b, Vertex v, double alpha) {
  const std::int64_t d = signed_diff(b);
  // Moving from side 0: d -> d - 2; from side 1: d -> d + 2.
  const std::int64_t d_after = b.side(v) == 0 ? d - 2 : d + 2;
  const double penalty_delta =
      alpha * (static_cast<double>(d_after) * static_cast<double>(d_after) -
               static_cast<double>(d) * static_cast<double>(d));
  return -static_cast<double>(b.gain(v)) + penalty_delta;
}

/// Draws a uniformly random vertex on `side` by rejection (the walk
/// stays near balance, so the expected number of draws is ~2).
Vertex random_on_side(const Bisection& b, std::uint32_t n, int side,
                      Rng& rng) {
  for (;;) {
    const auto v = static_cast<Vertex>(rng.below(n));
    if (b.side(v) == side) return v;
  }
}

/// Cost change of swapping opposite-side vertices a and b:
/// -(g_a + g_b - 2 w(a, b)).
double swap_delta(const Bisection& b, Vertex a, Vertex v) {
  return -static_cast<double>(b.gain(a) + b.gain(v) -
                              2 * b.graph().edge_weight(a, v));
}

}  // namespace

SaStats sa_refine(Bisection& bisection, Rng& rng, const SaOptions& options,
                  std::vector<SaTracePoint>* trace) {
  if (options.imbalance_alpha < 0.0) {
    throw std::invalid_argument("sa_refine: alpha must be >= 0");
  }
  const Graph& g = bisection.graph();
  const std::uint32_t n = g.num_vertices();
  SaStats stats;
  stats.initial_cut = bisection.cut();
  if (n < 2) {
    stats.final_cut = bisection.cut();
    return stats;
  }

  const bool swap_moves = options.neighborhood == SaNeighborhood::kSwap;
  if (swap_moves) {
    // Pair swaps need both sides populated; also, the swap walk can
    // never repair imbalance, so start from an exact bisection.
    rebalance(bisection);
  }

  // --- Initial temperature -------------------------------------------------
  double t0 = options.initial_temperature;
  if (t0 <= 0.0) {
    // Sample uphill deltas from the initial configuration.
    std::vector<double> uphill;
    const std::uint32_t samples = std::max<std::uint32_t>(256, n);
    uphill.reserve(samples);
    for (std::uint32_t i = 0; i < samples; ++i) {
      double delta = 0.0;
      if (swap_moves) {
        const Vertex a = random_on_side(bisection, n, 0, rng);
        const Vertex b = random_on_side(bisection, n, 1, rng);
        delta = swap_delta(bisection, a, b);
      } else {
        const auto v = static_cast<Vertex>(rng.below(n));
        delta = flip_delta(bisection, v, options.imbalance_alpha);
      }
      if (delta > 0.0) uphill.push_back(delta);
    }
    t0 = initial_temperature_for_acceptance(
        uphill, options.init_acceptance_target, /*fallback=*/1.0);
    if (t0 <= 0.0) t0 = 1.0;
  }
  stats.initial_temperature = t0;

  GeometricSchedule schedule(t0, options.cooling_ratio);
  const auto moves_per_temp = static_cast<std::uint64_t>(
      std::max(1.0, options.temperature_length_factor * n));

  // Best *balanced* configuration seen so far.
  std::vector<std::uint8_t> best_sides(bisection.sides().begin(),
                                       bisection.sides().end());
  Weight best_cut =
      bisection.is_balanced() ? bisection.cut()
                              : std::numeric_limits<Weight>::max();

  std::uint32_t frozen_streak = 0;
  std::uint32_t stagnant_streak = 0;
  constexpr double kMinTemperature = 1e-9;

  while (frozen_streak < options.frozen_temperatures &&
         (options.stagnation_temperatures == 0 ||
          stagnant_streak < options.stagnation_temperatures) &&
         schedule.temperature() > kMinTemperature) {
    std::uint64_t accepted = 0;
    std::uint64_t proposed = 0;
    std::uint64_t polls = 0;
    bool best_improved = false;
    for (std::uint64_t m = 0; m < moves_per_temp; ++m) {
      // Cooperative deadline poll, throttled to one clock read per
      // 1024 proposals. The walk mutates `bisection` in place, so a
      // throw abandons a mid-walk state — fine, the trial is discarded.
      if ((m & 1023u) == 0) {
        options.deadline.check();
        ++polls;
      }
      if (options.max_total_moves != 0 &&
          stats.moves_proposed >= options.max_total_moves) {
        frozen_streak = options.frozen_temperatures;  // force stop
        break;
      }
      ++stats.moves_proposed;
      ++proposed;
      bool accept = false;
      if (swap_moves) {
        const Vertex a = random_on_side(bisection, n, 0, rng);
        const Vertex b = random_on_side(bisection, n, 1, rng);
        const double delta = swap_delta(bisection, a, b);
        accept = delta <= 0.0 ||
                 rng.real01() < std::exp(-delta / schedule.temperature());
        if (accept) bisection.swap(a, b);
      } else {
        const auto v = static_cast<Vertex>(rng.below(n));
        const double delta =
            flip_delta(bisection, v, options.imbalance_alpha);
        accept = delta <= 0.0 ||
                 rng.real01() < std::exp(-delta / schedule.temperature());
        if (accept) bisection.move(v);
      }
      if (accept) {
        ++accepted;
        if (bisection.is_balanced() && bisection.cut() < best_cut) {
          best_cut = bisection.cut();
          best_sides.assign(bisection.sides().begin(),
                            bisection.sides().end());
          best_improved = true;
        }
      }
    }
    stats.moves_accepted += accepted;
    ++stats.temperatures;

    const double acceptance =
        static_cast<double>(accepted) / static_cast<double>(moves_per_temp);
    if (trace != nullptr) {
      trace->push_back({schedule.temperature(), bisection.cut(),
                        best_cut < std::numeric_limits<Weight>::max()
                            ? best_cut
                            : bisection.cut(),
                        acceptance});
    }
    if (MetricsSink* sink = options.metrics; sink != nullptr) {
      // One flush per temperature: the move loop only touches locals.
      // Stage boundaries are relative to this run's T0 (hot >= T0/2,
      // cold < T0/20), so classification is deterministic per trial.
      const SaStage stage = sa_stage(schedule.temperature(), t0);
      const auto at = [stage](Counter hot, Counter warm, Counter cold) {
        return stage == SaStage::kHot    ? hot
               : stage == SaStage::kWarm ? warm
                                         : cold;
      };
      sink->add(Counter::kSaTemperatures);
      sink->add(at(Counter::kSaProposalsHot, Counter::kSaProposalsWarm,
                   Counter::kSaProposalsCold),
                proposed);
      sink->add(at(Counter::kSaAcceptsHot, Counter::kSaAcceptsWarm,
                   Counter::kSaAcceptsCold),
                accepted);
      sink->add(at(Counter::kSaRejectsHot, Counter::kSaRejectsWarm,
                   Counter::kSaRejectsCold),
                proposed - accepted);
      sink->add(Counter::kDeadlinePolls, polls);
      sink->observe(Hist::kSaTempAcceptancePct,
                    static_cast<std::uint64_t>(acceptance * 100.0 + 0.5));
      sink->trace_point(TraceSource::kSa,
                        best_cut < std::numeric_limits<Weight>::max()
                            ? best_cut
                            : bisection.cut(),
                        schedule.temperature());
    }
    if (acceptance < options.min_acceptance && !best_improved) {
      ++frozen_streak;
    } else {
      frozen_streak = 0;
    }
    if (best_improved) {
      stagnant_streak = 0;
    } else {
      ++stagnant_streak;
    }
    schedule.cool();
  }
  stats.final_temperature = schedule.temperature();

  // Restore the best balanced configuration if the walk drifted away,
  // then guarantee exact balance (cheap repair; usually a no-op).
  if (best_cut < std::numeric_limits<Weight>::max()) {
    const bool current_worse =
        !bisection.is_balanced() || bisection.cut() > best_cut;
    if (current_worse) {
      bisection = Bisection(g, std::move(best_sides));
    }
  }
  rebalance(bisection);
  stats.final_cut = bisection.cut();
  return stats;
}

}  // namespace gbis
