#include "gbis/sa/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace gbis {

GeometricSchedule::GeometricSchedule(double initial_temperature, double ratio)
    : temperature_(initial_temperature), ratio_(ratio) {
  if (!(initial_temperature > 0.0)) {
    throw std::invalid_argument(
        "GeometricSchedule: initial temperature must be positive");
  }
  if (!(ratio > 0.0 && ratio < 1.0)) {
    throw std::invalid_argument("GeometricSchedule: ratio must be in (0, 1)");
  }
}

double GeometricSchedule::cool() {
  temperature_ *= ratio_;
  ++steps_;
  return temperature_;
}

double initial_temperature_for_acceptance(
    std::span<const double> positive_deltas, double target_acceptance,
    double fallback) {
  if (!(target_acceptance > 0.0 && target_acceptance < 1.0)) {
    throw std::invalid_argument(
        "initial_temperature_for_acceptance: target in (0, 1)");
  }
  if (positive_deltas.empty()) return fallback;
  double sum = 0.0;
  for (double d : positive_deltas) sum += d;
  const double mean = sum / static_cast<double>(positive_deltas.size());
  return mean / std::log(1.0 / target_acceptance);
}

}  // namespace gbis
