// Simulated annealing for graph bisection (paper section II, Figure 1;
// Kirkpatrick-Gelatt-Vecchi 1983; bisection specifics per
// Johnson-Aragon-McGeoch-Schevon, the paper's [JCAMS84]).
//
// Solution space: arbitrary 2-colorings (not only balanced ones), with
//   cost(S) = cut(S) + alpha * (count(0) - count(1))^2
// and the single-vertex-flip neighborhood. The quadratic penalty keeps
// configurations near balance while letting the walk pass through
// imbalanced states. The best balanced configuration seen is tracked
// and restored at the end (the paper's section VII notes SA "may
// migrate away from an optimal solution ... one must then save the best
// bisection found"), then exact balance is repaired.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

class MetricsSink;

/// Move neighborhood of the annealer.
enum class SaNeighborhood {
  /// Single-vertex flips with the quadratic imbalance penalty
  /// (Johnson et al.'s recommendation; the default).
  kFlip,
  /// Opposite-side pair swaps: balance is preserved exactly, so no
  /// penalty term is needed (alpha is ignored). Figure 1's "pick a
  /// random solution S'" reads naturally as either; this variant
  /// exists for the A4 ablation (bench/ablation_sa_neighborhood).
  kSwap,
};

/// Annealer tuning. Defaults follow Johnson et al.'s recommended
/// regime scaled for "fast but faithful" runs.
struct SaOptions {
  /// Move neighborhood (see SaNeighborhood).
  SaNeighborhood neighborhood = SaNeighborhood::kFlip;
  /// Imbalance penalty factor alpha (kFlip only).
  double imbalance_alpha = 0.05;
  /// Geometric cooling ratio per temperature.
  double cooling_ratio = 0.95;
  /// Moves attempted per temperature = this factor times |V|.
  double temperature_length_factor = 16.0;
  /// Target initial uphill-acceptance ratio (sets T0 when
  /// initial_temperature == 0).
  double init_acceptance_target = 0.4;
  /// Explicit initial temperature; 0 means calibrate from sampling.
  double initial_temperature = 0.0;
  /// A temperature counts as "frozen" when its acceptance ratio falls
  /// below this and the best solution did not improve.
  double min_acceptance = 0.02;
  /// Stop after this many consecutive frozen temperatures.
  std::uint32_t frozen_temperatures = 5;
  /// Hard cap on proposed moves (safety valve); 0 = none.
  std::uint64_t max_total_moves = 0;
  /// Stop once the best solution has not improved for this many
  /// consecutive temperatures, even if the walk is still hot. 0 =
  /// disabled (the default). This reproduces the failure mode the
  /// paper's section VII describes: "Attempts at correcting this flaw
  /// [SA running long after finding a good bisection] caused the
  /// algorithm to terminate prematurely" — bench/obs_sa_termination
  /// quantifies the quality/time trade.
  std::uint32_t stagnation_temperatures = 0;
  /// Cooperative wall-clock budget: the temperature loop polls it per
  /// temperature and every 1024 proposed moves, throwing
  /// DeadlineExceeded on expiry (the trial runner maps that to a
  /// `timed_out` trial). Default: unlimited.
  Deadline deadline;
  /// Observability sink (obs/metrics.hpp): proposal/accept/reject
  /// counters bucketed by temperature stage (hot/warm/cold relative to
  /// the calibrated T0), the per-temperature acceptance histogram, and
  /// one convergence point per temperature. nullptr (the default)
  /// records nothing; the move loop accumulates into locals and
  /// flushes once per temperature.
  MetricsSink* metrics = nullptr;
};

/// Per-run diagnostics.
struct SaStats {
  std::uint64_t moves_proposed = 0;
  std::uint64_t moves_accepted = 0;
  std::uint32_t temperatures = 0;
  double initial_temperature = 0.0;
  double final_temperature = 0.0;
  Weight initial_cut = 0;
  Weight final_cut = 0;  ///< cut of the returned balanced bisection
};

/// One per-temperature snapshot of the annealing trajectory.
struct SaTracePoint {
  double temperature = 0.0;
  Weight current_cut = 0;  ///< cut at the end of the temperature
  Weight best_cut = 0;     ///< best balanced cut seen so far
  double acceptance = 0.0; ///< acceptance ratio at this temperature
};

/// Anneals `bisection` in place and returns diagnostics. The result is
/// exactly balanced (count imbalance <= 1) and never worse than the
/// best balanced configuration encountered. When `trace` is non-null,
/// one SaTracePoint is appended per temperature (for convergence plots
/// — see examples/anneal_lab).
SaStats sa_refine(Bisection& bisection, Rng& rng,
                  const SaOptions& options = {},
                  std::vector<SaTracePoint>* trace = nullptr);

}  // namespace gbis
