// Annealing schedule: the "temperature" control of Figure 1's generic
// loop. Geometric cooling with an acceptance-targeted initial
// temperature, following the methodology of Johnson, Aragon, McGeoch &
// Schevon (the paper's [JCAMS84], published form: Operations Research
// 1989, Part I).
#pragma once

#include <cstdint>
#include <span>

namespace gbis {

/// Geometric cooling: T_{k+1} = ratio * T_k.
class GeometricSchedule {
 public:
  /// ratio must be in (0, 1); initial_temperature must be positive.
  GeometricSchedule(double initial_temperature, double ratio);

  double temperature() const { return temperature_; }

  /// Cools one step and returns the new temperature.
  double cool();

  /// Temperatures visited so far (including the initial one).
  std::uint32_t steps() const { return steps_; }

 private:
  double temperature_;
  double ratio_;
  std::uint32_t steps_ = 1;
};

/// Chooses an initial temperature such that a fraction
/// `target_acceptance` of cost-increasing moves would be accepted:
/// T0 = mean(positive deltas) / ln(1 / target_acceptance).
/// `positive_deltas` are sampled uphill cost changes; if empty (the
/// landscape is all-downhill from the start), returns `fallback`.
double initial_temperature_for_acceptance(
    std::span<const double> positive_deltas, double target_acceptance,
    double fallback = 1.0);

}  // namespace gbis
