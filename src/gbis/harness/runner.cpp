#include "gbis/harness/runner.hpp"

#include <stdexcept>
#include <utility>

#include "gbis/baseline/greedy.hpp"
#include "gbis/baseline/random_bisect.hpp"
#include "gbis/baseline/spectral.hpp"
#include "gbis/harness/parallel_runner.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/methods/registry.hpp"

namespace gbis {

std::string method_name(Method method) {
  const std::size_t index = static_cast<std::size_t>(method);
  if (index >= method_registry().size()) {
    throw std::invalid_argument("method_name: unknown method");
  }
  return method_registry()[index].display_name;
}

bool method_from_name(const std::string& name, Method& out) {
  const MethodInfo* info = method_info_by_name(name);
  if (info == nullptr) return false;
  out = info->method;
  return true;
}

Bisection run_one_start(const Graph& g, Method method, Rng& rng,
                        const RunConfig& config) {
  // Phase spans for the Chrome-trace export. Flat methods get an
  // explicit gen + refine split here; the compaction and multilevel
  // drivers stamp their own compact/bisect/uncoalesce/refine spans, and
  // baselines run as one opaque bisect span.
  MetricsSink* sink = config.metrics;
  switch (method) {
    case Method::kKl: {
      if (sink != nullptr) sink->begin_phase(Phase::kGen);
      Bisection b = Bisection::random(g, rng);
      if (sink != nullptr) sink->end_phase(Phase::kGen);
      const ScopedPhase refine(sink, Phase::kRefine);
      kl_refine(b, config.kl);
      return b;
    }
    case Method::kSa: {
      if (sink != nullptr) sink->begin_phase(Phase::kGen);
      Bisection b = Bisection::random(g, rng);
      if (sink != nullptr) sink->end_phase(Phase::kGen);
      const ScopedPhase refine(sink, Phase::kRefine);
      sa_refine(b, rng, config.sa);
      return b;
    }
    case Method::kCkl:
      return ckl(g, rng, config.kl, config.compaction);
    case Method::kCsa:
      return csa(g, rng, config.sa, config.compaction);
    case Method::kFm: {
      if (sink != nullptr) sink->begin_phase(Phase::kGen);
      Bisection b = Bisection::random(g, rng);
      if (sink != nullptr) sink->end_phase(Phase::kGen);
      const ScopedPhase refine(sink, Phase::kRefine);
      fm_refine(b, config.fm);
      return b;
    }
    case Method::kCfm:
      return compacted_bisect(g, rng, fm_refiner(config.fm),
                              config.compaction);
    case Method::kMultilevelKl:
      return multilevel_bisect(g, rng, kl_refiner(config.kl),
                               config.multilevel);
    case Method::kGreedy: {
      const ScopedPhase bisect(sink, Phase::kBisect);
      return greedy_bisection(g, rng);
    }
    case Method::kSpectral: {
      const ScopedPhase bisect(sink, Phase::kBisect);
      return spectral_bisection(g, rng);
    }
    case Method::kRandom: {
      const ScopedPhase bisect(sink, Phase::kBisect);
      return best_random_bisection(g, rng);
    }
    case Method::kPathOpt: {
      if (sink != nullptr) sink->begin_phase(Phase::kGen);
      Bisection b = Bisection::random(g, rng);
      if (sink != nullptr) sink->end_phase(Phase::kGen);
      const ScopedPhase refine(sink, Phase::kRefine);
      PathOptOptions path = config.path;
      path.metrics = sink;
      path_opt_refine(b, path);
      return b;
    }
    case Method::kGreedyHc: {
      const ScopedPhase bisect(sink, Phase::kBisect);
      return greedy_hc_bisection(g, rng, config.greedy_hc);
    }
  }
  throw std::invalid_argument("run_method: unknown method");
}

RunResult run_method_seeded(const Graph& g, Method method,
                            std::uint64_t seed, const RunConfig& config,
                            std::vector<std::uint8_t>* best_sides) {
  if (config.starts == 0) {
    throw std::invalid_argument("run_method: starts >= 1");
  }
  const WallTimer wall;
  const Graph graphs[] = {g};
  const Method methods[] = {method};
  std::vector<MethodOutcome> outcomes = run_trial_matrix(
      graphs, methods, config, seed, /*keep_sides=*/best_sides != nullptr);
  MethodOutcome& outcome = outcomes.front();
  if (outcome.status != TrialStatus::kOk) {
    // Trials are fault-isolated, but a run with zero successful starts
    // has no cut to report — surface the first failure to the caller.
    std::string message = "run_method: no start finished (";
    message += trial_status_name(outcome.status);
    message += ")";
    if (!outcome.first_error.empty()) message += ": " + outcome.first_error;
    throw std::runtime_error(message);
  }

  RunResult result;
  result.best_cut = outcome.best_cut;
  result.cpu_seconds = outcome.cpu_seconds;
  result.trial_seconds = std::move(outcome.trial_seconds);
  result.degraded_starts =
      outcome.failed + outcome.timed_out + outcome.skipped;
  result.first_error = std::move(outcome.first_error);
  if (best_sides != nullptr) {
    *best_sides = std::move(outcome.best_sides);
  }
  result.wall_seconds = wall.elapsed_seconds();
  return result;
}

RunResult run_method(const Graph& g, Method method, Rng& rng,
                     const RunConfig& config,
                     std::vector<std::uint8_t>* best_sides) {
  // One draw regardless of starts/threads: the caller's stream advances
  // identically however the trials execute.
  return run_method_seeded(g, method, rng.next(), config, best_sides);
}

}  // namespace gbis
