#include "gbis/harness/csv.hpp"

#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gbis {

namespace {

std::string escape(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void write_row(std::ostream& out, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out << ',';
    out << escape(cells[i]);
  }
  out << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> columns)
    : out_(out), columns_(columns.size()) {
  write_row(out_, columns);
}

CsvWriter& CsvWriter::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

CsvWriter& CsvWriter::cell(double value) {
  // max_digits10 so exported doubles round-trip exactly through strtod;
  // the default ostream precision (6 significant digits) truncates
  // seconds/cut averages. defaultfloat still drops trailing zeros, so
  // short values stay short ("2.5" remains "2.5").
  std::ostringstream ss;
  ss << std::setprecision(std::numeric_limits<double>::max_digits10)
     << value;
  pending_.push_back(ss.str());
  return *this;
}

CsvWriter& CsvWriter::cell(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  pending_.push_back(ss.str());
  return *this;
}

CsvWriter& CsvWriter::cell(std::int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

CsvWriter& CsvWriter::cell(std::uint64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::end_row() {
  if (pending_.size() != columns_) {
    throw std::logic_error("CsvWriter: cell count mismatch");
  }
  write_row(out_, pending_);
  pending_.clear();
}

}  // namespace gbis
