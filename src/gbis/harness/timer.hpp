// Timers for experiment timing. The paper reports VAX-780 CPU minutes;
// we report seconds and compare machine-portable ratios (see DESIGN.md
// section 3). Two clocks are provided: WallTimer (monotonic wall clock,
// for harness elapsed time) and CpuTimer (per-thread CPU time, for
// per-trial costs that must stay meaningful when trials run
// concurrently — summing wall time across parallel trials would
// double-count idle overlap).
#pragma once

#include <chrono>
#include <ctime>

namespace gbis {

/// Monotonic stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// CPU-time stopwatch for the calling thread, started at construction.
/// Falls back to the wall clock where no per-thread CPU clock exists.
class CpuTimer {
 public:
  CpuTimer() : start_(now()) {}

  /// Thread-CPU seconds since construction or the last reset().
  double elapsed_seconds() const { return now() - start_; }

  void reset() { start_ = now(); }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace gbis
