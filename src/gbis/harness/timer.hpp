// Wall-clock timer for experiment timing. The paper reports VAX-780 CPU
// minutes; we report wall seconds and compare machine-portable ratios
// (see DESIGN.md section 3).
#pragma once

#include <chrono>

namespace gbis {

/// Monotonic stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Seconds since construction or the last reset().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gbis
