#include "gbis/harness/shutdown.hpp"

#include <csignal>

namespace gbis {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_escalate{false};
std::atomic<void (*)()> g_flight_hook{nullptr};

extern "C" void handle_shutdown_signal(int) {
  g_shutdown.store(true, std::memory_order_release);
}

extern "C" void handle_escalating_signal(int sig) {
  // First signal: graceful drain. Second: escalate to the bounded
  // flush. Third: default disposition (everything here is
  // async-signal-safe — lock-free atomics and sigaction).
  if (!g_shutdown.exchange(true, std::memory_order_acq_rel)) return;
  if (!g_escalate.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction action = {};
  action.sa_handler = SIG_DFL;
  sigemptyset(&action.sa_mask);
  sigaction(sig, &action, nullptr);
}

extern "C" void handle_flight_signal(int) {
  // Dump-and-return: SIGQUIT samples the black box without ending the
  // run (the hook is async-signal-safe by contract).
  trigger_flight_dump();
}

}  // namespace

std::atomic<bool>& shutdown_flag() { return g_shutdown; }

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_acquire);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_release); }

void reset_shutdown() {
  g_shutdown.store(false, std::memory_order_release);
  g_escalate.store(false, std::memory_order_release);
}

bool shutdown_escalated() {
  return g_escalate.load(std::memory_order_acquire);
}

void request_escalation() {
  g_shutdown.store(true, std::memory_order_release);
  g_escalate.store(true, std::memory_order_release);
}

void install_shutdown_handlers() {
  struct sigaction action = {};
  action.sa_handler = &handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the first signal drains gracefully, a second one
  // kills the process the ordinary way — no way to wedge a campaign.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void install_escalating_shutdown_handlers() {
  struct sigaction action = {};
  action.sa_handler = &handle_escalating_signal;
  sigemptyset(&action.sa_mask);
  // No SA_RESETHAND: the handler itself walks the drain -> escalate ->
  // default ladder, one rung per signal.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

void set_flight_dump_hook(void (*hook)()) {
  g_flight_hook.store(hook, std::memory_order_release);
}

void trigger_flight_dump() {
  if (void (*hook)() = g_flight_hook.load(std::memory_order_acquire)) {
    hook();
  }
}

void install_flight_dump_handler() {
  struct sigaction action = {};
  action.sa_handler = &handle_flight_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGQUIT, &action, nullptr);
}

}  // namespace gbis
