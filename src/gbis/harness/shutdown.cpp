#include "gbis/harness/shutdown.hpp"

#include <csignal>

namespace gbis {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void handle_shutdown_signal(int) {
  g_shutdown.store(true, std::memory_order_release);
}

}  // namespace

std::atomic<bool>& shutdown_flag() { return g_shutdown; }

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_acquire);
}

void request_shutdown() { g_shutdown.store(true, std::memory_order_release); }

void reset_shutdown() { g_shutdown.store(false, std::memory_order_release); }

void install_shutdown_handlers() {
  struct sigaction action = {};
  action.sa_handler = &handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  // SA_RESETHAND: the first signal drains gracefully, a second one
  // kills the process the ordinary way — no way to wedge a campaign.
  action.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

}  // namespace gbis
