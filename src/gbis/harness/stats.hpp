// Small-sample summary statistics for experiment reporting.
#pragma once

#include <span>

namespace gbis {

/// Five-number-ish summary of a sample.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 if n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  std::size_t count = 0;
};

/// Computes the summary of a sample (empty sample yields all zeros).
Summary summarize(std::span<const double> values);

/// The p-th percentile (0 <= p <= 100) of a sample, linearly
/// interpolated at rank p/100 * (n-1) over the sorted values — the
/// convention where percentile(v, 50) equals the summarize() median.
/// p is clamped to [0, 100]; an empty sample yields 0.
double percentile(std::span<const double> values, double p);

/// Percentage improvement of `after` relative to `before`:
/// (before - after) / before * 100. A zero baseline is special-cased:
/// 0 -> 0 returns 0 (nothing to improve), but 0 -> nonzero returns NaN
/// — a percentage is undefined there, and returning 0 would silently
/// mask a regression. TablePrinter renders NaN as "n/a".
double percent_improvement(double before, double after);

}  // namespace gbis
