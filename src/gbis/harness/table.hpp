// Fixed-width console table printer used by the experiment drivers to
// emit the paper's appendix tables.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gbis {

/// Column-aligned text table. Define columns, then emit rows of cells;
/// each cell is stringified with sensible defaults (doubles to 2
/// decimal places unless configured).
class TablePrinter {
 public:
  /// A column: header text and minimum width (auto-widened to fit the
  /// header).
  struct Column {
    std::string header;
    int width = 10;
  };

  TablePrinter(std::ostream& out, std::vector<Column> columns);

  /// Prints the header row and separator.
  void print_header();

  /// Prints a horizontal separator line.
  void print_separator();

  /// Begins a row; cells are appended with cell()/done().
  TablePrinter& cell(const std::string& value);
  TablePrinter& cell(const char* value);
  TablePrinter& cell(double value, int precision = 2);
  TablePrinter& cell(std::int64_t value);
  TablePrinter& cell(std::uint64_t value);
  TablePrinter& cell(std::uint32_t value);

  /// Ends the current row (flushes it). Throws std::logic_error if the
  /// number of cells does not match the number of columns.
  void end_row();

 private:
  std::ostream& out_;
  std::vector<Column> columns_;
  std::vector<std::string> pending_;
};

}  // namespace gbis
