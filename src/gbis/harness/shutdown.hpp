// Graceful-shutdown plumbing for long campaigns. SIGINT/SIGTERM (or an
// in-process request_shutdown(), which is how tests trigger the path
// deterministically) flip one process-wide std::atomic<bool>; the trial
// runner's drain-on-stop path sees it, stops dequeuing trials, lets
// in-flight trials finish or hit their deadline, and the campaign layer
// flushes its journal and reports the run as interrupted so the CLI can
// exit 130 with a "--resume" hint.
//
// Only the flag flip happens in the signal handler (async-signal-safe:
// a lock-free atomic store); everything else runs on normal threads.
#pragma once

#include <atomic>

namespace gbis {

/// The process-wide stop flag. Pass &shutdown_flag() as the stop
/// pointer of TrialRunOptions / CampaignOptions to make a run
/// interruptible.
std::atomic<bool>& shutdown_flag();

/// True once a shutdown has been requested (signal or in-process).
bool shutdown_requested();

/// In-process trigger: exactly what the signal handler does. Used by
/// tests (and the stop@trial:N fault) to exercise the SIGTERM path
/// without delivering a real signal.
void request_shutdown();

/// Clears the flag (and the escalation flag) so a new campaign (or
/// test) starts fresh.
void reset_shutdown();

/// Installs SIGINT and SIGTERM handlers that call request_shutdown().
/// Idempotent. The second signal falls back to the default disposition
/// (handlers are installed with SA_RESETHAND), so a stuck campaign can
/// still be killed with a repeated Ctrl-C.
void install_shutdown_handlers();

/// True once a shutdown has been *escalated* (second signal, or an
/// in-process request_escalation()). The serve drain path checks this
/// to cut the graceful tail short: answer nothing new, flush the
/// access log and stats, exit 130.
bool shutdown_escalated();

/// In-process trigger for the escalation path (tests; also implies
/// request_shutdown() so the pair is always consistent).
void request_escalation();

/// Installs escalating SIGINT/SIGTERM handlers for `gbis serve`: the
/// first signal requests a graceful drain, the second escalates to the
/// bounded-flush shutdown above, and a third falls back to the default
/// disposition (the process can always be killed). Idempotent.
void install_escalating_shutdown_handlers();

/// Registers the flight-recorder dump hook invoked by SIGQUIT and the
/// fatal crash path. The hook MUST be async-signal-safe (the flight
/// recorder's seqlock dump qualifies); pass nullptr to clear.
void set_flight_dump_hook(void (*hook)());

/// Fires the registered flight-dump hook, if any. Async-signal-safe;
/// called by the SIGQUIT handler, the injected-crash path
/// (svc/fault_injection), and tests.
void trigger_flight_dump();

/// Installs a SIGQUIT handler that fires the flight-dump hook and
/// *returns* — the process keeps serving, so the black box can be
/// sampled mid-batch without ending the run. Idempotent.
void install_flight_dump_handler();

}  // namespace gbis
