// Experiment drivers reproducing every table of the paper's evaluation
// (Table 1 and the appendix tables) plus the observation summaries.
// Each driver prints one complete table to stdout in the paper's
// row/column layout; the bench/ binaries are thin wrappers around these
// functions. See DESIGN.md section 4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured records.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gbis/graph/graph.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Environment-controlled experiment knobs (read once per process):
///   GBIS_SCALE               float, default 1.0 — multiplies instance sizes
///   GBIS_GRAPHS_PER_SETTING  int, default 0 = per-table default (3)
///   GBIS_STARTS              int, default 2 (the paper's best-of-two)
///   GBIS_SEED                uint64, default 19890625
///   GBIS_THREADS             int, default 0 = hardware concurrency —
///                            trial-runner worker count; cut columns are
///                            bit-identical for every value
///   GBIS_SA_LENGTH           float, default 8.0 — SA moves per temperature
///                            per vertex (Johnson et al. used 16; 8 keeps
///                            full-suite runtimes manageable with
///                            indistinguishable cuts on these families)
///   GBIS_CSV_DIR             directory; when set, every appendix-table
///                            driver also writes its rows as
///                            <dir>/<table>.csv for plotting
struct ExperimentEnv {
  double scale = 1.0;
  std::uint32_t graphs_per_setting = 0;
  std::uint32_t starts = 2;
  std::uint64_t seed = 19890625;
  std::uint32_t threads = 0;  ///< 0 = hardware concurrency
  double sa_length_factor = 8.0;
  std::string csv_dir;  ///< empty = no CSV export
};

/// Reads the GBIS_* environment variables. Malformed values keep their
/// defaults and emit a one-line stderr warning naming the variable and
/// the rejected text.
ExperimentEnv experiment_env();

/// The RunConfig the paper-table drivers use for KL/SA/CKL/CSA.
RunConfig experiment_run_config(const ExperimentEnv& env);

/// Averaged best-of-k results of the four paper methods — plus the
/// Berry–Goldberg path-optimization column the portfolio races — over
/// a batch of same-parameter graphs (the appendix averages 3 Gbreg
/// samples per setting). Times are summed per-trial CPU seconds (the
/// paper's total-over-starts protocol), so they are comparable across
/// GBIS_THREADS settings.
struct FourWayRow {
  double bsa = 0, bcsa = 0, bkl = 0, bckl = 0;  ///< average best cuts
  double tsa = 0, tcsa = 0, tkl = 0, tckl = 0;  ///< average CPU seconds
  double bpo = 0;  ///< average best path-optimization cut
  double tpo = 0;  ///< average path-optimization CPU seconds
  /// Degraded-cell markers, one per method ("" = every graph's cell was
  /// ok; otherwise "err"/"t/o"/"skip" from trial_status_cell). Cuts
  /// average over ok cells only; a method with zero ok cells reports
  /// NaN cuts and its marker is rendered in the cut column instead.
  std::string sa_note, csa_note, kl_note, ckl_note, po_note;
  std::uint32_t degraded_cells = 0;  ///< (graph, method) cells not ok
};

/// Runs SA, CSA, KL, CKL, and path optimization on every graph via the
/// parallel trial runner (graphs × methods × starts jobs on
/// config.threads workers) and averages. Consumes exactly one draw
/// from `rng`, so the caller's stream — and every cut — is independent
/// of the thread count.
FourWayRow run_four_way(std::span<const Graph> graphs, Rng& rng,
                        const RunConfig& config);

// --- Paper tables ---------------------------------------------------------

/// Appendix "Ladder graphs" table.
void experiment_ladder(const ExperimentEnv& env);

/// Appendix "Grid graphs" (N x N) table.
void experiment_grid(const ExperimentEnv& env);

/// Appendix "Binary trees" table (exact optimum from the tree DP shown
/// as the reference column).
void experiment_bintree(const ExperimentEnv& env);

/// Appendix "G2set(two_n, pA, pB, b) with average degree D" tables
/// (paper: two_n in {2000, 5000}, D in {2.5, 3, 3.5, 4}).
void experiment_g2set(const ExperimentEnv& env, std::uint32_t two_n,
                      double avg_degree);

/// Appendix "Gnp(two_n, p)" table (rows swept over average degree).
void experiment_gnp(const ExperimentEnv& env, std::uint32_t two_n);

/// Appendix "Gbreg(two_n, b, d)" tables (paper: d in {3, 4}).
void experiment_gbreg(const ExperimentEnv& env, std::uint32_t two_n,
                      std::uint32_t d);

/// Table 1: average bisection-width improvement by compaction on the
/// special graph families (paper: Grid 13%/34%, Ladder 12%/24%, Binary
/// tree 56%/17% for KL/SA).
void experiment_table1_summary(const ExperimentEnv& env);

/// Observations 4-5 summary: KL-vs-SA speed ratios and quality
/// win-rates, with and without compaction, on mid-degree G2set graphs.
void experiment_obs_kl_vs_sa(const ExperimentEnv& env);

}  // namespace gbis
