// Experiment runner: executes a named bisection method under the
// paper's protocol — k independent random starts, report the best cut
// and the *total* time across all starts including initial-bisection
// generation (section VI: "All timing results will be the total time it
// took the procedure to complete both starting configurations
// (including the time to generate the initial bisections)").
//
// Starts are fully independent trials, so they run on the harness
// thread pool (see parallel_runner.hpp). Each trial gets its own Rng
// seeded from (base seed, trial id) via the splitmix64 stream, and
// results reduce in trial-id order, so every cut is bit-identical for
// any thread count — including 1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gbis/core/compaction.hpp"
#include "gbis/core/multilevel.hpp"
#include "gbis/fm/fm.hpp"
#include "gbis/graph/graph.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/methods/greedy.hpp"
#include "gbis/methods/path_opt.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {

/// The bisection methods the harness can run.
enum class Method {
  kKl,            ///< Kernighan-Lin (paper: KL)
  kSa,            ///< simulated annealing (paper: SA)
  kCkl,           ///< compacted Kernighan-Lin (paper: CKL)
  kCsa,           ///< compacted simulated annealing (paper: CSA)
  kFm,            ///< Fiduccia-Mattheyses (ablation)
  kCfm,           ///< compacted FM (ablation)
  kMultilevelKl,  ///< multilevel compaction + KL (extension)
  kGreedy,        ///< greedy region growing (baseline)
  kSpectral,      ///< spectral bisection (baseline/extension)
  kRandom,        ///< best random bisection (baseline)
  // Append-only: the enum value is the service cache journal's
  // method_key and the methods/registry row index.
  kPathOpt,       ///< Berry-Goldberg path optimization (methods/path_opt)
  kGreedyHc,      ///< greedy + bounded hill climb (methods/greedy)
};

/// Short display name ("KL", "CSA", ...).
std::string method_name(Method method);

/// Reverse lookup from the scripting name ("kl", "ckl", "mlkl", ... —
/// the lower-case forms the CLI and the service protocol accept);
/// false when `name` is unknown.
bool method_from_name(const std::string& name, Method& out);

/// Shared configuration for a method run.
struct RunConfig {
  std::uint32_t starts = 2;   ///< independent random starts (paper: 2)
  std::uint32_t threads = 0;  ///< trial-runner workers; 0 = hardware
  /// Per-trial wall-clock budget in seconds; 0 = unlimited. The trial
  /// runner derives a Deadline from it at each trial's start and
  /// threads it into the KL/SA/FM step loops (cooperative check); an
  /// overrun marks that one trial `timed_out` instead of poisoning the
  /// batch.
  double trial_deadline = 0;
  KlOptions kl;
  SaOptions sa;
  FmOptions fm;
  PathOptOptions path;
  GreedyHcOptions greedy_hc;
  CompactionOptions compaction;
  MultilevelOptions multilevel;
  /// Observability knobs (collection, export paths, live progress).
  /// Nothing here influences trial outcomes, so the campaign
  /// fingerprint ignores the whole block.
  ObsOptions obs;
  /// Transient recording sink for the *current* trial. The parallel
  /// trial runner binds it (together with the kl/sa/fm/compaction/
  /// multilevel sinks) on its per-trial config copy; leave it null in
  /// configs you build yourself.
  MetricsSink* metrics = nullptr;
};

/// Outcome of running one method on one graph. Timing is split: the
/// paper's protocol ("total time over all starts") is the *sum of
/// per-trial CPU seconds*, which stays meaningful when starts run
/// concurrently; `wall_seconds` is what the harness actually waited.
struct RunResult {
  Weight best_cut = 0;     ///< best over all starts (first start on ties)
  double cpu_seconds = 0;  ///< summed per-trial CPU seconds, all starts
  double wall_seconds = 0;          ///< harness wall clock for the run
  std::vector<double> trial_seconds;  ///< per-start CPU seconds, in order
  /// Starts that did not finish (failed / timed out / skipped). The
  /// result is still valid — best_cut is the best *successful* start —
  /// but degraded; run_method throws only when no start succeeds.
  std::uint32_t degraded_starts = 0;
  std::string first_error;  ///< first failure text when degraded
};

/// One trial: generate a start (inside the method where applicable) and
/// refine it. This is the unit the parallel trial runner schedules; it
/// must stay a pure function of (g, method, rng draws, config).
Bisection run_one_start(const Graph& g, Method method, Rng& rng,
                        const RunConfig& config);

/// Runs `method` on g with `config.starts` independent starts on
/// `config.threads` workers. Trial s draws from an Rng seeded with
/// splitmix64_at(seed, s), so cuts do not depend on the thread count.
/// When `best_sides` is non-null it receives the side assignment of the
/// winning start.
RunResult run_method_seeded(const Graph& g, Method method,
                            std::uint64_t seed, const RunConfig& config = {},
                            std::vector<std::uint8_t>* best_sides = nullptr);

/// Convenience wrapper over run_method_seeded: consumes exactly one
/// draw from `rng` (the base seed), independent of starts and threads,
/// so driver Rng streams advance identically however trials execute.
RunResult run_method(const Graph& g, Method method, Rng& rng,
                     const RunConfig& config = {},
                     std::vector<std::uint8_t>* best_sides = nullptr);

}  // namespace gbis
