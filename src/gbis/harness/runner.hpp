// Experiment runner: executes a named bisection method under the
// paper's protocol — k independent random starts, report the best cut
// and the *total* time across all starts including initial-bisection
// generation (section VI: "All timing results will be the total time it
// took the procedure to complete both starting configurations
// (including the time to generate the initial bisections)").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gbis/core/compaction.hpp"
#include "gbis/core/multilevel.hpp"
#include "gbis/fm/fm.hpp"
#include "gbis/graph/graph.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {

/// The bisection methods the harness can run.
enum class Method {
  kKl,            ///< Kernighan-Lin (paper: KL)
  kSa,            ///< simulated annealing (paper: SA)
  kCkl,           ///< compacted Kernighan-Lin (paper: CKL)
  kCsa,           ///< compacted simulated annealing (paper: CSA)
  kFm,            ///< Fiduccia-Mattheyses (ablation)
  kCfm,           ///< compacted FM (ablation)
  kMultilevelKl,  ///< multilevel compaction + KL (extension)
  kGreedy,        ///< greedy region growing (baseline)
  kSpectral,      ///< spectral bisection (baseline/extension)
  kRandom,        ///< best random bisection (baseline)
};

/// Short display name ("KL", "CSA", ...).
std::string method_name(Method method);

/// Shared configuration for a method run.
struct RunConfig {
  std::uint32_t starts = 2;  ///< independent random starts (paper: 2)
  KlOptions kl;
  SaOptions sa;
  FmOptions fm;
  CompactionOptions compaction;
  MultilevelOptions multilevel;
};

/// Outcome of running one method on one graph.
struct RunResult {
  Weight best_cut = 0;         ///< best over all starts
  double total_seconds = 0.0;  ///< all starts, incl. start generation
};

/// Runs `method` on g with `config.starts` independent starts. When
/// `best_sides` is non-null it receives the side assignment of the
/// winning start.
RunResult run_method(const Graph& g, Method method, Rng& rng,
                     const RunConfig& config = {},
                     std::vector<std::uint8_t>* best_sides = nullptr);

}  // namespace gbis
