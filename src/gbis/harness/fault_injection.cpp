#include "gbis/harness/fault_injection.hpp"

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <thread>

#include "gbis/harness/shutdown.hpp"

namespace gbis {

namespace {

[[noreturn]] void bad_entry(const std::string& entry) {
  throw std::invalid_argument(
      "fault spec entry \"" + entry +
      "\" does not match <throw|hang|stop>@trial:<id>");
}

FaultKind parse_kind(const std::string& name, const std::string& entry) {
  if (name == "throw") return FaultKind::kThrow;
  if (name == "hang") return FaultKind::kHang;
  if (name == "stop") return FaultKind::kStop;
  bad_entry(entry);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) bad_entry(entry);

    const std::size_t at = entry.find('@');
    if (at == std::string::npos) bad_entry(entry);
    const FaultKind kind = parse_kind(entry.substr(0, at), entry);

    const std::string site = entry.substr(at + 1);
    if (site.rfind("trial:", 0) != 0) bad_entry(entry);
    const std::string id_text = site.substr(6);
    if (id_text.empty() ||
        id_text.find_first_not_of("0123456789") != std::string::npos) {
      bad_entry(entry);
    }
    const std::uint64_t id = std::strtoull(id_text.c_str(), nullptr, 10);
    plan.by_trial_[id] = kind;
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* raw = std::getenv("GBIS_FAULTS");
  if (raw == nullptr || *raw == '\0') return {};
  try {
    return parse(raw);
  } catch (const std::invalid_argument& error) {
    std::cerr << "gbis: ignoring GBIS_FAULTS=\"" << raw << "\" ("
              << error.what() << ")\n";
    return {};
  }
}

FaultKind FaultPlan::at(std::uint64_t trial_id) const {
  const auto it = by_trial_.find(trial_id);
  return it == by_trial_.end() ? FaultKind::kNone : it->second;
}

void maybe_inject_fault(const FaultPlan* plan, std::uint64_t trial_id,
                        const Deadline& deadline) {
  if (plan == nullptr || plan->empty()) return;
  switch (plan->at(trial_id)) {
    case FaultKind::kNone:
      return;
    case FaultKind::kThrow:
      throw InjectedFault("injected fault: throw@trial:" +
                          std::to_string(trial_id));
    case FaultKind::kHang:
      // A cooperative hang: exactly what a stuck SA schedule looks like
      // to the harness. Rescued by the trial deadline or a shutdown
      // request; with neither it hangs for real.
      for (;;) {
        if (deadline.expired()) {
          throw DeadlineExceeded("injected fault: hang@trial:" +
                                 std::to_string(trial_id) +
                                 " hit the trial deadline");
        }
        if (shutdown_requested()) {
          throw DeadlineExceeded("injected fault: hang@trial:" +
                                 std::to_string(trial_id) +
                                 " aborted by shutdown");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    case FaultKind::kStop:
      request_shutdown();
      return;
  }
}

}  // namespace gbis
