#include "gbis/harness/fault_injection.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <new>
#include <stdexcept>
#include <thread>

#include "gbis/harness/shutdown.hpp"

namespace gbis {

namespace {

[[noreturn]] void bad_entry(const std::string& entry) {
  throw std::invalid_argument(
      "fault spec entry \"" + entry +
      "\" does not match <throw|hang|stop>@trial:<id>");
}

FaultKind parse_kind(const std::string& name, const std::string& entry) {
  if (name == "throw") return FaultKind::kThrow;
  if (name == "hang") return FaultKind::kHang;
  if (name == "stop") return FaultKind::kStop;
  bad_entry(entry);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) bad_entry(entry);

    const std::size_t at = entry.find('@');
    if (at == std::string::npos) bad_entry(entry);
    const FaultKind kind = parse_kind(entry.substr(0, at), entry);

    const std::string site = entry.substr(at + 1);
    if (site.rfind("trial:", 0) != 0) bad_entry(entry);
    const std::string id_text = site.substr(6);
    if (id_text.empty() ||
        id_text.find_first_not_of("0123456789") != std::string::npos) {
      bad_entry(entry);
    }
    const std::uint64_t id = std::strtoull(id_text.c_str(), nullptr, 10);
    plan.by_trial_[id] = kind;
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* raw = std::getenv("GBIS_FAULTS");
  if (raw == nullptr || *raw == '\0') return {};
  try {
    return parse(raw);
  } catch (const std::invalid_argument& error) {
    std::cerr << "gbis: ignoring GBIS_FAULTS=\"" << raw << "\" ("
              << error.what() << ")\n";
    return {};
  }
}

FaultKind FaultPlan::at(std::uint64_t trial_id) const {
  const auto it = by_trial_.find(trial_id);
  return it == by_trial_.end() ? FaultKind::kNone : it->second;
}

SvcFaultPlan SvcFaultPlan::parse(const std::string& spec) {
  const auto bad = [](const std::string& entry) -> void {
    throw std::invalid_argument(
        "service fault spec entry \"" + entry +
        "\" does not match <throw|hang|oom|crash>@<req|solve|batch>:<n>");
  };
  SvcFaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) bad(entry);

    const std::size_t at = entry.find('@');
    const std::size_t colon = entry.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos) bad(entry);

    const std::string kind_text = entry.substr(0, at);
    SvcFaultKind kind = SvcFaultKind::kNone;
    if (kind_text == "throw") kind = SvcFaultKind::kThrow;
    else if (kind_text == "hang") kind = SvcFaultKind::kHang;
    else if (kind_text == "oom") kind = SvcFaultKind::kOom;
    else if (kind_text == "crash") kind = SvcFaultKind::kCrash;
    else bad(entry);

    const std::string site_text = entry.substr(at + 1, colon - at - 1);
    SvcFaultSite site = SvcFaultSite::kReq;
    if (site_text == "req") site = SvcFaultSite::kReq;
    else if (site_text == "solve") site = SvcFaultSite::kSolve;
    else if (site_text == "batch") site = SvcFaultSite::kBatch;
    else bad(entry);

    const std::string id_text = entry.substr(colon + 1);
    if (id_text.empty() ||
        id_text.find_first_not_of("0123456789") != std::string::npos) {
      bad(entry);
    }
    const std::uint64_t id = std::strtoull(id_text.c_str(), nullptr, 10);
    plan.by_site_[id * 4 + static_cast<std::uint64_t>(site)] = kind;
  }
  return plan;
}

SvcFaultPlan SvcFaultPlan::from_env() {
  const char* raw = std::getenv("GBIS_SVC_FAULTS");
  if (raw == nullptr || *raw == '\0') return {};
  try {
    return parse(raw);
  } catch (const std::invalid_argument& error) {
    std::cerr << "gbis: ignoring GBIS_SVC_FAULTS=\"" << raw << "\" ("
              << error.what() << ")\n";
    return {};
  }
}

SvcFaultKind SvcFaultPlan::at(SvcFaultSite site, std::uint64_t ordinal) const {
  const auto it =
      by_site_.find(ordinal * 4 + static_cast<std::uint64_t>(site));
  return it == by_site_.end() ? SvcFaultKind::kNone : it->second;
}

namespace {

const char* svc_site_name(SvcFaultSite site) {
  switch (site) {
    case SvcFaultSite::kReq: return "req";
    case SvcFaultSite::kSolve: return "solve";
    case SvcFaultSite::kBatch: return "batch";
  }
  return "req";
}

}  // namespace

void maybe_inject_svc_fault(const SvcFaultPlan* plan, SvcFaultSite site,
                            std::uint64_t ordinal, const Deadline& deadline,
                            const std::atomic<bool>* stop) {
  if (plan == nullptr || plan->empty()) return;
  const std::string where =
      std::string(svc_site_name(site)) + ":" + std::to_string(ordinal);
  switch (plan->at(site, ordinal)) {
    case SvcFaultKind::kNone:
      return;
    case SvcFaultKind::kThrow:
      throw InjectedFault("injected fault: throw@" + where);
    case SvcFaultKind::kOom:
      throw std::bad_alloc();
    case SvcFaultKind::kHang:
      // Cooperative, like the campaign hang: rescued by the request
      // deadline or a shutdown/stop request; with neither it hangs for
      // real, which is the point.
      for (;;) {
        if (deadline.expired()) {
          throw DeadlineExceeded("injected fault: hang@" + where +
                                 " hit the request deadline");
        }
        if (shutdown_requested() ||
            (stop != nullptr && stop->load(std::memory_order_acquire))) {
          throw DeadlineExceeded("injected fault: hang@" + where +
                                 " aborted by shutdown");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    case SvcFaultKind::kCrash:
      // The crash-safety chaos hook: die exactly like an external
      // kill -9 — no unwinding, no flushing, no atexit. The one thing
      // that does survive is the flight recorder's black box: the dump
      // hook is async-signal-safe, so firing it here models a fatal-
      // signal handler getting its last write out.
      trigger_flight_dump();
      std::raise(SIGKILL);
      return;
  }
}

void maybe_inject_fault(const FaultPlan* plan, std::uint64_t trial_id,
                        const Deadline& deadline) {
  if (plan == nullptr || plan->empty()) return;
  switch (plan->at(trial_id)) {
    case FaultKind::kNone:
      return;
    case FaultKind::kThrow:
      throw InjectedFault("injected fault: throw@trial:" +
                          std::to_string(trial_id));
    case FaultKind::kHang:
      // A cooperative hang: exactly what a stuck SA schedule looks like
      // to the harness. Rescued by the trial deadline or a shutdown
      // request; with neither it hangs for real.
      for (;;) {
        if (deadline.expired()) {
          throw DeadlineExceeded("injected fault: hang@trial:" +
                                 std::to_string(trial_id) +
                                 " hit the trial deadline");
        }
        if (shutdown_requested()) {
          throw DeadlineExceeded("injected fault: hang@trial:" +
                                 std::to_string(trial_id) +
                                 " aborted by shutdown");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    case FaultKind::kStop:
      request_shutdown();
      return;
  }
}

}  // namespace gbis
