#include "gbis/harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace gbis {

TablePrinter::TablePrinter(std::ostream& out, std::vector<Column> columns)
    : out_(out), columns_(std::move(columns)) {
  for (Column& c : columns_) {
    c.width = std::max(c.width, static_cast<int>(c.header.size()));
  }
}

void TablePrinter::print_header() {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    out_ << (i == 0 ? "" : "  ") << std::setw(columns_[i].width)
         << columns_[i].header;
  }
  out_ << '\n';
  print_separator();
}

void TablePrinter::print_separator() {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i != 0) out_ << "  ";
    out_ << std::string(static_cast<std::size_t>(columns_[i].width), '-');
  }
  out_ << '\n';
}

TablePrinter& TablePrinter::cell(const std::string& value) {
  pending_.push_back(value);
  return *this;
}

TablePrinter& TablePrinter::cell(const char* value) {
  pending_.emplace_back(value);
  return *this;
}

TablePrinter& TablePrinter::cell(double value, int precision) {
  if (std::isnan(value)) {
    pending_.emplace_back("n/a");
    return *this;
  }
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  pending_.push_back(ss.str());
  return *this;
}

TablePrinter& TablePrinter::cell(std::int64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

TablePrinter& TablePrinter::cell(std::uint64_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

TablePrinter& TablePrinter::cell(std::uint32_t value) {
  pending_.push_back(std::to_string(value));
  return *this;
}

void TablePrinter::end_row() {
  if (pending_.size() != columns_.size()) {
    throw std::logic_error("TablePrinter: cell count mismatch");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    out_ << (i == 0 ? "" : "  ") << std::setw(columns_[i].width)
         << pending_[i];
  }
  out_ << '\n';
  pending_.clear();
}

}  // namespace gbis
