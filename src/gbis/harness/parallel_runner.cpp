#include "gbis/harness/parallel_runner.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "gbis/harness/thread_pool.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/rng/splitmix.hpp"

namespace gbis {

std::vector<TrialResult> run_trials(std::span<const Graph> graphs,
                                    std::span<const TrialSpec> trials,
                                    const RunConfig& config,
                                    std::uint64_t seed, unsigned threads,
                                    bool keep_sides) {
  std::vector<TrialResult> results(trials.size());
  if (trials.empty()) return results;
  for (const TrialSpec& t : trials) {
    if (t.graph_index >= graphs.size()) {
      throw std::out_of_range("run_trials: graph_index out of range");
    }
  }
  // Never spin up more workers than there are trials.
  const unsigned workers = std::min<std::uint64_t>(
      ThreadPool::resolve_threads(threads), trials.size());
  ThreadPool pool(workers);
  pool.parallel_for(trials.size(), [&](std::size_t i) {
    const TrialSpec& spec = trials[i];
    Rng rng(splitmix64_at(seed, static_cast<std::uint64_t>(i)));
    const CpuTimer timer;
    const Bisection b =
        run_one_start(graphs[spec.graph_index], spec.method, rng, config);
    TrialResult& out = results[i];
    out.cpu_seconds = timer.elapsed_seconds();
    out.cut = b.cut();
    if (keep_sides) {
      out.sides.assign(b.sides().begin(), b.sides().end());
    }
  });
  return results;
}

std::vector<MethodOutcome> run_trial_matrix(std::span<const Graph> graphs,
                                            std::span<const Method> methods,
                                            const RunConfig& config,
                                            std::uint64_t seed,
                                            bool keep_sides) {
  if (config.starts == 0) {
    throw std::invalid_argument("run_trial_matrix: starts >= 1");
  }
  std::vector<TrialSpec> trials;
  trials.reserve(graphs.size() * methods.size() * config.starts);
  for (std::uint32_t g = 0; g < graphs.size(); ++g) {
    for (const Method m : methods) {
      for (std::uint32_t s = 0; s < config.starts; ++s) {
        trials.push_back({g, m, s});
      }
    }
  }
  const std::vector<TrialResult> raw =
      run_trials(graphs, trials, config, seed, config.threads, keep_sides);

  // Reduce each (graph, method) cell in start order: deterministic, and
  // ties keep the earliest start like the serial loop always did.
  std::vector<MethodOutcome> outcomes(graphs.size() * methods.size());
  std::size_t t = 0;
  for (std::size_t cell = 0; cell < outcomes.size(); ++cell) {
    MethodOutcome& out = outcomes[cell];
    out.best_cut = std::numeric_limits<Weight>::max();
    out.trial_seconds.reserve(config.starts);
    for (std::uint32_t s = 0; s < config.starts; ++s, ++t) {
      const TrialResult& trial = raw[t];
      out.cpu_seconds += trial.cpu_seconds;
      out.trial_seconds.push_back(trial.cpu_seconds);
      if (trial.cut < out.best_cut) {
        out.best_cut = trial.cut;
        out.best_start = s;
        if (keep_sides) out.best_sides = trial.sides;
      }
    }
  }
  return outcomes;
}

}  // namespace gbis
