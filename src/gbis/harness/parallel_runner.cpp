#include "gbis/harness/parallel_runner.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "gbis/harness/fault_injection.hpp"
#include "gbis/harness/thread_pool.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/obs/progress.hpp"
#include "gbis/obs/trace_export.hpp"
#include "gbis/rng/splitmix.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

namespace {

ProgressOutcome progress_outcome(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk: return ProgressOutcome::kOk;
    case TrialStatus::kFailed: return ProgressOutcome::kFailed;
    case TrialStatus::kTimedOut: return ProgressOutcome::kTimedOut;
    case TrialStatus::kSkipped: return ProgressOutcome::kSkipped;
  }
  return ProgressOutcome::kFailed;
}

}  // namespace

const char* trial_status_name(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk: return "ok";
    case TrialStatus::kFailed: return "failed";
    case TrialStatus::kTimedOut: return "timed_out";
    case TrialStatus::kSkipped: return "skipped";
  }
  return "unknown";
}

const char* trial_status_cell(TrialStatus status) {
  switch (status) {
    case TrialStatus::kOk: return "";
    case TrialStatus::kFailed: return "err";
    case TrialStatus::kTimedOut: return "t/o";
    case TrialStatus::kSkipped: return "skip";
  }
  return "?";
}

std::vector<TrialResult> run_trials_ex(std::span<const Graph> graphs,
                                       std::span<const TrialSpec> trials,
                                       const RunConfig& config,
                                       std::uint64_t seed, unsigned threads,
                                       const TrialRunOptions& options) {
  std::vector<TrialResult> results(trials.size());
  if (trials.empty()) return results;
  for (const TrialSpec& t : trials) {
    if (t.graph_index >= graphs.size()) {
      throw std::out_of_range("run_trials: graph_index out of range");
    }
  }

  // Resume: adopt precompleted results up front; their jobs no-op.
  std::vector<std::uint8_t> adopted(trials.size(), 0);
  if (options.precompleted != nullptr) {
    for (const auto& [id, result] : *options.precompleted) {
      if (id < results.size()) {
        results[id] = result;
        adopted[id] = 1;
      }
    }
  }

  // Observability: per-trial metric collection (deterministic part),
  // the batch epoch timer and worker-lane registry (Chrome-trace
  // part), and the live progress meter.
  const bool collect = config.obs.enabled();
  const WallTimer epoch;  // trial start offsets are relative to this
  std::mutex tid_mutex;   // guards the thread-id -> dense-lane map
  std::unordered_map<std::thread::id, std::uint32_t> tid_map;
  std::unique_ptr<ProgressMeter> progress;
  if (config.obs.progress) {
    progress = std::make_unique<ProgressMeter>(trials.size());
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (adopted[i]) progress->adopt(progress_outcome(results[i].status));
    }
  }

  std::mutex complete_mutex;  // serializes the on_complete hook

  // Never spin up more workers than there are trials.
  const unsigned workers = std::min<std::uint64_t>(
      ThreadPool::resolve_threads(threads), trials.size());
  ThreadPool pool(workers);
  const std::vector<JobOutcome> outcomes = pool.parallel_for_collect(
      trials.size(),
      [&](std::size_t i) {
        if (adopted[i]) return;
        const TrialSpec& spec = trials[i];
        TrialResult& out = results[i];
        // A shutdown between dequeue checks: skip without running.
        if (options.stop != nullptr &&
            options.stop->load(std::memory_order_acquire)) {
          out.status = TrialStatus::kSkipped;
          if (progress != nullptr) progress->record(ProgressOutcome::kSkipped);
          return;
        }
        const Deadline deadline = config.trial_deadline > 0
                                      ? Deadline::after(config.trial_deadline)
                                      : Deadline();
        // Bind the recording sink before anything can throw, so failed
        // and timed-out trials still carry their partial metrics and a
        // Chrome-trace span. Counters/hists/trace points depend only on
        // (seed, i); the lane id and epoch offset are wall-clock data.
        std::shared_ptr<TrialMetrics> tm;
        MetricsSink sink;
        RunConfig local = config;
        local.kl.deadline = deadline;
        local.sa.deadline = deadline;
        local.fm.deadline = deadline;
        local.path.deadline = deadline;
        if (collect) {
          tm = std::make_shared<TrialMetrics>();
          tm->start_offset_seconds = epoch.elapsed_seconds();
          {
            const std::lock_guard<std::mutex> lock(tid_mutex);
            tm->tid = static_cast<std::uint32_t>(
                tid_map.try_emplace(std::this_thread::get_id(),
                                    static_cast<std::uint32_t>(tid_map.size()))
                    .first->second);
          }
          sink = MetricsSink(tm.get(), config.obs.trace_capacity);
          local.metrics = &sink;
          local.kl.metrics = &sink;
          local.sa.metrics = &sink;
          local.fm.metrics = &sink;
          local.compaction.metrics = &sink;
          local.multilevel.metrics = &sink;
        }
        const CpuTimer timer;
        try {
          maybe_inject_fault(options.faults, i, deadline);
          Rng rng(splitmix64_at(seed, static_cast<std::uint64_t>(i)));
          const Bisection b =
              run_one_start(graphs[spec.graph_index], spec.method, rng, local);
          out.cut = b.cut();
          out.status = TrialStatus::kOk;
          if (options.keep_sides) {
            out.sides.assign(b.sides().begin(), b.sides().end());
          }
        } catch (const DeadlineExceeded& error) {
          out.status = TrialStatus::kTimedOut;
          out.error = error.what();
        } catch (const std::exception& error) {
          out.status = TrialStatus::kFailed;
          out.error = error.what();
        } catch (...) {
          out.status = TrialStatus::kFailed;
          out.error = "unknown exception";
        }
        out.cpu_seconds = timer.elapsed_seconds();
        if (tm != nullptr) {
          tm->wall_seconds = sink.elapsed_seconds();
          out.metrics = std::move(tm);
        }
        if (progress != nullptr) {
          progress->record(progress_outcome(out.status));
        }
        if (options.on_complete != nullptr &&
            out.status != TrialStatus::kSkipped) {
          const std::lock_guard<std::mutex> lock(complete_mutex);
          options.on_complete(static_cast<std::uint64_t>(i), out);
        }
      },
      options.stop);

  // Trials the drained pool never claimed.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].state == JobState::kNotRun && !adopted[i]) {
      results[i].status = TrialStatus::kSkipped;
      if (progress != nullptr) progress->record(ProgressOutcome::kSkipped);
    }
  }
  if (progress != nullptr) progress->finish();

  // Exports run once the whole batch is settled so the files always
  // describe a complete, trial-id-ordered result set.
  if (!config.obs.metrics_path.empty() || !config.obs.trace_dir.empty()) {
    export_observability(config.obs, results, trials);
  }
  return results;
}

std::vector<TrialResult> run_trials(std::span<const Graph> graphs,
                                    std::span<const TrialSpec> trials,
                                    const RunConfig& config,
                                    std::uint64_t seed, unsigned threads,
                                    bool keep_sides) {
  TrialRunOptions options;
  options.keep_sides = keep_sides;
  return run_trials_ex(graphs, trials, config, seed, threads, options);
}

std::vector<TrialSpec> enumerate_trial_matrix(std::size_t num_graphs,
                                              std::span<const Method> methods,
                                              std::uint32_t starts) {
  std::vector<TrialSpec> trials;
  trials.reserve(num_graphs * methods.size() * starts);
  for (std::uint32_t g = 0; g < num_graphs; ++g) {
    for (const Method m : methods) {
      for (std::uint32_t s = 0; s < starts; ++s) {
        trials.push_back({g, m, s});
      }
    }
  }
  return trials;
}

std::vector<MethodOutcome> reduce_trial_matrix(
    std::span<const TrialResult> raw, std::size_t num_cells,
    std::uint32_t starts, bool keep_sides) {
  std::vector<MethodOutcome> outcomes(num_cells);
  std::size_t t = 0;
  for (std::size_t cell = 0; cell < num_cells; ++cell) {
    MethodOutcome& out = outcomes[cell];
    out.best_cut = std::numeric_limits<Weight>::max();
    out.trial_seconds.reserve(starts);
    for (std::uint32_t s = 0; s < starts; ++s, ++t) {
      const TrialResult& trial = raw[t];
      out.cpu_seconds += trial.cpu_seconds;
      out.trial_seconds.push_back(trial.cpu_seconds);
      switch (trial.status) {
        case TrialStatus::kOk:
          ++out.ok;
          if (trial.cut < out.best_cut) {
            out.best_cut = trial.cut;
            out.best_start = s;
            if (keep_sides) out.best_sides = trial.sides;
          }
          break;
        case TrialStatus::kFailed: ++out.failed; break;
        case TrialStatus::kTimedOut: ++out.timed_out; break;
        case TrialStatus::kSkipped: ++out.skipped; break;
      }
      if (out.first_error.empty() && !trial.error.empty()) {
        out.first_error = trial.error;
      }
    }
    if (out.ok > 0) {
      out.status = TrialStatus::kOk;
    } else {
      out.best_cut = 0;  // no valid cut; callers must consult status
      if (out.failed > 0) {
        out.status = TrialStatus::kFailed;
      } else if (out.timed_out > 0) {
        out.status = TrialStatus::kTimedOut;
      } else {
        out.status = TrialStatus::kSkipped;
      }
    }
  }
  return outcomes;
}

std::vector<MethodOutcome> run_trial_matrix(std::span<const Graph> graphs,
                                            std::span<const Method> methods,
                                            const RunConfig& config,
                                            std::uint64_t seed,
                                            bool keep_sides) {
  if (config.starts == 0) {
    throw std::invalid_argument("run_trial_matrix: starts >= 1");
  }
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(graphs.size(), methods, config.starts);
  const std::vector<TrialResult> raw =
      run_trials(graphs, trials, config, seed, config.threads, keep_sides);
  return reduce_trial_matrix(raw, graphs.size() * methods.size(),
                             config.starts, keep_sides);
}

}  // namespace gbis
