#include "gbis/harness/thread_pool.hpp"

#include <algorithm>

namespace gbis {

unsigned ThreadPool::resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(hw, 1u);
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (unsigned i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      batch = batch_;
    }
    if (batch != nullptr) work_on(*batch);
  }
}

void ThreadPool::work_on(Batch& batch) {
  for (;;) {
    // Drain mode: an external stop flag or a strict-mode failure means
    // remaining indices are claimed but not executed — their slots stay
    // kNotRun — so `pending` still reaches zero and the caller wakes.
    const bool draining =
        (batch.stop != nullptr &&
         batch.stop->load(std::memory_order_acquire)) ||
        (batch.stop_on_error &&
         batch.failed.load(std::memory_order_acquire));
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.count) return;
    if (!draining) {
      // The claiming worker owns slot i exclusively: no lock needed.
      try {
        (*batch.job)(i);
        batch.outcomes[i].state = JobState::kDone;
      } catch (...) {
        batch.outcomes[i].state = JobState::kError;
        batch.outcomes[i].error = std::current_exception();
        batch.failed.store(true, std::memory_order_release);
      }
    }
    if (batch.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last job: wake the caller. Take the lock so the notify cannot
      // race between the caller's predicate check and its wait.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

std::vector<JobOutcome> ThreadPool::run_batch(
    std::size_t count, const std::function<void(std::size_t)>& job,
    const std::atomic<bool>* stop, bool stop_on_error) {
  std::vector<JobOutcome> outcomes(count);
  if (count == 0) return outcomes;
  auto batch = std::make_shared<Batch>();
  batch->job = &job;
  batch->count = count;
  batch->pending.store(count, std::memory_order_relaxed);
  batch->outcomes = outcomes.data();
  batch->stop = stop;
  batch->stop_on_error = stop_on_error;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  wake_.notify_all();
  work_on(*batch);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return batch->pending.load(std::memory_order_acquire) == 0;
    });
    batch_.reset();
  }
  return outcomes;
}

std::vector<JobOutcome> ThreadPool::parallel_for_collect(
    std::size_t count, const std::function<void(std::size_t)>& job,
    const std::atomic<bool>* stop) {
  return run_batch(count, job, stop, /*stop_on_error=*/false);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& job) {
  const std::vector<JobOutcome> outcomes =
      run_batch(count, job, nullptr, /*stop_on_error=*/true);
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.state == JobState::kError) {
      std::rethrow_exception(outcome.error);
    }
  }
}

}  // namespace gbis
