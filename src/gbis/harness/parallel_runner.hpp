// Deterministic parallel trial scheduler. Every paper table is a pile
// of fully independent trials — (graph, method, start) triples — so the
// harness enumerates them as jobs with dense trial ids, runs them on a
// ThreadPool, and reduces results in trial-id order. Trial `t` draws
// from an Rng seeded with splitmix64_at(base_seed, t), never from a
// shared driver stream, which makes every cut bit-identical for any
// thread count (including 1) at a fixed seed.
//
// Fault isolation: a trial is a unit of failure as well as a unit of
// work. An exception marks that one trial `failed`, a trial-deadline
// overrun marks it `timed_out`, and a shutdown request drains the
// remaining queue as `skipped` — the batch always completes and the
// other trials' results survive. Determinism is unaffected: each
// trial's Rng depends only on (seed, trial id), so a resumed campaign
// reproduces exactly the cuts an uninterrupted run would have.
//
// Timing: each trial records its own thread-CPU seconds (CpuTimer), so
// the paper's "total time over all starts" protocol — a *sum* of trial
// costs — survives concurrency; wall seconds are reported separately by
// the callers that need them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbis/harness/runner.hpp"

namespace gbis {

class ThreadPool;
class FaultPlan;

/// One schedulable unit of work: run `method` on `graphs[graph_index]`
/// from one fresh random start.
struct TrialSpec {
  std::uint32_t graph_index = 0;
  Method method = Method::kKl;
  std::uint32_t start_index = 0;  ///< which start this trial is, 0-based
};

/// How one trial ended.
enum class TrialStatus : std::uint8_t {
  kOk = 0,    ///< ran to completion; `cut` is valid
  kFailed,    ///< threw; `error` holds the what() text
  kTimedOut,  ///< hit RunConfig::trial_deadline (cooperative check)
  kSkipped,   ///< never ran: shutdown drained the queue first
};

/// Journal/diagnostic name: "ok", "failed", "timed_out", "skipped".
const char* trial_status_name(TrialStatus status);

/// Table-cell marker: "" (ok), "err", "t/o", "skip".
const char* trial_status_cell(TrialStatus status);

/// What one trial produced.
struct TrialResult {
  TrialStatus status = TrialStatus::kOk;
  Weight cut = 0;          ///< valid only when status == kOk
  double cpu_seconds = 0;  ///< thread-CPU seconds spent in the trial
  std::string error;       ///< what() text for failed/timed-out trials
  std::vector<std::uint8_t> sides;  ///< filled only when keep_sides & ok
  /// Per-trial observability record; non-null only when
  /// RunConfig::obs.enabled() — filled for every *executed* trial
  /// (failed and timed-out included), null for skipped ones. Counters,
  /// histograms, and trace points are pure functions of (seed, trial
  /// id); the phase spans and timing fields are wall-clock data for the
  /// Chrome-trace export. Shared (not owned) so resume adoption and
  /// journaling can alias the same record.
  std::shared_ptr<const TrialMetrics> metrics;
};

/// Optional knobs of run_trials_ex beyond the plain run_trials
/// signature. All default to "off".
struct TrialRunOptions {
  bool keep_sides = false;
  /// Graceful shutdown: when *stop becomes true the pool stops
  /// dequeuing, in-flight trials finish (or hit their deadline), and
  /// undequeued trials come back kSkipped.
  const std::atomic<bool>* stop = nullptr;
  /// Deterministic fault injection (see fault_injection.hpp).
  const FaultPlan* faults = nullptr;
  /// Checkpoint hook: called once per *executed* trial as it completes
  /// (any order; calls are serialized internally). Not called for
  /// skipped or precompleted trials.
  std::function<void(std::uint64_t trial_id, const TrialResult&)>
      on_complete;
  /// Resume support: results adopted by trial id without re-running.
  const std::unordered_map<std::uint64_t, TrialResult>* precompleted =
      nullptr;
};

/// Aggregate of all starts of one (graph, method) cell, reduced in
/// start order (ties keep the earliest start, matching the serial
/// harness). A cell is `ok` when at least one start is; otherwise its
/// status is the dominant failure (all-timeouts -> kTimedOut, any
/// failure -> kFailed, nothing ran -> kSkipped) and best_cut is
/// meaningless.
struct MethodOutcome {
  Weight best_cut = 0;
  double cpu_seconds = 0;  ///< summed over executed starts (paper protocol)
  std::vector<double> trial_seconds;  ///< per-start CPU seconds
  std::uint32_t best_start = 0;       ///< index of the winning start
  std::vector<std::uint8_t> best_sides;  ///< winning sides (keep_sides)
  TrialStatus status = TrialStatus::kOk;  ///< cell-level verdict
  std::uint32_t ok = 0, failed = 0, timed_out = 0, skipped = 0;
  std::string first_error;  ///< first failure text, in start order
};

/// Runs every trial on `threads` workers (0 = hardware concurrency) and
/// returns results indexed exactly like `trials`. Trial `t` uses an Rng
/// seeded with splitmix64_at(seed, t). Trials are fault-isolated: an
/// exception or deadline overrun degrades that trial's status, it never
/// throws out of this call (only spec validation does, plus IoError
/// when a configured RunConfig::obs export destination is unwritable).
/// When config.obs.enabled(), every executed trial carries a
/// TrialMetrics record, and configured metrics/trace files are written
/// after the batch; config.obs.progress paints a live stderr line.
std::vector<TrialResult> run_trials(std::span<const Graph> graphs,
                                    std::span<const TrialSpec> trials,
                                    const RunConfig& config,
                                    std::uint64_t seed, unsigned threads,
                                    bool keep_sides = false);

/// Full-control variant: shutdown flag, fault plan, completion hook,
/// and precompleted (resumed) trials.
std::vector<TrialResult> run_trials_ex(std::span<const Graph> graphs,
                                       std::span<const TrialSpec> trials,
                                       const RunConfig& config,
                                       std::uint64_t seed, unsigned threads,
                                       const TrialRunOptions& options);

/// The canonical campaign enumeration: graphs × methods × starts,
/// graph-major, then method, then start — dense trial ids. Both
/// run_trial_matrix and the checkpointed campaign layer use exactly
/// this order, which is what makes journaled trial ids portable.
std::vector<TrialSpec> enumerate_trial_matrix(std::size_t num_graphs,
                                              std::span<const Method> methods,
                                              std::uint32_t starts);

/// Reduces a dense trial-matrix result vector (cells × starts, in
/// enumeration order) into per-cell outcomes.
std::vector<MethodOutcome> reduce_trial_matrix(
    std::span<const TrialResult> raw, std::size_t num_cells,
    std::uint32_t starts, bool keep_sides = false);

/// Enumerates graphs × methods × config.starts trials, runs them in
/// parallel, and reduces each (graph, method) cell. The returned vector
/// is indexed by `graph_index * methods.size() + method_index`.
std::vector<MethodOutcome> run_trial_matrix(std::span<const Graph> graphs,
                                            std::span<const Method> methods,
                                            const RunConfig& config,
                                            std::uint64_t seed,
                                            bool keep_sides = false);

}  // namespace gbis
