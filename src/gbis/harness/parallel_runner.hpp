// Deterministic parallel trial scheduler. Every paper table is a pile
// of fully independent trials — (graph, method, start) triples — so the
// harness enumerates them as jobs with dense trial ids, runs them on a
// ThreadPool, and reduces results in trial-id order. Trial `t` draws
// from an Rng seeded with splitmix64_at(base_seed, t), never from a
// shared driver stream, which makes every cut bit-identical for any
// thread count (including 1) at a fixed seed.
//
// Timing: each trial records its own thread-CPU seconds (CpuTimer), so
// the paper's "total time over all starts" protocol — a *sum* of trial
// costs — survives concurrency; wall seconds are reported separately by
// the callers that need them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/harness/runner.hpp"

namespace gbis {

class ThreadPool;

/// One schedulable unit of work: run `method` on `graphs[graph_index]`
/// from one fresh random start.
struct TrialSpec {
  std::uint32_t graph_index = 0;
  Method method = Method::kKl;
  std::uint32_t start_index = 0;  ///< which start this trial is, 0-based
};

/// What one trial produced.
struct TrialResult {
  Weight cut = 0;
  double cpu_seconds = 0;  ///< thread-CPU seconds spent in the trial
  std::vector<std::uint8_t> sides;  ///< filled only when keep_sides
};

/// Aggregate of all starts of one (graph, method) cell, reduced in
/// start order (ties keep the earliest start, matching the serial
/// harness).
struct MethodOutcome {
  Weight best_cut = 0;
  double cpu_seconds = 0;  ///< summed over starts (paper protocol)
  std::vector<double> trial_seconds;  ///< per-start CPU seconds
  std::uint32_t best_start = 0;       ///< index of the winning start
  std::vector<std::uint8_t> best_sides;  ///< winning sides (keep_sides)
};

/// Runs every trial on `threads` workers (0 = hardware concurrency) and
/// returns results indexed exactly like `trials`. Trial `t` uses an Rng
/// seeded with splitmix64_at(seed, t). Exceptions from trials propagate
/// after the batch drains.
std::vector<TrialResult> run_trials(std::span<const Graph> graphs,
                                    std::span<const TrialSpec> trials,
                                    const RunConfig& config,
                                    std::uint64_t seed, unsigned threads,
                                    bool keep_sides = false);

/// Enumerates graphs × methods × config.starts trials (graph-major,
/// then method, then start — dense trial ids), runs them in parallel,
/// and reduces each (graph, method) cell. The returned vector is
/// indexed by `graph_index * methods.size() + method_index`.
std::vector<MethodOutcome> run_trial_matrix(std::span<const Graph> graphs,
                                            std::span<const Method> methods,
                                            const RunConfig& config,
                                            std::uint64_t seed,
                                            bool keep_sides = false);

}  // namespace gbis
