#include "gbis/harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gbis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percent_improvement(double before, double after) {
  if (before == 0.0) return 0.0;
  return (before - after) / before * 100.0;
}

}  // namespace gbis
