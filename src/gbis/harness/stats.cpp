#include "gbis/harness/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace gbis {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;

  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());

  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double percent_improvement(double before, double after) {
  if (before == 0.0) {
    // A zero baseline has no meaningful percentage. Both zero means
    // "nothing to improve" (0%); otherwise return NaN rather than a
    // fake 0% that would mask a regression from a zero-cut baseline
    // (disconnected instances, component_pack). The table printer
    // renders NaN as "n/a".
    return after == 0.0 ? 0.0 : std::numeric_limits<double>::quiet_NaN();
  }
  return (before - after) / before * 100.0;
}

}  // namespace gbis
