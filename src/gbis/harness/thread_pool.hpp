// A small first-party worker pool for the experiment harness. The only
// primitive is a blocking parallel_for: indices are claimed dynamically
// (an atomic counter, so uneven trial costs balance across workers) and
// every job writes only to its own index's slot, which is what lets the
// trial runner reduce results in a fixed order and stay bit-identical
// for any worker count.
//
// Two entry points:
//  - parallel_for_collect: fault-isolating. Every job gets its own
//    outcome slot (done / error / not-run); nothing is thrown, and an
//    optional stop flag drains the batch without claiming new indices.
//  - parallel_for: strict. Stops claiming after the first failure
//    (drain-on-stop) and rethrows the lowest-index error — a
//    deterministic choice, unlike the old "first exception captured
//    wins" race.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gbis {

/// What happened to one index of a parallel_for_collect batch.
enum class JobState : std::uint8_t {
  kDone,    ///< job ran and returned normally
  kError,   ///< job threw; the exception is in `error`
  kNotRun,  ///< never claimed: the stop flag drained the batch first
};

/// Per-job outcome slot.
struct JobOutcome {
  JobState state = JobState::kNotRun;
  std::exception_ptr error;  ///< set iff state == kError
};

/// Fixed-size worker pool. The constructing thread participates in
/// every parallel_for, so a pool of size 1 spawns no threads at all and
/// runs jobs inline on the caller. Not re-entrant: parallel_for must
/// not be called from inside a job, and only one thread may drive the
/// pool at a time.
class ThreadPool {
 public:
  /// `threads` is the total worker count including the calling thread;
  /// 0 means std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers including the caller.
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs job(0) .. job(count - 1), blocking until all complete or the
  /// batch drains. Jobs are claimed in index order but may finish in
  /// any order and on any thread. Each index gets its own outcome slot;
  /// exceptions never propagate out of this call. When `stop` is
  /// non-null and becomes true, workers stop claiming new indices:
  /// in-flight jobs finish, unclaimed indices come back as kNotRun.
  std::vector<JobOutcome> parallel_for_collect(
      std::size_t count, const std::function<void(std::size_t)>& job,
      const std::atomic<bool>* stop = nullptr);

  /// Strict variant: runs jobs until all complete or one fails. After
  /// the first failure the batch drains without claiming new indices,
  /// and the lowest-index captured exception is rethrown (deterministic
  /// for a single-worker pool; the lowest recorded index otherwise).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& job);

  /// Resolves a requested thread count: 0 -> hardware concurrency,
  /// everything clamped to at least 1.
  static unsigned resolve_threads(unsigned requested);

 private:
  struct Batch {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};
    JobOutcome* outcomes = nullptr;           ///< one slot per index
    const std::atomic<bool>* stop = nullptr;  ///< external drain request
    std::atomic<bool> failed{false};          ///< set on first error
    bool stop_on_error = false;               ///< strict-mode drain
  };

  std::vector<JobOutcome> run_batch(std::size_t count,
                                    const std::function<void(std::size_t)>& job,
                                    const std::atomic<bool>* stop,
                                    bool stop_on_error);
  void worker_loop();
  void work_on(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;  // workers: new batch or shutdown
  std::condition_variable done_;  // caller: batch drained
  // Shared so a straggling worker that claims an out-of-range index
  // after the batch drains still holds the object alive.
  std::shared_ptr<Batch> batch_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace gbis
