// Checkpoint/resume layer for experiment campaigns. A campaign is the
// usual deterministic trial matrix (graphs × methods × starts, dense
// trial ids) plus a journal: an append-only JSONL file, atomically
// republished (tmp-file + rename) as each trial completes, keyed by a
// campaign fingerprint — a 64-bit hash of the base seed, the RunConfig
// knobs that influence outcomes, the trial enumeration, and the graph
// contents. On restart with a journal, completed trial ids are adopted
// and skipped; because trial `t`'s Rng depends only on (seed, t), a
// resumed campaign's cuts are bit-identical to an uninterrupted run.
//
// Journal format (docs/ROBUSTNESS.md has the full spec):
//   {"type":"campaign","version":1,"fingerprint":"<16 hex>","trials":N}
//   {"type":"trial","id":7,"status":"ok","cut":42,"cpu_seconds":0.012,
//    "metrics":{"kl.passes":3,...},"hists":{"kl.pass_improvement":[[4,2]]}}
//   {"type":"trial","id":9,"status":"failed","error":"..."}
// Skipped trials are never journaled — they must rerun on resume. The
// metrics/hists fields appear only when the campaign ran with
// observability on and that trial recorded something; on resume they
// are adopted verbatim, so aggregated metric summaries are reproduced
// exactly. Convergence traces and phase timings are *not* journaled —
// they are bulky, and the timing half is wall-clock data a resumed run
// could not honestly replay.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "gbis/harness/parallel_runner.hpp"

namespace gbis {

class FaultPlan;

/// One journal line: what trial `trial_id` produced.
struct TrialRecord {
  std::uint64_t trial_id = 0;
  TrialStatus status = TrialStatus::kOk;
  Weight cut = 0;
  double cpu_seconds = 0;
  std::string error;
  /// Counter/histogram summary (the deterministic part of
  /// TrialMetrics); null when the trial ran without observability.
  /// Aliased, never deep-copied, between TrialResult and the journal.
  std::shared_ptr<const TrialMetrics> metrics;
};

/// Stable 64-bit campaign identity. Two campaigns share a fingerprint
/// iff their journals are interchangeable: same seed, same
/// outcome-relevant RunConfig knobs (threads deliberately excluded —
/// cuts are thread-count invariant), same trial enumeration, and same
/// graph contents (vertex/edge structure and weights).
std::uint64_t campaign_fingerprint(std::uint64_t seed,
                                   const RunConfig& config,
                                   std::span<const TrialSpec> trials,
                                   std::span<const Graph> graphs);

/// The journal writer. Each append() rewrites the whole journal to
/// `<path>.tmp` and renames it over `<path>` — atomic on POSIX, so a
/// crash at any instant leaves either the previous or the new journal,
/// never a torn one. Thread-safe.
class CheckpointJournal {
 public:
  /// Creates (or overwrites) the journal at `path` with a header line
  /// and `initial` pre-adopted records (used when resuming in place).
  /// Throws IoError if the path is unwritable.
  CheckpointJournal(std::string path, std::uint64_t fingerprint,
                    std::uint64_t num_trials,
                    std::span<const TrialRecord> initial = {});

  void append(const TrialRecord& record);

  const std::string& path() const { return path_; }

  /// A parsed journal.
  struct Loaded {
    std::uint64_t fingerprint = 0;
    std::uint64_t num_trials = 0;
    std::vector<TrialRecord> records;  ///< append order; last id wins
  };

  /// Parses a journal; throws IoError (with the 1-based line number and
  /// offending text) on malformed input.
  static Loaded load(const std::string& path);

 private:
  void publish_locked();

  std::mutex mutex_;
  std::string path_;
  std::vector<std::string> lines_;  ///< header + one line per record
};

/// Campaign-level knobs on top of RunConfig.
struct CampaignOptions {
  /// Journal destination; "" = run without checkpointing.
  std::string journal_path;
  /// Journal to adopt completed trials from; "" = fresh campaign. May
  /// equal journal_path (resume in place). A fingerprint or trial-count
  /// mismatch throws — a journal from a different campaign must never
  /// silently contaminate results.
  std::string resume_path;
  /// Graceful shutdown flag (e.g. &shutdown_flag()).
  const std::atomic<bool>* stop = nullptr;
  /// Fault plan; nullptr reads GBIS_FAULTS from the environment.
  const FaultPlan* faults = nullptr;
  bool keep_sides = false;
};

/// What a campaign produced.
struct CampaignResult {
  std::vector<TrialResult> trials;   ///< dense, by trial id
  std::vector<MethodOutcome> cells;  ///< graph-major × methods
  std::uint64_t fingerprint = 0;
  std::uint32_t ok = 0, failed = 0, timed_out = 0, skipped = 0;
  std::uint64_t resumed = 0;  ///< trials adopted from the resume journal
  /// True when the campaign did not run to completion (shutdown
  /// requested / trials skipped); the caller should hint at --resume.
  bool interrupted = false;
};

/// Runs the graphs × methods × config.starts campaign with fault
/// isolation, optional checkpointing, and optional resume. Trial
/// outcomes — including failures — are data, not exceptions; only
/// setup errors (bad journal, mismatched fingerprint) throw.
CampaignResult run_campaign(std::span<const Graph> graphs,
                            std::span<const Method> methods,
                            const RunConfig& config, std::uint64_t seed,
                            const CampaignOptions& options = {});

}  // namespace gbis
