// Minimal CSV emission for experiment data (convergence traces,
// variance studies) so results can be plotted outside the harness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gbis {

/// Streams rows of a CSV file with a fixed header. Values are quoted
/// only when they contain commas/quotes/newlines (RFC-4180 style).
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> columns);

  CsvWriter& cell(const std::string& value);
  /// Round-trip-exact formatting (max_digits10) for data columns.
  CsvWriter& cell(double value);
  /// Fixed-precision formatting for display-oriented columns.
  CsvWriter& cell(double value, int precision);
  CsvWriter& cell(std::int64_t value);
  CsvWriter& cell(std::uint64_t value);

  /// Ends the row; throws std::logic_error on a column-count mismatch.
  void end_row();

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::vector<std::string> pending_;
};

}  // namespace gbis
