#include "gbis/harness/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <string>

#include "gbis/harness/csv.hpp"
#include "gbis/harness/parallel_runner.hpp"

#include "gbis/exact/tree.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/stats.hpp"
#include "gbis/harness/table.hpp"

namespace gbis {

namespace {

void warn_rejected(const char* name, const char* raw, const char* expected) {
  std::cerr << "gbis: ignoring " << name << "=\"" << raw << "\" (expected "
            << expected << "); keeping the default\n";
}

double env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !(value > 0.0)) {
    warn_rejected(name, raw, "a positive number");
    return fallback;
  }
  return value;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    warn_rejected(name, raw, "an unsigned integer");
    return fallback;
  }
  return value;
}

/// Scales a vertex count, keeping it even and at least 4.
std::uint32_t scaled_even(std::uint32_t base, double scale) {
  auto n = static_cast<std::uint32_t>(static_cast<double>(base) * scale);
  n -= n % 2;
  return std::max<std::uint32_t>(n, 4);
}

std::uint32_t graphs_per_setting(const ExperimentEnv& env,
                                 std::uint32_t table_default) {
  return env.graphs_per_setting == 0 ? table_default
                                     : env.graphs_per_setting;
}

/// The paper's 13 appendix columns — the parameter, then (cut,
/// compacted cut, improvement%, time, compacted time, relative
/// speed-up%) for SA and for KL — plus the Berry–Goldberg
/// path-optimization pair (bpo, t_po) on the right. Mirrors every row
/// to $GBIS_CSV_DIR/<slug>.csv when the env var is set.
class AppendixEmitter {
 public:
  AppendixEmitter(const ExperimentEnv& env, const std::string& slug,
                  const std::string& param_header)
      : table_(std::cout, {{param_header, 8},
                           {"bsa", 8},
                           {"bcsa", 8},
                           {"sa_impr%", 8},
                           {"t_sa", 8},
                           {"t_csa", 8},
                           {"sa_spd%", 7},
                           {"bkl", 8},
                           {"bckl", 8},
                           {"kl_impr%", 8},
                           {"t_kl", 8},
                           {"t_ckl", 8},
                           {"kl_spd%", 7},
                           {"bpo", 8},
                           {"t_po", 8}}) {
    table_.print_header();
    if (!env.csv_dir.empty()) {
      csv_file_ = std::make_unique<std::ofstream>(env.csv_dir + "/" + slug +
                                                  ".csv");
      if (*csv_file_) {
        csv_ = std::make_unique<CsvWriter>(
            *csv_file_,
            std::vector<std::string>{param_header, "bsa", "bcsa", "t_sa",
                                     "t_csa", "bkl", "bckl", "t_kl",
                                     "t_ckl", "bpo", "t_po", "sa_status",
                                     "csa_status", "kl_status",
                                     "ckl_status", "po_status"});
      }
    }
  }

  void emit(const std::string& param, const FourWayRow& row) {
    table_.cell(param);
    cut_cell(row.bsa, row.sa_note);
    cut_cell(row.bcsa, row.csa_note);
    table_.cell(percent_improvement(row.bsa, row.bcsa), 1)
        .cell(row.tsa, 3)
        .cell(row.tcsa, 3)
        .cell(percent_improvement(row.tsa, row.tcsa), 1);
    cut_cell(row.bkl, row.kl_note);
    cut_cell(row.bckl, row.ckl_note);
    table_.cell(percent_improvement(row.bkl, row.bckl), 1)
        .cell(row.tkl, 3)
        .cell(row.tckl, 3)
        .cell(percent_improvement(row.tkl, row.tckl), 1);
    cut_cell(row.bpo, row.po_note);
    table_.cell(row.tpo, 3);
    table_.end_row();
    degraded_cells_ += row.degraded_cells;
    if (csv_ != nullptr) {
      csv_->cell(param)
          .cell(row.bsa)
          .cell(row.bcsa)
          .cell(row.tsa)
          .cell(row.tcsa)
          .cell(row.bkl)
          .cell(row.bckl)
          .cell(row.tkl)
          .cell(row.tckl)
          .cell(row.bpo)
          .cell(row.tpo)
          .cell(row.sa_note.empty() ? "ok" : row.sa_note)
          .cell(row.csa_note.empty() ? "ok" : row.csa_note)
          .cell(row.kl_note.empty() ? "ok" : row.kl_note)
          .cell(row.ckl_note.empty() ? "ok" : row.ckl_note)
          .cell(row.po_note.empty() ? "ok" : row.po_note);
      csv_->end_row();
    }
  }

  /// One line after the table when any (graph, method) cell failed,
  /// timed out, or was skipped — so a degraded table can never pass as
  /// a clean reproduction.
  void print_degraded_summary() const {
    if (degraded_cells_ == 0) return;
    std::cout << "(! " << degraded_cells_
              << " degraded cell(s): err = failed, t/o = deadline, "
                 "skip = shutdown; cuts average ok cells only)\n";
  }

 private:
  /// A cut cell: the ok-average, or the degraded marker when no cell of
  /// this method succeeded (the average is NaN then).
  void cut_cell(double value, const std::string& note) {
    if (std::isnan(value) && !note.empty()) {
      table_.cell(note);
    } else {
      table_.cell(value, 1);
    }
  }

  TablePrinter table_;
  std::unique_ptr<std::ofstream> csv_file_;
  std::unique_ptr<CsvWriter> csv_;
  std::uint64_t degraded_cells_ = 0;
};

/// Average compaction improvements of a finished sweep, for Table 1.
struct SweepImprovement {
  std::vector<double> kl;
  std::vector<double> sa;
};

}  // namespace

ExperimentEnv experiment_env() {
  ExperimentEnv env;
  env.scale = env_double("GBIS_SCALE", env.scale);
  env.graphs_per_setting = static_cast<std::uint32_t>(
      env_u64("GBIS_GRAPHS_PER_SETTING", env.graphs_per_setting));
  env.starts =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     env_u64("GBIS_STARTS", env.starts)));
  env.seed = env_u64("GBIS_SEED", env.seed);
  env.threads =
      static_cast<std::uint32_t>(env_u64("GBIS_THREADS", env.threads));
  env.sa_length_factor =
      env_double("GBIS_SA_LENGTH", env.sa_length_factor);
  if (const char* dir = std::getenv("GBIS_CSV_DIR"); dir != nullptr) {
    env.csv_dir = dir;
  }
  return env;
}

RunConfig experiment_run_config(const ExperimentEnv& env) {
  RunConfig config;
  config.starts = env.starts;
  config.threads = env.threads;
  config.sa.temperature_length_factor = env.sa_length_factor;
  // Experiments adopt only the progress knob: each table row is its own
  // trial batch, so a single GBIS_METRICS/GBIS_TRACE_DIR destination
  // would be overwritten row after row. Use `gbis campaign` for file
  // exports.
  config.obs.progress = obs_options_from_env().progress;
  return config;
}

FourWayRow run_four_way(std::span<const Graph> graphs, Rng& rng,
                        const RunConfig& config) {
  // One trial matrix over all graphs, the four paper methods, and the
  // path-optimization column: every (graph, method, start) runs as its
  // own job with its own Rng derived from (base, trial id), so the row
  // is bit-identical for any thread count and the driver stream
  // advances by exactly one draw.
  constexpr Method kMethods[] = {Method::kSa, Method::kCsa, Method::kKl,
                                 Method::kCkl, Method::kPathOpt};
  constexpr std::size_t kNumMethods = std::size(kMethods);
  const std::vector<MethodOutcome> outcomes =
      run_trial_matrix(graphs, kMethods, config, rng.next());

  // Degraded cells are excluded from the cut averages (their best_cut
  // is meaningless); a method with zero ok cells averages to NaN and
  // carries a "err"/"t/o"/"skip" marker. Times always accumulate — CPU
  // was spent whether or not the trial finished.
  FourWayRow row;
  double* const cuts[kNumMethods] = {&row.bsa, &row.bcsa, &row.bkl,
                                     &row.bckl, &row.bpo};
  double* const times[kNumMethods] = {&row.tsa, &row.tcsa, &row.tkl,
                                      &row.tckl, &row.tpo};
  std::string* const notes[kNumMethods] = {&row.sa_note, &row.csa_note,
                                           &row.kl_note, &row.ckl_note,
                                           &row.po_note};
  std::uint32_t ok_cells[kNumMethods] = {};
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (std::size_t m = 0; m < kNumMethods; ++m) {
      const MethodOutcome& outcome = outcomes[g * kNumMethods + m];
      *times[m] += outcome.cpu_seconds;
      if (outcome.status == TrialStatus::kOk) {
        *cuts[m] += static_cast<double>(outcome.best_cut);
        ++ok_cells[m];
      } else {
        ++row.degraded_cells;
        if (notes[m]->empty()) {
          *notes[m] = trial_status_cell(outcome.status);
        }
      }
    }
  }
  const auto k = static_cast<double>(graphs.size());
  for (std::size_t m = 0; m < kNumMethods; ++m) {
    *cuts[m] = ok_cells[m] > 0
                   ? *cuts[m] / static_cast<double>(ok_cells[m])
                   : std::numeric_limits<double>::quiet_NaN();
    if (k > 0) *times[m] /= k;
  }
  return row;
}

namespace {

/// Shared driver for the three special-graph tables. Returns the
/// per-size improvements for Table 1 aggregation.
SweepImprovement special_sweep(const ExperimentEnv& env,
                               const std::string& family,
                               const std::string& slug,
                               std::span<const std::uint32_t> sizes,
                               Graph (*make)(std::uint32_t),
                               Weight (*reference)(const Graph&)) {
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);
  std::cout << family << " (best of " << config.starts
            << " starts; times are totals across starts)\n";
  // The parameter column carries vertices/optimal-reference inline.
  AppendixEmitter emitter(env, slug, "n");

  SweepImprovement improvements;
  for (std::uint32_t size : sizes) {
    const Graph g = make(size);
    const Weight ref = reference(g);
    const Graph graphs[] = {g};
    const FourWayRow row = run_four_way(graphs, rng, config);
    emitter.emit(std::to_string(g.num_vertices()) + "/" +
                     std::to_string(ref),
                 row);
    improvements.kl.push_back(percent_improvement(row.bkl, row.bckl));
    improvements.sa.push_back(percent_improvement(row.bsa, row.bcsa));
  }
  emitter.print_degraded_summary();
  std::cout << "(parameter column is vertices/optimal-reference)\n\n";
  return improvements;
}

Graph make_ladder_by_vertices(std::uint32_t n) { return make_ladder(n / 2); }

Graph make_grid_by_side(std::uint32_t side) { return make_grid(side, side); }

Weight ladder_reference(const Graph& g) {
  return g.num_vertices() >= 4 ? 2 : 1;
}

Weight grid_reference(const Graph& g) {
  // N x N grid, N even: optimal bisection cuts one column of N edges.
  std::uint32_t side = 1;
  while (side * side < g.num_vertices()) ++side;
  return side;
}

Weight tree_reference(const Graph& g) { return tree_bisection_width(g); }

constexpr std::uint32_t kLadderVertices[] = {120, 300, 600, 1200, 3000, 5000};
constexpr std::uint32_t kGridSides[] = {10, 14, 20, 32, 44, 70};
constexpr std::uint32_t kTreeVertices[] = {126, 254, 510, 1022, 2046, 4094};

std::vector<std::uint32_t> scaled_sizes(std::span<const std::uint32_t> base,
                                        double scale) {
  std::vector<std::uint32_t> sizes;
  sizes.reserve(base.size());
  for (std::uint32_t s : base) sizes.push_back(scaled_even(s, scale));
  return sizes;
}

}  // namespace

void experiment_ladder(const ExperimentEnv& env) {
  special_sweep(env, "Ladder graphs", "table_ladder",
                scaled_sizes(kLadderVertices, env.scale),
                &make_ladder_by_vertices, &ladder_reference);
}

void experiment_grid(const ExperimentEnv& env) {
  std::vector<std::uint32_t> sides;
  for (std::uint32_t s : kGridSides) {
    auto side = static_cast<std::uint32_t>(static_cast<double>(s) *
                                           std::sqrt(env.scale));
    side -= side % 2;
    sides.push_back(std::max<std::uint32_t>(side, 2));
  }
  special_sweep(env, "Grid graphs (N x N)", "table_grid", sides,
                &make_grid_by_side, &grid_reference);
}

void experiment_bintree(const ExperimentEnv& env) {
  special_sweep(env, "Binary trees", "table_bintree",
                scaled_sizes(kTreeVertices, env.scale), &make_binary_tree,
                &tree_reference);
}

void experiment_g2set(const ExperimentEnv& env, std::uint32_t two_n,
                      double avg_degree) {
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);
  const std::uint32_t n = scaled_even(two_n, env.scale);
  const std::uint32_t per_setting = graphs_per_setting(env, 3);

  std::cout << "G2set(" << n << ", pA, pB, b) with average degree "
            << avg_degree << " (avg of " << per_setting << " graphs, best of "
            << config.starts << " starts)\n";
  std::ostringstream slug;
  slug << "table_g2set_" << n << "_deg" << avg_degree;
  AppendixEmitter emitter(env, slug.str(), "b");

  constexpr std::uint64_t kBis[] = {8, 16, 24, 32, 48, 64};
  for (std::uint64_t b : kBis) {
    std::vector<Graph> graphs;
    graphs.reserve(per_setting);
    const PlantedParams params = planted_params_for_degree(n, avg_degree, b);
    for (std::uint32_t i = 0; i < per_setting; ++i) {
      graphs.push_back(make_planted(params, rng));
    }
    const FourWayRow row = run_four_way(graphs, rng, config);
    emitter.emit(std::to_string(b), row);
  }
  emitter.print_degraded_summary();
  std::cout << '\n';
}

void experiment_gnp(const ExperimentEnv& env, std::uint32_t two_n) {
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);
  const std::uint32_t n = scaled_even(two_n, env.scale);
  // The paper averages 7 random graphs per Gnp entry.
  const std::uint32_t per_setting = graphs_per_setting(env, 3);

  std::cout << "Gnp(" << n << ", p) (avg of " << per_setting
            << " graphs, best of " << config.starts << " starts; paper used "
            << "7 graphs per entry)\n";
  AppendixEmitter emitter(env, "table_gnp_" + std::to_string(n),
                          "avg_deg");

  constexpr double kDegrees[] = {2.0, 2.5, 3.0, 3.5, 4.0, 5.0};
  for (double degree : kDegrees) {
    std::vector<Graph> graphs;
    graphs.reserve(per_setting);
    const double p = gnp_p_for_degree(n, degree);
    for (std::uint32_t i = 0; i < per_setting; ++i) {
      graphs.push_back(make_gnp(n, p, rng));
    }
    const FourWayRow row = run_four_way(graphs, rng, config);
    std::ostringstream label;
    label << degree;
    emitter.emit(label.str(), row);
  }
  emitter.print_degraded_summary();
  std::cout << '\n';
}

void experiment_gbreg(const ExperimentEnv& env, std::uint32_t two_n,
                      std::uint32_t d) {
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);
  const std::uint32_t n = scaled_even(two_n, env.scale);
  const std::uint32_t per_setting = graphs_per_setting(env, 3);

  std::cout << "Gbreg(" << n << ", b, " << d << ") (avg of " << per_setting
            << " graphs, best of " << config.starts << " starts)\n";
  AppendixEmitter emitter(env, "table_gbreg_" + std::to_string(n) + "_d" +
                                   std::to_string(d),
                          "b");

  constexpr std::uint64_t kWidths[] = {2, 8, 16, 32, 64};
  for (std::uint64_t b : kWidths) {
    const RegularPlantedParams params{n, b, d};
    if (!regular_planted_params_valid(params)) continue;
    std::vector<Graph> graphs;
    graphs.reserve(per_setting);
    for (std::uint32_t i = 0; i < per_setting; ++i) {
      graphs.push_back(make_regular_planted(params, rng));
    }
    const FourWayRow row = run_four_way(graphs, rng, config);
    emitter.emit(std::to_string(b), row);
  }
  emitter.print_degraded_summary();
  std::cout << '\n';
}

void experiment_table1_summary(const ExperimentEnv& env) {
  // Smaller sweeps than the per-family tables: Table 1 in the paper
  // aggregates graphs "from 100 to 5,000 vertices"; we average the
  // improvement over the same families at a spread of sizes.
  ExperimentEnv sweep_env = env;
  const SweepImprovement grid = special_sweep(
      sweep_env, "Grid graphs (N x N)", "table1_grid",
      std::vector<std::uint32_t>{10, 20, 32, 44}, &make_grid_by_side,
      &grid_reference);
  const SweepImprovement ladder = special_sweep(
      sweep_env, "Ladder graphs", "table1_ladder",
      std::vector<std::uint32_t>{120, 600, 1200, 3000},
      &make_ladder_by_vertices, &ladder_reference);
  const SweepImprovement tree = special_sweep(
      sweep_env, "Binary trees", "table1_bintree",
      std::vector<std::uint32_t>{126, 510, 1022, 2046}, &make_binary_tree,
      &tree_reference);

  std::cout << "Table 1: average bisection width improvement made by "
               "compaction (best of two starts)\n";
  TablePrinter table(std::cout, {{"Graph type", 12},
                                 {"KL impr%", 10},
                                 {"SA impr%", 10},
                                 {"paper KL", 10},
                                 {"paper SA", 10}});
  table.print_header();
  table.cell("Grid")
      .cell(summarize(grid.kl).mean, 0)
      .cell(summarize(grid.sa).mean, 0)
      .cell("13%")
      .cell("34%");
  table.end_row();
  table.cell("Ladder")
      .cell(summarize(ladder.kl).mean, 0)
      .cell(summarize(ladder.sa).mean, 0)
      .cell("12%")
      .cell("24%");
  table.end_row();
  table.cell("Binary Tree")
      .cell(summarize(tree.kl).mean, 0)
      .cell(summarize(tree.sa).mean, 0)
      .cell("56%")
      .cell("17%");
  table.end_row();
  std::cout << '\n';
}

void experiment_obs_kl_vs_sa(const ExperimentEnv& env) {
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);
  const std::uint32_t n = scaled_even(2000, env.scale);
  const std::uint32_t per_setting = graphs_per_setting(env, 4);

  std::uint32_t kl_wins = 0, sa_wins = 0, ties = 0;
  std::uint32_t ckl_wins = 0, csa_wins = 0, c_ties = 0;
  double kl_time = 0, sa_time = 0, ckl_time = 0, csa_time = 0;

  constexpr double kDegrees[] = {2.5, 3.0, 3.5};
  for (double degree : kDegrees) {
    const PlantedParams params = planted_params_for_degree(n, degree, 32);
    for (std::uint32_t i = 0; i < per_setting; ++i) {
      const Graph g = make_planted(params, rng);
      // All four methods' starts in one parallel batch per graph.
      const Graph graphs[] = {g};
      constexpr Method kMethods[] = {Method::kKl, Method::kSa,
                                     Method::kCkl, Method::kCsa};
      const std::vector<MethodOutcome> outcomes =
          run_trial_matrix(graphs, kMethods, config, rng.next());
      const MethodOutcome& kl = outcomes[0];
      const MethodOutcome& sa = outcomes[1];
      const MethodOutcome& ckl = outcomes[2];
      const MethodOutcome& csa = outcomes[3];
      if (kl.best_cut < sa.best_cut) {
        ++kl_wins;
      } else if (sa.best_cut < kl.best_cut) {
        ++sa_wins;
      } else {
        ++ties;
      }
      if (ckl.best_cut < csa.best_cut) {
        ++ckl_wins;
      } else if (csa.best_cut < ckl.best_cut) {
        ++csa_wins;
      } else {
        ++c_ties;
      }
      kl_time += kl.cpu_seconds;
      sa_time += sa.cpu_seconds;
      ckl_time += ckl.cpu_seconds;
      csa_time += csa.cpu_seconds;
    }
  }

  std::cout << "Observations 4-5: KL vs SA on G2set(" << n
            << ", deg in {2.5, 3, 3.5}, b=32), " << per_setting
            << " graphs per degree\n";
  std::cout << "  quality (uncompacted): KL better " << kl_wins
            << ", SA better " << sa_wins << ", ties " << ties
            << "   (paper: KL better ~60% when they differ)\n";
  std::cout << "  quality (compacted):   CKL better " << ckl_wins
            << ", CSA better " << csa_wins << ", ties " << c_ties
            << "   (paper: no big difference)\n";
  std::cout << "  speed: SA/KL time ratio = " << (sa_time / kl_time)
            << "x, CSA/CKL = " << (csa_time / ckl_time)
            << "x   (paper: SA up to 20x slower)\n\n";
}

}  // namespace gbis
