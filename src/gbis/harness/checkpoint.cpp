#include "gbis/harness/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "gbis/harness/fault_injection.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {
// The fingerprint accumulator (Hash64) and the flat-JSON field
// scanners this file originally carried in-line now live in
// svc/fingerprint.* and util/json_lite.* so the service result cache
// and protocol share them; the hashing sequence and the journal wire
// format are unchanged (test_svc pins a golden fingerprint).

[[noreturn]] void journal_fail(const std::string& path, std::size_t line_no,
                               const std::string& what) {
  throw IoError("checkpoint: " + path + ": line " +
                std::to_string(line_no) + ": " + what);
}

TrialStatus status_from_name(const std::string& name, const std::string& path,
                             std::size_t line_no) {
  if (name == "ok") return TrialStatus::kOk;
  if (name == "failed") return TrialStatus::kFailed;
  if (name == "timed_out") return TrialStatus::kTimedOut;
  if (name == "skipped") return TrialStatus::kSkipped;
  journal_fail(path, line_no, "unknown trial status \"" + name + "\"");
}

std::string encode_trial(const TrialRecord& record) {
  std::string line = "{\"type\":\"trial\",\"id\":";
  line += std::to_string(record.trial_id);
  line += ",\"status\":\"";
  line += trial_status_name(record.status);
  line += "\"";
  if (record.status == TrialStatus::kOk) {
    line += ",\"cut\":" + std::to_string(record.cut);
  }
  {
    // max_digits10 keeps journaled times round-trip exact, so resumed
    // campaigns report the original trials' CPU seconds unchanged.
    std::ostringstream seconds;
    seconds.precision(std::numeric_limits<double>::max_digits10);
    seconds << record.cpu_seconds;
    line += ",\"cpu_seconds\":" + seconds.str();
  }
  // Metric summary (counters + hists only; traces/phases are not
  // journaled). Emitted before "error" so the flat field scanner never
  // has to look past free-form text.
  if (record.metrics != nullptr && !record.metrics->summary_empty()) {
    line += ",\"metrics\":{";
    bool first = true;
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      if (record.metrics->counters[i] == 0) continue;
      if (!first) line += ",";
      first = false;
      line += "\"";
      line += counter_name(static_cast<Counter>(i));
      line += "\":" + std::to_string(record.metrics->counters[i]);
    }
    line += "},\"hists\":{";
    first = true;
    for (std::size_t i = 0; i < kNumHists; ++i) {
      const HistData& h = record.metrics->hists[i];
      if (h.empty()) continue;
      if (!first) line += ",";
      first = false;
      line += "\"";
      line += hist_name(static_cast<Hist>(i));
      line += "\":[";
      bool first_bucket = true;
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        if (h.buckets[b] == 0) continue;
        if (!first_bucket) line += ",";
        first_bucket = false;
        line += "[" + std::to_string(b) + "," +
                std::to_string(h.buckets[b]) + "]";
      }
      line += "]";
    }
    line += "}";
  }
  if (!record.error.empty()) {
    line += ",\"error\":";
    append_json_string(line, record.error);
  }
  line += "}";
  return line;
}

/// Parses the optional "metrics"/"hists" sub-objects of a trial line.
/// Flat scan: the sub-objects contain no nested braces, so the first
/// `}` closes them; unknown metric names are skipped (forward
/// compatibility with counters added later). Returns null when the
/// line carries no metric fields.
std::shared_ptr<const TrialMetrics> parse_metrics_fields(
    const std::string& line) {
  const std::size_t counters_at = json_find_value(line, "metrics");
  const std::size_t hists_at = json_find_value(line, "hists");
  if (counters_at == std::string::npos && hists_at == std::string::npos) {
    return nullptr;
  }
  auto tm = std::make_shared<TrialMetrics>();
  if (counters_at != std::string::npos && counters_at < line.size() &&
      line[counters_at] == '{') {
    std::size_t i = counters_at + 1;
    while (i < line.size() && line[i] != '}') {
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] != '"') break;
      const std::size_t name_end = line.find('"', i + 1);
      if (name_end == std::string::npos) break;
      const std::string name = line.substr(i + 1, name_end - i - 1);
      i = name_end + 1;
      if (i >= line.size() || line[i] != ':') break;
      ++i;
      char* end = nullptr;
      const std::uint64_t value = std::strtoull(line.c_str() + i, &end, 10);
      if (end == line.c_str() + i) break;
      i = static_cast<std::size_t>(end - line.c_str());
      Counter c;
      if (counter_from_name(name, c)) {
        tm->counters[static_cast<std::size_t>(c)] = value;
      }
    }
  }
  if (hists_at != std::string::npos && hists_at < line.size() &&
      line[hists_at] == '{') {
    std::size_t i = hists_at + 1;
    while (i < line.size() && line[i] != '}') {
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] != '"') break;
      const std::size_t name_end = line.find('"', i + 1);
      if (name_end == std::string::npos) break;
      const std::string name = line.substr(i + 1, name_end - i - 1);
      i = name_end + 1;
      if (i + 1 >= line.size() || line[i] != ':' || line[i + 1] != '[') break;
      i += 2;  // past ":["
      Hist h;
      const bool known = hist_from_name(name, h);
      while (i < line.size() && line[i] == '[') {
        ++i;
        char* end = nullptr;
        const std::uint64_t bucket = std::strtoull(line.c_str() + i, &end, 10);
        if (end == line.c_str() + i) break;
        i = static_cast<std::size_t>(end - line.c_str());
        if (i >= line.size() || line[i] != ',') break;
        ++i;
        const std::uint64_t count = std::strtoull(line.c_str() + i, &end, 10);
        if (end == line.c_str() + i) break;
        i = static_cast<std::size_t>(end - line.c_str());
        if (i >= line.size() || line[i] != ']') break;
        ++i;
        if (known && bucket < tm->hists[static_cast<std::size_t>(h)]
                                  .buckets.size()) {
          tm->hists[static_cast<std::size_t>(h)].buckets[bucket] = count;
        }
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i < line.size() && line[i] == ']') ++i;
    }
  }
  if (tm->summary_empty()) return nullptr;
  return tm;
}

}  // namespace

std::uint64_t campaign_fingerprint(std::uint64_t seed,
                                   const RunConfig& config,
                                   std::span<const TrialSpec> trials,
                                   std::span<const Graph> graphs) {
  Hash64 h;
  h.add(seed);
  h.add(static_cast<std::uint64_t>(config.starts));
  h.add(config.trial_deadline);
  // KL
  h.add(static_cast<std::uint64_t>(config.kl.max_passes));
  h.add(static_cast<std::uint64_t>(config.kl.pair_selection));
  // SA
  h.add(static_cast<std::uint64_t>(config.sa.neighborhood));
  h.add(config.sa.imbalance_alpha);
  h.add(config.sa.cooling_ratio);
  h.add(config.sa.temperature_length_factor);
  h.add(config.sa.init_acceptance_target);
  h.add(config.sa.initial_temperature);
  h.add(config.sa.min_acceptance);
  h.add(static_cast<std::uint64_t>(config.sa.frozen_temperatures));
  h.add(config.sa.max_total_moves);
  h.add(static_cast<std::uint64_t>(config.sa.stagnation_temperatures));
  // FM
  h.add(static_cast<std::uint64_t>(config.fm.max_passes));
  h.add(config.fm.balance_tolerance);
  h.add(static_cast<std::uint64_t>(config.fm.balance));
  // Compaction / multilevel
  h.add(static_cast<std::uint64_t>(config.compaction.match_policy));
  h.add(static_cast<std::uint64_t>(config.compaction.pair_leftovers));
  h.add(config.compaction.csa_fine_acceptance);
  h.add(static_cast<std::uint64_t>(config.multilevel.max_levels));
  h.add(static_cast<std::uint64_t>(config.multilevel.min_vertices));
  h.add(config.multilevel.min_shrink_factor);
  h.add(static_cast<std::uint64_t>(config.multilevel.match_policy));
  h.add(static_cast<std::uint64_t>(config.multilevel.pair_leftovers));
  // Trial enumeration
  h.add(trials.size());
  for (const TrialSpec& t : trials) {
    h.add(static_cast<std::uint64_t>(t.graph_index));
    h.add(static_cast<std::uint64_t>(t.method));
    h.add(static_cast<std::uint64_t>(t.start_index));
  }
  // Graph contents, via the shared canonical hasher (svc/fingerprint):
  // vertex weights plus every (u, v, w) with u < v, straight off the
  // CSR — the same byte sequence this function always hashed.
  h.add(graphs.size());
  for (const Graph& g : graphs) hash_graph(h, g);
  return h.digest();
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     std::uint64_t fingerprint,
                                     std::uint64_t num_trials,
                                     std::span<const TrialRecord> initial)
    : path_(std::move(path)) {
  std::string header = "{\"type\":\"campaign\",\"version\":1,";
  header += "\"fingerprint\":\"" + to_hex16(fingerprint) + "\",";
  header += "\"trials\":" + std::to_string(num_trials) + "}";
  lines_.push_back(std::move(header));
  for (const TrialRecord& record : initial) {
    lines_.push_back(encode_trial(record));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

void CheckpointJournal::append(const TrialRecord& record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lines_.push_back(encode_trial(record));
  publish_locked();
}

void CheckpointJournal::publish_locked() {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw IoError("checkpoint: cannot open " + tmp);
    for (const std::string& line : lines_) out << line << '\n';
    out.flush();
    if (!out) throw IoError("checkpoint: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw IoError("checkpoint: cannot rename " + tmp + " -> " + path_);
  }
}

CheckpointJournal::Loaded CheckpointJournal::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("checkpoint: cannot open " + path);

  Loaded loaded;
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string type;
    if (!json_parse_string(line, "type", type)) {
      journal_fail(path, line_no, "missing \"type\" in: " + line);
    }
    if (type == "campaign") {
      if (saw_header) journal_fail(path, line_no, "duplicate header");
      saw_header = true;
      std::string fp;
      if (!json_parse_string(line, "fingerprint", fp) || fp.size() != 16) {
        journal_fail(path, line_no, "bad fingerprint");
      }
      loaded.fingerprint = std::strtoull(fp.c_str(), nullptr, 16);
      if (!json_parse_u64(line, "trials", loaded.num_trials)) {
        journal_fail(path, line_no, "missing trial count");
      }
    } else if (type == "trial") {
      if (!saw_header) {
        journal_fail(path, line_no, "trial record before campaign header");
      }
      TrialRecord record;
      if (!json_parse_u64(line, "id", record.trial_id)) {
        journal_fail(path, line_no, "missing trial id in: " + line);
      }
      std::string status;
      if (!json_parse_string(line, "status", status)) {
        journal_fail(path, line_no, "missing status in: " + line);
      }
      record.status = status_from_name(status, path, line_no);
      std::int64_t cut = 0;
      if (json_parse_i64(line, "cut", cut)) record.cut = cut;
      json_parse_double(line, "cpu_seconds", record.cpu_seconds);
      record.metrics = parse_metrics_fields(line);
      json_parse_string(line, "error", record.error);
      if (record.trial_id >= loaded.num_trials) {
        journal_fail(path, line_no,
                     "trial id " + std::to_string(record.trial_id) +
                         " out of range [0, " +
                         std::to_string(loaded.num_trials) + ")");
      }
      loaded.records.push_back(std::move(record));
    } else {
      journal_fail(path, line_no, "unknown record type \"" + type + "\"");
    }
  }
  if (!saw_header) {
    throw IoError("checkpoint: " + path + ": missing campaign header");
  }
  return loaded;
}

CampaignResult run_campaign(std::span<const Graph> graphs,
                            std::span<const Method> methods,
                            const RunConfig& config, std::uint64_t seed,
                            const CampaignOptions& options) {
  if (config.starts == 0) {
    throw std::invalid_argument("run_campaign: starts >= 1");
  }
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(graphs.size(), methods, config.starts);

  CampaignResult result;
  result.fingerprint = campaign_fingerprint(seed, config, trials, graphs);

  // Resume: adopt every completed (non-skipped) trial from the journal.
  std::unordered_map<std::uint64_t, TrialResult> precompleted;
  std::vector<TrialRecord> adopted_records;
  if (!options.resume_path.empty()) {
    const CheckpointJournal::Loaded loaded =
        CheckpointJournal::load(options.resume_path);
    if (loaded.fingerprint != result.fingerprint) {
      throw std::runtime_error(
          "run_campaign: journal " + options.resume_path +
          " belongs to a different campaign (fingerprint mismatch); "
          "refusing to resume");
    }
    if (loaded.num_trials != trials.size()) {
      throw std::runtime_error(
          "run_campaign: journal " + options.resume_path + " enumerates " +
          std::to_string(loaded.num_trials) + " trials, this campaign has " +
          std::to_string(trials.size()));
    }
    for (const TrialRecord& record : loaded.records) {
      if (record.status == TrialStatus::kSkipped) continue;
      TrialResult adopted;
      adopted.status = record.status;
      adopted.cut = record.cut;
      adopted.cpu_seconds = record.cpu_seconds;
      adopted.error = record.error;
      adopted.metrics = record.metrics;  // journaled counter/hist summary
      precompleted[record.trial_id] = std::move(adopted);
    }
    adopted_records.reserve(precompleted.size());
    for (std::uint64_t id = 0; id < trials.size(); ++id) {
      const auto it = precompleted.find(id);
      if (it == precompleted.end()) continue;
      adopted_records.push_back({id, it->second.status, it->second.cut,
                                 it->second.cpu_seconds, it->second.error,
                                 it->second.metrics});
    }
    result.resumed = precompleted.size();
  }

  // Journal (fresh or rewritten in place with the adopted prefix).
  std::unique_ptr<CheckpointJournal> journal;
  if (!options.journal_path.empty()) {
    journal = std::make_unique<CheckpointJournal>(
        options.journal_path, result.fingerprint, trials.size(),
        adopted_records);
  }

  const FaultPlan env_faults =
      options.faults == nullptr ? FaultPlan::from_env() : FaultPlan();
  TrialRunOptions run_options;
  run_options.keep_sides = options.keep_sides;
  run_options.stop = options.stop;
  run_options.faults =
      options.faults != nullptr ? options.faults : &env_faults;
  run_options.precompleted = precompleted.empty() ? nullptr : &precompleted;
  if (journal != nullptr) {
    run_options.on_complete = [&journal](std::uint64_t id,
                                         const TrialResult& trial) {
      journal->append({id, trial.status, trial.cut, trial.cpu_seconds,
                       trial.error, trial.metrics});
    };
  }

  result.trials = run_trials_ex(graphs, trials, config, seed, config.threads,
                                run_options);
  result.cells =
      reduce_trial_matrix(result.trials, graphs.size() * methods.size(),
                          config.starts, options.keep_sides);
  for (const TrialResult& trial : result.trials) {
    switch (trial.status) {
      case TrialStatus::kOk: ++result.ok; break;
      case TrialStatus::kFailed: ++result.failed; break;
      case TrialStatus::kTimedOut: ++result.timed_out; break;
      case TrialStatus::kSkipped: ++result.skipped; break;
    }
  }
  result.interrupted =
      result.skipped > 0 ||
      (options.stop != nullptr &&
       options.stop->load(std::memory_order_acquire));
  return result;
}

}  // namespace gbis
