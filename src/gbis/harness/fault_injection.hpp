// Deterministic fault injection for the campaign layer. Every failure
// path the harness claims to survive — a throwing trial, a hung trial,
// a shutdown mid-campaign — can be triggered on an exact trial id, so
// the tests exercise them reproducibly instead of trusting them on
// faith.
//
// Spec grammar (also accepted from the GBIS_FAULTS environment
// variable):
//
//   spec  := entry ("," entry)*
//   entry := kind "@trial:" id
//   kind  := "throw" | "hang" | "stop"
//   id    := unsigned integer (the dense trial id of the enumeration)
//
// e.g.  GBIS_FAULTS=throw@trial:17,hang@trial:23
//
//   throw — the trial raises InjectedFault (-> status `failed`)
//   hang  — the trial blocks until its deadline expires (-> status
//           `timed_out`) or a shutdown is requested; with neither it
//           hangs for real, which is the point
//   stop  — entering the trial calls request_shutdown(), as if SIGTERM
//           had arrived at that moment; the trial itself runs normally
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "gbis/util/deadline.hpp"

namespace gbis {

/// What a planned fault does to its trial.
enum class FaultKind : std::uint8_t { kNone, kThrow, kHang, kStop };

/// The exception an injected `throw` raises inside a trial.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// An immutable trial-id -> fault map parsed from a spec string.
class FaultPlan {
 public:
  /// No faults.
  FaultPlan() = default;

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending entry on any deviation. An empty spec is an empty plan.
  static FaultPlan parse(const std::string& spec);

  /// Reads GBIS_FAULTS. A malformed value warns on stderr (naming the
  /// variable and the rejected text, like the other GBIS_* knobs) and
  /// yields an empty plan.
  static FaultPlan from_env();

  bool empty() const { return by_trial_.empty(); }
  std::size_t size() const { return by_trial_.size(); }

  /// The fault planned for `trial_id` (kNone when unplanned).
  FaultKind at(std::uint64_t trial_id) const;

 private:
  std::unordered_map<std::uint64_t, FaultKind> by_trial_;
};

/// The trial runner's injection point, called as trial `trial_id`
/// starts. No-op for a null/empty plan. `deadline` is the trial's own
/// deadline — what an injected hang spins against.
void maybe_inject_fault(const FaultPlan* plan, std::uint64_t trial_id,
                        const Deadline& deadline);

}  // namespace gbis
