// Deterministic fault injection for the campaign layer. Every failure
// path the harness claims to survive — a throwing trial, a hung trial,
// a shutdown mid-campaign — can be triggered on an exact trial id, so
// the tests exercise them reproducibly instead of trusting them on
// faith.
//
// Spec grammar (also accepted from the GBIS_FAULTS environment
// variable):
//
//   spec  := entry ("," entry)*
//   entry := kind "@trial:" id
//   kind  := "throw" | "hang" | "stop"
//   id    := unsigned integer (the dense trial id of the enumeration)
//
// e.g.  GBIS_FAULTS=throw@trial:17,hang@trial:23
//
//   throw — the trial raises InjectedFault (-> status `failed`)
//   hang  — the trial blocks until its deadline expires (-> status
//           `timed_out`) or a shutdown is requested; with neither it
//           hangs for real, which is the point
//   stop  — entering the trial calls request_shutdown(), as if SIGTERM
//           had arrived at that moment; the trial itself runs normally
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "gbis/util/deadline.hpp"

namespace gbis {

/// What a planned fault does to its trial.
enum class FaultKind : std::uint8_t { kNone, kThrow, kHang, kStop };

/// The exception an injected `throw` raises inside a trial.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// An immutable trial-id -> fault map parsed from a spec string.
class FaultPlan {
 public:
  /// No faults.
  FaultPlan() = default;

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending entry on any deviation. An empty spec is an empty plan.
  static FaultPlan parse(const std::string& spec);

  /// Reads GBIS_FAULTS. A malformed value warns on stderr (naming the
  /// variable and the rejected text, like the other GBIS_* knobs) and
  /// yields an empty plan.
  static FaultPlan from_env();

  bool empty() const { return by_trial_.empty(); }
  std::size_t size() const { return by_trial_.size(); }

  /// The fault planned for `trial_id` (kNone when unplanned).
  FaultKind at(std::uint64_t trial_id) const;

 private:
  std::unordered_map<std::uint64_t, FaultKind> by_trial_;
};

/// The trial runner's injection point, called as trial `trial_id`
/// starts. No-op for a null/empty plan. `deadline` is the trial's own
/// deadline — what an injected hang spins against.
void maybe_inject_fault(const FaultPlan* plan, std::uint64_t trial_id,
                        const Deadline& deadline);

// ---------------------------------------------------------------------------
// Service-scoped fault injection (svc/scheduler.*). Same philosophy as
// the campaign plan above, but the injection sites are the service
// scheduler's dispatch points instead of trial starts:
//
//   spec  := entry ("," entry)*
//   entry := kind "@" site ":" ordinal
//   kind  := "throw" | "hang" | "oom" | "crash"
//   site  := "req" | "solve" | "batch"
//
// e.g.  GBIS_SVC_FAULTS=throw@req:3,crash@batch:2
//
//   site req   — ordinal is the request seq (the access-log "seq"),
//                checked as that request's cold solve starts
//   site solve — ordinal is the service-lifetime cold-solve ordinal
//                (leaders only; hits/coalesced followers don't count)
//   site batch — ordinal counts non-empty process_batch calls, checked
//                at batch entry before any work
//
//   throw — raise InjectedFault (-> a stable "internal:" response;
//           the injected text goes to stderr + the access log)
//   hang  — block until the request deadline expires or a shutdown is
//           requested; with neither it hangs for real
//   oom   — raise std::bad_alloc (-> "internal: out of memory")
//   crash — raise(SIGKILL): the crash-safety chaos hook. The process
//           dies instantly, exactly like an external kill -9; batches
//           before the ordinal are fully journaled and flushed.
//
// All kinds are accepted at all sites (a crash@solve kills mid-batch,
// a throw@batch fails every request of that batch); the canonical
// chaos suite uses throw@req, hang@solve, oom@solve, and crash@batch.

/// What an injected service fault does at its site.
enum class SvcFaultKind : std::uint8_t { kNone, kThrow, kHang, kOom, kCrash };

/// Where in the scheduler a service fault fires.
enum class SvcFaultSite : std::uint8_t { kReq = 0, kSolve, kBatch };

/// An immutable (site, ordinal) -> kind map parsed from a spec string.
class SvcFaultPlan {
 public:
  /// No faults.
  SvcFaultPlan() = default;

  /// Parses the grammar above; throws std::invalid_argument naming the
  /// offending entry on any deviation. An empty spec is an empty plan.
  static SvcFaultPlan parse(const std::string& spec);

  /// Reads GBIS_SVC_FAULTS. A malformed value warns on stderr and
  /// yields an empty plan, like every other GBIS_* knob.
  static SvcFaultPlan from_env();

  bool empty() const { return by_site_.empty(); }
  std::size_t size() const { return by_site_.size(); }

  /// The fault planned for `ordinal` at `site` (kNone when unplanned).
  SvcFaultKind at(SvcFaultSite site, std::uint64_t ordinal) const;

 private:
  /// Key = ordinal * 4 + site (sites fit in two bits).
  std::unordered_map<std::uint64_t, SvcFaultKind> by_site_;
};

/// The scheduler's injection point. No-op for a null/empty plan.
/// `deadline` is the request deadline an injected hang spins against;
/// `stop` (optional) also rescues a hang, mirroring the graceful-
/// shutdown path.
void maybe_inject_svc_fault(const SvcFaultPlan* plan, SvcFaultSite site,
                            std::uint64_t ordinal, const Deadline& deadline,
                            const std::atomic<bool>* stop = nullptr);

}  // namespace gbis
