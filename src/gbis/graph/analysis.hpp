// Structural analysis helpers beyond ops.hpp: degree histograms,
// cores, clustering, and eccentricity — used by model_study's report
// and by tests characterizing the generators.
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// histogram[d] = number of vertices of degree d (size = max degree+1;
/// empty for the empty graph).
std::vector<std::uint64_t> degree_histogram(const Graph& g);

/// Core number of every vertex (largest k such that the vertex belongs
/// to the k-core), via the standard peeling order. O(V + E).
std::vector<std::uint32_t> core_numbers(const Graph& g);

/// Degeneracy: the maximum core number (0 for edgeless graphs).
std::uint32_t degeneracy(const Graph& g);

/// Global clustering coefficient: 3 * triangles / open wedges
/// (0 when the graph has no wedge). O(sum deg^2) — intended for
/// analysis, not hot paths.
double global_clustering(const Graph& g);

/// Exact triangle count (each counted once). Uses the oriented
/// neighbor-intersection method, O(E^{3/2})-ish on sparse graphs.
std::uint64_t triangle_count(const Graph& g);

/// Eccentricity of `source` (max BFS distance within its component).
std::uint32_t eccentricity(const Graph& g, Vertex source);

/// Pseudo-diameter: double-sweep BFS lower bound on the diameter of
/// the component containing `seed` (exact on trees). O(V + E).
std::uint32_t pseudo_diameter(const Graph& g, Vertex seed = 0);

}  // namespace gbis
