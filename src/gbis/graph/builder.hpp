// Mutable accumulator that produces an immutable Graph.
//
// The builder accepts edges in any order, in either direction, with
// repeats: parallel edges are merged by summing weights (exactly the
// semantics edge contraction needs). Self-loops are rejected — they can
// never be cut, so they carry no information for bisection — except
// that contraction code may ask for them to be silently dropped.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Accumulates vertices and weighted edges, then builds a CSR Graph.
class GraphBuilder {
 public:
  /// Policy for add_edge(u, u).
  enum class SelfLoops {
    kReject,  ///< throw std::invalid_argument (default)
    kDrop,    ///< silently ignore (used by contraction)
  };

  /// Builder over n vertices, all of weight 1.
  explicit GraphBuilder(std::uint32_t num_vertices,
                        SelfLoops self_loops = SelfLoops::kReject);

  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(vertex_weights_.size());
  }

  /// Adds an undirected edge. Throws std::invalid_argument on an
  /// out-of-range endpoint, non-positive weight, or (under kReject) a
  /// self-loop. Parallel edges merge at build().
  void add_edge(Vertex u, Vertex v, Weight weight = 1);

  /// Sets the weight of a vertex (must be positive).
  void set_vertex_weight(Vertex v, Weight weight);

  /// Builds the immutable graph. The builder is left empty.
  Graph build();

 private:
  // Each undirected edge staged once, normalized to u < v; sorted and
  // merged at build time.
  std::vector<Edge> staged_;
  std::vector<Weight> vertex_weights_;
  SelfLoops self_loops_;
};

}  // namespace gbis
