#include "gbis/graph/ops.hpp"

#include <algorithm>
#include <stdexcept>

#include "gbis/graph/builder.hpp"

namespace gbis {

std::vector<std::uint32_t> Components::sizes() const {
  std::vector<std::uint32_t> result(count, 0);
  for (std::uint32_t c : label) ++result[c];
  return result;
}

Components connected_components(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  Components comps;
  comps.label.assign(n, kUnreachable);
  std::vector<Vertex> queue;
  for (Vertex start = 0; start < n; ++start) {
    if (comps.label[start] != kUnreachable) continue;
    const std::uint32_t id = comps.count++;
    comps.label[start] = id;
    queue.assign(1, start);
    while (!queue.empty()) {
      const Vertex v = queue.back();
      queue.pop_back();
      for (Vertex w : g.neighbors(v)) {
        if (comps.label[w] == kUnreachable) {
          comps.label[w] = id;
          queue.push_back(w);
        }
      }
    }
  }
  return comps;
}

bool is_connected(const Graph& g) {
  return connected_components(g).count <= 1;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  if (source >= g.num_vertices()) {
    throw std::out_of_range("bfs_distances: source out of range");
  }
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<Vertex> frontier{source};
  dist[source] = 0;
  std::uint32_t depth = 0;
  std::vector<Vertex> next;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (Vertex v : frontier) {
      for (Vertex w : g.neighbors(v)) {
        if (dist[w] == kUnreachable) {
          dist[w] = depth;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const std::uint32_t n = g.num_vertices();
  if (n == 0) return stats;
  stats.min = kUnreachable;
  for (Vertex v = 0; v < n; ++v) {
    const std::uint32_t d = g.degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
  }
  stats.average = g.average_degree();
  return stats;
}

bool is_regular(const Graph& g, std::uint32_t d) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) != d) return false;
  }
  return true;
}

Graph induced_subgraph(const Graph& g, std::span<const Vertex> keep) {
  std::vector<std::uint32_t> remap(g.num_vertices(), kUnreachable);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (keep[i] >= g.num_vertices()) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (remap[keep[i]] != kUnreachable) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    remap[keep[i]] = static_cast<std::uint32_t>(i);
  }
  GraphBuilder builder(static_cast<std::uint32_t>(keep.size()));
  for (std::size_t i = 0; i < keep.size(); ++i) {
    builder.set_vertex_weight(static_cast<Vertex>(i),
                              g.vertex_weight(keep[i]));
    const auto nbrs = g.neighbors(keep[i]);
    const auto wts = g.edge_weights(keep[i]);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const std::uint32_t j = remap[nbrs[k]];
      if (j != kUnreachable && keep[i] < nbrs[k]) {
        builder.add_edge(static_cast<Vertex>(i), j, wts[k]);
      }
    }
  }
  return builder.build();
}

bool is_union_of_cycles(const Graph& g) {
  if (g.num_vertices() == 0) return false;
  return is_regular(g, 2);
}

bool is_forest(const Graph& g) {
  const Components comps = connected_components(g);
  // A graph is a forest iff |E| = |V| - #components.
  return g.num_edges() ==
         static_cast<std::uint64_t>(g.num_vertices()) - comps.count;
}

}  // namespace gbis
