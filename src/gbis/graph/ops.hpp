// Structural graph operations used across generators, algorithms, and
// tests: connectivity, BFS, degree statistics, and subgraph extraction.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Result of a connected-components labeling.
struct Components {
  std::vector<std::uint32_t> label;  ///< component id per vertex, in [0, count)
  std::uint32_t count = 0;           ///< number of components

  /// Sizes of each component, indexed by label.
  std::vector<std::uint32_t> sizes() const;
};

/// Labels connected components with BFS. O(V + E).
Components connected_components(const Graph& g);

/// True if the graph is connected (the empty graph counts as connected).
bool is_connected(const Graph& g);

/// Unweighted BFS distances from source; unreachable vertices get
/// kUnreachable.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();
std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source);

/// Summary degree statistics.
struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double average = 0.0;
};

/// Computes min/max/average degree. The empty graph yields all zeros.
DegreeStats degree_stats(const Graph& g);

/// True if every vertex has degree exactly d.
bool is_regular(const Graph& g, std::uint32_t d);

/// Extracts the subgraph induced by `keep` (ids are remapped to
/// 0..keep.size()-1 in the given order; `keep` must have no duplicates).
/// Vertex weights carry over; edge weights carry over.
Graph induced_subgraph(const Graph& g, std::span<const Vertex> keep);

/// True if the graph is a disjoint union of simple cycles, i.e. every
/// vertex has degree exactly 2. (Degree-2 Gbreg instances have this
/// shape; the paper notes they are exactly solvable.)
bool is_union_of_cycles(const Graph& g);

/// True if the graph is a forest (no cycles). O(V + E).
bool is_forest(const Graph& g);

}  // namespace gbis
