// Immutable undirected graph in CSR (compressed sparse row) form, with
// integer edge and vertex weights.
//
// Weights exist because the compaction heuristic (the paper's core
// contribution) contracts matchings: parallel edges produced by a
// contraction merge into one edge of summed weight, and coalesced
// vertices carry summed vertex weight. All bisection algorithms in gbis
// are written against weighted graphs so they run unchanged on
// contracted instances; an ordinary simple graph is the all-weights-one
// special case.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace gbis {

/// Vertex id. Graphs are limited to < 2^32 vertices.
using Vertex = std::uint32_t;

/// Edge weight / cut size type. Signed so gain arithmetic (which is
/// naturally negative-capable) needs no casts.
using Weight = std::int64_t;

/// An undirected edge with a weight, reported with u < v.
struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  Weight weight = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Immutable undirected weighted graph. Construct via GraphBuilder.
///
/// Invariants (checked by validate()):
///  - adjacency lists are sorted by neighbor id, with no self-loops and
///    no duplicate neighbors (parallel edges are merged at build time);
///  - adjacency is symmetric with equal weights in both directions;
///  - all edge and vertex weights are positive.
class Graph {
 public:
  /// Empty graph with no vertices.
  Graph() = default;

  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(vertex_weights_.size());
  }

  /// Number of undirected edges (each counted once).
  std::uint64_t num_edges() const { return neighbors_.size() / 2; }

  /// Degree of v: number of distinct neighbors.
  std::uint32_t degree(Vertex v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbors of v, sorted ascending.
  std::span<const Vertex> neighbors(Vertex v) const {
    return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
  }

  /// Edge weights aligned with neighbors(v).
  std::span<const Weight> edge_weights(Vertex v) const {
    return {edge_weights_.data() + offsets_[v],
            offsets_[v + 1] - offsets_[v]};
  }

  /// Weight of vertex v (1 unless set by the builder / contraction).
  Weight vertex_weight(Vertex v) const { return vertex_weights_[v]; }

  /// Sum of all vertex weights.
  Weight total_vertex_weight() const { return total_vertex_weight_; }

  /// Sum of all edge weights (each undirected edge counted once).
  Weight total_edge_weight() const { return total_edge_weight_; }

  /// Sum of weights of edges incident to v.
  Weight weighted_degree(Vertex v) const {
    Weight sum = 0;
    for (Weight w : edge_weights(v)) sum += w;
    return sum;
  }

  /// Average (unweighted) degree: 2|E| / |V|. Zero for the empty graph.
  double average_degree() const {
    return num_vertices() == 0
               ? 0.0
               : 2.0 * static_cast<double>(num_edges()) / num_vertices();
  }

  /// True if (u, v) is an edge. O(log deg(u)).
  bool has_edge(Vertex u, Vertex v) const;

  /// Weight of edge (u, v), or 0 if absent. O(log deg(u)).
  Weight edge_weight(Vertex u, Vertex v) const;

  /// All edges, each once, with u < v, ordered by (u, v).
  std::vector<Edge> edges() const;

  /// Checks every structural invariant; returns false on corruption.
  /// Intended for tests and debug assertions, not hot paths.
  bool validate() const;

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> offsets_{0};  // size |V|+1
  std::vector<Vertex> neighbors_;          // size 2|E|
  std::vector<Weight> edge_weights_;       // size 2|E|
  std::vector<Weight> vertex_weights_;     // size |V|
  Weight total_vertex_weight_ = 0;
  Weight total_edge_weight_ = 0;
};

}  // namespace gbis
