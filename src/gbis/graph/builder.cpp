#include "gbis/graph/builder.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace gbis {

GraphBuilder::GraphBuilder(std::uint32_t num_vertices, SelfLoops self_loops)
    : vertex_weights_(num_vertices, 1), self_loops_(self_loops) {}

void GraphBuilder::add_edge(Vertex u, Vertex v, Weight weight) {
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::invalid_argument("GraphBuilder::add_edge: endpoint out of range");
  }
  if (weight <= 0) {
    throw std::invalid_argument("GraphBuilder::add_edge: non-positive weight");
  }
  if (u == v) {
    if (self_loops_ == SelfLoops::kReject) {
      throw std::invalid_argument("GraphBuilder::add_edge: self-loop");
    }
    return;  // kDrop
  }
  if (u > v) std::swap(u, v);
  staged_.push_back({u, v, weight});
}

void GraphBuilder::set_vertex_weight(Vertex v, Weight weight) {
  if (v >= num_vertices()) {
    throw std::invalid_argument(
        "GraphBuilder::set_vertex_weight: vertex out of range");
  }
  if (weight <= 0) {
    throw std::invalid_argument(
        "GraphBuilder::set_vertex_weight: non-positive weight");
  }
  vertex_weights_[v] = weight;
}

Graph GraphBuilder::build() {
  const std::uint32_t n = num_vertices();

  std::sort(staged_.begin(), staged_.end(),
            [](const Edge& a, const Edge& b) {
              return a.u != b.u ? a.u < b.u : a.v < b.v;
            });
  // Merge parallel edges by summing weights.
  std::size_t out = 0;
  for (std::size_t i = 0; i < staged_.size(); ++i) {
    if (out > 0 && staged_[out - 1].u == staged_[i].u &&
        staged_[out - 1].v == staged_[i].v) {
      staged_[out - 1].weight += staged_[i].weight;
    } else {
      staged_[out++] = staged_[i];
    }
  }
  staged_.resize(out);

  Graph g;
  g.vertex_weights_ = std::move(vertex_weights_);
  g.total_vertex_weight_ =
      std::accumulate(g.vertex_weights_.begin(), g.vertex_weights_.end(),
                      Weight{0});

  std::vector<std::uint32_t> deg(n, 0);
  for (const Edge& e : staged_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + deg[v];
  g.neighbors_.resize(staged_.size() * 2);
  g.edge_weights_.resize(staged_.size() * 2);

  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  g.total_edge_weight_ = 0;
  // staged_ is sorted by (u, v) with u < v, so emitting u->v in order
  // keeps each u's list sorted; v->u entries also land sorted because u
  // increases monotonically across the scan.
  for (const Edge& e : staged_) {
    g.neighbors_[cursor[e.u]] = e.v;
    g.edge_weights_[cursor[e.u]] = e.weight;
    ++cursor[e.u];
    g.neighbors_[cursor[e.v]] = e.u;
    g.edge_weights_[cursor[e.v]] = e.weight;
    ++cursor[e.v];
    g.total_edge_weight_ += e.weight;
  }
  staged_.clear();
  vertex_weights_.assign(n, 1);
  return g;
}

}  // namespace gbis
