#include "gbis/graph/graph.hpp"

#include <algorithm>

namespace gbis {

bool Graph::has_edge(Vertex u, Vertex v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Weight Graph::edge_weight(Vertex u, Vertex v) const {
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0;
  return edge_weights(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(num_edges());
  for (Vertex u = 0; u < num_vertices(); ++u) {
    const auto nbrs = neighbors(u);
    const auto wts = edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) result.push_back({u, nbrs[i], wts[i]});
    }
  }
  return result;
}

bool Graph::validate() const {
  const std::uint32_t n = num_vertices();
  if (offsets_.size() != static_cast<std::size_t>(n) + 1) return false;
  if (offsets_.front() != 0 || offsets_.back() != neighbors_.size())
    return false;
  if (edge_weights_.size() != neighbors_.size()) return false;

  Weight vw_sum = 0;
  for (Weight w : vertex_weights_) {
    if (w <= 0) return false;
    vw_sum += w;
  }
  if (vw_sum != total_vertex_weight_) return false;

  Weight ew_sum = 0;
  for (Vertex u = 0; u < n; ++u) {
    if (offsets_[u] > offsets_[u + 1]) return false;
    const auto nbrs = neighbors(u);
    const auto wts = edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Vertex v = nbrs[i];
      if (v >= n || v == u) return false;                    // range, loop
      if (i > 0 && nbrs[i - 1] >= v) return false;           // sorted, dedup
      if (wts[i] <= 0) return false;
      if (edge_weight(v, u) != wts[i]) return false;         // symmetric
      if (u < v) ew_sum += wts[i];
    }
  }
  return ew_sum == total_edge_weight_;
}

}  // namespace gbis
