#include "gbis/graph/analysis.hpp"

#include <algorithm>
#include <stdexcept>

#include "gbis/graph/ops.hpp"

namespace gbis {

std::vector<std::uint64_t> degree_histogram(const Graph& g) {
  std::vector<std::uint64_t> histogram;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint32_t d = g.degree(v);
    if (d >= histogram.size()) histogram.resize(d + 1, 0);
    ++histogram[d];
  }
  return histogram;
}

std::vector<std::uint32_t> core_numbers(const Graph& g) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_degree = 0;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }
  // Bucket sort by degree; peel lowest-degree vertices in order,
  // decrementing neighbors (Batagelj-Zaversnik).
  std::vector<std::uint32_t> bin(max_degree + 2, 0);
  for (Vertex v = 0; v < n; ++v) ++bin[degree[v]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_degree; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<Vertex> order(n);
  std::vector<std::uint32_t> pos(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]];
      order[pos[v]] = v;
      ++cursor[degree[v]];
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const Vertex v = order[i];
    core[v] = degree[v];
    for (Vertex w : g.neighbors(v)) {
      if (degree[w] > degree[v]) {
        // Move w one bucket down: swap it with the first vertex of its
        // current bucket.
        const std::uint32_t dw = degree[w];
        const std::uint32_t first = bin[dw];
        const Vertex u = order[first];
        if (u != w) {
          std::swap(order[pos[w]], order[first]);
          std::swap(pos[w], pos[u]);
        }
        ++bin[dw];
        --degree[w];
      }
    }
  }
  return core;
}

std::uint32_t degeneracy(const Graph& g) {
  const auto cores = core_numbers(g);
  std::uint32_t best = 0;
  for (std::uint32_t c : cores) best = std::max(best, c);
  return best;
}

std::uint64_t triangle_count(const Graph& g) {
  // Count via ordered intersection: for edge (u, v) with u < v, count
  // common neighbors w > v.
  std::uint64_t triangles = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto nu = g.neighbors(u);
    for (Vertex v : nu) {
      if (v <= u) continue;
      const auto nv = g.neighbors(v);
      // Two-pointer over the suffixes > v.
      auto iu = std::upper_bound(nu.begin(), nu.end(), v);
      auto iv = std::upper_bound(nv.begin(), nv.end(), v);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu == *iv) {
          ++triangles;
          ++iu;
          ++iv;
        } else if (*iu < *iv) {
          ++iu;
        } else {
          ++iv;
        }
      }
    }
  }
  return triangles;
}

double global_clustering(const Graph& g) {
  std::uint64_t wedges = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree(v);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) /
         static_cast<double>(wedges);
}

std::uint32_t eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t pseudo_diameter(const Graph& g, Vertex seed) {
  if (seed >= g.num_vertices()) {
    throw std::out_of_range("pseudo_diameter: seed out of range");
  }
  // Double sweep: BFS from seed, then BFS from the farthest vertex.
  const auto first = bfs_distances(g, seed);
  Vertex far = seed;
  std::uint32_t best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (first[v] != kUnreachable && first[v] > best) {
      best = first[v];
      far = v;
    }
  }
  return eccentricity(g, far);
}

}  // namespace gbis
