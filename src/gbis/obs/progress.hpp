// Live campaign progress on stderr: a single `\r`-rewritten line with
// done/failed/timed-out counts, the observed trial rate, and an ETA.
// One ProgressMeter serves a whole batch; record() is called from every
// worker thread, so updates are mutex-serialized (a partial line never
// interleaves under 8 threads) and rate-limited (default: at most one
// repaint per 100 ms) so the meter costs nothing measurable.
//
// The meter deliberately knows nothing about the trial runner — it
// counts ProgressOutcome events — so it can front any producer
// (parallel_runner maps TrialStatus onto it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>

#include "gbis/harness/timer.hpp"

namespace gbis {

/// How one unit of work ended (mirrors TrialStatus without depending
/// on the harness headers).
enum class ProgressOutcome : std::uint8_t { kOk = 0, kFailed, kTimedOut,
                                            kSkipped };

/// Line shape. kTrials is the campaign meter
/// ("3/8 trials | ok 2, failed 1, t/o 0, skip 0 | 1.2 trials/s | ETA 4s");
/// kRequests is the serve meter, which folds kSkipped into a
/// "rejected" column and kFailed + kTimedOut into "err"
/// ("12 requests | ok 10, rejected 1, err 1 | 34.5 req/s").
enum class ProgressStyle : std::uint8_t { kTrials = 0, kRequests };

class ProgressMeter {
 public:
  /// `total` units expected — 0 means open-ended (a serve stream: no
  /// "/total", no ETA); `out` defaults to std::cerr;
  /// `min_interval_seconds` throttles repaints (finish() always
  /// paints).
  explicit ProgressMeter(std::uint64_t total, std::ostream* out = nullptr,
                         double min_interval_seconds = 0.1,
                         ProgressStyle style = ProgressStyle::kTrials);

  /// Counts one unit adopted from a resume journal: it shows as done
  /// immediately but is excluded from the rate/ETA estimate (it cost
  /// no time in this run).
  void adopt(ProgressOutcome outcome);

  /// Counts one completed unit and repaints if the throttle allows.
  void record(ProgressOutcome outcome);

  /// Paints the final state and a newline. Idempotent; called by the
  /// destructor as a backstop.
  void finish();

  ~ProgressMeter() { finish(); }
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

 private:
  void maybe_paint_locked();
  void paint_locked();

  std::ostream* out_;
  const double min_interval_;
  const std::uint64_t total_;
  const ProgressStyle style_;
  std::uint64_t done_ = 0;  ///< everything counted, adopted included
  std::uint64_t adopted_ = 0;
  std::uint64_t ok_ = 0, failed_ = 0, timed_out_ = 0, skipped_ = 0;
  double last_paint_ = -1.0;
  bool painted_ = false;   ///< a line is on screen (needs \r or \n)
  bool finished_ = false;
  std::mutex mutex_;
  WallTimer timer_;
};

}  // namespace gbis
