#include "gbis/obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <string>
#include <vector>

#include "gbis/harness/stats.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/obs/trace.hpp"

namespace gbis {

namespace {

void write_us(std::ostream& out, double seconds) {
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << seconds * 1e6;
  out.precision(precision);
}

void write_json_string(std::ostream& out, const std::string& value) {
  out << '"';
  for (const char raw : value) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << raw;
        }
    }
  }
  out << '"';
}

}  // namespace

MetricsReport build_metrics_report(std::span<const TrialResult> results) {
  MetricsReport report;
  report.trials = results.size();
  std::vector<double> cpu;
  std::vector<double> cuts;
  cpu.reserve(results.size());
  for (const TrialResult& result : results) {
    switch (result.status) {
      case TrialStatus::kOk: ++report.ok; break;
      case TrialStatus::kFailed: ++report.failed; break;
      case TrialStatus::kTimedOut: ++report.timed_out; break;
      case TrialStatus::kSkipped: ++report.skipped; break;
    }
    if (result.status != TrialStatus::kSkipped) {
      cpu.push_back(result.cpu_seconds);
    }
    if (result.status == TrialStatus::kOk) {
      cuts.push_back(static_cast<double>(result.cut));
    }
    if (result.metrics != nullptr) {
      ++report.collected;
      merge_metric_summaries(report.totals, *result.metrics);
    }
  }
  const Summary cpu_summary = summarize(cpu);
  report.cpu_min = cpu_summary.min;
  report.cpu_max = cpu_summary.max;
  report.cpu_mean = cpu_summary.mean;
  report.cpu_p50 = percentile(cpu, 50);
  report.cpu_p90 = percentile(cpu, 90);
  report.cpu_p99 = percentile(cpu, 99);
  const Summary cut_summary = summarize(cuts);
  report.cut_min = cut_summary.min;
  report.cut_max = cut_summary.max;
  report.cut_mean = cut_summary.mean;
  report.cut_p50 = percentile(cuts, 50);
  report.cut_p90 = percentile(cuts, 90);
  return report;
}

void write_chrome_trace(std::ostream& out,
                        std::span<const TrialResult> results,
                        std::span<const TrialSpec> trials) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& result = results[i];
    if (result.metrics == nullptr) continue;
    const TrialMetrics& tm = *result.metrics;
    const TrialSpec& spec = trials[i];

    begin_event();
    out << "{\"name\":";
    write_json_string(out, method_name(spec.method) + " g" +
                               std::to_string(spec.graph_index) + " s" +
                               std::to_string(spec.start_index));
    out << ",\"cat\":\"trial\",\"ph\":\"X\",\"ts\":";
    write_us(out, tm.start_offset_seconds);
    out << ",\"dur\":";
    write_us(out, tm.wall_seconds);
    out << ",\"pid\":0,\"tid\":" << tm.tid << ",\"args\":{\"trial\":" << i
        << ",\"status\":\"" << trial_status_name(result.status) << "\"";
    if (result.status == TrialStatus::kOk) {
      out << ",\"cut\":" << result.cut;
    }
    if (!result.error.empty()) {
      out << ",\"error\":";
      write_json_string(out, result.error);
    }
    out << "}}";

    for (const PhaseSpan& span : tm.phases) {
      begin_event();
      out << "{\"name\":\"" << phase_name(span.phase)
          << "\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":";
      write_us(out, tm.start_offset_seconds + span.start_seconds);
      out << ",\"dur\":";
      write_us(out, span.duration_seconds);
      out << ",\"pid\":0,\"tid\":" << tm.tid
          << ",\"args\":{\"trial\":" << i << "}}";
    }
  }
  out << "\n]}\n";
}

void write_svc_trace(std::ostream& out,
                     std::span<const SvcSlowSample> samples) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto begin_event = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };
  for (const SvcSlowSample& sample : samples) {
    begin_event();
    out << "{\"name\":";
    write_json_string(out, "req " + std::to_string(sample.seq) +
                               (sample.id.empty() ? "" : " " + sample.id));
    out << ",\"cat\":\"request\",\"ph\":\"X\",\"ts\":";
    write_us(out, sample.submit_seconds);
    out << ",\"dur\":";
    write_us(out, sample.total_seconds);
    out << ",\"pid\":0,\"tid\":0,\"args\":{\"seq\":" << sample.seq
        << ",\"id\":";
    write_json_string(out, sample.id);
    if (!sample.method.empty()) {
      out << ",\"method\":";
      write_json_string(out, sample.method);
    }
    if (!sample.cache.empty()) {
      out << ",\"cache\":";
      write_json_string(out, sample.cache);
    }
    out << ",\"status\":";
    write_json_string(out, sample.status);
    out << "}}";

    const auto sub_span = [&](const char* name, double start, double dur) {
      if (dur <= 0) return;
      begin_event();
      out << "{\"name\":\"" << name
          << "\",\"cat\":\"svc_phase\",\"ph\":\"X\",\"ts\":";
      write_us(out, start);
      out << ",\"dur\":";
      write_us(out, dur);
      out << ",\"pid\":0,\"tid\":0,\"args\":{\"seq\":" << sample.seq << "}}";
    };
    sub_span("queue", sample.submit_seconds, sample.queue_seconds);
    sub_span("solve", sample.solve_start_seconds, sample.solve_seconds);
    // Finalize covers the tail between the end of the solve (or the
    // dispatch, for requests that never solved) and the response.
    const double work_end = sample.solve_seconds > 0
                                ? sample.solve_start_seconds +
                                      sample.solve_seconds
                                : sample.submit_seconds + sample.queue_seconds;
    const double request_end = sample.submit_seconds + sample.total_seconds;
    sub_span("finalize", work_end, request_end - work_end);
  }
  out << "\n]}\n";
}

void export_observability(const ObsOptions& obs,
                          std::span<const TrialResult> results,
                          std::span<const TrialSpec> trials) {
  if (!obs.metrics_path.empty()) {
    std::ofstream out(obs.metrics_path, std::ios::trunc);
    if (!out) throw IoError("metrics: cannot open " + obs.metrics_path);
    write_metrics_json(out, build_metrics_report(results));
    out.flush();
    if (!out) throw IoError("metrics: write failed: " + obs.metrics_path);
  }
  if (!obs.trace_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(obs.trace_dir, ec);
    if (ec) {
      throw IoError("trace: cannot create directory " + obs.trace_dir +
                    ": " + ec.message());
    }
    const std::filesystem::path dir(obs.trace_dir);
    const struct {
      const char* name;
      void (*write)(std::ostream&, std::span<const TrialResult>,
                    std::span<const TrialSpec>);
    } files[] = {
        {"convergence.jsonl", &write_convergence_jsonl},
        {"convergence.csv", &write_convergence_csv},
        {"trace.json", &write_chrome_trace},
    };
    for (const auto& file : files) {
      const std::string path = (dir / file.name).string();
      std::ofstream out(path, std::ios::trunc);
      if (!out) throw IoError("trace: cannot open " + path);
      file.write(out, results, trials);
      out.flush();
      if (!out) throw IoError("trace: write failed: " + path);
    }
  }
}

}  // namespace gbis
