#include "gbis/obs/trace.hpp"

#include <cstdlib>
#include <limits>
#include <ostream>

#include "gbis/io/io_error.hpp"

namespace gbis {

namespace {

void write_aux(std::ostream& out, double aux) {
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << aux;
  out.precision(precision);
}

/// Flat one-line JSON field scan (the checkpoint-journal convention:
/// keys are fixed identifiers, values are unquoted numbers or short
/// quoted names, so a substring find is exact).
std::size_t find_value(const std::string& line, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

std::uint64_t parse_u64(const std::string& line, const char* key) {
  const std::size_t i = find_value(line, key);
  if (i == std::string::npos) {
    throw IoError("convergence: missing \"" + std::string(key) +
                  "\" in: " + line);
  }
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(line.c_str() + i, &end, 10);
  if (end == line.c_str() + i) {
    throw IoError("convergence: bad \"" + std::string(key) +
                  "\" in: " + line);
  }
  return value;
}

std::int64_t parse_i64(const std::string& line, const char* key) {
  const std::size_t i = find_value(line, key);
  if (i == std::string::npos) {
    throw IoError("convergence: missing \"" + std::string(key) +
                  "\" in: " + line);
  }
  char* end = nullptr;
  const std::int64_t value = std::strtoll(line.c_str() + i, &end, 10);
  if (end == line.c_str() + i) {
    throw IoError("convergence: bad \"" + std::string(key) +
                  "\" in: " + line);
  }
  return value;
}

double parse_double(const std::string& line, const char* key) {
  const std::size_t i = find_value(line, key);
  if (i == std::string::npos) {
    throw IoError("convergence: missing \"" + std::string(key) +
                  "\" in: " + line);
  }
  char* end = nullptr;
  const double value = std::strtod(line.c_str() + i, &end);
  if (end == line.c_str() + i) {
    throw IoError("convergence: bad \"" + std::string(key) +
                  "\" in: " + line);
  }
  return value;
}

std::string parse_name(const std::string& line, const char* key) {
  std::size_t i = find_value(line, key);
  if (i == std::string::npos || i >= line.size() || line[i] != '"') {
    throw IoError("convergence: missing \"" + std::string(key) +
                  "\" in: " + line);
  }
  ++i;
  const std::size_t close = line.find('"', i);
  if (close == std::string::npos) {
    throw IoError("convergence: unterminated \"" + std::string(key) +
                  "\" in: " + line);
  }
  return line.substr(i, close - i);
}

TraceSource source_from_name(const std::string& name,
                             const std::string& line) {
  if (name == "kl") return TraceSource::kKl;
  if (name == "sa") return TraceSource::kSa;
  if (name == "fm") return TraceSource::kFm;
  if (name == "po") return TraceSource::kPo;
  throw IoError("convergence: unknown source \"" + name + "\" in: " + line);
}

}  // namespace

void write_convergence_jsonl(std::ostream& out,
                             std::span<const TrialResult> results,
                             std::span<const TrialSpec> trials) {
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& result = results[i];
    if (result.metrics == nullptr) continue;
    const TrialSpec& spec = trials[i];
    const std::string method = method_name(spec.method);
    for (const TracePoint& p : result.metrics->trace) {
      out << "{\"trial\":" << i << ",\"graph\":" << spec.graph_index
          << ",\"method\":\"" << method << "\",\"start\":"
          << spec.start_index << ",\"step\":" << p.step << ",\"source\":\""
          << trace_source_name(p.source) << "\",\"cut\":" << p.cut
          << ",\"best\":" << p.best << ",\"aux\":";
      write_aux(out, p.aux);
      out << "}\n";
    }
  }
}

void write_convergence_csv(std::ostream& out,
                           std::span<const TrialResult> results,
                           std::span<const TrialSpec> trials) {
  out << "trial,graph,method,start,step,source,cut,best,aux\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TrialResult& result = results[i];
    if (result.metrics == nullptr) continue;
    const TrialSpec& spec = trials[i];
    const std::string method = method_name(spec.method);
    for (const TracePoint& p : result.metrics->trace) {
      out << i << ',' << spec.graph_index << ',' << method << ','
          << spec.start_index << ',' << p.step << ','
          << trace_source_name(p.source) << ',' << p.cut << ',' << p.best
          << ',';
      write_aux(out, p.aux);
      out << '\n';
    }
  }
}

ConvergenceLine parse_convergence_line(const std::string& line) {
  ConvergenceLine parsed;
  parsed.trial = parse_u64(line, "trial");
  parsed.graph = static_cast<std::uint32_t>(parse_u64(line, "graph"));
  parsed.method = parse_name(line, "method");
  parsed.start = static_cast<std::uint32_t>(parse_u64(line, "start"));
  parsed.point.step = parse_u64(line, "step");
  parsed.point.source = source_from_name(parse_name(line, "source"), line);
  parsed.point.cut = parse_i64(line, "cut");
  parsed.point.best = parse_i64(line, "best");
  parsed.point.aux = parse_double(line, "aux");
  return parsed;
}

}  // namespace gbis
