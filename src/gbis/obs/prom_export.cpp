#include "gbis/obs/prom_export.hpp"

#include <cstdint>
#include <limits>
#include <ostream>

#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

// Upper bound of log2 bucket b as a decimal string: 2^b - 1, with
// bucket 0 (value == 0 exactly) at le="0".
std::uint64_t bucket_upper_bound(std::size_t bucket) {
  if (bucket >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << bucket) - 1;
}

void write_header(std::ostream& out, const std::string& name,
                  const char* catalog_name, const char* type) {
  out << "# HELP " << name << " gbis metric " << catalog_name << "\n";
  out << "# TYPE " << name << " " << type << "\n";
}

}  // namespace

std::string prom_metric_name(const std::string& catalog_name) {
  std::string out = "gbis_";
  for (char c : catalog_name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out.push_back(word ? c : '_');
  }
  return out;
}

void write_prom_exposition(std::ostream& out, const TrialMetrics& metrics) {
  write_prom_exposition(out, metrics, {});
}

void write_prom_exposition(
    std::ostream& out, const TrialMetrics& metrics,
    const std::array<const HistExemplars*, kNumHists>& exemplars) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const char* catalog = counter_name(static_cast<Counter>(i));
    const std::string name = prom_metric_name(catalog) + "_total";
    write_header(out, name, catalog, "counter");
    out << name << " " << metrics.counters[i] << "\n";
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const char* catalog = gauge_name(static_cast<Gauge>(i));
    const std::string name = prom_metric_name(catalog);
    write_header(out, name, catalog, "gauge");
    out << name << " " << metrics.gauges[i] << "\n";
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const HistData& h = metrics.hists[i];
    if (h.empty()) continue;
    const char* catalog = hist_name(static_cast<Hist>(i));
    const std::string name = prom_metric_name(catalog);
    write_header(out, name, catalog, "histogram");
    std::size_t highest = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] != 0) highest = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= highest; ++b) {
      cumulative += h.buckets[b];
      out << name << "_bucket{le=\"" << bucket_upper_bound(b) << "\"} "
          << cumulative;
      if (exemplars[i] != nullptr) {
        const BucketExemplar& ex = exemplars[i]->buckets[b];
        if (ex.has) {
          out << " # {trace_id=\"" << to_hex16(ex.trace) << "\"} " << ex.value;
        }
      }
      out << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << h.total() << "\n";
    out << name << "_sum " << h.sum << "\n";
    out << name << "_count " << h.total() << "\n";
  }
}

}  // namespace gbis
