#include "gbis/obs/progress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

namespace gbis {

ProgressMeter::ProgressMeter(std::uint64_t total, std::ostream* out,
                             double min_interval_seconds,
                             ProgressStyle style)
    : out_(out != nullptr ? out : &std::cerr),
      min_interval_(min_interval_seconds),
      total_(total),
      style_(style) {}

void ProgressMeter::adopt(ProgressOutcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  ++adopted_;
  ++done_;
  switch (outcome) {
    case ProgressOutcome::kOk: ++ok_; break;
    case ProgressOutcome::kFailed: ++failed_; break;
    case ProgressOutcome::kTimedOut: ++timed_out_; break;
    case ProgressOutcome::kSkipped: ++skipped_; break;
  }
  maybe_paint_locked();
}

void ProgressMeter::record(ProgressOutcome outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  ++done_;
  switch (outcome) {
    case ProgressOutcome::kOk: ++ok_; break;
    case ProgressOutcome::kFailed: ++failed_; break;
    case ProgressOutcome::kTimedOut: ++timed_out_; break;
    case ProgressOutcome::kSkipped: ++skipped_; break;
  }
  maybe_paint_locked();
}

void ProgressMeter::maybe_paint_locked() {
  const double now = timer_.elapsed_seconds();
  // An open-ended meter (total 0) never has a "final" update; only the
  // throttle decides.
  const bool final_update = total_ != 0 && done_ >= total_;
  if (last_paint_ >= 0.0 && now - last_paint_ < min_interval_ &&
      !final_update) {
    return;  // throttled; the next update (or finish) repaints
  }
  paint_locked();
}

void ProgressMeter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  paint_locked();
  if (painted_) *out_ << '\n' << std::flush;
  finished_ = true;
}

void ProgressMeter::paint_locked() {
  // One fixed-shape line, rewritten in place. Trailing spaces wipe any
  // longer previous paint.
  char line[160];
  const double elapsed = timer_.elapsed_seconds();
  const std::uint64_t executed = done_ - adopted_;
  // Clamp the denominator to the paint-throttle window: a paint landing
  // within the first microseconds would otherwise report an absurd
  // rate, and a zero-width interval an inf/nan one.
  const double denom = std::max(elapsed, min_interval_);
  double rate =
      denom > 0.0 ? static_cast<double>(executed) / denom : 0.0;
  if (!std::isfinite(rate)) rate = 0.0;
  if (style_ == ProgressStyle::kRequests) {
    std::snprintf(line, sizeof line,
                  "\rgbis: %llu requests | ok %llu, rejected %llu, err "
                  "%llu | %.1f req/s   ",
                  static_cast<unsigned long long>(done_),
                  static_cast<unsigned long long>(ok_),
                  static_cast<unsigned long long>(skipped_),
                  static_cast<unsigned long long>(failed_ + timed_out_),
                  rate);
    *out_ << line << std::flush;
    painted_ = true;
    last_paint_ = elapsed;
    return;
  }
  const std::uint64_t remaining = total_ > done_ ? total_ - done_ : 0;
  char eta[32];
  if (rate > 0.0 && remaining > 0) {
    const double seconds = static_cast<double>(remaining) / rate;
    if (seconds >= 120.0) {
      std::snprintf(eta, sizeof eta, "ETA %.0fm",
                    std::ceil(seconds / 60.0));
    } else {
      std::snprintf(eta, sizeof eta, "ETA %.0fs", std::ceil(seconds));
    }
  } else {
    std::snprintf(eta, sizeof eta, remaining == 0 ? "done" : "ETA --");
  }
  std::snprintf(line, sizeof line,
                "\rgbis: %llu/%llu trials | ok %llu, failed %llu, t/o "
                "%llu, skip %llu | %.1f trials/s | %s   ",
                static_cast<unsigned long long>(done_),
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(ok_),
                static_cast<unsigned long long>(failed_),
                static_cast<unsigned long long>(timed_out_),
                static_cast<unsigned long long>(skipped_), rate, eta);
  *out_ << line << std::flush;
  painted_ = true;
  last_paint_ = elapsed;
}

}  // namespace gbis
