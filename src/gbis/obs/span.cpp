#include "gbis/obs/span.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

std::uint64_t span_to_us(double seconds) {
  if (!(seconds > 0)) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

constexpr const char* kSubSpanNames[] = {"kl.pass", "sa.temp", "fm.pass",
                                         "po.pass"};

}  // namespace

const char* span_name_for_trace_source(TraceSource source) {
  return kSubSpanNames[static_cast<std::size_t>(source)];
}

std::string encode_span_set(const SpanSet& set, const char* state) {
  std::string line = "{\"state\":\"";
  line += state;
  line += "\",\"trace\":\"" + to_hex16(set.trace_id) + "\"";
  line += ",\"seq\":" + std::to_string(set.seq);
  line += ",\"id\":";
  append_json_string(line, set.id);
  line += ",\"op\":";
  append_json_string(line, set.op);
  line += ",\"status\":";
  append_json_string(line, set.status);
  line += ",\"spans\":[";
  bool first = true;
  for (const SpanRec& span : set.spans) {
    if (!first) line += ",";
    first = false;
    line += "{\"name\":";
    append_json_string(line, span.name);
    if (span.has_step) line += ",\"step\":" + std::to_string(span.step);
    if (span.has_value) line += ",\"cut\":" + std::to_string(span.value);
    if (span.has_aux) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", span.aux);
      line += ",\"temp\":";
      line += buf;
    }
    // Timing keys last in each span object (the repo-wide "_us"
    // convention), so one strip pattern recovers the deterministic
    // bytes.
    line += ",\"t_start_us\":" + std::to_string(span_to_us(span.start_seconds));
    line += ",\"t_dur_us\":" + std::to_string(span_to_us(span.duration_seconds));
    line += "}";
  }
  line += "]}";
  return line;
}

SpanBuffer::SpanBuffer(std::vector<SpanRec>* dest, std::uint32_t capacity)
    : dest_(dest), capacity_(capacity == 0 ? 1 : capacity) {}

void SpanBuffer::offer(SpanRec rec) {
#ifndef GBIS_DISABLE_OBS
  if (dest_ == nullptr) return;
  const std::uint64_t ordinal = ordinal_++;
  if (ordinal % stride_ != 0) return;
  if (dest_->size() >= capacity_) {
    // Decimate exactly like MetricsSink::trace_point: keep every other
    // held span, double the stride — a pure function of the offered
    // sequence, so thread-count invariant.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < dest_->size(); i += 2) {
      if (i != kept) (*dest_)[kept] = std::move((*dest_)[i]);
      ++kept;
    }
    dest_->resize(kept);
    stride_ *= 2;
    if (ordinal % stride_ != 0) return;
  }
  dest_->push_back(std::move(rec));
#else
  (void)rec;
#endif
}

void write_span_chrome_trace(std::ostream& out,
                             const std::deque<SpanSet>& sets) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanSet& set : sets) {
    for (const SpanRec& span : set.spans) {
      if (!first) out << ",";
      first = false;
      out << "\n{\"name\":\"" << span.name
          << "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":"
          << span_to_us(span.start_seconds)
          << ",\"dur\":" << span_to_us(span.duration_seconds)
          << ",\"pid\":0,\"tid\":0,\"args\":{\"trace\":\""
          << to_hex16(set.trace_id) << "\",\"seq\":" << set.seq;
      if (span.has_step) out << ",\"step\":" << span.step;
      if (span.has_value) out << ",\"cut\":" << span.value;
      out << "}}";
    }
  }
  out << "\n]}\n";
}

}  // namespace gbis
