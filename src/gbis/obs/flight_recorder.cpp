#include "gbis/obs/flight_recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "gbis/harness/shutdown.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

/// The installed recorder for the process-wide flight-dump hook.
/// Written on the main thread before any dump can fire; read from the
/// SIGQUIT handler and the crash path.
std::atomic<FlightRecorder*> g_flight{nullptr};

}  // namespace

FlightRecorder::FlightRecorder(std::uint32_t ring_capacity,
                               std::size_t inflight_slots)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      inflight_capacity_(inflight_slots == 0 ? 1 : inflight_slots) {}

FlightRecorder::~FlightRecorder() {
  uninstall(this);
  if (fd_ >= 0) ::close(fd_);
}

bool FlightRecorder::open_dump_file(const std::string& path) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return false;
  slots_ = std::make_unique<Slot[]>(ring_capacity_ + inflight_capacity_);
  return true;
}

FlightRecorder::Slot* FlightRecorder::ring_slot(
    std::uint64_t completed_ordinal) const {
  if (!slots_) return nullptr;
  return &slots_[completed_ordinal % ring_capacity_];
}

FlightRecorder::Slot* FlightRecorder::inflight_slot(std::uint64_t seq) const {
  if (!slots_) return nullptr;
  // Collisions overwrite the older line: the black box keeps the most
  // recent request per slot, which is the documented bound — the
  // scheduler sizes this at 2x its admission limit so collisions need
  // a pathological seq spread.
  return &slots_[ring_capacity_ + seq % inflight_capacity_];
}

void FlightRecorder::write_slot(Slot& slot, const SpanSet& set,
                                const char* state) {
  std::string line = encode_span_set(set, state);
  line += '\n';
  if (line.size() > kFlightSlotBytes) {
    // Too big for the fixed slot (a budget-1e6 request with a huge id
    // string): keep the identity so the black box still names it.
    line = "{\"state\":\"";
    line += state;
    line += "\",\"trace\":\"" + to_hex16(set.trace_id) + "\"";
    line += ",\"seq\":" + std::to_string(set.seq);
    line += ",\"truncated\":true}\n";
  }
  // Seqlock write: readers skip the slot while version is odd or if it
  // changed under them.
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);
  std::memcpy(slot.buf, line.data(), line.size());
  slot.len.store(static_cast<std::uint32_t>(line.size()),
                 std::memory_order_release);
  slot.version.store(v + 2, std::memory_order_release);
}

void FlightRecorder::clear_slot(Slot& slot) {
  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);
  slot.len.store(0, std::memory_order_release);
  slot.version.store(v + 2, std::memory_order_release);
}

void FlightRecorder::record_inflight(const SpanSet& set) {
  if (Slot* slot = inflight_slot(set.seq)) {
    write_slot(*slot, set, "inflight");
  }
  inflight_[set.seq] = set;
}

void FlightRecorder::complete(SpanSet set) {
  if (Slot* slot = inflight_slot(set.seq)) clear_slot(*slot);
  inflight_.erase(set.seq);
  const std::uint64_t ordinal =
      completed_total_.load(std::memory_order_relaxed);
  if (Slot* slot = ring_slot(ordinal)) {
    write_slot(*slot, set, "done");
  }
  ring_.push_back(std::move(set));
  while (ring_.size() > ring_capacity_) ring_.pop_front();
  completed_total_.store(ordinal + 1, std::memory_order_release);
}

const SpanSet* FlightRecorder::find(std::uint64_t trace_id,
                                    bool* inflight) const {
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (it->trace_id == trace_id) {
      if (inflight != nullptr) *inflight = false;
      return &*it;
    }
  }
  // Newest in-flight wins too: later submissions get larger seqs.
  for (auto it = inflight_.rbegin(); it != inflight_.rend(); ++it) {
    if (it->second.trace_id == trace_id) {
      if (inflight != nullptr) *inflight = true;
      return &it->second;
    }
  }
  return nullptr;
}

std::string FlightRecorder::export_completed() const {
  std::string out;
  for (const SpanSet& set : ring_) {
    out += encode_span_set(set, "done");
    out += '\n';
  }
  return out;
}

void FlightRecorder::dump_slots() const {
  if (fd_ < 0 || !slots_) return;
  const std::uint64_t total = completed_total_.load(std::memory_order_acquire);
  const std::uint64_t held =
      total < ring_capacity_ ? total : static_cast<std::uint64_t>(ring_capacity_);
  char copy[kFlightSlotBytes];
  auto dump_one = [&](const Slot& slot) {
    // Seqlock read: copy only if the version is even and unchanged
    // across the copy; otherwise the driver is mid-write — skip.
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 % 2 != 0) return;
    const std::uint32_t len = slot.len.load(std::memory_order_acquire);
    if (len == 0 || len > kFlightSlotBytes) return;
    std::memcpy(copy, slot.buf, len);
    const std::uint64_t v2 = slot.version.load(std::memory_order_acquire);
    if (v1 != v2) return;
    std::size_t off = 0;
    while (off < len) {
      const ::ssize_t n = ::write(fd_, copy + off, len - off);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  };
  // Completed ring oldest-first, then in-flight slots by index.
  for (std::uint64_t i = total - held; i < total; ++i) {
    dump_one(slots_[i % ring_capacity_]);
  }
  for (std::size_t i = 0; i < inflight_capacity_; ++i) {
    dump_one(slots_[ring_capacity_ + i]);
  }
}

void FlightRecorder::install(FlightRecorder* recorder) {
  g_flight.store(recorder, std::memory_order_release);
  set_flight_dump_hook(&FlightRecorder::signal_dump);
}

void FlightRecorder::uninstall(FlightRecorder* recorder) {
  FlightRecorder* expected = recorder;
  if (g_flight.compare_exchange_strong(expected, nullptr,
                                       std::memory_order_acq_rel)) {
    set_flight_dump_hook(nullptr);
  }
}

void FlightRecorder::signal_dump() {
  if (FlightRecorder* recorder = g_flight.load(std::memory_order_acquire)) {
    recorder->dump_slots();
  }
}

}  // namespace gbis
