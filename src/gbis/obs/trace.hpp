// Convergence-trace export: the bounded best-cut-so-far series each
// trial recorded (one point per KL/FM pass, one per SA temperature),
// flattened across a trial batch and written as JSONL and CSV next to
// the checkpoint journal. The JSONL form round-trips through
// parse_convergence_line (exercised by tests/test_obs.cpp); the CSV
// form is for plotting.
//
// Determinism: every field of every line is part of PR 1's contract —
// bit-identical output for any GBIS_THREADS at a fixed seed. Trials are
// emitted in trial-id order and points in step order, so the files
// compare byte-for-byte.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "gbis/harness/parallel_runner.hpp"
#include "gbis/obs/metrics.hpp"

namespace gbis {

/// One parsed convergence-JSONL line.
struct ConvergenceLine {
  std::uint64_t trial = 0;
  std::uint32_t graph = 0;
  std::string method;  ///< method_name() of the trial's method
  std::uint32_t start = 0;
  TracePoint point;

  friend bool operator==(const ConvergenceLine&,
                         const ConvergenceLine&) = default;
};

/// Writes one JSON object per trace point, trials in id order:
///   {"trial":0,"graph":0,"method":"KL","start":0,"step":2,
///    "source":"kl","cut":41,"best":41,"aux":0}
/// Trials without collected metrics (skipped, or metrics disabled) emit
/// nothing. `results` and `trials` must be parallel arrays.
void write_convergence_jsonl(std::ostream& out,
                             std::span<const TrialResult> results,
                             std::span<const TrialSpec> trials);

/// Same data as CSV with a header row
/// (trial,graph,method,start,step,source,cut,best,aux).
void write_convergence_csv(std::ostream& out,
                           std::span<const TrialResult> results,
                           std::span<const TrialSpec> trials);

/// Parses one line written by write_convergence_jsonl. Throws IoError
/// naming the offending field on malformed input.
ConvergenceLine parse_convergence_line(const std::string& line);

}  // namespace gbis
