// Chrome trace-event export and the top-level "write everything
// ObsOptions asked for" entry point the trial runner calls after a
// batch. The Chrome trace (trace.json) loads in Perfetto or
// chrome://tracing: one complete event ("ph":"X") per executed trial —
// including failed and timed-out trials — on the worker lane ("tid")
// that ran it, plus one sub-span per recorded phase (gen / compact /
// bisect / uncoalesce / refine). Timestamps are microseconds relative
// to the batch epoch (the moment run_trials_ex started).
//
// Unlike the convergence trace, this file is wall-clock data: span
// placement depends on scheduling and is NOT covered by the
// determinism contract. Span *structure* is: phases nest inside their
// trial, and spans on one tid never overlap (a worker runs one trial
// at a time) — tests/test_obs.cpp checks exactly that.
#pragma once

#include <iosfwd>
#include <span>

#include "gbis/harness/parallel_runner.hpp"
#include "gbis/obs/metrics.hpp"

namespace gbis {

/// Folds every collected trial's counters and histograms in trial-id
/// order and summarizes the per-trial CPU seconds (executed trials) and
/// cut (ok trials) distributions.
MetricsReport build_metrics_report(std::span<const TrialResult> results);

/// Writes the Chrome trace-event JSON. `results` and `trials` are the
/// parallel arrays a batch produced; trials without collected metrics
/// (skipped, or collection disabled) are omitted.
void write_chrome_trace(std::ostream& out,
                        std::span<const TrialResult> results,
                        std::span<const TrialSpec> trials);

/// Honors ObsOptions paths after a batch: writes the metrics JSON to
/// obs.metrics_path and convergence.jsonl / convergence.csv /
/// trace.json into obs.trace_dir (created if missing). Empty paths are
/// skipped; unwritable destinations throw IoError.
void export_observability(const ObsOptions& obs,
                          std::span<const TrialResult> results,
                          std::span<const TrialSpec> trials);

/// One sampled slow service request (svc/scheduler records these for
/// requests whose total latency reaches `--slow-ms`, capped by the
/// same deterministic stride-doubling decimation the convergence trace
/// uses). All times are wall-clock seconds relative to the service
/// epoch (construction) — timing values are nondeterministic; the
/// *set of sampled seqs* under a 0 ms threshold is not.
struct SvcSlowSample {
  std::uint64_t seq = 0;  ///< request ordinal (access-log "seq")
  std::string id;
  std::string method;  ///< requested method selector ("" for non-solve)
  std::string cache;   ///< "hit" | "miss" | "coalesced" | ""
  std::string status;  ///< "ok" | "error"
  double submit_seconds = 0;       ///< request arrival
  double queue_seconds = 0;        ///< submit -> batch dispatch
  double solve_start_seconds = 0;  ///< cold-solve start (epoch-relative)
  double solve_seconds = 0;        ///< cold-solve duration; 0 = no solve ran
  double total_seconds = 0;        ///< submit -> response finalized
};

/// Writes the slow-request Chrome trace: one "request" span per sample
/// (args: seq/id/cache/status) with "queue" / "solve" / "finalize"
/// phase sub-spans, all on one lane (the service is single-driver).
void write_svc_trace(std::ostream& out,
                     std::span<const SvcSlowSample> samples);

}  // namespace gbis
