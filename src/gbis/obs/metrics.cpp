#include "gbis/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string_view>

namespace gbis {

namespace {

constexpr const char* kCounterNames[kNumCounters] = {
    "kl.passes",
    "kl.pairs_selected",
    "kl.pairs_swapped",
    "kl.candidates_scanned",
    "fm.passes",
    "fm.moves_considered",
    "fm.moves_applied",
    "fm.bucket_ops",
    "sa.temperatures",
    "sa.proposals.hot",
    "sa.proposals.warm",
    "sa.proposals.cold",
    "sa.accepts.hot",
    "sa.accepts.warm",
    "sa.accepts.cold",
    "sa.rejects.hot",
    "sa.rejects.warm",
    "sa.rejects.cold",
    "deadline.polls",
    "svc.requests",
    "svc.rejected",
    "svc.cache.hits",
    "svc.cache.misses",
    "svc.cache.evictions",
    "svc.coalesced",
    "svc.conn.accepted",
    "svc.conn.closed",
    "svc.conn.slow_closed",
    "svc.conn.rejected",
    "svc.quota_rejected",
    "svc.cache.restored",
    "svc.cache.journal_bytes",
    "svc.cache.compactions",
    "svc.brownout.entered",
    "svc.brownout.restored",
    "svc.brownout.shed",
    "svc.mutate.ok",
    "svc.mutate.rejected",
    "svc.solve.warm",
    "svc.solve.warm_fallback",
    "svc.graphstore.evictions",
    "svc.lineage.restored",
    "po.passes",
    "po.paths",
    "po.flips_proposed",
    "po.flips_applied",
    "svc.quality.fast",
    "svc.quality.balanced",
    "svc.quality.best",
    "svc.solve_by.ckl",
    "svc.solve_by.csa",
    "svc.solve_by.kl",
    "svc.solve_by.sa",
    "svc.solve_by.mlkl",
    "svc.solve_by.path",
    "svc.solve_by.greedy_hc",
    "svc.solve_by.other",
    "svc.trace.spans",
    "svc.trace.exports",
};

constexpr const char* kHistNames[kNumHists] = {
    "kl.pass_improvement",
    "fm.pass_improvement",
    "sa.temp_acceptance_pct",
    "svc.request_latency_us",
    "svc.solve_latency_us",
    "svc.queue_wait_us",
};

constexpr const char* kGaugeNames[kNumGauges] = {
    "svc.queue_depth",
    "svc.inflight",
    "svc.cache.bytes",
    "svc.batch.size",
    "svc.connections",
    "svc.brownout_level",
    "svc.graphstore.bytes",
    "svc.graphstore.entries",
    "svc.flight.ring",
};

constexpr const char* kPhaseNames[kNumPhases] = {
    "gen",
    "compact",
    "bisect",
    "uncoalesce",
    "refine",
};

constexpr const char* kTraceSourceNames[] = {"kl", "sa", "fm", "po"};

// Same stderr shape as experiments.cpp / fault_injection.cpp: name the
// variable and the rejected text, then keep the default.
void warn_rejected(const char* var, const char* text) {
  std::cerr << "gbis: ignoring malformed " << var << "=\"" << text
            << "\" (keeping default)\n";
}

}  // namespace

const char* counter_name(Counter counter) {
  return kCounterNames[static_cast<std::size_t>(counter)];
}

bool counter_from_name(const std::string& name, Counter& out) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (name == kCounterNames[i]) {
      out = static_cast<Counter>(i);
      return true;
    }
  }
  return false;
}

const char* hist_name(Hist hist) {
  return kHistNames[static_cast<std::size_t>(hist)];
}

bool hist_from_name(const std::string& name, Hist& out) {
  for (std::size_t i = 0; i < kNumHists; ++i) {
    if (name == kHistNames[i]) {
      out = static_cast<Hist>(i);
      return true;
    }
  }
  return false;
}

const char* gauge_name(Gauge gauge) {
  return kGaugeNames[static_cast<std::size_t>(gauge)];
}

bool gauge_from_name(const std::string& name, Gauge& out) {
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (name == kGaugeNames[i]) {
      out = static_cast<Gauge>(i);
      return true;
    }
  }
  return false;
}

const char* phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

const char* trace_source_name(TraceSource source) {
  return kTraceSourceNames[static_cast<std::size_t>(source)];
}

SaStage sa_stage(double temperature, double initial_temperature) {
  if (temperature >= 0.5 * initial_temperature) return SaStage::kHot;
  if (temperature >= 0.05 * initial_temperature) return SaStage::kWarm;
  return SaStage::kCold;
}

std::uint64_t HistData::total() const {
  return std::accumulate(buckets.begin(), buckets.end(), std::uint64_t{0});
}

double hist_bucket_representative(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  // Midpoint of [2^(b-1), 2^b - 1].
  const double lo = std::ldexp(1.0, static_cast<int>(bucket) - 1);
  return lo + (lo - 1.0) / 2.0;
}

double hist_percentile(const HistData& hist, double p) {
  const std::uint64_t n = hist.total();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Order statistic k of the implied sorted sample, read off the
  // cumulative bucket counts.
  const auto order_stat = [&hist](std::uint64_t k) {
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
      cumulative += hist.buckets[b];
      if (cumulative > k) return hist_bucket_representative(b);
    }
    return hist_bucket_representative(hist.buckets.size() - 1);
  };
  const double rank = p / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::uint64_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const double lo_value = order_stat(lo);
  if (frac == 0.0) return lo_value;
  return lo_value + frac * (order_stat(lo + 1) - lo_value);
}

HistSummary summarize_hist(const HistData& hist) {
  HistSummary summary;
  summary.count = hist.total();
  summary.sum = hist.sum;
  summary.p50 = hist_percentile(hist, 50);
  summary.p90 = hist_percentile(hist, 90);
  summary.p99 = hist_percentile(hist, 99);
  return summary;
}

bool TrialMetrics::summary_empty() const {
  for (std::uint64_t c : counters) {
    if (c != 0) return false;
  }
  for (const HistData& h : hists) {
    if (!h.empty()) return false;
  }
  for (std::int64_t g : gauges) {
    if (g != 0) return false;
  }
  return true;
}

void merge_metric_summaries(TrialMetrics& into, const TrialMetrics& from) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    into.counters[i] += from.counters[i];
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    for (std::size_t b = 0; b < into.hists[i].buckets.size(); ++b) {
      into.hists[i].buckets[b] += from.hists[i].buckets[b];
    }
    into.hists[i].sum += from.hists[i].sum;
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    into.gauges[i] = std::max(into.gauges[i], from.gauges[i]);
  }
}

MetricsSink::MetricsSink(TrialMetrics* dest, std::uint32_t trace_capacity)
    : dest_(dest), trace_capacity_(trace_capacity == 0 ? 1 : trace_capacity) {}

void MetricsSink::trace_point(TraceSource source, std::int64_t cut,
                              double aux) {
#ifndef GBIS_DISABLE_OBS
  if (dest_ == nullptr) return;
  if (!have_best_ || cut < best_cut_) {
    best_cut_ = cut;
    have_best_ = true;
  }
  const std::uint64_t ordinal = trace_ordinal_++;
  if (ordinal % trace_stride_ != 0) return;
  if (dest_->trace.size() >= trace_capacity_) {
    // Decimate: keep every other held point (the ones whose ordinal is
    // a multiple of the doubled stride) and double the stride. Purely
    // a function of the offered sequence, so thread-count invariant.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < dest_->trace.size(); i += 2) {
      dest_->trace[kept++] = dest_->trace[i];
    }
    dest_->trace.resize(kept);
    trace_stride_ *= 2;
    if (ordinal % trace_stride_ != 0) return;
  }
  dest_->trace.push_back(
      TracePoint{ordinal, source, cut, best_cut_, aux});
#else
  (void)source;
  (void)cut;
  (void)aux;
#endif
}

void MetricsSink::begin_phase(Phase p) {
#ifndef GBIS_DISABLE_OBS
  if (dest_ == nullptr) return;
  phase_start_[static_cast<std::size_t>(p)] = timer_.elapsed_seconds();
#else
  (void)p;
#endif
}

void MetricsSink::end_phase(Phase p) {
#ifndef GBIS_DISABLE_OBS
  if (dest_ == nullptr) return;
  const double start = phase_start_[static_cast<std::size_t>(p)];
  const double now = timer_.elapsed_seconds();
  dest_->phases.push_back(PhaseSpan{p, start, now - start});
#else
  (void)p;
#endif
}

ObsOptions obs_options_from_env(ObsOptions base) {
  if (const char* v = std::getenv("GBIS_METRICS"); v != nullptr) {
    if (*v == '\0') {
      warn_rejected("GBIS_METRICS", v);
    } else {
      base.metrics_path = v;
    }
  }
  if (const char* v = std::getenv("GBIS_TRACE_DIR"); v != nullptr) {
    if (*v == '\0') {
      warn_rejected("GBIS_TRACE_DIR", v);
    } else {
      base.trace_dir = v;
    }
  }
  if (const char* v = std::getenv("GBIS_PROGRESS"); v != nullptr) {
    const std::string_view s(v);
    if (s == "1" || s == "true") {
      base.progress = true;
    } else if (s == "0" || s == "false") {
      base.progress = false;
    } else {
      warn_rejected("GBIS_PROGRESS", v);
    }
  }
  return base;
}

namespace {

void write_double(std::ostream& out, double v) {
  const auto precision = out.precision();
  out.precision(std::numeric_limits<double>::max_digits10);
  out << v;
  out.precision(precision);
}

void write_distribution(std::ostream& out, const char* name, double min,
                        double max, double mean, double p50, double p90,
                        double p99, bool with_p99) {
  out << "\"" << name << "\":{\"min\":";
  write_double(out, min);
  out << ",\"max\":";
  write_double(out, max);
  out << ",\"mean\":";
  write_double(out, mean);
  out << ",\"p50\":";
  write_double(out, p50);
  out << ",\"p90\":";
  write_double(out, p90);
  if (with_p99) {
    out << ",\"p99\":";
    write_double(out, p99);
  }
  out << "}";
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsReport& report) {
  out << "{\"schema\":\"gbis-metrics-v1\"";
  out << ",\"trials\":" << report.trials;
  out << ",\"collected\":" << report.collected;
  out << ",\"ok\":" << report.ok;
  out << ",\"failed\":" << report.failed;
  out << ",\"timed_out\":" << report.timed_out;
  out << ",\"skipped\":" << report.skipped;
  out << ",";
  write_distribution(out, "cpu_seconds", report.cpu_min, report.cpu_max,
                     report.cpu_mean, report.cpu_p50, report.cpu_p90,
                     report.cpu_p99, /*with_p99=*/true);
  out << ",";
  write_distribution(out, "cut", report.cut_min, report.cut_max,
                     report.cut_mean, report.cut_p50, report.cut_p90, 0,
                     /*with_p99=*/false);
  out << ",\"counters\":{";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i != 0) out << ",";
    out << "\"" << kCounterNames[i] << "\":" << report.totals.counters[i];
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    if (i != 0) out << ",";
    out << "\"" << kGaugeNames[i] << "\":" << report.totals.gauges[i];
  }
  out << "},\"hists\":{";
  bool first = true;
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const HistData& h = report.totals.hists[i];
    if (h.empty()) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << kHistNames[i] << "\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out << ",";
      first_bucket = false;
      out << "[" << b << "," << h.buckets[b] << "]";
    }
    out << "]";
  }
  out << "}}\n";
}

}  // namespace gbis
