// Request spans for the partition service: the causal record of one
// request's path through accept -> parse -> admit -> queue -> phase-1
// lookup/mutate -> solve (with per-method sub-spans from the registry)
// -> finalize -> write. A SpanSet is everything one request recorded;
// the scheduler assembles it on the dispatch thread in arrival order,
// workers contribute only their own solve sub-spans, and the flight
// recorder (obs/flight_recorder) keeps the last N completed sets plus
// every in-flight one.
//
// Determinism contract (the service-wide one, see docs/SERVICE.md):
// span *structure* — names, order, step ordinals, cut values, the
// trace id — is a pure function of the request stream at any
// GBIS_THREADS. The per-span `t_start_us` / `t_dur_us` fields are
// wall-clock data; like every other timing key they end in "_us" and
// sit last in each span object, so byte comparisons strip them with
// the one shared pattern.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "gbis/obs/metrics.hpp"

namespace gbis {

/// One recorded span. `step`/`value`/`aux` are optional payloads:
/// `step` is a pass/trial ordinal, `value` a cut (or edit count for
/// warm.project), `aux` an SA temperature.
struct SpanRec {
  std::string name;  ///< taxonomy name ("accept", "kl.pass", ...)
  std::uint64_t step = 0;
  bool has_step = false;
  std::int64_t value = 0;  ///< encoded as "cut"
  bool has_value = false;
  double aux = 0.0;  ///< encoded as "temp" (SA sub-spans)
  bool has_aux = false;
  /// Wall-clock placement against the service epoch — nondeterministic;
  /// encoded last in the span object as t_start_us / t_dur_us.
  double start_seconds = 0;
  double duration_seconds = 0;
};

/// Everything one request recorded: identity plus its spans in
/// chronological (record) order.
struct SpanSet {
  std::uint64_t trace_id = 0;  ///< rendered to_hex16 on every surface
  std::uint64_t seq = 0;       ///< request ordinal (access-log "seq")
  std::string id;              ///< request id, verbatim
  std::string op;              ///< "solve" | "ping" | ... (op_name)
  std::string status;          ///< "queued"/"pending" in flight; "ok"/"error"/"rejected" done
  std::vector<SpanRec> spans;
};

/// Encodes one span set as a single JSON line (no trailing newline):
/// `{"state":"done","trace":"<hex16>","seq":N,...,"spans":[...]}` with
/// all non-"_us" keys first in each span object. `state` is "done" for
/// completed sets and "inflight" for crash/SIGQUIT dumps of live work.
std::string encode_span_set(const SpanSet& set, const char* state);

/// Sub-span taxonomy name of a convergence-trace source: kl.pass,
/// sa.temp, fm.pass, po.pass.
const char* span_name_for_trace_source(TraceSource source);

/// Bounded span collector for the solve path (svc/policy): the same
/// deterministic stride-doubling decimation as the convergence trace,
/// so a budget-1e6 request cannot grow an unbounded span list and the
/// kept subset is thread-count invariant. Default-constructed it is the
/// null buffer: offer() is a no-op (bench/micro_obs prices exactly
/// that), and -DGBIS_DISABLE_OBS empties the body entirely.
class SpanBuffer {
 public:
  SpanBuffer() = default;
  explicit SpanBuffer(std::vector<SpanRec>* dest,
                      std::uint32_t capacity = kDefaultCapacity);

  /// Offers one span; kept or dropped purely as a function of the
  /// offered sequence.
  void offer(SpanRec rec);

  bool bound() const { return dest_ != nullptr; }

  static constexpr std::uint32_t kDefaultCapacity = 48;

 private:
  std::vector<SpanRec>* dest_ = nullptr;
  std::uint32_t capacity_ = kDefaultCapacity;
  std::uint64_t ordinal_ = 0;  ///< spans offered so far
  std::uint64_t stride_ = 1;   ///< keep every stride-th span
};

/// Chrome trace-event dump of completed span sets (the `spans.json`
/// companion of the slow-sample trace.json): one "request" lane, one
/// complete event per span with trace/seq/step/cut args. Wall-clock
/// placement, outside the determinism contract like every Chrome
/// trace.
void write_span_chrome_trace(std::ostream& out,
                             const std::deque<SpanSet>& sets);

}  // namespace gbis
