// Prometheus text-format exposition (version 0.0.4) of a TrialMetrics
// snapshot — the pull-side view of the metric registry for `gbis
// serve` (`{"op":"stats","format":"prom"}` and the `--stats-file`
// periodic snapshot; see docs/SERVICE.md).
//
// Catalog names map mechanically: "svc.cache.hits" becomes
// `gbis_svc_cache_hits_total` (counters get the `_total` suffix,
// gauges keep the bare name). Log2 histograms are emitted as native
// Prometheus histograms: bucket b's upper bound is 2^b - 1 (bucket 0
// is le="0"), cumulative counts, plus `_sum` from HistData::sum and
// `_count`. Counter and gauge samples are deterministic; histogram
// samples are wall-clock latency data and are outside the determinism
// contract (their metric names carry the `_us` marker, so comparison
// tooling strips those lines).
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "gbis/obs/metrics.hpp"

namespace gbis {

/// "svc.cache.hits" -> "gbis_svc_cache_hits" (no kind suffix).
std::string prom_metric_name(const std::string& catalog_name);

/// Writes the full exposition: every counter and gauge in the
/// registry, plus every non-empty histogram. Ends with a newline;
/// lint-clean under tools/prom_lint.py.
void write_prom_exposition(std::ostream& out, const TrialMetrics& metrics);

/// Exemplar-decorated exposition: `exemplars[h]` (null entries = no
/// exemplars for that histogram) appends OpenMetrics exemplar syntax —
/// ` # {trace_id="<hex16>"} <value>` — to each raw `_bucket` sample
/// whose bucket holds one (never the synthetic +Inf bucket). Exemplars
/// only ever decorate the `_us`-named latency histograms, so byte
/// comparisons already skip those lines; lint-clean under
/// `tools/prom_lint.py --strict`.
void write_prom_exposition(
    std::ostream& out, const TrialMetrics& metrics,
    const std::array<const HistExemplars*, kNumHists>& exemplars);

}  // namespace gbis
