// Per-trial observability registry — the data model of the obs
// subsystem. Every trial of the parallel runner owns one TrialMetrics
// slot: a fixed set of named counters (KL passes and swaps, FM moves
// and gain-bucket ops, SA proposals/accepts/rejects by temperature
// stage, deadline polls), log2-bucket histograms, a bounded convergence
// trace, and wall-clock phase spans for the Chrome-trace export.
//
// Hot loops never see TrialMetrics directly; they hold a MetricsSink*
// (embedded in KlOptions/SaOptions/FmOptions/CompactionOptions). The
// disabled path is a branch on that pointer: a null options pointer (or
// a sink bound to no destination — the "null sink") records nothing.
// Compiling with -DGBIS_DISABLE_OBS empties the sink bodies entirely
// for a zero-instruction hot path.
//
// Determinism contract (extends PR 1's): counters, histograms, and
// trace points of trial t are pure functions of (seed, t) — no clocks,
// no thread identity — so aggregates merged in trial-id order are
// bit-identical for any GBIS_THREADS. Phase spans and the per-trial
// tid/start-offset fields are wall-clock data for the Chrome trace and
// are explicitly outside that contract.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "gbis/harness/timer.hpp"

namespace gbis {

/// Counter registry. Names (metric catalog in docs/OBSERVABILITY.md)
/// are the stable schema used by the metrics JSON and the checkpoint
/// journal; append new counters at the end, never reorder.
enum class Counter : std::uint8_t {
  kKlPasses = 0,          ///< "kl.passes"
  kKlPairsSelected,       ///< "kl.pairs_selected"
  kKlPairsSwapped,        ///< "kl.pairs_swapped"
  kKlCandidatesScanned,   ///< "kl.candidates_scanned"
  kFmPasses,              ///< "fm.passes"
  kFmMovesConsidered,     ///< "fm.moves_considered"
  kFmMovesApplied,        ///< "fm.moves_applied"
  kFmBucketOps,           ///< "fm.bucket_ops" (insert/remove/update)
  kSaTemperatures,        ///< "sa.temperatures"
  kSaProposalsHot,        ///< "sa.proposals.hot"   (T >= T0/2)
  kSaProposalsWarm,       ///< "sa.proposals.warm"  (T0/20 <= T < T0/2)
  kSaProposalsCold,       ///< "sa.proposals.cold"  (T < T0/20)
  kSaAcceptsHot,          ///< "sa.accepts.hot"
  kSaAcceptsWarm,         ///< "sa.accepts.warm"
  kSaAcceptsCold,         ///< "sa.accepts.cold"
  kSaRejectsHot,          ///< "sa.rejects.hot"
  kSaRejectsWarm,         ///< "sa.rejects.warm"
  kSaRejectsCold,         ///< "sa.rejects.cold"
  kDeadlinePolls,         ///< "deadline.polls"
  // Partition-service counters (svc/scheduler.*); recorded per service
  // instance, not per trial, and merged into metric reports the same
  // way.
  kSvcRequests,           ///< "svc.requests"
  kSvcRejected,           ///< "svc.rejected" (admission control)
  kSvcCacheHits,          ///< "svc.cache.hits"
  kSvcCacheMisses,        ///< "svc.cache.misses"
  kSvcCacheEvictions,     ///< "svc.cache.evictions"
  kSvcCoalesced,          ///< "svc.coalesced" (within-batch dedup)
  // Socket-listener counters (svc/listener.*): connection lifecycle
  // and listener-level admission, recorded on the listener's driver
  // thread.
  kSvcConnAccepted,       ///< "svc.conn.accepted"
  kSvcConnClosed,         ///< "svc.conn.closed" (all causes)
  kSvcConnSlowClosed,     ///< "svc.conn.slow_closed" (write stall/backlog)
  kSvcConnRejected,       ///< "svc.conn.rejected" (over --max-conns)
  kSvcQuotaRejected,      ///< "svc.quota_rejected" (per-conn request quota)
  // Durable result-cache counters (svc/cache_store.*).
  kSvcCacheRestored,      ///< "svc.cache.restored" (entries from warm start)
  kSvcCacheJournalBytes,  ///< "svc.cache.journal_bytes" (cumulative appended)
  kSvcCacheCompactions,   ///< "svc.cache.compactions" (journal rewrites)
  // Brownout-controller counters (svc/scheduler.*).
  kSvcBrownoutEntered,    ///< "svc.brownout.entered" (level left 0)
  kSvcBrownoutRestored,   ///< "svc.brownout.restored" (level returned to 0)
  kSvcBrownoutShed,       ///< "svc.brownout.shed" (solves rejected at L3)
  // Dynamic-graph subsystem counters (dyn/*, svc/scheduler.*).
  kSvcMutateOk,           ///< "svc.mutate.ok" (mutations applied/replayed)
  kSvcMutateRejected,     ///< "svc.mutate.rejected" (invalid edit batches)
  kSvcSolveWarm,          ///< "svc.solve.warm" (lineage warm-start solves)
  kSvcSolveWarmFallback,  ///< "svc.solve.warm_fallback" (guardrail -> cold)
  kSvcGraphStoreEvictions,  ///< "svc.graphstore.evictions"
  kSvcLineageRestored,    ///< "svc.lineage.restored" (edges from journal)
  // Path-optimization counters (methods/path_opt.*), per trial like
  // the KL/FM/SA blocks above.
  kPoPasses,              ///< "po.passes"
  kPoPaths,               ///< "po.paths" (paths grown)
  kPoFlipsProposed,       ///< "po.flips_proposed" (vertices visited)
  kPoFlipsApplied,        ///< "po.flips_applied" (kept by a best prefix)
  // Quality-ladder counters (svc/scheduler.*, methods/registry.*).
  kSvcQualityFast,        ///< "svc.quality.fast" (resolved request tier)
  kSvcQualityBalanced,    ///< "svc.quality.balanced"
  kSvcQualityBest,        ///< "svc.quality.best"
  kSvcSolveByCkl,         ///< "svc.solve_by.ckl" (winning method of ok
                          ///  cold solves; registry solve_counter rows)
  kSvcSolveByCsa,         ///< "svc.solve_by.csa"
  kSvcSolveByKl,          ///< "svc.solve_by.kl"
  kSvcSolveBySa,          ///< "svc.solve_by.sa"
  kSvcSolveByMlkl,        ///< "svc.solve_by.mlkl"
  kSvcSolveByPath,        ///< "svc.solve_by.path"
  kSvcSolveByGreedyHc,    ///< "svc.solve_by.greedy_hc"
  kSvcSolveByOther,       ///< "svc.solve_by.other" (off-ladder methods)
  // Request-tracing counters (obs/span.*, svc/scheduler.*).
  kSvcTraceSpans,         ///< "svc.trace.spans" (spans recorded, all requests)
  kSvcTraceExports,       ///< "svc.trace.exports" (ok op:"trace" responses)
  kCount
};
inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Stable journal/JSON name of a counter ("kl.passes", ...).
const char* counter_name(Counter counter);

/// Reverse lookup for journal parsing; false when `name` is unknown
/// (callers skip the field — journals stay forward-compatible with
/// counters added later).
bool counter_from_name(const std::string& name, Counter& out);

/// SA temperature stage relative to the calibrated T0 (see the
/// per-stage counters above). Deterministic: depends only on the
/// trial's own temperature trajectory.
enum class SaStage : std::uint8_t { kHot = 0, kWarm, kCold };
SaStage sa_stage(double temperature, double initial_temperature);

/// Gauge registry: last-written level values (queue depths, resident
/// bytes) as opposed to the monotonic counters above. Same stable-name
/// rules: append at the end, never reorder. Gauges are signed — deltas
/// via add_gauge may transiently dip below zero in embedders.
enum class Gauge : std::uint8_t {
  kSvcQueueDepth = 0,  ///< "svc.queue_depth" (undispatched requests)
  kSvcInflight,        ///< "svc.inflight" (cold solves in the running batch)
  kSvcCacheBytes,      ///< "svc.cache.bytes" (result-cache resident bytes)
  kSvcBatchSize,       ///< "svc.batch.size" (requests in the last batch)
  kSvcConnections,     ///< "svc.connections" (open listener connections)
  kSvcBrownoutLevel,   ///< "svc.brownout_level" (overload ladder rung, 0-3)
  kSvcGraphStoreBytes,    ///< "svc.graphstore.bytes" (resident graph bytes)
  kSvcGraphStoreEntries,  ///< "svc.graphstore.entries" (resident graphs)
  kSvcFlightRing,         ///< "svc.flight.ring" (completed sets held)
  kCount
};
inline constexpr std::size_t kNumGauges =
    static_cast<std::size_t>(Gauge::kCount);

/// Stable journal/JSON name of a gauge ("svc.queue_depth", ...).
const char* gauge_name(Gauge gauge);

/// Reverse lookup; false when `name` is unknown.
bool gauge_from_name(const std::string& name, Gauge& out);

/// Histogram registry (log2 buckets; see HistData).
enum class Hist : std::uint8_t {
  kKlPassImprovement = 0,  ///< "kl.pass_improvement" (cut gain per pass)
  kFmPassImprovement,      ///< "fm.pass_improvement"
  kSaTempAcceptancePct,    ///< "sa.temp_acceptance_pct" (round(ratio*100))
  // Partition-service latency histograms (svc/scheduler.*), sampled in
  // microseconds. Wall-clock data: bucket counts are stable but the
  // *values* are explicitly outside the determinism contract — stats
  // keys derived from them carry a "_us" suffix so replay comparisons
  // can strip them.
  kSvcRequestLatencyUs,    ///< "svc.request_latency_us" (submit -> response)
  kSvcSolveLatencyUs,      ///< "svc.solve_latency_us" (cold solve duration)
  kSvcQueueWaitUs,         ///< "svc.queue_wait_us" (submit -> dispatch)
  kCount
};
inline constexpr std::size_t kNumHists =
    static_cast<std::size_t>(Hist::kCount);

const char* hist_name(Hist hist);

/// Reverse lookup for journal parsing; false when unknown.
bool hist_from_name(const std::string& name, Hist& out);

/// Power-of-two histogram: value v lands in bucket bit_width(v)
/// (bucket 0 holds exactly v == 0, bucket b >= 1 holds
/// [2^(b-1), 2^b - 1]). 65 buckets cover the full uint64 range.
struct HistData {
  std::array<std::uint64_t, 65> buckets{};
  /// Exact sum of observed values (Prometheus `_sum`). Not part of the
  /// sparse [[bucket,count],...] journal serialization, so resumed
  /// campaigns carry bucket counts only — fine, because sums are only
  /// reported on the live service path.
  std::uint64_t sum = 0;

  static std::size_t bucket_of(std::uint64_t value) {
    return static_cast<std::size_t>(std::bit_width(value));
  }
  void observe(std::uint64_t value) {
    ++buckets[bucket_of(value)];
    sum += value;
  }
  std::uint64_t total() const;
  bool empty() const { return total() == 0; }
};

/// Exemplar of one histogram bucket: the trace id of the max-value
/// sample that landed there (OpenMetrics exemplars; stats v5). The
/// *which sample was max* decision is wall-clock data, so every surface
/// that renders these does so under a "_us"-marked key (or on a
/// "_us"-named metric) — outside the determinism contract by the same
/// convention as the latency histograms themselves.
struct BucketExemplar {
  std::uint64_t trace = 0;  ///< trace id of the exemplar sample
  std::uint64_t value = 0;  ///< the sampled value (microseconds)
  bool has = false;
};

/// Per-bucket exemplars for one log2 histogram (65 buckets, matching
/// HistData). offer() keeps the max-value sample per bucket.
struct HistExemplars {
  std::array<BucketExemplar, 65> buckets{};

  void offer(std::uint64_t value, std::uint64_t trace) {
    BucketExemplar& slot = buckets[HistData::bucket_of(value)];
    if (!slot.has || value > slot.value) {
      slot.trace = trace;
      slot.value = value;
      slot.has = true;
    }
  }

  /// The overall max-latency exemplar across all buckets; has==false
  /// when no sample was ever offered.
  BucketExemplar top() const {
    BucketExemplar best;
    for (const BucketExemplar& slot : buckets) {
      if (slot.has && (!best.has || slot.value > best.value)) best = slot;
    }
    return best;
  }
};

/// Five-number summary of a log2 histogram, for the stats-v2 protocol
/// op and the bench snapshot. Percentiles are interpolated over bucket
/// representatives with exactly the `harness/stats.hpp percentile`
/// rank convention (rank p/100*(n-1), linear interpolation), treating
/// each bucket's count as that many samples at the representative.
struct HistSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  double p50 = 0, p90 = 0, p99 = 0;
};

/// Representative value of bucket b: 0 for bucket 0, the midpoint of
/// [2^(b-1), 2^b - 1] for b >= 1.
double hist_bucket_representative(std::size_t bucket);

/// `percentile()`-convention percentile over the histogram's implied
/// sample (p clamped to [0,100]; empty histogram -> 0).
double hist_percentile(const HistData& hist, double p);

HistSummary summarize_hist(const HistData& hist);

/// Where a convergence-trace point came from.
enum class TraceSource : std::uint8_t { kKl = 0, kSa, kFm, kPo };
const char* trace_source_name(TraceSource source);

/// One convergence-trace sample: best-cut-so-far per KL/FM pass or per
/// SA temperature step. `step` is the per-trial record ordinal (0, 1,
/// ... across all refine calls of the trial), which stays monotone
/// through CKL's coarse-then-fine runs. `aux` carries the temperature
/// for SA points and 0 otherwise.
struct TracePoint {
  std::uint64_t step = 0;
  TraceSource source = TraceSource::kKl;
  std::int64_t cut = 0;
  std::int64_t best = 0;  ///< best cut seen so far in this trial
  double aux = 0.0;

  friend bool operator==(const TracePoint&, const TracePoint&) = default;
};

/// Trial phases for the Chrome-trace sub-spans.
enum class Phase : std::uint8_t {
  kGen = 0,     ///< initial random bisection
  kCompact,     ///< matching + contraction
  kBisect,      ///< solving the coarse graph (or a baseline end-to-end)
  kUncoalesce,  ///< projection back + rebalance
  kRefine,      ///< refinement on the (finer) graph
  kCount
};
inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kCount);

const char* phase_name(Phase phase);

/// One wall-clock phase span, relative to the trial's start.
struct PhaseSpan {
  Phase phase = Phase::kGen;
  double start_seconds = 0;
  double duration_seconds = 0;
};

/// Everything one trial recorded. Counters/hists/trace are the
/// deterministic part; phases/tid/start_offset/wall are Chrome-trace
/// timing data.
struct TrialMetrics {
  std::array<std::uint64_t, kNumCounters> counters{};
  std::array<HistData, kNumHists> hists{};
  std::array<std::int64_t, kNumGauges> gauges{};
  std::vector<TracePoint> trace;
  std::vector<PhaseSpan> phases;
  double start_offset_seconds = 0;  ///< trial start relative to batch epoch
  double wall_seconds = 0;          ///< trial wall-clock duration
  std::uint32_t tid = 0;            ///< dense worker index within the batch

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const HistData& hist(Hist h) const {
    return hists[static_cast<std::size_t>(h)];
  }
  std::int64_t gauge(Gauge g) const {
    return gauges[static_cast<std::size_t>(g)];
  }
  /// True when every counter, histogram, and gauge is zero.
  bool summary_empty() const;
};

/// Folds `from`'s counters and histograms into `into` (trace, phases,
/// and timing are per-trial data and are not merged). Integer sums, so
/// the fold is exact and order-independent; the aggregation layer still
/// merges in trial-id order by convention. Gauges are levels, not
/// flows: they fold by element-wise max (a high-water mark), which is
/// the only order-independent aggregate that keeps meaning.
void merge_metric_summaries(TrialMetrics& into, const TrialMetrics& from);

/// The recording handle the hot loops hold. Default-constructed it is
/// the *null sink*: every call is a no-op (used by bench/micro_obs to
/// price the call overhead alone). Bound to a TrialMetrics it
/// accumulates counters/hists directly, keeps a bounded convergence
/// trace via deterministic stride-doubling decimation, and stamps phase
/// spans against its own wall timer (started at construction, i.e. at
/// trial start).
class MetricsSink {
 public:
  MetricsSink() = default;
  explicit MetricsSink(TrialMetrics* dest, std::uint32_t trace_capacity = 512);

  void add(Counter c, std::uint64_t n = 1) {
#ifndef GBIS_DISABLE_OBS
    if (dest_ != nullptr) {
      dest_->counters[static_cast<std::size_t>(c)] += n;
    }
#endif
    (void)c;
    (void)n;
  }

  void observe(Hist h, std::uint64_t value) {
#ifndef GBIS_DISABLE_OBS
    if (dest_ != nullptr) {
      dest_->hists[static_cast<std::size_t>(h)].observe(value);
    }
#endif
    (void)h;
    (void)value;
  }

  void set_gauge(Gauge g, std::int64_t value) {
#ifndef GBIS_DISABLE_OBS
    if (dest_ != nullptr) {
      dest_->gauges[static_cast<std::size_t>(g)] = value;
    }
#endif
    (void)g;
    (void)value;
  }

  void add_gauge(Gauge g, std::int64_t delta) {
#ifndef GBIS_DISABLE_OBS
    if (dest_ != nullptr) {
      dest_->gauges[static_cast<std::size_t>(g)] += delta;
    }
#endif
    (void)g;
    (void)delta;
  }

  /// Records one convergence point. Bounded: once `trace_capacity`
  /// points are held, every other point is dropped and the keep-stride
  /// doubles — deterministic, unlike true reservoir sampling, which is
  /// what keeps traces bit-identical across thread counts. `best` is
  /// maintained as the running minimum across all sources.
  void trace_point(TraceSource source, std::int64_t cut, double aux = 0.0);

  /// Phase spans for the Chrome trace (wall-clock; outside the
  /// determinism contract). begin/end must pair per phase; distinct
  /// phases never overlap in the instrumented drivers.
  void begin_phase(Phase p);
  void end_phase(Phase p);

  /// Wall seconds since the sink was constructed (trial start).
  double elapsed_seconds() const { return timer_.elapsed_seconds(); }

  bool bound() const { return dest_ != nullptr; }

 private:
  TrialMetrics* dest_ = nullptr;
  std::uint32_t trace_capacity_ = 512;
  std::uint64_t trace_ordinal_ = 0;  ///< points offered so far
  std::uint64_t trace_stride_ = 1;   ///< keep every stride-th point
  std::int64_t best_cut_ = 0;
  bool have_best_ = false;
  std::array<double, kNumPhases> phase_start_{};
  WallTimer timer_;
};

/// RAII phase helper for a possibly-null sink.
class ScopedPhase {
 public:
  ScopedPhase(MetricsSink* sink, Phase phase) : sink_(sink), phase_(phase) {
    if (sink_ != nullptr) sink_->begin_phase(phase_);
  }
  ~ScopedPhase() {
    if (sink_ != nullptr) sink_->end_phase(phase_);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  MetricsSink* sink_;
  Phase phase_;
};

/// Observability knobs carried by RunConfig. None of these influence
/// trial outcomes, so the campaign fingerprint ignores them.
struct ObsOptions {
  /// Aggregated-metrics JSON destination; "" = off.
  std::string metrics_path;
  /// Directory for convergence.jsonl / convergence.csv / trace.json;
  /// "" = off. Created if missing.
  std::string trace_dir;
  /// Live stderr campaign progress line (mutex-serialized,
  /// rate-limited).
  bool progress = false;
  /// Convergence points kept per trial before stride-doubling
  /// decimation kicks in.
  std::uint32_t trace_capacity = 512;
  /// Force in-memory metric collection even with no output file
  /// configured (tests and embedders read TrialResult::metrics).
  bool collect = false;

  /// True when any collection reason is active.
  bool enabled() const {
    return collect || !metrics_path.empty() || !trace_dir.empty();
  }
};

/// Applies the GBIS_METRICS / GBIS_TRACE_DIR / GBIS_PROGRESS
/// environment knobs on top of `base`. Malformed values keep the
/// default and warn on stderr (the PR 1 convention).
ObsOptions obs_options_from_env(ObsOptions base = {});

/// Campaign-level metric summary: the trial-id-order fold of every
/// collected trial plus sample distributions of per-trial CPU seconds
/// and ok-trial cuts (cut-distribution reporting a la Schreiber &
/// Martin — see PAPERS.md).
struct MetricsReport {
  TrialMetrics totals;  ///< counters + hists only
  std::uint64_t trials = 0;     ///< trials in the batch
  std::uint64_t collected = 0;  ///< trials that carried metrics
  std::uint64_t ok = 0, failed = 0, timed_out = 0, skipped = 0;
  /// Distribution of per-trial CPU seconds over executed trials.
  double cpu_min = 0, cpu_max = 0, cpu_mean = 0;
  double cpu_p50 = 0, cpu_p90 = 0, cpu_p99 = 0;
  /// Distribution of cuts over ok trials.
  double cut_min = 0, cut_max = 0, cut_mean = 0;
  double cut_p50 = 0, cut_p90 = 0;
};

/// Writes the stable-schema metrics JSON (docs/OBSERVABILITY.md).
void write_metrics_json(std::ostream& out, const MetricsReport& report);

}  // namespace gbis
