// The service black box: a fixed-size ring of the last N completed
// span sets plus every in-flight one, queryable by the `{"op":"trace"}`
// protocol op and dumped as JSONL on SIGQUIT or from the fatal
// crash/chaos path — so a SIGKILL-adjacent death still leaves the
// causal record of what was in flight.
//
// Two parallel representations, both maintained only on the service's
// single driver thread:
//   * structured SpanSets (deque ring + in-flight map) for the trace
//     op, the Chrome spans.json dump, and tests;
//   * pre-serialized byte slots guarded by a seqlock, so the
//     async-signal-safe dump path (SIGQUIT handler, crash hook) can
//     copy-and-write() without touching the allocator, a lock, or any
//     std::string. A reader that races a driver-side update simply
//     skips that slot (odd or changed version).
// The three-phase scheduler guarantees the slots are quiescent at
// every crash-injection site (workers crash while the driver blocks in
// the pool join; crash@batch fires on the driver itself before any
// mutation), so chaos dumps are complete, and deterministic after the
// "_us" strip.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "gbis/obs/span.hpp"

namespace gbis {

/// Byte capacity of one pre-serialized dump slot. Generous against the
/// worst decorated line (SpanBuffer caps sub-spans, so a normal set
/// encodes to a few KiB); a line that still does not fit is replaced
/// by a minimal `{"state":...,"truncated":true}` stub.
inline constexpr std::size_t kFlightSlotBytes = 12288;

class FlightRecorder {
 public:
  /// `ring_capacity` completed sets are held (oldest evicted);
  /// `inflight_slots` sizes the signal-dump slot array for live
  /// requests (the scheduler passes 2x its admission bound). Slots are
  /// only allocated once open_dump_file() succeeds — a recorder with
  /// no flight file is the cheap in-memory query surface alone.
  FlightRecorder(std::uint32_t ring_capacity, std::size_t inflight_slots);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Opens (O_TRUNC) and holds the dump fd for the async-signal-safe
  /// path. False when the path cannot be opened (the CLI treats that
  /// as an I/O error).
  bool open_dump_file(const std::string& path);
  bool dump_enabled() const { return fd_ >= 0; }

  /// Records/updates one in-flight request (driver thread; at submit
  /// and again after phase 1, so a crash mid-solve dumps the lookup
  /// spans too).
  void record_inflight(const SpanSet& set);
  /// Completes one request: moves it into the ring (evicting the
  /// oldest past capacity) and clears its in-flight slot.
  void complete(SpanSet set);

  const std::deque<SpanSet>& completed() const { return ring_; }
  std::size_t inflight_count() const { return inflight_.size(); }

  /// Most recent set recorded under `trace_id` — completed ring first
  /// (newest wins), then in-flight. Null when unknown. `*inflight` (if
  /// non-null) reports which side matched.
  const SpanSet* find(std::uint64_t trace_id, bool* inflight = nullptr) const;

  /// The whole completed ring as JSONL (state "done", oldest first,
  /// trailing newline) — the payload of a bare `{"op":"trace"}`.
  std::string export_completed() const;

  /// Async-signal-safe dump of every populated slot (completed ring
  /// oldest-first, then in-flight by slot index) to the pre-opened fd.
  /// Safe to call from a signal handler on any thread: atomics,
  /// stack buffers, and write(2) only.
  void dump_slots() const;

  /// Publishes `recorder` as the process-wide flight-dump hook
  /// (harness/shutdown trigger_flight_dump); uninstall before
  /// destroying it.
  static void install(FlightRecorder* recorder);
  static void uninstall(FlightRecorder* recorder);
  /// The installed hook body (registered with set_flight_dump_hook).
  static void signal_dump();

 private:
  struct Slot {
    std::atomic<std::uint64_t> version{0};  ///< seqlock: odd = mid-write
    std::atomic<std::uint32_t> len{0};
    char buf[kFlightSlotBytes];
  };

  void write_slot(Slot& slot, const SpanSet& set, const char* state);
  void clear_slot(Slot& slot);
  Slot* ring_slot(std::uint64_t completed_ordinal) const;
  Slot* inflight_slot(std::uint64_t seq) const;

  std::uint32_t ring_capacity_;
  std::size_t inflight_capacity_;
  std::deque<SpanSet> ring_;
  std::map<std::uint64_t, SpanSet> inflight_;  ///< by seq (ordered)
  /// completed() lifetime count; the signal reader derives the ring
  /// slot window [total - held, total) from it.
  std::atomic<std::uint64_t> completed_total_{0};
  std::unique_ptr<Slot[]> slots_;  ///< ring slots then in-flight slots
  int fd_ = -1;
};

}  // namespace gbis
