// Graphviz DOT export, for eyeballing small instances and partitions
// (e.g. `dot -Tsvg graph.dot` or `neato` for the special families).
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Options for DOT rendering.
struct DotOptions {
  /// Print edge weights as labels when any weight differs from 1.
  bool edge_labels = true;
  /// Colors used for sides/parts, cycled when parts exceed the list.
  /// Defaults to a readable categorical palette.
  std::string graph_name = "gbis";
};

/// Writes the graph in DOT format. If `parts` is non-empty it must
/// have one entry per vertex; vertices are then filled with a color
/// per part and cut edges drawn dashed.
void write_dot(std::ostream& out, const Graph& g,
               std::span<const std::uint32_t> parts = {},
               const DotOptions& options = {});

/// Convenience: writes a two-sided bisection (sides as 0/1 labels).
void write_dot_bisection(std::ostream& out, const Graph& g,
                         std::span<const std::uint8_t> sides,
                         const DotOptions& options = {});

/// File variants; throw std::runtime_error on failure.
void write_dot_file(const std::string& path, const Graph& g,
                    std::span<const std::uint32_t> parts = {},
                    const DotOptions& options = {});

}  // namespace gbis
