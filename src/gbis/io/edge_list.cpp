#include "gbis/io/edge_list.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gbis/graph/builder.hpp"
#include "gbis/io/io_error.hpp"

namespace gbis {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw IoError("edge_list: line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# gbis edge list\n";
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_weight(v) != 1) {
      out << "v " << v << ' ' << g.vertex_weight(v) << '\n';
    }
  }
  for (const Edge& e : g.edges()) {
    out << e.u << ' ' << e.v;
    if (e.weight != 1) out << ' ' << e.weight;
    out << '\n';
  }
}

void write_edge_list_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("edge_list: cannot open " + path);
  write_edge_list(out, g);
  if (!out) throw IoError("edge_list: write failed: " + path);
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;

  auto next_content_line = [&](std::string& out_line) -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos || line[first] == '#') continue;
      out_line = line;
      return true;
    }
    return false;
  };

  std::string content;
  if (!next_content_line(content)) {
    throw IoError("edge_list: missing header");
  }
  std::istringstream header(content);
  std::uint64_t n = 0, m = 0;
  if (!(header >> n >> m)) {
    fail(line_no, "bad header \"" + content + "\" (expected '<n> <m>')");
  }
  std::string extra;
  if (header >> extra) fail(line_no, "trailing tokens in header");
  if (n > 0xFFFFFFFFull) {
    fail(line_no,
         "vertex count " + std::to_string(n) + " exceeds the 2^32-1 limit");
  }

  GraphBuilder builder(static_cast<std::uint32_t>(n));
  std::uint64_t edges_read = 0;
  while (next_content_line(content)) {
    std::istringstream ls(content);
    std::string first_tok;
    ls >> first_tok;
    if (first_tok == "v") {
      std::uint64_t v = 0;
      Weight w = 0;
      if (!(ls >> v >> w)) fail(line_no, "bad vertex-weight line");
      if (v >= n) {
        fail(line_no, "vertex id " + std::to_string(v) +
                          " out of range [0, " + std::to_string(n) + ")");
      }
      if (w <= 0) {
        fail(line_no, "vertex weight " + std::to_string(w) +
                          " must be positive");
      }
      builder.set_vertex_weight(static_cast<Vertex>(v), w);
      continue;
    }
    std::uint64_t u = 0, v = 0;
    Weight w = 1;
    std::istringstream es(content);
    if (!(es >> u >> v)) fail(line_no, "bad edge line");
    es >> w;  // optional
    if (u >= n || v >= n) {
      fail(line_no, "edge endpoint " + std::to_string(u >= n ? u : v) +
                        " out of range [0, " + std::to_string(n) + ")");
    }
    if (u == v) fail(line_no, "self-loop on vertex " + std::to_string(u));
    if (w <= 0) {
      fail(line_no, "edge weight " + std::to_string(w) + " must be positive");
    }
    std::string garbage;
    if (es >> garbage) fail(line_no, "trailing tokens on edge line");
    builder.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v), w);
    ++edges_read;
  }
  if (edges_read != m) {
    throw IoError("edge_list: header declared " + std::to_string(m) +
                  " edges, found " + std::to_string(edges_read));
  }
  return builder.build();
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("edge_list: cannot open " + path);
  return read_edge_list(in);
}

}  // namespace gbis
