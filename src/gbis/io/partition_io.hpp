// Partition-file serialization: one part label per line, vertex order
// — the format METIS/hMETIS tooling reads and writes, so gbis results
// interoperate with the wider ecosystem.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace gbis {

/// Writes one label per line.
void write_partition(std::ostream& out,
                     std::span<const std::uint32_t> parts);

/// Writes a bisection's sides (0/1) one per line.
void write_partition_sides(std::ostream& out,
                           std::span<const std::uint8_t> sides);

/// File variant; throws std::runtime_error on failure.
void write_partition_file(const std::string& path,
                          std::span<const std::uint32_t> parts);

/// Parses a partition file: exactly `expected_vertices` lines (when
/// non-zero), each a label < `num_parts` (when non-zero). Throws
/// std::runtime_error on malformed input.
std::vector<std::uint32_t> read_partition(std::istream& in,
                                          std::uint64_t expected_vertices = 0,
                                          std::uint32_t num_parts = 0);

/// File variant; throws std::runtime_error on open failure.
std::vector<std::uint32_t> read_partition_file(
    const std::string& path, std::uint64_t expected_vertices = 0,
    std::uint32_t num_parts = 0);

}  // namespace gbis
