// METIS graph-file serialization (the de-facto exchange format for
// partitioners), so gbis instances can be fed to or taken from other
// partitioning tools.
//
// Format: header "n m [fmt]" where fmt is 0 (plain), 1 (edge weights),
// 10 (vertex weights), or 11 (both); then n adjacency lines with
// 1-indexed neighbor ids. '%' lines are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Writes g in METIS format, choosing the minimal fmt code that
/// preserves its weights.
void write_metis(std::ostream& out, const Graph& g);

/// Writes g to a file; throws std::runtime_error on failure.
void write_metis_file(const std::string& path, const Graph& g);

/// Parses a METIS graph. Supports fmt codes 0, 1, 10, 11. Throws
/// std::runtime_error on malformed input (including asymmetric
/// adjacency or mismatched duplicate-edge weights).
Graph read_metis(std::istream& in);

/// Reads a METIS graph from a file; throws std::runtime_error on open
/// failure or malformed content.
Graph read_metis_file(const std::string& path);

}  // namespace gbis
