// The error type every io/ reader and writer throws for file-system
// and format problems. A distinct type (still a std::runtime_error, so
// existing catch sites keep working) lets the CLI map I/O failures to
// their own exit code (3) instead of the generic internal-error 1, and
// gives corrupt-input triage one contract: every format error carries
// the 1-based line number and the offending token.
#pragma once

#include <stdexcept>
#include <string>

namespace gbis {

class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace gbis
