#include "gbis/io/dot.hpp"

#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace gbis {

namespace {

// Categorical palette (colorblind-safe-ish), cycled for k-way parts.
constexpr const char* kPalette[] = {
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
};
constexpr std::size_t kPaletteSize = std::size(kPalette);

}  // namespace

void write_dot(std::ostream& out, const Graph& g,
               std::span<const std::uint32_t> parts,
               const DotOptions& options) {
  if (!parts.empty() && parts.size() != g.num_vertices()) {
    throw std::invalid_argument("write_dot: parts size != |V|");
  }
  bool weighted = false;
  for (const Edge& e : g.edges()) {
    if (e.weight != 1) weighted = true;
  }

  out << "graph " << options.graph_name << " {\n";
  out << "  node [shape=circle, style=filled, fontsize=10];\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v;
    if (!parts.empty()) {
      out << " [fillcolor=\"" << kPalette[parts[v] % kPaletteSize]
          << "\", fontcolor=white]";
    } else {
      out << " [fillcolor=\"#dddddd\"]";
    }
    out << ";\n";
  }
  for (const Edge& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v;
    const bool cut = !parts.empty() && parts[e.u] != parts[e.v];
    const bool label = options.edge_labels && weighted;
    if (cut || label) {
      out << " [";
      if (label) out << "label=\"" << e.weight << "\"";
      if (cut && label) out << ", ";
      if (cut) out << "style=dashed, color=\"#cc3311\"";
      out << "]";
    }
    out << ";\n";
  }
  out << "}\n";
}

void write_dot_bisection(std::ostream& out, const Graph& g,
                         std::span<const std::uint8_t> sides,
                         const DotOptions& options) {
  std::vector<std::uint32_t> parts(sides.begin(), sides.end());
  write_dot(out, g, parts, options);
}

void write_dot_file(const std::string& path, const Graph& g,
                    std::span<const std::uint32_t> parts,
                    const DotOptions& options) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("dot: cannot open " + path);
  write_dot(out, g, parts, options);
  if (!out) throw std::runtime_error("dot: write failed: " + path);
}

}  // namespace gbis
