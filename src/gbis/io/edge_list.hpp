// Plain-text edge-list serialization.
//
// Format (0-indexed vertices):
//   # comment lines start with '#'
//   <num_vertices> <num_edges>
//   u v [weight]            (one line per edge; weight defaults to 1)
//   ...
// Vertex weights, when any differ from 1, are written as lines
//   v <vertex> <weight>
// after the header and before the edges. Parsers reject malformed
// input with std::runtime_error carrying a line number.
#pragma once

#include <iosfwd>
#include <string>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Writes g in edge-list format.
void write_edge_list(std::ostream& out, const Graph& g);

/// Writes g to a file; throws std::runtime_error if the file cannot be
/// opened.
void write_edge_list_file(const std::string& path, const Graph& g);

/// Parses a graph from edge-list format. Throws std::runtime_error on
/// malformed input (bad header, out-of-range endpoints, self-loops,
/// non-positive weights, trailing garbage).
Graph read_edge_list(std::istream& in);

/// Reads a graph from a file; throws std::runtime_error on open failure
/// or malformed content.
Graph read_edge_list_file(const std::string& path);

}  // namespace gbis
