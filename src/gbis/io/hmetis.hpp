// hMETIS hypergraph-file serialization — the de-facto exchange format
// for circuit partitioning benchmarks (ISPD/hMETIS suites).
//
// Format: header "num_nets num_cells [fmt]" where fmt is 1 (net
// weights), 10 (cell weights), or 11 (both); then one line per net:
// [weight] pin ids (1-indexed); then, if fmt >= 10, one cell weight
// per line. '%' lines are comments.
#pragma once

#include <iosfwd>
#include <string>

#include "gbis/hypergraph/hypergraph.hpp"

namespace gbis {

/// Writes h in hMETIS format with the minimal fmt code.
void write_hmetis(std::ostream& out, const Hypergraph& h);

/// Writes h to a file; throws std::runtime_error on failure.
void write_hmetis_file(const std::string& path, const Hypergraph& h);

/// Parses an hMETIS hypergraph. Throws std::runtime_error on malformed
/// input.
Hypergraph read_hmetis(std::istream& in);

/// Reads an hMETIS file; throws std::runtime_error on open failure or
/// malformed content.
Hypergraph read_hmetis_file(const std::string& path);

}  // namespace gbis
