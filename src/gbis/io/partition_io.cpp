#include "gbis/io/partition_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gbis/io/io_error.hpp"

namespace gbis {

void write_partition(std::ostream& out,
                     std::span<const std::uint32_t> parts) {
  for (std::uint32_t p : parts) out << p << '\n';
}

void write_partition_sides(std::ostream& out,
                           std::span<const std::uint8_t> sides) {
  for (std::uint8_t s : sides) out << static_cast<int>(s) << '\n';
}

void write_partition_file(const std::string& path,
                          std::span<const std::uint32_t> parts) {
  std::ofstream out(path);
  if (!out) throw IoError("partition: cannot open " + path);
  write_partition(out, parts);
  if (!out) throw IoError("partition: write failed: " + path);
}

std::vector<std::uint32_t> read_partition(std::istream& in,
                                          std::uint64_t expected_vertices,
                                          std::uint32_t num_parts) {
  std::vector<std::uint32_t> parts;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;  // blank
    std::istringstream ls(line);
    std::uint64_t label = 0;
    std::string extra;
    if (!(ls >> label) || (ls >> extra)) {
      throw IoError("partition: line " + std::to_string(line_no) +
                    ": expected one label, got \"" + line + "\"");
    }
    if (num_parts != 0 && label >= num_parts) {
      throw IoError("partition: line " + std::to_string(line_no) +
                    ": label " + std::to_string(label) +
                    " out of range [0, " + std::to_string(num_parts) + ")");
    }
    parts.push_back(static_cast<std::uint32_t>(label));
  }
  if (expected_vertices != 0 && parts.size() != expected_vertices) {
    throw IoError("partition: expected " + std::to_string(expected_vertices) +
                  " labels, found " + std::to_string(parts.size()));
  }
  return parts;
}

std::vector<std::uint32_t> read_partition_file(const std::string& path,
                                               std::uint64_t expected_vertices,
                                               std::uint32_t num_parts) {
  std::ifstream in(path);
  if (!in) throw IoError("partition: cannot open " + path);
  return read_partition(in, expected_vertices, num_parts);
}

}  // namespace gbis
