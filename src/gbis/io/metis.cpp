#include "gbis/io/metis.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "gbis/graph/builder.hpp"
#include "gbis/io/io_error.hpp"

namespace gbis {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw IoError("metis: line " + std::to_string(line_no) + ": " + what);
}

bool next_content_line(std::istream& in, std::string& out_line,
                       std::size_t& line_no) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '%') continue;
    out_line = line;
    return true;
  }
  return false;
}

}  // namespace

void write_metis(std::ostream& out, const Graph& g) {
  bool has_vw = false;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_weight(v) != 1) has_vw = true;
  }
  bool has_ew = false;
  for (const Edge& e : g.edges()) {
    if (e.weight != 1) has_ew = true;
  }
  const int fmt = (has_vw ? 10 : 0) + (has_ew ? 1 : 0);
  out << g.num_vertices() << ' ' << g.num_edges();
  if (fmt != 0) out << ' ' << (fmt < 10 ? "0" : "") << fmt;
  out << '\n';
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    if (has_vw) {
      out << g.vertex_weight(v);
      first = false;
    }
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!first) out << ' ';
      first = false;
      out << (nbrs[i] + 1);
      if (has_ew) out << ' ' << wts[i];
    }
    out << '\n';
  }
}

void write_metis_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw IoError("metis: cannot open " + path);
  write_metis(out, g);
  if (!out) throw IoError("metis: write failed: " + path);
}

Graph read_metis(std::istream& in) {
  std::size_t line_no = 0;
  std::string content;
  if (!next_content_line(in, content, line_no)) {
    throw IoError("metis: missing header");
  }
  std::istringstream header(content);
  std::uint64_t n = 0, m = 0;
  std::string fmt_str = "0";
  if (!(header >> n >> m)) {
    fail(line_no, "bad header \"" + content + "\" (expected '<n> <m> [fmt]')");
  }
  header >> fmt_str;
  if (n > 0xFFFFFFFFull) {
    fail(line_no, "vertex count " + std::to_string(n) +
                      " exceeds the 2^32-1 limit");
  }
  const bool has_ew = fmt_str == "1" || fmt_str == "11" || fmt_str == "011";
  const bool has_vw = fmt_str == "10" || fmt_str == "11" || fmt_str == "010" ||
                      fmt_str == "011";
  if (!has_ew && !has_vw && fmt_str != "0" && fmt_str != "00" &&
      fmt_str != "000") {
    fail(line_no, "unsupported fmt '" + fmt_str + "'");
  }

  GraphBuilder builder(static_cast<std::uint32_t>(n));
  std::uint64_t half_edges = 0;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (!next_content_line(in, content, line_no)) {
      fail(line_no, "expected adjacency line for vertex " +
                        std::to_string(v + 1));
    }
    std::istringstream ls(content);
    if (has_vw) {
      Weight w = 0;
      if (!(ls >> w)) fail(line_no, "missing vertex weight");
      if (w <= 0) {
        fail(line_no, "vertex weight " + std::to_string(w) +
                          " must be positive");
      }
      builder.set_vertex_weight(static_cast<Vertex>(v), w);
    }
    std::uint64_t nbr = 0;
    while (ls >> nbr) {
      if (nbr < 1 || nbr > n) {
        fail(line_no, "vertex id " + std::to_string(nbr) +
                          " out of range [1, " + std::to_string(n) + "]");
      }
      const auto u = static_cast<Vertex>(nbr - 1);
      Weight w = 1;
      if (has_ew && !(ls >> w)) fail(line_no, "missing edge weight");
      if (w <= 0) {
        fail(line_no,
             "edge weight " + std::to_string(w) + " must be positive");
      }
      if (u == v) {
        fail(line_no, "self-loop on vertex " + std::to_string(v + 1));
      }
      ++half_edges;
      // Each undirected edge appears in both endpoint lines; stage it
      // only from the smaller endpoint. Halved weight tricks are not
      // needed because the builder merges duplicates by summing.
      if (v < u) builder.add_edge(static_cast<Vertex>(v), u, w);
    }
  }
  if (half_edges != 2 * m) {
    throw IoError("metis: header declared " + std::to_string(m) +
                  " edges, adjacency lists contain " +
                  std::to_string(half_edges) + " entries");
  }
  Graph g = builder.build();
  if (g.num_edges() != m) {
    throw IoError("metis: duplicate adjacency entries");
  }
  return g;
}

Graph read_metis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("metis: cannot open " + path);
  return read_metis(in);
}

}  // namespace gbis
