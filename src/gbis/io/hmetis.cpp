#include "gbis/io/hmetis.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "gbis/hypergraph/builder.hpp"
#include "gbis/io/io_error.hpp"

namespace gbis {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw IoError("hmetis: line " + std::to_string(line_no) + ": " + what);
}

bool next_content_line(std::istream& in, std::string& out_line,
                       std::size_t& line_no) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '%') continue;
    out_line = line;
    return true;
  }
  return false;
}

}  // namespace

void write_hmetis(std::ostream& out, const Hypergraph& h) {
  bool has_nw = false, has_cw = false;
  for (Net n = 0; n < h.num_nets(); ++n) {
    if (h.net_weight(n) != 1) has_nw = true;
  }
  for (Cell c = 0; c < h.num_cells(); ++c) {
    if (h.cell_weight(c) != 1) has_cw = true;
  }
  const int fmt = (has_cw ? 10 : 0) + (has_nw ? 1 : 0);
  out << h.num_nets() << ' ' << h.num_cells();
  if (fmt != 0) out << ' ' << fmt;
  out << '\n';
  for (Net n = 0; n < h.num_nets(); ++n) {
    bool first = true;
    if (has_nw) {
      out << h.net_weight(n);
      first = false;
    }
    for (Cell c : h.pins(n)) {
      if (!first) out << ' ';
      first = false;
      out << (c + 1);
    }
    out << '\n';
  }
  if (has_cw) {
    for (Cell c = 0; c < h.num_cells(); ++c) {
      out << h.cell_weight(c) << '\n';
    }
  }
}

void write_hmetis_file(const std::string& path, const Hypergraph& h) {
  std::ofstream out(path);
  if (!out) throw IoError("hmetis: cannot open " + path);
  write_hmetis(out, h);
  if (!out) throw IoError("hmetis: write failed: " + path);
}

Hypergraph read_hmetis(std::istream& in) {
  std::size_t line_no = 0;
  std::string content;
  if (!next_content_line(in, content, line_no)) {
    throw IoError("hmetis: missing header");
  }
  std::istringstream header(content);
  std::uint64_t nets = 0, cells = 0;
  std::string fmt = "0";
  if (!(header >> nets >> cells)) {
    fail(line_no,
         "bad header \"" + content + "\" (expected '<nets> <cells> [fmt]')");
  }
  header >> fmt;
  const bool has_nw = fmt == "1" || fmt == "11";
  const bool has_cw = fmt == "10" || fmt == "11";
  if (!has_nw && !has_cw && fmt != "0" && fmt != "00") {
    fail(line_no, "unsupported fmt '" + fmt + "'");
  }
  if (cells > 0xFFFFFFFFull || nets > 0xFFFFFFFFull) {
    fail(line_no, "size too large");
  }

  HypergraphBuilder builder(static_cast<std::uint32_t>(cells));
  for (std::uint64_t n = 0; n < nets; ++n) {
    if (!next_content_line(in, content, line_no)) {
      fail(line_no, "expected net line " + std::to_string(n + 1));
    }
    std::istringstream ls(content);
    Weight w = 1;
    if (has_nw && !(ls >> w)) fail(line_no, "missing net weight");
    if (w <= 0) {
      fail(line_no, "net weight " + std::to_string(w) + " must be positive");
    }
    std::vector<Cell> pins;
    std::uint64_t pin = 0;
    while (ls >> pin) {
      if (pin < 1 || pin > cells) {
        fail(line_no, "pin " + std::to_string(pin) + " out of range [1, " +
                          std::to_string(cells) + "]");
      }
      pins.push_back(static_cast<Cell>(pin - 1));
    }
    if (pins.size() < 2) fail(line_no, "net with fewer than two pins");
    builder.add_net(pins, w);
  }
  if (has_cw) {
    for (std::uint64_t c = 0; c < cells; ++c) {
      if (!next_content_line(in, content, line_no)) {
        fail(line_no, "expected cell weight " + std::to_string(c + 1));
      }
      std::istringstream ls(content);
      Weight w = 0;
      if (!(ls >> w)) fail(line_no, "bad cell weight");
      if (w <= 0) {
        fail(line_no,
             "cell weight " + std::to_string(w) + " must be positive");
      }
      builder.set_cell_weight(static_cast<Cell>(c), w);
    }
  }
  return builder.build();
}

Hypergraph read_hmetis_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("hmetis: cannot open " + path);
  return read_hmetis(in);
}

}  // namespace gbis
