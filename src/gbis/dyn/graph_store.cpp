#include "gbis/dyn/graph_store.hpp"

#include <utility>

namespace gbis {

std::uint64_t graph_bytes(const Graph& g) {
  const std::uint64_t v = g.num_vertices();
  const std::uint64_t half_edges = 2 * g.num_edges();
  return (v + 1) * sizeof(std::uint64_t)      // offsets
         + half_edges * sizeof(Vertex)        // neighbors
         + half_edges * sizeof(Weight)        // edge weights
         + v * sizeof(Weight)                 // vertex weights
         + 64;                                // object + map overhead
}

std::shared_ptr<const Graph> GraphStore::lookup(std::uint64_t fingerprint) {
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->graph;
}

void GraphStore::insert(std::uint64_t fingerprint,
                        std::shared_ptr<const Graph> graph) {
  const auto it = index_.find(fingerprint);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  Entry entry;
  entry.fingerprint = fingerprint;
  entry.bytes = graph_bytes(*graph);
  entry.graph = std::move(graph);
  stats_.bytes += entry.bytes;
  ++stats_.entries;
  lru_.push_front(std::move(entry));
  index_.emplace(fingerprint, lru_.begin());
  evict_until_fits();
}

void GraphStore::evict_until_fits() {
  // Keep at least the most-recent entry even when it alone exceeds the
  // budget (see insert's contract).
  while (stats_.bytes > max_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    --stats_.entries;
    ++stats_.evictions;
    index_.erase(victim.fingerprint);
    lru_.pop_back();
  }
}

}  // namespace gbis
