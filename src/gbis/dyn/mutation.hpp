// Deterministic edit batches over immutable graphs — the data model of
// the dynamic-graph subsystem behind the service's `mutate` op
// (docs/SERVICE.md).
//
// A MutationBatch is applied to a parent graph in a fixed order:
//
//   1. `add_vertices` isolated vertices (weight 1) are appended with
//      ids |V|..|V|+N-1 — the *extended* id space every edge edit and
//      vertex deletion below addresses;
//   2. `add_edges` are inserted with weight 1. Adding an edge that
//      already exists (in the parent or earlier in the batch), a
//      self-loop, or an out-of-range endpoint is an error;
//   3. `del_edges` are removed. Deleting an edge that does not exist
//      at this point (including one already deleted by the batch) is
//      an error;
//   4. `del_vertices` are removed together with their incident edges,
//      and the survivors are renumbered *compactly in ascending old-id
//      order* (the deterministic renumbering the lineage vertex map
//      records). Deleting the same vertex twice is an error.
//
// Errors throw std::invalid_argument whose what() is the stable
// "mutate: ..." suffix the service puts on the wire. apply_mutation is
// a pure function of (parent, batch): the same edit batch always
// yields the same child graph, the same vertex map, and therefore the
// same canonical fingerprint — which is what lets a crash-restarted
// service replay mutation chains byte-identically (svc/cache_store).
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Sentinel in a lineage vertex map: the extended-id vertex did not
/// survive the batch.
inline constexpr Vertex kDeletedVertex = 0xffffffffu;

/// One edit batch, as parsed off a `mutate` request. Edge lists are
/// flat pair sequences (u0,v0,u1,v1,...) exactly as they arrive on the
/// wire; order is significant (it is hashed and applied as given).
struct MutationBatch {
  std::vector<std::uint64_t> add_edges;     ///< flat (u,v) pairs
  std::vector<std::uint64_t> del_edges;     ///< flat (u,v) pairs
  std::uint64_t add_vertices = 0;           ///< isolated vertices appended
  std::vector<std::uint64_t> del_vertices;  ///< extended ids to remove

  /// True when the batch edits nothing. The protocol layer rejects
  /// empty batches outright (a no-op mutate would alias the parent
  /// fingerprint under a fresh lineage edge).
  bool empty() const {
    return add_edges.empty() && del_edges.empty() && add_vertices == 0 &&
           del_vertices.empty();
  }

  /// Edit distance: one unit per edge added or deleted, per vertex
  /// added, per vertex deleted (edges removed implicitly by a vertex
  /// deletion are not double-counted).
  std::uint64_t edit_distance() const {
    return add_edges.size() / 2 + del_edges.size() / 2 + add_vertices +
           del_vertices.size();
  }

  /// Canonical content hash of the batch (order-sensitive, Hash64) —
  /// the identity a repeated mutate of the same parent is recognized
  /// by, in memory and in the lineage journal.
  std::uint64_t hash() const;
};

/// What applying a batch produced.
struct MutationResult {
  Graph child;
  /// Extended-id -> child-id map, size |V(parent)| + add_vertices;
  /// kDeletedVertex marks non-survivors. Projection of a parent
  /// partition onto the child walks this map (dyn/lineage).
  std::vector<Vertex> map;
};

/// Applies `batch` to `parent` (see the file comment for the exact
/// semantics). Throws std::invalid_argument with a stable "..." reason
/// on any invalid edit; never modifies `parent`.
MutationResult apply_mutation(const Graph& parent, const MutationBatch& batch);

}  // namespace gbis
