// Fingerprint lineage: the DAG of "child graph = parent graph + edit
// batch" edges the mutate op creates. Two jobs:
//
//  1. Identity. A repeated mutate — same parent fingerprint, same
//     batch hash — is recognized and answered from its record without
//     re-materializing either graph, which is what lets a
//     crash-restarted service (which journals lineage records but not
//     graphs) replay a pre-crash mutation chain byte-identically.
//  2. Warm starts. A solve for a mutated graph walks its lineage
//     rootward looking for an ancestor with a cached partition; the
//     per-edge vertex maps project that partition down the chain
//     (dyn/warm).
//
// Records restored from the journal carry an *empty* vertex map (maps
// are too big to journal): such an edge still answers repeated mutates
// but is non-projectable, so a warm walk stops there until the chain
// is re-materialized and the map upgraded in place.
//
// First-wins everywhere: a child fingerprint keeps its first recorded
// parent edge, and a (parent, batch) pair keeps its first child. Both
// are deterministic re-derivations, so later duplicates carry no new
// information. Like the graph store, all access happens on the
// scheduler's dispatch thread.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// One lineage edge: child = parent + batch.
struct LineageRecord {
  std::uint64_t parent = 0;         ///< parent fingerprint
  std::uint64_t child = 0;          ///< child fingerprint
  std::uint64_t batch_hash = 0;     ///< MutationBatch::hash()
  std::uint64_t adds = 0;           ///< edges added
  std::uint64_t dels = 0;           ///< edges deleted explicitly
  std::uint64_t vadds = 0;          ///< vertices added
  std::uint64_t vdels = 0;          ///< vertices deleted
  std::uint64_t edit_distance = 0;  ///< MutationBatch::edit_distance()
  std::uint32_t depth = 1;          ///< chain length from a root graph
  std::uint64_t parent_vertices = 0;
  std::uint64_t child_vertices = 0;
  std::uint64_t child_edges = 0;
  /// Extended-id -> child-id map (mutation.hpp), size parent_vertices
  /// + vadds. Empty when the record was restored from the journal —
  /// the edge is then non-projectable until upgraded.
  std::vector<Vertex> map;
};

/// Bounded in-memory lineage store.
class SvcLineage {
 public:
  SvcLineage(std::uint32_t max_depth, std::uint64_t max_records)
      : max_depth_(max_depth), max_records_(max_records) {}

  /// Chain-depth cap a mutate of a depth-max_depth graph trips over.
  std::uint32_t max_depth() const { return max_depth_; }

  std::uint64_t size() const { return records_.size(); }
  bool full() const { return records_.size() >= max_records_; }

  /// Inserts a record (first-wins, see file comment). When the child
  /// is already known, the stored record survives — except that an
  /// empty map is upgraded from an incoming non-empty one of matching
  /// shape (a re-materialized chain heals a journal-restored edge).
  /// Returns {stored record, true if newly inserted}. Insertion of a
  /// new record when full() is the caller's error (checked upstream);
  /// here it is refused by returning {nullptr, false}.
  std::pair<const LineageRecord*, bool> insert(LineageRecord record);

  /// The edge whose child is `fingerprint`, or nullptr.
  const LineageRecord* by_child(std::uint64_t fingerprint) const;

  /// The edge for (parent, batch_hash), or nullptr.
  const LineageRecord* by_batch(std::uint64_t parent,
                                std::uint64_t batch_hash) const;

  /// Chain depth of `fingerprint`: 0 for unknown/root graphs.
  std::uint32_t depth_of(std::uint64_t fingerprint) const;

  /// Visits every record in insertion order (journal compaction).
  void visit(const std::function<void(const LineageRecord&)>& fn) const;

 private:
  struct BatchKey {
    std::uint64_t parent = 0;
    std::uint64_t hash = 0;
    bool operator==(const BatchKey&) const = default;
  };
  struct BatchKeyHash {
    std::size_t operator()(const BatchKey& k) const {
      // Fingerprints and batch hashes are already 64-bit mixes.
      return static_cast<std::size_t>(k.parent ^ (k.hash * 0x9e3779b97f4a7c15ull));
    }
  };

  std::uint32_t max_depth_;
  std::uint64_t max_records_;
  // Deque so returned record pointers stay valid across later inserts
  // (a batch can chain several mutates before anyone re-looks-up).
  std::deque<LineageRecord> records_;
  std::unordered_map<std::uint64_t, std::size_t> by_child_;
  std::unordered_map<BatchKey, std::size_t, BatchKeyHash> by_batch_;
};

}  // namespace gbis
