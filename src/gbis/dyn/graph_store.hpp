// Server-side store of materialized graphs, keyed by canonical
// fingerprint — what lets a `mutate` or a solve-by-fingerprint request
// name a graph the service has already seen without resending it.
//
// Byte-bounded LRU, independent of the result cache: results are tiny
// and durable (svc/cache_store), graphs are big and reproducible (the
// client can always re-send or replay the mutation chain), so graphs
// evict first and are never journaled. All inserts and lookups happen
// on the scheduler's dispatch thread (phase 1); workers only hold
// shared_ptr copies handed out there, which keeps eviction safe while
// a parallel solve is still reading the graph.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Approximate resident size of a graph's CSR arrays plus bookkeeping.
/// The store budgets on this, not on allocator truth.
std::uint64_t graph_bytes(const Graph& g);

struct GraphStoreStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

/// LRU map fingerprint -> shared immutable graph. Not thread-safe by
/// design (see file comment).
class GraphStore {
 public:
  /// Store holding at most `max_bytes` of graph payload. A single
  /// graph larger than the budget is still admitted alone (the service
  /// just solved it; refusing to remember it would break every chained
  /// mutate), evicting everything else.
  explicit GraphStore(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns the graph for `fingerprint` and promotes it to
  /// most-recently-used, or nullptr on a miss. Counts hits/misses.
  std::shared_ptr<const Graph> lookup(std::uint64_t fingerprint);

  /// True when `fingerprint` is resident; no promotion, no counting.
  bool contains(std::uint64_t fingerprint) const {
    return index_.count(fingerprint) != 0;
  }

  /// Inserts (or refreshes) `graph` under `fingerprint`, evicting
  /// least-recently-used entries until the budget holds. Re-inserting
  /// an existing fingerprint just promotes it — graphs are immutable
  /// and fingerprint-identified, so the payloads are interchangeable.
  void insert(std::uint64_t fingerprint, std::shared_ptr<const Graph> graph);

  const GraphStoreStats& stats() const { return stats_; }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const Graph> graph;
    std::uint64_t bytes = 0;
  };

  void evict_until_fits();

  std::uint64_t max_bytes_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  GraphStoreStats stats_;
};

}  // namespace gbis
