#include "gbis/dyn/mutation.hpp"

#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "gbis/graph/builder.hpp"
#include "gbis/svc/fingerprint.hpp"

namespace gbis {

namespace {

/// Canonical u<v packing of an undirected edge into one map key.
std::uint64_t edge_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

std::string edge_text(Vertex u, Vertex v) {
  return "(" + std::to_string(u) + "," + std::to_string(v) + ")";
}

[[noreturn]] void fail(const std::string& reason) {
  throw std::invalid_argument(reason);
}

}  // namespace

std::uint64_t MutationBatch::hash() const {
  Hash64 h;
  h.add(static_cast<std::uint64_t>(add_edges.size()));
  for (const std::uint64_t v : add_edges) h.add(v);
  h.add(static_cast<std::uint64_t>(del_edges.size()));
  for (const std::uint64_t v : del_edges) h.add(v);
  h.add(add_vertices);
  h.add(static_cast<std::uint64_t>(del_vertices.size()));
  for (const std::uint64_t v : del_vertices) h.add(v);
  return h.digest();
}

MutationResult apply_mutation(const Graph& parent,
                              const MutationBatch& batch) {
  if (batch.add_edges.size() % 2 != 0 || batch.del_edges.size() % 2 != 0) {
    fail("edge list must hold an even number of vertex ids");
  }
  const std::uint64_t parent_v = parent.num_vertices();
  const std::uint64_t extended = parent_v + batch.add_vertices;
  if (extended >= kDeletedVertex) fail("vertex count overflow");
  const auto check = [extended](std::uint64_t id) -> Vertex {
    if (id >= extended) {
      fail("vertex " + std::to_string(id) + " out of range");
    }
    return static_cast<Vertex>(id);
  };

  // Edge edits as deltas over the parent's edge set, validated in
  // batch order against the set as edited so far.
  std::unordered_set<std::uint64_t> added;
  std::unordered_set<std::uint64_t> deleted;
  for (std::size_t i = 0; i + 1 < batch.add_edges.size(); i += 2) {
    const Vertex u = check(batch.add_edges[i]);
    const Vertex v = check(batch.add_edges[i + 1]);
    if (u == v) fail("self-loop " + edge_text(u, v));
    const std::uint64_t key = edge_key(u, v);
    const bool in_parent =
        u < parent_v && v < parent_v && parent.has_edge(u, v);
    if (added.count(key) != 0 || (in_parent && deleted.count(key) == 0)) {
      fail("edge " + edge_text(u, v) + " already exists");
    }
    added.insert(key);
  }
  for (std::size_t i = 0; i + 1 < batch.del_edges.size(); i += 2) {
    const Vertex u = check(batch.del_edges[i]);
    const Vertex v = check(batch.del_edges[i + 1]);
    if (u == v) fail("self-loop " + edge_text(u, v));
    const std::uint64_t key = edge_key(u, v);
    if (added.erase(key) != 0) continue;  // added earlier in this batch
    const bool in_parent =
        u < parent_v && v < parent_v && parent.has_edge(u, v);
    if (!in_parent || deleted.count(key) != 0) {
      fail("edge " + edge_text(u, v) + " not found");
    }
    deleted.insert(key);
  }

  // Vertex deletions, then the compact ascending renumbering the
  // lineage vertex map records.
  std::vector<std::uint8_t> dead(extended, 0);
  for (const std::uint64_t id : batch.del_vertices) {
    const Vertex v = check(id);
    if (dead[v] != 0) {
      fail("vertex " + std::to_string(v) + " deleted twice");
    }
    dead[v] = 1;
  }
  MutationResult result;
  result.map.assign(extended, kDeletedVertex);
  Vertex next = 0;
  for (std::uint64_t v = 0; v < extended; ++v) {
    if (dead[v] == 0) result.map[v] = next++;
  }

  GraphBuilder builder(next);
  for (std::uint64_t v = 0; v < parent_v; ++v) {
    if (dead[v] == 0) {
      builder.set_vertex_weight(result.map[v],
                                parent.vertex_weight(static_cast<Vertex>(v)));
    }
  }
  // Surviving parent edges (each once, via the u < v half of the CSR),
  // minus explicit deletions and edges orphaned by vertex deletions.
  for (Vertex u = 0; u < parent_v; ++u) {
    if (dead[u] != 0) continue;
    const auto neighbors = parent.neighbors(u);
    const auto weights = parent.edge_weights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const Vertex v = neighbors[i];
      if (v < u || dead[v] != 0) continue;
      if (deleted.count(edge_key(u, v)) != 0) continue;
      builder.add_edge(result.map[u], result.map[v], weights[i]);
    }
  }
  // Batch-added edges (weight 1). Hash-set order is irrelevant: the
  // builder sorts and merges, so the child CSR — and therefore its
  // fingerprint — is canonical.
  for (const std::uint64_t key : added) {
    const Vertex u = static_cast<Vertex>(key >> 32);
    const Vertex v = static_cast<Vertex>(key & 0xffffffffu);
    if (dead[u] != 0 || dead[v] != 0) continue;
    builder.add_edge(result.map[u], result.map[v], 1);
  }
  result.child = builder.build();
  return result;
}

}  // namespace gbis
