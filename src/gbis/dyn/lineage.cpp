#include "gbis/dyn/lineage.hpp"

namespace gbis {

std::pair<const LineageRecord*, bool> SvcLineage::insert(
    LineageRecord record) {
  const auto child_it = by_child_.find(record.child);
  if (child_it != by_child_.end()) {
    LineageRecord& stored = records_[child_it->second];
    // Heal a journal-restored (map-less) edge when the same derivation
    // is re-materialized with a map of the expected shape.
    if (stored.map.empty() && !record.map.empty() &&
        stored.parent == record.parent &&
        stored.batch_hash == record.batch_hash &&
        record.map.size() == stored.parent_vertices + stored.vadds) {
      stored.map = std::move(record.map);
    }
    return {&stored, false};
  }
  if (full()) return {nullptr, false};
  records_.push_back(std::move(record));
  const std::size_t index = records_.size() - 1;
  const LineageRecord& stored = records_.back();
  by_child_.emplace(stored.child, index);
  by_batch_.emplace(BatchKey{stored.parent, stored.batch_hash}, index);
  return {&stored, true};
}

const LineageRecord* SvcLineage::by_child(std::uint64_t fingerprint) const {
  const auto it = by_child_.find(fingerprint);
  return it == by_child_.end() ? nullptr : &records_[it->second];
}

const LineageRecord* SvcLineage::by_batch(std::uint64_t parent,
                                          std::uint64_t batch_hash) const {
  const auto it = by_batch_.find(BatchKey{parent, batch_hash});
  return it == by_batch_.end() ? nullptr : &records_[it->second];
}

std::uint32_t SvcLineage::depth_of(std::uint64_t fingerprint) const {
  const LineageRecord* record = by_child(fingerprint);
  return record == nullptr ? 0 : record->depth;
}

void SvcLineage::visit(
    const std::function<void(const LineageRecord&)>& fn) const {
  for (const LineageRecord& record : records_) fn(record);
}

}  // namespace gbis
