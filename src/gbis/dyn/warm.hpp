// Warm-start re-solve: turn a cached ancestor partition into a good
// starting partition for a mutated descendant, then refine with
// bounded KL instead of cold portfolio racing.
//
// Pipeline (docs/SERVICE.md "Warm-start solves"):
//   1. plan  — walk the lineage rootward from the solve target until a
//      fingerprint with a cached partition appears; give up past a
//      cumulative-edit or non-projectable (map-less) edge (dispatch
//      thread, cheap).
//   2. project — push the ancestor's side vector down the chain
//      through each edge's vertex map; vertices born along the chain
//      get the kUnplacedSide sentinel (dispatch thread, O(chain · V)).
//   3. solve — greedy-place the sentinels, balance-repair, bounded KL
//      (worker thread, the only expensive part).
//
// Every step is a pure function of its inputs, so warm solves keep
// the service's byte-determinism contract at any GBIS_THREADS.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gbis/dyn/lineage.hpp"
#include "gbis/graph/graph.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

/// Side value in a projected vector for a vertex with no ancestor
/// counterpart (added along the chain): warm_solve places these.
inline constexpr std::uint8_t kUnplacedSide = 2;

/// A viable warm start found by plan_warm_start.
struct WarmPlan {
  std::uint64_t ancestor = 0;         ///< fingerprint with a cached partition
  std::uint64_t cumulative_edits = 0; ///< summed edit distance along the chain
  /// Lineage edges from the ancestor's child down to the solve target,
  /// in application order. Never empty on success.
  std::vector<const LineageRecord*> chain;
};

/// Walks the lineage rootward from `fingerprint`. Stops at the first
/// ancestor for which `has_result` is true; gives up at a root, a
/// non-projectable edge, a cycle/overlong walk, or once cumulative
/// edits exceed `max_edits`. Returns true and fills `plan` on success.
bool plan_warm_start(const SvcLineage& lineage, std::uint64_t fingerprint,
                     std::uint64_t max_edits,
                     const std::function<bool(std::uint64_t)>& has_result,
                     WarmPlan& plan);

/// Projects `ancestor_sides` down `plan.chain`. On success `out` has
/// one entry per target-graph vertex: 0/1 inherited from the ancestor,
/// kUnplacedSide for vertices added along the chain. Returns false on
/// any shape mismatch (stale plan) with `out` unspecified.
bool project_sides(const WarmPlan& plan,
                   const std::vector<std::uint8_t>& ancestor_sides,
                   std::vector<std::uint8_t>& out);

struct WarmSolveResult {
  Weight cut = 0;
  std::vector<std::uint8_t> sides;
  std::uint32_t kl_passes = 0;
};

/// Finishes a projected partition on the target graph: places each
/// kUnplacedSide vertex (ascending id) on the side holding more of its
/// already-placed neighbor weight (ties: the lighter side, then 0),
/// repairs balance, runs KL capped at `max_passes`. Deterministic;
/// throws DeadlineExceeded if `deadline` expires inside KL.
WarmSolveResult warm_solve(const Graph& g, std::vector<std::uint8_t> seeded,
                           std::uint32_t max_passes,
                           const Deadline& deadline);

}  // namespace gbis
