#include "gbis/dyn/warm.hpp"

#include <stdexcept>
#include <utility>

#include "gbis/dyn/mutation.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/balance.hpp"
#include "gbis/partition/bisection.hpp"

namespace gbis {

bool plan_warm_start(const SvcLineage& lineage, std::uint64_t fingerprint,
                     std::uint64_t max_edits,
                     const std::function<bool(std::uint64_t)>& has_result,
                     WarmPlan& plan) {
  std::vector<const LineageRecord*> walked;  // target-up order
  std::uint64_t current = fingerprint;
  std::uint64_t edits = 0;
  // The depth cap bounds every legal chain; +1 slack so a full-depth
  // chain still walks, and anything longer (a hypothetical cycle) stops.
  for (std::uint32_t steps = 0; steps <= lineage.max_depth() + 1; ++steps) {
    const LineageRecord* edge = lineage.by_child(current);
    if (edge == nullptr) return false;   // root reached, no cached ancestor
    if (edge->map.empty()) return false; // journal-restored: non-projectable
    edits += edge->edit_distance;
    if (edits > max_edits) return false;
    walked.push_back(edge);
    if (has_result(edge->parent)) {
      plan.ancestor = edge->parent;
      plan.cumulative_edits = edits;
      plan.chain.assign(walked.rbegin(), walked.rend());
      return true;
    }
    current = edge->parent;
  }
  return false;
}

bool project_sides(const WarmPlan& plan,
                   const std::vector<std::uint8_t>& ancestor_sides,
                   std::vector<std::uint8_t>& out) {
  if (plan.chain.empty()) return false;
  std::vector<std::uint8_t> current = ancestor_sides;
  for (const LineageRecord* edge : plan.chain) {
    if (current.size() != edge->parent_vertices ||
        edge->map.size() != edge->parent_vertices + edge->vadds) {
      return false;
    }
    std::vector<std::uint8_t> next(edge->child_vertices, kUnplacedSide);
    for (std::size_t e = 0; e < edge->map.size(); ++e) {
      const Vertex child_id = edge->map[e];
      if (child_id == kDeletedVertex) continue;
      if (child_id >= next.size()) return false;
      if (e < edge->parent_vertices) {
        const std::uint8_t side = current[e];
        if (side > kUnplacedSide) return false;
        next[child_id] = side;
      }
      // else: born along the chain, stays kUnplacedSide.
    }
    current = std::move(next);
  }
  out = std::move(current);
  return true;
}

WarmSolveResult warm_solve(const Graph& g, std::vector<std::uint8_t> seeded,
                           std::uint32_t max_passes,
                           const Deadline& deadline) {
  if (seeded.size() != g.num_vertices()) {
    throw std::invalid_argument("warm seed size mismatch");
  }
  Weight side_weight[2] = {0, 0};
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (seeded[v] <= 1) side_weight[seeded[v]] += g.vertex_weight(v);
  }
  // Place chain-born vertices in ascending id: the side holding more
  // of the already-placed neighbor weight; ties go to the lighter
  // side, then side 0. Ascending order makes earlier placements
  // visible to later ones, and the whole walk deterministic.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (seeded[v] != kUnplacedSide) continue;
    Weight attached[2] = {0, 0};
    const auto neighbors = g.neighbors(v);
    const auto weights = g.edge_weights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const std::uint8_t side = seeded[neighbors[i]];
      if (side <= 1) attached[side] += weights[i];
    }
    int side = 0;
    if (attached[0] != attached[1]) {
      side = attached[0] > attached[1] ? 0 : 1;
    } else {
      side = side_weight[0] <= side_weight[1] ? 0 : 1;
    }
    seeded[v] = static_cast<std::uint8_t>(side);
    side_weight[side] += g.vertex_weight(v);
  }

  Bisection bisection(g, std::move(seeded));
  rebalance(bisection);
  KlOptions options;
  options.max_passes = max_passes;
  options.deadline = deadline;
  const KlStats stats = kl_refine(bisection, options);
  WarmSolveResult result;
  result.cut = bisection.cut();
  result.sides.assign(bisection.sides().begin(), bisection.sides().end());
  result.kl_passes = stats.passes;
  return result;
}

}  // namespace gbis
