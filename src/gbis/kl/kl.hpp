// Kernighan-Lin graph bisection (paper section III, Figure 2; original:
// Kernighan & Lin, Bell System Tech. J. 1970).
//
// One pass: starting from a bisection (A, B), repeatedly select the
// unlocked opposite-side pair (a, b) maximizing the pair gain
// g_ab = g_a + g_b - 2 w(a, b), lock it, and update remaining gains as
// if the pair had been interchanged (Figure 2 lines 6-8). After
// min(|A|, |B|) selections, interchange the prefix of pairs whose
// cumulative gain is maximal (line 9-10). Passes repeat until a pass
// yields no improvement (or a configured cap).
//
// Pair selection uses gain buckets scanned in descending g_a + g_b
// order with the classic early exit (g_ab <= g_a + g_b because edge
// weights are positive), which makes a pass O(E) in practice instead of
// the naive O(V^2).
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/partition/bisection.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

class MetricsSink;

/// How each pass picks the next (a, b) pair.
enum class KlPairSelection {
  /// Full scan for argmax g_ab with the early-exit bound (default —
  /// the algorithm as specified in the paper's Figure 2).
  kBestPair,
  /// Greedy shortcut: take the max-gain vertex a on side A, then the
  /// best partner b for that fixed a. Cheaper and measurably weaker —
  /// the kind of simplification period implementations made; kept as
  /// an ablation lever (bench/ablation_kl_selection) for probing why
  /// 1989 KL numbers were worse than a faithful Figure-2 KL.
  kGreedyTops,
};

/// Tuning knobs for the KL driver.
struct KlOptions {
  /// Maximum number of passes; 0 means run until a pass gives no
  /// improvement (the paper's "until no improvement is possible").
  std::uint32_t max_passes = 0;
  /// Pair-selection rule (see KlPairSelection).
  KlPairSelection pair_selection = KlPairSelection::kBestPair;
  /// Cooperative wall-clock budget: the pass loop and each pass's
  /// round loop poll it and throw DeadlineExceeded when it expires
  /// (the trial runner maps that to a `timed_out` trial). Default:
  /// unlimited.
  Deadline deadline;
  /// Observability sink (obs/metrics.hpp): per-pass counters, the
  /// pass-improvement histogram, and one convergence-trace point per
  /// pass. nullptr (the default) records nothing — the disabled cost
  /// is a branch on this pointer, flushed once per pass.
  MetricsSink* metrics = nullptr;
};

/// Per-run diagnostics.
struct KlStats {
  std::uint32_t passes = 0;            ///< passes executed
  std::uint64_t pairs_selected = 0;    ///< total (a,b) selections
  std::uint64_t pairs_swapped = 0;     ///< selections actually applied
  std::uint64_t candidates_scanned = 0;  ///< pair candidates examined
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Runs KL passes on `bisection` in place until fixpoint (or
/// options.max_passes). Never increases the cut. Returns diagnostics.
/// When `pass_cuts` is non-null, the cut after each pass is appended
/// (for convergence plots — see examples/anneal_lab).
KlStats kl_refine(Bisection& bisection, const KlOptions& options = {},
                  std::vector<Weight>* pass_cuts = nullptr);

/// Runs exactly one KL pass; returns the cut improvement (>= 0).
/// Exposed for tests and pass-level experiments.
Weight kl_pass(Bisection& bisection, KlStats* stats = nullptr,
               const KlOptions& options = {});

}  // namespace gbis
