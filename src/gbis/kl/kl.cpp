#include "gbis/kl/kl.hpp"

#include <algorithm>
#include <vector>

#include "gbis/obs/metrics.hpp"
#include "gbis/partition/buckets.hpp"
#include "gbis/partition/gains.hpp"

namespace gbis {

namespace {

/// Finds the unlocked pair (a on side 0, b on side 1) with maximum
/// g_ab, scanning bucket combinations in descending g_a + g_b order.
/// Returns false if either side is exhausted.
bool select_best_pair(const Graph& g, const GainBuckets& side0,
                      const GainBuckets& side1, Vertex& best_a,
                      Vertex& best_b, Weight& best_gab,
                      std::uint64_t& scanned) {
  const Weight top0 = side0.max_gain_present();
  const Weight top1 = side1.max_gain_present();
  if (top0 == GainBuckets::kEmpty || top1 == GainBuckets::kEmpty) {
    return false;
  }

  bool found = false;
  best_gab = 0;
  for (Weight ga = top0; ga >= -side0.max_gain(); --ga) {
    // Upper bound for any pair using this or a lower side-0 bucket.
    if (found && ga + top1 <= best_gab) break;
    std::int64_t a_it = side0.bucket_head(ga);
    if (a_it == GainBuckets::kNil) continue;
    for (; a_it != GainBuckets::kNil;
         a_it = side0.bucket_next(static_cast<Vertex>(a_it))) {
      const auto a = static_cast<Vertex>(a_it);
      for (Weight gb = top1; gb >= -side1.max_gain(); --gb) {
        if (found && ga + gb <= best_gab) break;
        std::int64_t b_it = side1.bucket_head(gb);
        for (; b_it != GainBuckets::kNil;
             b_it = side1.bucket_next(static_cast<Vertex>(b_it))) {
          const auto b = static_cast<Vertex>(b_it);
          ++scanned;
          const Weight gab = ga + gb - 2 * g.edge_weight(a, b);
          if (!found || gab > best_gab) {
            found = true;
            best_gab = gab;
            best_a = a;
            best_b = b;
          }
          // A non-adjacent pair attains the bucket bound; nothing in
          // this or lower buckets can beat it.
          if (best_gab == ga + gb) break;
        }
        if (found && best_gab >= ga + gb) break;  // bucket bound attained
      }
      // Nothing with this ga (or below) can beat the bound ga + top1.
      if (found && best_gab >= ga + top1) break;
    }
    if (found && best_gab >= ga + top1) break;
  }
  return found;
}

/// Greedy-tops selection: a = best-gain vertex of side 0, b = best
/// partner for that fixed a (argmax g_b - 2 w(a, b), scanned in
/// descending-bucket order with the same early-exit bound).
bool select_greedy_tops(const Graph& g, const GainBuckets& side0,
                        const GainBuckets& side1, Vertex& best_a,
                        Vertex& best_b, Weight& best_gab,
                        std::uint64_t& scanned) {
  const Weight top0 = side0.max_gain_present();
  const Weight top1 = side1.max_gain_present();
  if (top0 == GainBuckets::kEmpty || top1 == GainBuckets::kEmpty) {
    return false;
  }
  const auto a = static_cast<Vertex>(side0.bucket_head(top0));
  bool found = false;
  Weight best_partner = 0;
  for (Weight gb = top1; gb >= -side1.max_gain(); --gb) {
    if (found && gb <= best_partner) break;
    for (std::int64_t it = side1.bucket_head(gb); it != GainBuckets::kNil;
         it = side1.bucket_next(static_cast<Vertex>(it))) {
      const auto b = static_cast<Vertex>(it);
      ++scanned;
      const Weight value = gb - 2 * g.edge_weight(a, b);
      if (!found || value > best_partner) {
        found = true;
        best_partner = value;
        best_b = b;
      }
      if (best_partner == gb) break;  // bucket bound attained
    }
    if (found && best_partner >= gb) break;
  }
  best_a = a;
  best_gab = top0 + best_partner;
  return found;
}

}  // namespace

Weight kl_pass(Bisection& bisection, KlStats* stats,
               const KlOptions& options) {
  const Graph& g = bisection.graph();
  const std::uint32_t n = g.num_vertices();
  if (n < 2) return 0;

  // Max |gain| is bounded by the largest weighted degree.
  Weight max_gain = 1;
  for (Vertex v = 0; v < n; ++v) {
    max_gain = std::max(max_gain, g.weighted_degree(v));
  }

  GainBuckets buckets[2] = {GainBuckets(n, max_gain),
                            GainBuckets(n, max_gain)};
  std::vector<Weight> gains = all_gains(bisection);
  std::vector<std::uint8_t> sides(bisection.sides().begin(),
                                  bisection.sides().end());
  for (Vertex v = 0; v < n; ++v) {
    buckets[sides[v]].insert(v, gains[v]);
  }

  const std::uint32_t rounds =
      std::min(bisection.side_count(0), bisection.side_count(1));
  std::vector<std::pair<Vertex, Vertex>> sequence;
  sequence.reserve(rounds);

  Weight cumulative = 0, best_prefix_gain = 0;
  std::size_t best_prefix_len = 0;
  std::uint64_t scanned = 0;
  std::uint64_t polls = 0;

  for (std::uint32_t i = 0; i < rounds; ++i) {
    // A round is at least one bucket scan, so a throttled poll is
    // cheap; throwing here is safe — swaps apply only after the loop.
    if ((i & 31u) == 0) {
      options.deadline.check();
      ++polls;
    }
    Vertex a = 0, b = 0;
    Weight gab = 0;
    const bool found =
        options.pair_selection == KlPairSelection::kBestPair
            ? select_best_pair(g, buckets[0], buckets[1], a, b, gab, scanned)
            : select_greedy_tops(g, buckets[0], buckets[1], a, b, gab,
                                 scanned);
    if (!found) break;
    buckets[0].remove(a);
    buckets[1].remove(b);
    sequence.emplace_back(a, b);
    cumulative += gab;
    if (cumulative > best_prefix_gain) {
      best_prefix_gain = cumulative;
      best_prefix_len = sequence.size();
    }

    // Figure 2 lines 6-8: update unlocked gains as if (a, b) swapped.
    update_gains_after_swap(g, sides, a, b, gains);
    for (Vertex x : g.neighbors(a)) {
      if (buckets[sides[x]].contains(x)) buckets[sides[x]].update(x, gains[x]);
    }
    for (Vertex y : g.neighbors(b)) {
      if (buckets[sides[y]].contains(y)) buckets[sides[y]].update(y, gains[y]);
    }
    // The "virtual swap" flips which physical side a and b occupy for
    // the rest of the pass; since both are locked, only the gain values
    // (already updated) matter — sides[] of unlocked vertices is
    // unchanged, so the snapshot stays valid.
  }

  if (stats != nullptr) {
    stats->pairs_selected += sequence.size();
    stats->pairs_swapped += best_prefix_len;
    stats->candidates_scanned += scanned;
  }
  if (MetricsSink* sink = options.metrics; sink != nullptr) {
    // One flush per pass: the hot loop above only touches locals.
    sink->add(Counter::kKlPairsSelected, sequence.size());
    sink->add(Counter::kKlPairsSwapped, best_prefix_len);
    sink->add(Counter::kKlCandidatesScanned, scanned);
    sink->add(Counter::kDeadlinePolls, polls);
  }

  for (std::size_t i = 0; i < best_prefix_len; ++i) {
    bisection.swap(sequence[i].first, sequence[i].second);
  }
  return best_prefix_gain;
}

KlStats kl_refine(Bisection& bisection, const KlOptions& options,
                  std::vector<Weight>* pass_cuts) {
  KlStats stats;
  stats.initial_cut = bisection.cut();
  for (;;) {
    options.deadline.check();
    const Weight improvement = kl_pass(bisection, &stats, options);
    ++stats.passes;
    if (pass_cuts != nullptr) pass_cuts->push_back(bisection.cut());
    if (MetricsSink* sink = options.metrics; sink != nullptr) {
      sink->add(Counter::kKlPasses);
      sink->add(Counter::kDeadlinePolls);  // the per-pass check above
      sink->observe(Hist::kKlPassImprovement,
                    static_cast<std::uint64_t>(improvement));
      sink->trace_point(TraceSource::kKl, bisection.cut());
    }
    if (improvement <= 0) break;
    if (options.max_passes != 0 && stats.passes >= options.max_passes) break;
  }
  stats.final_cut = bisection.cut();
  return stats;
}

}  // namespace gbis
