#include "gbis/hypergraph/netlist_gen.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "gbis/hypergraph/builder.hpp"

namespace gbis {

namespace {

void check_params(const NetlistParams& params) {
  if (params.cells < 4) {
    throw std::invalid_argument("netlist: cells >= 4 required");
  }
  if (params.nets < 1) {
    throw std::invalid_argument("netlist: nets >= 1 required");
  }
  if (!(params.mean_extra_pins >= 0.0)) {
    throw std::invalid_argument("netlist: mean_extra_pins >= 0 required");
  }
}

/// 2 + Geometric(mean_extra_pins) net size, capped by the pool size.
std::uint32_t draw_net_size(const NetlistParams& params, std::uint32_t pool,
                            Rng& rng) {
  std::uint32_t size = 2;
  if (params.mean_extra_pins > 0.0) {
    const double p = 1.0 / (1.0 + params.mean_extra_pins);
    while (size < pool && !rng.bernoulli(p)) ++size;
  }
  return std::min(size, pool);
}

/// Draws `size` distinct cells from [base, base + pool).
std::vector<Cell> draw_pins(std::uint32_t base, std::uint32_t pool,
                            std::uint32_t size, Rng& rng) {
  std::vector<std::uint32_t> idx = rng.sample_indices(pool, size);
  std::vector<Cell> pins;
  pins.reserve(size);
  for (std::uint32_t i : idx) pins.push_back(base + i);
  return pins;
}

}  // namespace

Hypergraph make_random_netlist(const NetlistParams& params, Rng& rng) {
  check_params(params);
  HypergraphBuilder builder(params.cells);
  std::uint32_t staged = 0;
  while (staged < params.nets) {
    const std::uint32_t size = draw_net_size(params, params.cells, rng);
    if (builder.add_net(draw_pins(0, params.cells, size, rng))) ++staged;
  }
  return builder.build();
}

Hypergraph make_planted_netlist(const NetlistParams& params,
                                std::uint32_t cross, Rng& rng) {
  check_params(params);
  if (cross > params.nets) {
    throw std::invalid_argument("netlist: cross > nets");
  }
  const std::uint32_t half = params.cells / 2;
  if (half < 2 || params.cells - half < 2) {
    throw std::invalid_argument("netlist: blocks too small");
  }
  HypergraphBuilder builder(params.cells);

  // Cross nets: at least one pin in each block.
  std::uint32_t staged = 0;
  while (staged < cross) {
    const std::uint32_t size = draw_net_size(params, params.cells, rng);
    const std::uint32_t in_a =
        1 + static_cast<std::uint32_t>(rng.below(size - 1));
    const std::uint32_t in_b = size - in_a;
    if (in_a > half || in_b > params.cells - half) continue;
    std::vector<Cell> pins = draw_pins(0, half, in_a, rng);
    const std::vector<Cell> pins_b =
        draw_pins(half, params.cells - half, in_b, rng);
    pins.insert(pins.end(), pins_b.begin(), pins_b.end());
    if (builder.add_net(pins)) ++staged;
  }
  // Intra-block nets.
  while (staged < params.nets) {
    const bool in_a = rng.bernoulli(0.5);
    const std::uint32_t base = in_a ? 0 : half;
    const std::uint32_t pool = in_a ? half : params.cells - half;
    const std::uint32_t size = draw_net_size(params, pool, rng);
    if (builder.add_net(draw_pins(base, pool, size, rng))) ++staged;
  }
  return builder.build();
}

}  // namespace gbis
