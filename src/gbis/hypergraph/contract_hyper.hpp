// Compaction for hypergraphs: the paper's heuristic transplanted to
// netlists. Cells are matched by co-membership (two cells sharing a
// net), matched pairs coalesce into supercells, pins remap, nets that
// collapse to a single supercell disappear, and identical nets merge —
// the netlist analogue of "parallel edges merge". The compacted FM
// driver then mirrors the five steps of section V with hypergraph FM
// as the bisection heuristic (bench/hyper_compaction measures whether
// the effect transfers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/hypergraph/fm_hyper.hpp"
#include "gbis/hypergraph/hyper_bisection.hpp"
#include "gbis/hypergraph/hypergraph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// A matching over cells: disjoint pairs, each sharing >= 1 net.
using HyperMatching = std::vector<std::pair<Cell, Cell>>;

/// Matching policies for netlists.
enum class HyperMatchPolicy {
  kRandom,             ///< random unmatched co-pin neighbor
  kHeavyConnectivity,  ///< neighbor maximizing sum of w(net)/(|net|-1)
};

/// Greedy maximal matching over the co-membership relation.
HyperMatching hyper_matching(const Hypergraph& h, Rng& rng,
                             HyperMatchPolicy policy =
                                 HyperMatchPolicy::kRandom);

/// True if m is a matching of h (disjoint pairs, each sharing a net).
bool is_hyper_matching(const Hypergraph& h, const HyperMatching& m);

/// A hypergraph contraction: coarse netlist plus the cell map.
struct HyperContraction {
  Hypergraph coarse;
  std::vector<Cell> map;  ///< fine cell -> coarse cell

  /// Projects a coarse side assignment to the fine cells.
  std::vector<std::uint8_t> project(
      std::span<const std::uint8_t> coarse_sides) const;
};

/// Contracts matched pairs (plus random leftover pairs when
/// pair_leftovers, keeping supercell weights uniform).
HyperContraction contract_hyper(const Hypergraph& h, const HyperMatching& m,
                                Rng& rng, bool pair_leftovers = true);

/// Moves best-gain cells from the larger side until the count
/// imbalance is <= 1. Returns cells moved.
std::uint32_t hyper_rebalance(HyperBisection& bisection);

/// Knobs for the compacted hypergraph FM driver.
struct HyperCompactionOptions {
  HyperMatchPolicy match_policy = HyperMatchPolicy::kRandom;
  bool pair_leftovers = true;
  HyperFmOptions fm;
};

/// Diagnostics of one compacted run.
struct HyperCompactionStats {
  std::uint32_t coarse_cells = 0;
  std::uint32_t coarse_nets = 0;
  Weight coarse_cut = 0;
  Weight projected_cut = 0;
  Weight final_cut = 0;
};

/// The five compaction steps with hypergraph FM at both levels.
HyperBisection compacted_hyper_fm(const Hypergraph& h, Rng& rng,
                                  const HyperCompactionOptions& options = {},
                                  HyperCompactionStats* stats = nullptr);

}  // namespace gbis
