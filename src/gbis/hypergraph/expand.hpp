// Netlist-to-graph expansions, so the paper's graph algorithms (KL,
// SA, compaction) can run on circuits and be compared against native
// hypergraph FM (bench/hyper_netlist):
//
//  - clique expansion: each k-pin net becomes a clique; the standard
//    weighting 1/(k-1) per clique edge makes a minimally-split net
//    cost ~1 (scaled to integers here);
//  - star expansion: each net becomes a new hub vertex connected to
//    its pins — linear size, but adds vertices that partitioning must
//    then place.
#pragma once

#include "gbis/graph/graph.hpp"
#include "gbis/hypergraph/hypergraph.hpp"

namespace gbis {

/// Scale applied to clique/star edge weights so fractional clique
/// weights round to useful integers: weight = max(1, kExpandScale/(k-1)).
inline constexpr Weight kExpandScale = 12;

/// Clique expansion: same vertex set as the netlist's cells.
Graph clique_expansion(const Hypergraph& h);

/// Star expansion: cells first, then one hub vertex per net (hub of
/// net n is cell_count + n). Hub vertex weight is 1.
Graph star_expansion(const Hypergraph& h);

}  // namespace gbis
