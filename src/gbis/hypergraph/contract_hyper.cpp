#include "gbis/hypergraph/contract_hyper.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "gbis/hypergraph/builder.hpp"

namespace gbis {

namespace {

constexpr Cell kNoCell = 0xFFFFFFFFu;

/// Hash for sorted pin vectors (FNV-1a over the ids).
struct PinsHash {
  std::size_t operator()(const std::vector<Cell>& pins) const {
    std::size_t hash = 1469598103934665603ull;
    for (Cell c : pins) {
      hash ^= c;
      hash *= 1099511628211ull;
    }
    return hash;
  }
};

}  // namespace

HyperMatching hyper_matching(const Hypergraph& h, Rng& rng,
                             HyperMatchPolicy policy) {
  const std::uint32_t n = h.num_cells();
  std::vector<std::uint8_t> matched(n, 0);
  HyperMatching result;
  result.reserve(n / 2);

  std::vector<Cell> order(n);
  for (Cell c = 0; c < n; ++c) order[c] = c;
  rng.shuffle(order);

  // Scratch: connectivity score per candidate, reset per cell.
  std::vector<double> score(n, 0.0);
  std::vector<Cell> candidates;

  for (Cell c : order) {
    if (matched[c]) continue;
    candidates.clear();
    for (Net net : h.nets_of(c)) {
      const auto pins = h.pins(net);
      const double contribution =
          static_cast<double>(h.net_weight(net)) /
          static_cast<double>(pins.size() - 1);
      for (Cell u : pins) {
        if (u == c || matched[u]) continue;
        if (score[u] == 0.0) candidates.push_back(u);
        score[u] += contribution;
      }
    }
    if (!candidates.empty()) {
      Cell mate = kNoCell;
      if (policy == HyperMatchPolicy::kRandom) {
        mate = candidates[static_cast<std::size_t>(
            rng.below(candidates.size()))];
      } else {
        double best = -1.0;
        for (Cell u : candidates) {
          if (score[u] > best) {
            best = score[u];
            mate = u;
          }
        }
      }
      matched[c] = matched[mate] = 1;
      result.emplace_back(c, mate);
    }
    for (Cell u : candidates) score[u] = 0.0;
  }
  return result;
}

bool is_hyper_matching(const Hypergraph& h, const HyperMatching& m) {
  std::vector<std::uint8_t> seen(h.num_cells(), 0);
  for (const auto& [a, b] : m) {
    if (a >= h.num_cells() || b >= h.num_cells() || a == b) return false;
    if (seen[a] || seen[b]) return false;
    seen[a] = seen[b] = 1;
    // The pair must share at least one net.
    const auto nets_a = h.nets_of(a);
    const auto nets_b = h.nets_of(b);
    const bool share = std::ranges::any_of(nets_a, [&](Net n) {
      return std::binary_search(nets_b.begin(), nets_b.end(), n);
    });
    if (!share) return false;
  }
  return true;
}

std::vector<std::uint8_t> HyperContraction::project(
    std::span<const std::uint8_t> coarse_sides) const {
  if (coarse_sides.size() != coarse.num_cells()) {
    throw std::invalid_argument("HyperContraction::project: size mismatch");
  }
  std::vector<std::uint8_t> fine(map.size());
  for (std::size_t c = 0; c < map.size(); ++c) {
    fine[c] = coarse_sides[map[c]];
  }
  return fine;
}

HyperContraction contract_hyper(const Hypergraph& h, const HyperMatching& m,
                                Rng& rng, bool pair_leftovers) {
  if (!is_hyper_matching(h, m)) {
    throw std::invalid_argument("contract_hyper: not a matching of h");
  }
  const std::uint32_t n = h.num_cells();

  HyperContraction result;
  result.map.assign(n, kNoCell);
  std::uint32_t next_id = 0;
  for (const auto& [a, b] : m) {
    result.map[a] = result.map[b] = next_id++;
  }
  if (pair_leftovers) {
    std::vector<Cell> leftovers;
    for (Cell c = 0; c < n; ++c) {
      if (result.map[c] == kNoCell) leftovers.push_back(c);
    }
    rng.shuffle(leftovers);
    std::size_t i = 0;
    for (; i + 1 < leftovers.size(); i += 2) {
      result.map[leftovers[i]] = result.map[leftovers[i + 1]] = next_id++;
    }
    if (i < leftovers.size()) result.map[leftovers[i]] = next_id++;
  } else {
    for (Cell c = 0; c < n; ++c) {
      if (result.map[c] == kNoCell) result.map[c] = next_id++;
    }
  }

  HypergraphBuilder builder(next_id);
  std::vector<Weight> coarse_cw(next_id, 0);
  for (Cell c = 0; c < n; ++c) coarse_cw[result.map[c]] += h.cell_weight(c);
  for (Cell sc = 0; sc < next_id; ++sc) {
    builder.set_cell_weight(sc, coarse_cw[sc]);
  }

  // Remap nets; merge identical coarse pin sets by summing weights.
  std::unordered_map<std::vector<Cell>, Weight, PinsHash> merged;
  std::vector<Cell> coarse_pins;
  for (Net net = 0; net < h.num_nets(); ++net) {
    coarse_pins.clear();
    for (Cell c : h.pins(net)) coarse_pins.push_back(result.map[c]);
    std::sort(coarse_pins.begin(), coarse_pins.end());
    coarse_pins.erase(std::unique(coarse_pins.begin(), coarse_pins.end()),
                      coarse_pins.end());
    if (coarse_pins.size() < 2) continue;  // net collapsed
    merged[coarse_pins] += h.net_weight(net);
  }
  for (const auto& [pins, weight] : merged) {
    builder.add_net(pins, weight);
  }
  result.coarse = builder.build();
  return result;
}

std::uint32_t hyper_rebalance(HyperBisection& bisection) {
  std::uint32_t moved = 0;
  while (!bisection.is_balanced()) {
    const int heavy =
        bisection.side_count(0) >= bisection.side_count(1) ? 0 : 1;
    Cell best_cell = 0;
    Weight best_gain = std::numeric_limits<Weight>::min();
    for (Cell c = 0; c < bisection.hypergraph().num_cells(); ++c) {
      if (bisection.side(c) != heavy) continue;
      const Weight g = bisection.gain(c);
      if (g > best_gain) {
        best_gain = g;
        best_cell = c;
      }
    }
    bisection.move(best_cell);
    ++moved;
  }
  return moved;
}

HyperBisection compacted_hyper_fm(const Hypergraph& h, Rng& rng,
                                  const HyperCompactionOptions& options,
                                  HyperCompactionStats* stats) {
  const HyperMatching matching = hyper_matching(h, rng, options.match_policy);
  const HyperContraction contraction =
      contract_hyper(h, matching, rng, options.pair_leftovers);

  HyperBisection coarse =
      HyperBisection::random(contraction.coarse, rng);
  hyper_fm_refine(coarse, options.fm);

  if (stats != nullptr) {
    stats->coarse_cells = contraction.coarse.num_cells();
    stats->coarse_nets = contraction.coarse.num_nets();
    stats->coarse_cut = coarse.cut();
  }

  HyperBisection fine(h, contraction.project(coarse.sides()));
  if (stats != nullptr) stats->projected_cut = fine.cut();
  hyper_rebalance(fine);
  hyper_fm_refine(fine, options.fm);
  if (stats != nullptr) stats->final_cut = fine.cut();
  return fine;
}

}  // namespace gbis
