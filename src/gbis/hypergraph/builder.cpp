#include "gbis/hypergraph/builder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gbis {

HypergraphBuilder::HypergraphBuilder(std::uint32_t num_cells)
    : cell_weights_(num_cells, 1) {}

bool HypergraphBuilder::add_net(std::span<const Cell> cells, Weight weight) {
  if (weight <= 0) {
    throw std::invalid_argument("HypergraphBuilder::add_net: weight <= 0");
  }
  std::vector<Cell> pins(cells.begin(), cells.end());
  for (Cell c : pins) {
    if (c >= num_cells()) {
      throw std::invalid_argument(
          "HypergraphBuilder::add_net: cell out of range");
    }
  }
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  if (pins.size() < 2) return false;  // trivial net: uncuttable
  staged_pins_.push_back(std::move(pins));
  staged_weights_.push_back(weight);
  return true;
}

void HypergraphBuilder::set_cell_weight(Cell c, Weight weight) {
  if (c >= num_cells()) {
    throw std::invalid_argument(
        "HypergraphBuilder::set_cell_weight: cell out of range");
  }
  if (weight <= 0) {
    throw std::invalid_argument(
        "HypergraphBuilder::set_cell_weight: weight <= 0");
  }
  cell_weights_[c] = weight;
}

Hypergraph HypergraphBuilder::build() {
  const std::uint32_t cells = num_cells();
  const auto nets = static_cast<std::uint32_t>(staged_pins_.size());

  Hypergraph h;
  h.cell_weights_ = cell_weights_;
  h.net_weights_ = std::move(staged_weights_);
  h.total_cell_weight_ = std::accumulate(h.cell_weights_.begin(),
                                         h.cell_weights_.end(), Weight{0});
  h.total_net_weight_ = std::accumulate(h.net_weights_.begin(),
                                        h.net_weights_.end(), Weight{0});

  h.pin_offsets_.assign(nets + 1, 0);
  std::uint64_t total_pins = 0;
  for (Net n = 0; n < nets; ++n) {
    total_pins += staged_pins_[n].size();
    h.pin_offsets_[n + 1] = total_pins;
  }
  h.pins_.reserve(total_pins);
  std::vector<std::uint32_t> cell_deg(cells, 0);
  for (const auto& pins : staged_pins_) {
    for (Cell c : pins) {
      h.pins_.push_back(c);
      ++cell_deg[c];
    }
  }

  h.member_offsets_.assign(cells + 1, 0);
  for (Cell c = 0; c < cells; ++c) {
    h.member_offsets_[c + 1] = h.member_offsets_[c] + cell_deg[c];
  }
  h.memberships_.resize(total_pins);
  std::vector<std::uint64_t> cursor(h.member_offsets_.begin(),
                                    h.member_offsets_.end() - 1);
  // Nets are appended in increasing id, so each cell's membership list
  // comes out sorted.
  for (Net n = 0; n < nets; ++n) {
    for (Cell c : staged_pins_[n]) {
      h.memberships_[cursor[c]++] = n;
    }
  }

  staged_pins_.clear();
  staged_weights_.clear();
  cell_weights_.assign(cells, 1);
  return h;
}

}  // namespace gbis
