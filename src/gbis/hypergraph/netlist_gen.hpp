// Synthetic circuit netlist generators.
//
// Real netlists are dominated by 2-3 pin nets with a tail of wide
// nets (buses, clocks); the distribution here is 2 + geometric. Two
// flavours:
//  - random: pins drawn uniformly (the hypergraph analogue of Gnp);
//  - planted: cells split into two blocks with intra-block nets plus
//    exactly `cross` cross-block nets — the hypergraph analogue of the
//    paper's G2set model, giving a known upper bound on the net cut.
#pragma once

#include <cstdint>

#include "gbis/hypergraph/hypergraph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Parameters shared by the netlist generators.
struct NetlistParams {
  std::uint32_t cells = 0;      ///< number of cells (>= 4)
  std::uint32_t nets = 0;       ///< number of nets (>= 1)
  double mean_extra_pins = 1.0; ///< net size = 2 + Geometric; mean extra pins
};

/// Uniform random netlist.
Hypergraph make_random_netlist(const NetlistParams& params, Rng& rng);

/// Planted two-block netlist: cells {0..cells/2-1} and the rest;
/// `cross` of the nets get pins from both blocks, the remaining
/// nets stay within a random block. The planted (first-half /
/// second-half) partition cuts at most `cross` nets.
Hypergraph make_planted_netlist(const NetlistParams& params,
                                std::uint32_t cross, Rng& rng);

}  // namespace gbis
