#include "gbis/hypergraph/fm_hyper.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gbis/partition/buckets.hpp"

namespace gbis {

namespace {

/// Pass-local working state: a shadow of the partition that is rolled
/// forward move by move (the real HyperBisection is only touched when
/// the winning prefix is applied).
struct PassState {
  const Hypergraph* h;
  std::vector<std::uint8_t> sides;
  std::vector<std::array<std::uint32_t, 2>> phi;
  std::vector<Weight> gains;
  std::vector<std::uint8_t> locked;
  GainBuckets* buckets[2];

  void update_gain(Cell c, Weight delta) {
    gains[c] += delta;
    if (!locked[c]) buckets[sides[c]]->update(c, gains[c]);
  }

  /// The single free-gain-update rules of FM 1982, applied around
  /// moving `base` from `from` to `to`.
  void apply_move(Cell base) {
    const int from = sides[base];
    const int to = from ^ 1;
    for (Net n : h->nets_of(base)) {
      const Weight w = h->net_weight(n);
      auto& counts = phi[n];
      // Before the move:
      if (counts[to] == 0) {
        // Net was uncut; it will become cut: every other free pin now
        // gains from following the base cell.
        for (Cell u : h->pins(n)) {
          if (u != base) update_gain(u, w);
        }
      } else if (counts[to] == 1) {
        // Exactly one pin already on `to`: moving it back would have
        // un-cut the net, but after the base arrives it no longer
        // would.
        for (Cell u : h->pins(n)) {
          if (u != base && sides[u] == to) {
            update_gain(u, -w);
            break;
          }
        }
      }
      --counts[from];
      ++counts[to];
      // After the move:
      if (counts[from] == 0) {
        // Net is now entirely on `to`: pins no longer gain by moving
        // toward it.
        for (Cell u : h->pins(n)) {
          if (u != base) update_gain(u, -w);
        }
      } else if (counts[from] == 1) {
        // One straggler left on `from`: moving it would un-cut the net.
        for (Cell u : h->pins(n)) {
          if (u != base && sides[u] == from) {
            update_gain(u, w);
            break;
          }
        }
      }
    }
    sides[base] ^= 1;
  }
};

Weight hyper_fm_pass(HyperBisection& bisection, const HyperFmOptions& options,
                     HyperFmStats* stats) {
  const Hypergraph& h = bisection.hypergraph();
  const std::uint32_t n = h.num_cells();
  if (n < 2) return 0;

  // Gain bound: a cell's gain is within +-(sum of its nets' weights).
  Weight max_gain = 1;
  for (Cell c = 0; c < n; ++c) {
    Weight sum = 0;
    for (Net net : h.nets_of(c)) sum += h.net_weight(net);
    max_gain = std::max(max_gain, sum);
  }

  GainBuckets buckets0(n, max_gain), buckets1(n, max_gain);
  PassState state;
  state.h = &h;
  state.sides.assign(bisection.sides().begin(), bisection.sides().end());
  state.phi.resize(h.num_nets());
  for (Net net = 0; net < h.num_nets(); ++net) {
    state.phi[net] = {bisection.pins_on_side(net, 0),
                      bisection.pins_on_side(net, 1)};
  }
  state.gains.resize(n);
  state.locked.assign(n, 0);
  state.buckets[0] = &buckets0;
  state.buckets[1] = &buckets1;
  std::uint32_t counts[2] = {bisection.side_count(0),
                             bisection.side_count(1)};
  for (Cell c = 0; c < n; ++c) {
    state.gains[c] = bisection.gain(c);
    state.buckets[state.sides[c]]->insert(c, state.gains[c]);
  }

  const std::uint64_t transient_tolerance =
      static_cast<std::uint64_t>(options.balance_tolerance) + 1;

  std::vector<Cell> sequence;
  sequence.reserve(n);
  Weight cumulative = 0, best_prefix_gain = 0;
  std::size_t best_prefix_len = 0;

  for (std::uint32_t step = 0; step < n; ++step) {
    const Weight top[2] = {buckets0.max_gain_present(),
                           buckets1.max_gain_present()};
    int from = -1;
    for (int s = 0; s < 2; ++s) {
      if (top[s] == GainBuckets::kEmpty) continue;
      const std::int64_t diff = static_cast<std::int64_t>(counts[1 - s]) + 1 -
                                (static_cast<std::int64_t>(counts[s]) - 1);
      if (static_cast<std::uint64_t>(diff < 0 ? -diff : diff) >
          transient_tolerance) {
        continue;
      }
      if (from == -1 || counts[s] > counts[from] ||
          (counts[s] == counts[from] && top[s] > top[from])) {
        from = s;
      }
    }
    if (from == -1) break;

    const auto c =
        static_cast<Cell>(state.buckets[from]->bucket_head(top[from]));
    state.buckets[from]->remove(c);
    state.locked[c] = 1;
    sequence.push_back(c);
    cumulative += state.gains[c];
    state.apply_move(c);
    --counts[from];
    ++counts[from ^ 1];

    const std::uint32_t imbalance =
        counts[0] >= counts[1] ? counts[0] - counts[1]
                               : counts[1] - counts[0];
    if (cumulative > best_prefix_gain &&
        imbalance <= options.balance_tolerance) {
      best_prefix_gain = cumulative;
      best_prefix_len = sequence.size();
    }
  }

  if (stats != nullptr) {
    stats->moves_considered += sequence.size();
    stats->moves_applied += best_prefix_len;
  }
  for (std::size_t i = 0; i < best_prefix_len; ++i) {
    bisection.move(sequence[i]);
  }
  return best_prefix_gain;
}

}  // namespace

HyperFmStats hyper_fm_refine(HyperBisection& bisection,
                             const HyperFmOptions& options) {
  if (bisection.count_imbalance() > options.balance_tolerance) {
    throw std::invalid_argument(
        "hyper_fm_refine: input violates the balance tolerance");
  }
  HyperFmStats stats;
  stats.initial_cut = bisection.cut();
  for (;;) {
    const Weight improvement = hyper_fm_pass(bisection, options, &stats);
    ++stats.passes;
    if (improvement <= 0) break;
    if (options.max_passes != 0 && stats.passes >= options.max_passes) break;
  }
  stats.final_cut = bisection.cut();
  return stats;
}

}  // namespace gbis
