#include "gbis/hypergraph/expand.hpp"

#include <algorithm>

#include "gbis/graph/builder.hpp"

namespace gbis {

Graph clique_expansion(const Hypergraph& h) {
  GraphBuilder builder(h.num_cells());
  for (Net n = 0; n < h.num_nets(); ++n) {
    const auto pins = h.pins(n);
    const auto k = static_cast<Weight>(pins.size());
    const Weight w = std::max<Weight>(
        1, h.net_weight(n) * kExpandScale / (k - 1));
    for (std::size_t i = 0; i < pins.size(); ++i) {
      for (std::size_t j = i + 1; j < pins.size(); ++j) {
        builder.add_edge(pins[i], pins[j], w);
      }
    }
  }
  for (Cell c = 0; c < h.num_cells(); ++c) {
    builder.set_vertex_weight(c, h.cell_weight(c));
  }
  return builder.build();
}

Graph star_expansion(const Hypergraph& h) {
  GraphBuilder builder(h.num_cells() + h.num_nets());
  for (Net n = 0; n < h.num_nets(); ++n) {
    const Vertex hub = h.num_cells() + n;
    const Weight w = std::max<Weight>(1, h.net_weight(n) * kExpandScale /
                                             static_cast<Weight>(2));
    for (Cell c : h.pins(n)) builder.add_edge(hub, c, w);
  }
  for (Cell c = 0; c < h.num_cells(); ++c) {
    builder.set_vertex_weight(c, h.cell_weight(c));
  }
  return builder.build();
}

}  // namespace gbis
