#include "gbis/hypergraph/hypergraph.hpp"

#include <algorithm>

namespace gbis {

bool Hypergraph::validate() const {
  const std::uint32_t cells = num_cells();
  const std::uint32_t nets = num_nets();
  if (pin_offsets_.size() != static_cast<std::size_t>(nets) + 1) return false;
  if (member_offsets_.size() != static_cast<std::size_t>(cells) + 1) {
    return false;
  }
  if (pin_offsets_.front() != 0 || pin_offsets_.back() != pins_.size()) {
    return false;
  }
  if (member_offsets_.front() != 0 ||
      member_offsets_.back() != memberships_.size()) {
    return false;
  }
  if (pins_.size() != memberships_.size()) return false;

  Weight nw = 0, cw = 0;
  for (Weight w : net_weights_) {
    if (w <= 0) return false;
    nw += w;
  }
  for (Weight w : cell_weights_) {
    if (w <= 0) return false;
    cw += w;
  }
  if (nw != total_net_weight_ || cw != total_cell_weight_) return false;

  // Pin lists: sorted, unique, in range, size >= 2; transpose check.
  std::uint64_t cross_checked = 0;
  for (Net n = 0; n < nets; ++n) {
    const auto cells_of_net = pins(n);
    if (cells_of_net.size() < 2) return false;
    for (std::size_t i = 0; i < cells_of_net.size(); ++i) {
      const Cell c = cells_of_net[i];
      if (c >= cells) return false;
      if (i > 0 && cells_of_net[i - 1] >= c) return false;
      const auto nets_of_cell = nets_of(c);
      if (!std::binary_search(nets_of_cell.begin(), nets_of_cell.end(), n)) {
        return false;
      }
      ++cross_checked;
    }
  }
  if (cross_checked != memberships_.size()) return false;
  for (Cell c = 0; c < cells; ++c) {
    const auto nets_of_cell = nets_of(c);
    for (std::size_t i = 1; i < nets_of_cell.size(); ++i) {
      if (nets_of_cell[i - 1] >= nets_of_cell[i]) return false;
    }
  }
  return true;
}

}  // namespace gbis
