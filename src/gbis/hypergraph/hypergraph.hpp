// Hypergraph substrate for circuit netlists.
//
// The paper motivates bisection through "VLSI placement and routing
// problems", and a circuit is properly a *hypergraph*: a net (wire)
// connects any number of cells, and the object to minimize is the
// number of nets spanning both sides — not graph edges. This module
// provides the netlist-shaped data structure, and fm_hyper.hpp the
// canonical Fiduccia-Mattheyses partitioner on it; expand.hpp maps
// netlists onto the paper's graph algorithms (clique/star expansion)
// so the two worlds can be compared (bench/hyper_netlist).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/graph/graph.hpp"  // Vertex / Weight types are shared

namespace gbis {

/// Cell id within a hypergraph (same width as graph vertices).
using Cell = std::uint32_t;
/// Net id within a hypergraph.
using Net = std::uint32_t;

/// Immutable hypergraph in dual-CSR form: pins (net -> cells) and
/// memberships (cell -> nets). Construct via HypergraphBuilder.
///
/// Invariants (checked by validate()): pin lists are sorted and
/// duplicate-free, every net has >= 2 pins, the two CSR directions are
/// exact transposes, and all weights are positive.
class Hypergraph {
 public:
  Hypergraph() = default;

  std::uint32_t num_cells() const {
    return static_cast<std::uint32_t>(cell_weights_.size());
  }
  std::uint32_t num_nets() const {
    return static_cast<std::uint32_t>(net_weights_.size());
  }
  /// Total pin count (sum of net sizes).
  std::uint64_t num_pins() const { return pins_.size(); }

  /// Cells on a net, sorted ascending.
  std::span<const Cell> pins(Net n) const {
    return {pins_.data() + pin_offsets_[n],
            pin_offsets_[n + 1] - pin_offsets_[n]};
  }

  /// Nets containing a cell, sorted ascending.
  std::span<const Net> nets_of(Cell c) const {
    return {memberships_.data() + member_offsets_[c],
            member_offsets_[c + 1] - member_offsets_[c]};
  }

  std::uint32_t net_size(Net n) const {
    return static_cast<std::uint32_t>(pin_offsets_[n + 1] - pin_offsets_[n]);
  }

  std::uint32_t cell_degree(Cell c) const {
    return static_cast<std::uint32_t>(member_offsets_[c + 1] -
                                      member_offsets_[c]);
  }

  Weight net_weight(Net n) const { return net_weights_[n]; }
  Weight cell_weight(Cell c) const { return cell_weights_[c]; }
  Weight total_net_weight() const { return total_net_weight_; }
  Weight total_cell_weight() const { return total_cell_weight_; }

  /// Average pins per net; 0 for the empty hypergraph.
  double average_net_size() const {
    return num_nets() == 0
               ? 0.0
               : static_cast<double>(num_pins()) / num_nets();
  }

  /// Checks every structural invariant. For tests, not hot paths.
  bool validate() const;

 private:
  friend class HypergraphBuilder;

  std::vector<std::uint64_t> pin_offsets_{0};     // size nets+1
  std::vector<Cell> pins_;                        // size #pins
  std::vector<std::uint64_t> member_offsets_{0};  // size cells+1
  std::vector<Net> memberships_;                  // size #pins
  std::vector<Weight> net_weights_;
  std::vector<Weight> cell_weights_;
  Weight total_net_weight_ = 0;
  Weight total_cell_weight_ = 0;
};

}  // namespace gbis
