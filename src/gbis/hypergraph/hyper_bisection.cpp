#include "gbis/hypergraph/hyper_bisection.hpp"

#include <stdexcept>

namespace gbis {

HyperBisection::HyperBisection(const Hypergraph& h,
                               std::vector<std::uint8_t> sides)
    : hypergraph_(&h), sides_(std::move(sides)) {
  if (sides_.size() != h.num_cells()) {
    throw std::invalid_argument("HyperBisection: sides size != num_cells");
  }
  for (Cell c = 0; c < h.num_cells(); ++c) {
    if (sides_[c] > 1) {
      throw std::invalid_argument("HyperBisection: sides must be 0/1");
    }
    ++counts_[sides_[c]];
    weights_[sides_[c]] += h.cell_weight(c);
  }
  phi_.assign(h.num_nets(), {0, 0});
  cut_ = 0;
  for (Net n = 0; n < h.num_nets(); ++n) {
    for (Cell c : h.pins(n)) ++phi_[n][sides_[c]];
    if (phi_[n][0] > 0 && phi_[n][1] > 0) cut_ += h.net_weight(n);
  }
}

HyperBisection HyperBisection::random(const Hypergraph& h, Rng& rng) {
  const std::uint32_t n = h.num_cells();
  std::vector<Cell> order(n);
  for (Cell c = 0; c < n; ++c) order[c] = c;
  rng.shuffle(order);
  std::vector<std::uint8_t> sides(n, 1);
  for (std::uint32_t i = 0; i < (n + 1) / 2; ++i) sides[order[i]] = 0;
  return HyperBisection(h, std::move(sides));
}

Weight HyperBisection::gain(Cell c) const {
  const Hypergraph& h = *hypergraph_;
  const int from = sides_[c];
  const int to = from ^ 1;
  Weight g = 0;
  for (Net n : h.nets_of(c)) {
    if (phi_[n][from] == 1) g += h.net_weight(n);  // un-cuts the net
    if (phi_[n][to] == 0) g -= h.net_weight(n);    // newly cuts the net
  }
  return g;
}

void HyperBisection::move(Cell c) {
  const Hypergraph& h = *hypergraph_;
  const int from = sides_[c];
  const int to = from ^ 1;
  for (Net n : h.nets_of(c)) {
    const Weight w = h.net_weight(n);
    const bool was_cut = phi_[n][0] > 0 && phi_[n][1] > 0;
    --phi_[n][from];
    ++phi_[n][to];
    const bool now_cut = phi_[n][0] > 0 && phi_[n][1] > 0;
    if (was_cut && !now_cut) cut_ -= w;
    if (!was_cut && now_cut) cut_ += w;
  }
  sides_[c] = static_cast<std::uint8_t>(to);
  --counts_[from];
  ++counts_[to];
  weights_[from] -= h.cell_weight(c);
  weights_[to] += h.cell_weight(c);
}

Weight HyperBisection::recompute_cut() const {
  const Hypergraph& h = *hypergraph_;
  Weight cut = 0;
  for (Net n = 0; n < h.num_nets(); ++n) {
    bool side0 = false, side1 = false;
    for (Cell c : h.pins(n)) {
      (sides_[c] == 0 ? side0 : side1) = true;
    }
    if (side0 && side1) cut += h.net_weight(n);
  }
  return cut;
}

bool HyperBisection::validate() const {
  const Hypergraph& h = *hypergraph_;
  std::uint32_t counts[2] = {0, 0};
  Weight weights[2] = {0, 0};
  for (Cell c = 0; c < h.num_cells(); ++c) {
    if (sides_[c] > 1) return false;
    ++counts[sides_[c]];
    weights[sides_[c]] += h.cell_weight(c);
  }
  if (counts[0] != counts_[0] || counts[1] != counts_[1]) return false;
  if (weights[0] != weights_[0] || weights[1] != weights_[1]) return false;
  for (Net n = 0; n < h.num_nets(); ++n) {
    std::uint32_t phi[2] = {0, 0};
    for (Cell c : h.pins(n)) ++phi[sides_[c]];
    if (phi[0] != phi_[n][0] || phi[1] != phi_[n][1]) return false;
  }
  return recompute_cut() == cut_;
}

}  // namespace gbis
