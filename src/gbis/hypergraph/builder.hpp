// Mutable accumulator producing an immutable Hypergraph.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/hypergraph/hypergraph.hpp"

namespace gbis {

/// Accumulates nets over a fixed cell set, then builds the dual-CSR
/// hypergraph. Duplicate pins within one net are merged; nets that end
/// up with fewer than two distinct pins are dropped (they can never be
/// cut, so they carry no information for partitioning).
class HypergraphBuilder {
 public:
  explicit HypergraphBuilder(std::uint32_t num_cells);

  std::uint32_t num_cells() const {
    return static_cast<std::uint32_t>(cell_weights_.size());
  }

  /// Adds a net over the given cells. Throws std::invalid_argument on
  /// an out-of-range cell or non-positive weight. Returns true if the
  /// net was staged (>= 2 distinct pins after dedup), false if it was
  /// dropped as trivial.
  bool add_net(std::span<const Cell> cells, Weight weight = 1);

  /// Sets a cell's weight (must be positive).
  void set_cell_weight(Cell c, Weight weight);

  /// Builds the hypergraph; the builder resets to an empty state over
  /// the same cell count.
  Hypergraph build();

 private:
  std::vector<std::vector<Cell>> staged_pins_;
  std::vector<Weight> staged_weights_;
  std::vector<Weight> cell_weights_;
};

}  // namespace gbis
