// Fiduccia-Mattheyses bisection on hypergraphs — the 1982 algorithm in
// its native habitat. One pass: all cells free; repeatedly move the
// best-gain cell from a legal source side, lock it, and update the
// gains of pins on its *critical nets* in O(1) per pin (the classic
// Φ-table update rules); finally keep the best prefix of moves that
// restores the balance tolerance.
#pragma once

#include <cstdint>

#include "gbis/hypergraph/hyper_bisection.hpp"

namespace gbis {

/// Tuning knobs for the hypergraph FM driver.
struct HyperFmOptions {
  /// Maximum passes; 0 = run until a pass yields no improvement.
  std::uint32_t max_passes = 0;
  /// Maximum |count(0) - count(1)| at rest. 1 = strict bisection.
  std::uint32_t balance_tolerance = 1;
};

/// Per-run diagnostics.
struct HyperFmStats {
  std::uint32_t passes = 0;
  std::uint64_t moves_considered = 0;
  std::uint64_t moves_applied = 0;
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Runs FM passes in place until fixpoint (or max_passes). Never
/// increases the net cut; preserves balance within the tolerance (the
/// input must already satisfy it; throws std::invalid_argument
/// otherwise).
HyperFmStats hyper_fm_refine(HyperBisection& bisection,
                             const HyperFmOptions& options = {});

}  // namespace gbis
