// Two-way partition state for hypergraphs: net cut (weight of nets
// spanning both sides) maintained incrementally through per-net side
// pin counts — the Φ(n, side) table of the Fiduccia-Mattheyses paper.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gbis/hypergraph/hypergraph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// A two-way cell partition with incrementally maintained net cut.
/// Holds a reference to the hypergraph, which must outlive it.
class HyperBisection {
 public:
  /// Adopts an explicit side assignment. Throws std::invalid_argument
  /// on size mismatch or entries other than 0/1.
  HyperBisection(const Hypergraph& h, std::vector<std::uint8_t> sides);

  /// Uniformly random split with ceil(n/2) cells on side 0.
  static HyperBisection random(const Hypergraph& h, Rng& rng);

  const Hypergraph& hypergraph() const { return *hypergraph_; }

  std::uint8_t side(Cell c) const { return sides_[c]; }
  std::span<const std::uint8_t> sides() const { return sides_; }

  /// Weight of nets with pins on both sides.
  Weight cut() const { return cut_; }

  std::uint32_t side_count(int side) const { return counts_[side]; }
  Weight side_weight(int side) const { return weights_[side]; }
  std::uint32_t count_imbalance() const {
    return counts_[0] >= counts_[1] ? counts_[0] - counts_[1]
                                    : counts_[1] - counts_[0];
  }
  bool is_balanced() const { return count_imbalance() <= 1; }

  /// Pins of net n currently on side s (the FM Φ table).
  std::uint32_t pins_on_side(Net n, int s) const { return phi_[n][s]; }

  /// FM gain of moving c: cut reduction (weight of nets un-cut minus
  /// nets newly cut). O(nets_of(c)).
  Weight gain(Cell c) const;

  /// Moves c to the other side, updating Φ and the cut. O(nets_of(c)).
  void move(Cell c);

  /// Recomputes the cut from scratch (verification). O(pins).
  Weight recompute_cut() const;

  /// Full consistency check (Φ table, counts, weights, cut).
  bool validate() const;

 private:
  const Hypergraph* hypergraph_;
  std::vector<std::uint8_t> sides_;
  std::vector<std::array<std::uint32_t, 2>> phi_;  // per net
  Weight cut_ = 0;
  std::uint32_t counts_[2] = {0, 0};
  Weight weights_[2] = {0, 0};
};

}  // namespace gbis
