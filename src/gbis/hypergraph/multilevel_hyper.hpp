// Multilevel compaction for hypergraphs: contract_hyper applied
// recursively, FM at the coarsest level and at every projection — the
// netlist mirror of core/multilevel.hpp and, historically, the exact
// architecture of hMETIS.
#pragma once

#include <cstdint>

#include "gbis/hypergraph/contract_hyper.hpp"

namespace gbis {

/// Knobs for the multilevel netlist driver.
struct HyperMultilevelOptions {
  std::uint32_t max_levels = 16;
  std::uint32_t min_cells = 64;
  double min_shrink_factor = 0.9;
  HyperMatchPolicy match_policy = HyperMatchPolicy::kRandom;
  bool pair_leftovers = true;
  HyperFmOptions fm;
};

/// Per-run diagnostics.
struct HyperMultilevelStats {
  std::uint32_t levels = 0;
  std::uint32_t coarsest_cells = 0;
  Weight coarsest_cut = 0;
  Weight final_cut = 0;
};

/// Multilevel bisection of h: coarsen until small, FM the coarsest
/// netlist from a random start, then project upward with FM at every
/// level. Returns an exactly balanced HyperBisection of h.
HyperBisection multilevel_hyper_fm(const Hypergraph& h, Rng& rng,
                                   const HyperMultilevelOptions& options = {},
                                   HyperMultilevelStats* stats = nullptr);

}  // namespace gbis
