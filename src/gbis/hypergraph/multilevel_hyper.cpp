#include "gbis/hypergraph/multilevel_hyper.hpp"

#include <utility>
#include <vector>

namespace gbis {

HyperBisection multilevel_hyper_fm(const Hypergraph& h, Rng& rng,
                                   const HyperMultilevelOptions& options,
                                   HyperMultilevelStats* stats) {
  std::vector<HyperContraction> levels;
  const Hypergraph* current = &h;
  for (std::uint32_t level = 0; level < options.max_levels; ++level) {
    if (current->num_cells() <= options.min_cells) break;
    const HyperMatching m =
        hyper_matching(*current, rng, options.match_policy);
    HyperContraction c =
        contract_hyper(*current, m, rng, options.pair_leftovers);
    const double shrink = static_cast<double>(c.coarse.num_cells()) /
                          static_cast<double>(current->num_cells());
    if (shrink > options.min_shrink_factor) break;
    levels.push_back(std::move(c));
    current = &levels.back().coarse;
  }

  HyperBisection bisection = HyperBisection::random(*current, rng);
  hyper_fm_refine(bisection, options.fm);
  if (stats != nullptr) {
    stats->levels = static_cast<std::uint32_t>(levels.size());
    stats->coarsest_cells = current->num_cells();
    stats->coarsest_cut = bisection.cut();
  }

  for (std::size_t i = levels.size(); i-- > 0;) {
    const Hypergraph& finer = (i == 0) ? h : levels[i - 1].coarse;
    HyperBisection projected(finer, levels[i].project(bisection.sides()));
    hyper_rebalance(projected);
    hyper_fm_refine(projected, options.fm);
    bisection = std::move(projected);
  }
  if (stats != nullptr) stats->final_cut = bisection.cut();
  return bisection;
}

}  // namespace gbis
