// k-way partition state: part labels, per-part totals, and quality
// metrics (edge cut, balance factor).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// An immutable k-way vertex partition with cached totals.
class KwayPartition {
 public:
  /// Adopts labels in [0, k). Throws std::invalid_argument on size
  /// mismatch or an out-of-range label.
  KwayPartition(const Graph& g, std::uint32_t k,
                std::vector<std::uint32_t> parts);

  const Graph& graph() const { return *graph_; }
  std::uint32_t k() const { return k_; }
  std::uint32_t part(Vertex v) const { return parts_[v]; }
  std::span<const std::uint32_t> parts() const { return parts_; }

  /// Total weight of edges whose endpoints lie in different parts.
  Weight edge_cut() const { return edge_cut_; }

  std::uint32_t part_count(std::uint32_t p) const { return counts_[p]; }
  Weight part_weight(std::uint32_t p) const { return weights_[p]; }

  /// max part vertex-count divided by the ideal |V|/k; 1.0 = perfect.
  double balance_factor() const;

  /// Largest count difference between any two parts.
  std::uint32_t max_count_spread() const;

  /// Full consistency check (totals, cut). For tests.
  bool validate() const;

 private:
  const Graph* graph_;
  std::uint32_t k_;
  std::vector<std::uint32_t> parts_;
  std::vector<std::uint32_t> counts_;
  std::vector<Weight> weights_;
  Weight edge_cut_ = 0;
};

}  // namespace gbis
