#include "gbis/kway/recursive.hpp"

#include <stdexcept>
#include <vector>

#include "gbis/graph/ops.hpp"
#include "gbis/kl/kl.hpp"

namespace gbis {

namespace {

/// Splits `cells` (a vertex subset of g destined for k parts) and
/// assigns final part labels [first_part, first_part + k) recursively.
void split_region(const Graph& g, std::vector<Vertex> cells, std::uint32_t k,
                  std::uint32_t first_part, Rng& rng,
                  const KwayOptions& options,
                  std::vector<std::uint32_t>& labels, KwayStats* stats) {
  if (k == 1) {
    for (Vertex v : cells) labels[v] = first_part;
    return;
  }
  const std::uint32_t k_left = (k + 1) / 2;
  const std::uint32_t k_right = k - k_left;
  // Proportional target for the left group (rounded to the nearest).
  const auto total = static_cast<std::uint64_t>(cells.size());
  const auto target_left = static_cast<std::uint32_t>(
      (total * k_left + k / 2) / k);

  const Graph region = induced_subgraph(g, cells);
  Bisection split = [&] {
    if (options.use_compaction && 2 * target_left == total &&
        region.num_vertices() >= 8) {
      // Even split: the full compacted pipeline applies.
      return compacted_bisect(region, rng, kl_refiner(options.kl),
                              options.compaction);
    }
    // Proportional (or tiny) split: random start at the target ratio,
    // then KL (ratio-preserving).
    Bisection b = Bisection::random_split(region, target_left, rng);
    kl_refine(b, options.kl);
    return b;
  }();
  if (stats != nullptr) ++stats->bisections;

  std::vector<Vertex> half[2];
  half[0].reserve(target_left);
  half[1].reserve(cells.size() - target_left);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    half[split.side(static_cast<Vertex>(i))].push_back(cells[i]);
  }
  split_region(g, std::move(half[0]), k_left, first_part, rng, options,
               labels, stats);
  split_region(g, std::move(half[1]), k_right, first_part + k_left, rng,
               options, labels, stats);
}

}  // namespace

KwayPartition recursive_kway(const Graph& g, std::uint32_t k, Rng& rng,
                             const KwayOptions& options, KwayStats* stats) {
  if (k == 0) throw std::invalid_argument("recursive_kway: k >= 1");
  if (g.num_vertices() > 0 && k > g.num_vertices()) {
    throw std::invalid_argument("recursive_kway: k > |V|");
  }
  std::vector<std::uint32_t> labels(g.num_vertices(), 0);
  std::vector<Vertex> all(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) all[v] = v;
  if (g.num_vertices() > 0) {
    split_region(g, std::move(all), k, 0, rng, options, labels, stats);
  }
  KwayPartition partition(g, k, std::move(labels));
  if (stats != nullptr) stats->edge_cut = partition.edge_cut();
  return partition;
}

}  // namespace gbis
