// k-way partitioning by recursive bisection — the paper's VLSI
// motivation industrialized: placement and floorplanning consume k-way
// partitions, and before direct k-way heuristics existed they were
// produced exactly this way (Kernighan-Lin 1970 already suggests it).
//
// Non-power-of-two k is handled by proportional splits: a region
// destined for k parts splits into ceil(k/2) : floor(k/2) with vertex
// counts in the same ratio. KL refinement preserves any split ratio
// (pair swaps), so the same refiner drives every level.
#pragma once

#include <cstdint>

#include "gbis/core/compaction.hpp"
#include "gbis/kway/partition.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the recursive k-way driver.
struct KwayOptions {
  /// Apply compaction (the paper's heuristic) at each bisection; plain
  /// refinement from a random split otherwise.
  bool use_compaction = true;
  KlOptions kl;
  CompactionOptions compaction;
};

/// Diagnostics of one k-way run.
struct KwayStats {
  std::uint32_t bisections = 0;  ///< internal splits performed (k - 1)
  Weight edge_cut = 0;
};

/// Partitions g into k parts of near-equal vertex counts (every part
/// within 1 of floor(|V|/k) or its proportional share) by recursive
/// (compacted) KL bisection. Throws std::invalid_argument for k == 0
/// or k > |V| (when |V| > 0).
KwayPartition recursive_kway(const Graph& g, std::uint32_t k, Rng& rng,
                             const KwayOptions& options = {},
                             KwayStats* stats = nullptr);

}  // namespace gbis
