#include "gbis/kway/partition.hpp"

#include <algorithm>
#include <stdexcept>

namespace gbis {

KwayPartition::KwayPartition(const Graph& g, std::uint32_t k,
                             std::vector<std::uint32_t> parts)
    : graph_(&g), k_(k), parts_(std::move(parts)) {
  if (k_ == 0) throw std::invalid_argument("KwayPartition: k >= 1");
  if (parts_.size() != g.num_vertices()) {
    throw std::invalid_argument("KwayPartition: parts size != |V|");
  }
  counts_.assign(k_, 0);
  weights_.assign(k_, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (parts_[v] >= k_) {
      throw std::invalid_argument("KwayPartition: label out of range");
    }
    ++counts_[parts_[v]];
    weights_[parts_[v]] += g.vertex_weight(v);
  }
  edge_cut_ = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i] && parts_[v] != parts_[nbrs[i]]) {
        edge_cut_ += wts[i];
      }
    }
  }
}

double KwayPartition::balance_factor() const {
  const std::uint32_t n = graph_->num_vertices();
  if (n == 0) return 1.0;
  const double ideal = static_cast<double>(n) / k_;
  const std::uint32_t max_count =
      *std::max_element(counts_.begin(), counts_.end());
  return static_cast<double>(max_count) / ideal;
}

std::uint32_t KwayPartition::max_count_spread() const {
  const auto [lo, hi] = std::minmax_element(counts_.begin(), counts_.end());
  return *hi - *lo;
}

bool KwayPartition::validate() const {
  std::vector<std::uint32_t> counts(k_, 0);
  std::vector<Weight> weights(k_, 0);
  for (Vertex v = 0; v < graph_->num_vertices(); ++v) {
    if (parts_[v] >= k_) return false;
    ++counts[parts_[v]];
    weights[parts_[v]] += graph_->vertex_weight(v);
  }
  if (counts != counts_ || weights != weights_) return false;
  Weight cut = 0;
  for (const Edge& e : graph_->edges()) {
    if (parts_[e.u] != parts_[e.v]) cut += e.weight;
  }
  return cut == edge_cut_;
}

}  // namespace gbis
