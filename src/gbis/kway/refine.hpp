// Direct k-way refinement: greedy vertex moves between parts on an
// existing k-way partition. Recursive bisection decides each split
// blind to later ones; this pass (the simplest member of the
// Kernighan-Lin-style k-way family) repairs cross-split mistakes by
// moving vertices to their most-connected part under a size
// constraint. bench/kway_scaling shows the gain on top of recursive
// splits.
#pragma once

#include <cstdint>

#include "gbis/kway/partition.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the k-way refiner.
struct KwayRefineOptions {
  /// Maximum passes over the vertices; 0 = until no pass improves.
  std::uint32_t max_passes = 0;
  /// Parts must keep counts within [floor(n/k) - tolerance,
  /// ceil(n/k) + tolerance]. The default 1 is the minimum that lets
  /// single-vertex moves exist at all when n divides k evenly (a move
  /// from an exactly-ideal part necessarily dips one below the ideal).
  std::uint32_t size_tolerance = 1;
};

/// Per-run diagnostics.
struct KwayRefineStats {
  std::uint32_t passes = 0;
  std::uint64_t moves = 0;
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Greedily refines `input` (visiting vertices in random order each
/// pass, moving each to its best-connected legal part) and returns the
/// improved partition. Never increases the cut.
KwayPartition kway_refine(const KwayPartition& input, Rng& rng,
                          const KwayRefineOptions& options = {},
                          KwayRefineStats* stats = nullptr);

}  // namespace gbis
