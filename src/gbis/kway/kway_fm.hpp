// k-way Fiduccia-Mattheyses: the full FM machinery (gain buckets,
// locking, best-prefix rollback) generalized to k parts. Each free
// vertex is bucketed by the gain of its *best* legal target part;
// moves can go uphill mid-pass and the best prefix is kept — unlike
// the greedy refiner (refine.hpp), which only ever accepts improving
// moves and stops in the nearest local optimum.
#pragma once

#include <cstdint>

#include "gbis/kway/partition.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the k-way FM driver.
struct KwayFmOptions {
  /// Maximum passes; 0 = run until a pass yields no improvement.
  std::uint32_t max_passes = 0;
  /// Parts must keep counts within [floor(n/k) - tolerance,
  /// ceil(n/k) + tolerance] at prefix-acceptance points; one extra
  /// transient unit is allowed mid-pass (the FM slack).
  std::uint32_t size_tolerance = 1;
  /// Cap on vertices moved per pass as a fraction of |V| (FM passes on
  /// k-way partitions rarely profit beyond a fraction; 1.0 = all).
  double max_moves_fraction = 1.0;
};

/// Per-run diagnostics.
struct KwayFmStats {
  std::uint32_t passes = 0;
  std::uint64_t moves_considered = 0;
  std::uint64_t moves_applied = 0;
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Refines `input` with k-way FM passes and returns the improved
/// partition. Never increases the cut; keeps part sizes within the
/// tolerance window.
KwayPartition kway_fm_refine(const KwayPartition& input, Rng& rng,
                             const KwayFmOptions& options = {},
                             KwayFmStats* stats = nullptr);

}  // namespace gbis
