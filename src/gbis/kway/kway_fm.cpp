#include "gbis/kway/kway_fm.hpp"

#include <algorithm>
#include <vector>

#include "gbis/partition/buckets.hpp"

namespace gbis {

namespace {

/// Pass-local state: labels, part counts, per-vertex best target, and
/// a gain-bucket queue over free vertices.
struct PassState {
  const Graph* g;
  std::uint32_t k;
  std::vector<std::uint32_t> labels;
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> target;  // chosen destination per vertex
  std::vector<Weight> gain;           // gain to that destination
  std::vector<std::uint8_t> locked;
  GainBuckets* queue;
  std::uint32_t lo = 0, hi = 0;  // legal count window (transient)

  // Scratch for connectivity computation.
  std::vector<Weight> conn;
  std::vector<std::uint32_t> stamp;
  std::uint32_t now = 0;

  /// Computes v's best legal move (gain, target); returns false if v
  /// has no legal target (source at lower bound or all parts full).
  bool best_move(Vertex v, Weight& best_gain, std::uint32_t& best_target) {
    const std::uint32_t from = labels[v];
    if (counts[from] <= lo) return false;
    ++now;
    const auto nbrs = g->neighbors(v);
    const auto wts = g->edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t p = labels[nbrs[i]];
      if (stamp[p] != now) {
        stamp[p] = now;
        conn[p] = 0;
      }
      conn[p] += wts[i];
    }
    const Weight conn_from = stamp[from] == now ? conn[from] : 0;
    bool found = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const std::uint32_t q = labels[nbrs[i]];
      if (q == from || counts[q] >= hi) continue;
      const Weight candidate = conn[q] - conn_from;
      if (!found || candidate > best_gain) {
        found = true;
        best_gain = candidate;
        best_target = q;
      }
    }
    // Isolated-from-boundary vertices can still move to any non-full
    // part at gain -conn_from; only useful for balance, so allow it
    // when the vertex has no internal ties either (conn_from == 0 and
    // no neighbor target found keeps them out of the queue).
    return found;
  }

  /// (Re)positions v in the queue according to its best move.
  void requeue(Vertex v) {
    if (locked[v]) return;
    Weight g_best = 0;
    std::uint32_t t_best = 0;
    if (best_move(v, g_best, t_best)) {
      gain[v] = g_best;
      target[v] = t_best;
      if (queue->contains(v)) {
        queue->update(v, g_best);
      } else {
        queue->insert(v, g_best);
      }
    } else if (queue->contains(v)) {
      queue->remove(v);
    }
  }
};

}  // namespace

KwayPartition kway_fm_refine(const KwayPartition& input, Rng& rng,
                             const KwayFmOptions& options,
                             KwayFmStats* stats) {
  const Graph& g = input.graph();
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t k = input.k();
  if (stats != nullptr) stats->initial_cut = input.edge_cut();

  std::vector<std::uint32_t> labels(input.parts().begin(),
                                    input.parts().end());
  if (n == 0 || k < 2) {
    KwayPartition result(g, k, std::move(labels));
    if (stats != nullptr) stats->final_cut = result.edge_cut();
    return result;
  }

  Weight max_gain = 1;
  for (Vertex v = 0; v < n; ++v) {
    max_gain = std::max(max_gain, g.weighted_degree(v));
  }
  const std::uint32_t slack = options.size_tolerance;
  const std::uint32_t lo_accept = n / k > slack ? n / k - slack : 0;
  const std::uint32_t hi_accept = (n + k - 1) / k + slack;
  const auto move_cap = static_cast<std::uint64_t>(
      std::max(1.0, options.max_moves_fraction * n));

  std::uint32_t passes = 0;

  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;

  for (;;) {
    ++passes;
    GainBuckets queue(n, max_gain);
    PassState state;
    state.g = &g;
    state.k = k;
    state.labels = labels;
    state.counts.assign(k, 0);
    for (std::uint32_t p : labels) ++state.counts[p];
    state.target.assign(n, 0);
    state.gain.assign(n, 0);
    state.locked.assign(n, 0);
    state.queue = &queue;
    // One transient unit beyond the acceptance window (FM slack).
    state.lo = lo_accept > 0 ? lo_accept - 1 : 0;
    state.hi = hi_accept + 1;
    state.conn.assign(k, 0);
    state.stamp.assign(k, 0);

    rng.shuffle(order);
    for (Vertex v : order) state.requeue(v);

    struct MoveRecord {
      Vertex v;
      std::uint32_t from;
      std::uint32_t to;
    };
    std::vector<MoveRecord> sequence;
    Weight cumulative = 0, best_prefix_gain = 0;
    std::size_t best_prefix_len = 0;

    while (sequence.size() < move_cap) {
      const Weight top = queue.max_gain_present();
      if (top == GainBuckets::kEmpty) break;
      const auto v = static_cast<Vertex>(queue.bucket_head(top));
      queue.remove(v);
      // Re-validate: counts may have drifted since v was queued.
      Weight g_best = 0;
      std::uint32_t t_best = 0;
      if (!state.best_move(v, g_best, t_best)) continue;
      if (g_best != state.gain[v] || t_best != state.target[v]) {
        state.gain[v] = g_best;
        state.target[v] = t_best;
        queue.insert(v, g_best);
        continue;
      }

      // Execute and lock.
      const std::uint32_t from = state.labels[v];
      state.labels[v] = t_best;
      --state.counts[from];
      ++state.counts[t_best];
      state.locked[v] = 1;
      sequence.push_back({v, from, t_best});
      cumulative += g_best;

      bool within_window = true;
      for (std::uint32_t p = 0; p < k && within_window; ++p) {
        within_window =
            state.counts[p] >= lo_accept && state.counts[p] <= hi_accept;
      }
      if (cumulative > best_prefix_gain && within_window) {
        best_prefix_gain = cumulative;
        best_prefix_len = sequence.size();
      }
      for (Vertex x : g.neighbors(v)) state.requeue(x);
    }

    if (stats != nullptr) {
      stats->moves_considered += sequence.size();
      stats->moves_applied += best_prefix_len;
    }
    for (std::size_t i = 0; i < best_prefix_len; ++i) {
      labels[sequence[i].v] = sequence[i].to;
    }

    if (best_prefix_gain <= 0) break;
    if (options.max_passes != 0 && passes >= options.max_passes) break;
  }

  KwayPartition result(g, k, std::move(labels));
  if (stats != nullptr) {
    stats->passes = passes;
    stats->final_cut = result.edge_cut();
  }
  return result;
}

}  // namespace gbis
