#include "gbis/kway/refine.hpp"

#include <algorithm>
#include <vector>

namespace gbis {

KwayPartition kway_refine(const KwayPartition& input, Rng& rng,
                          const KwayRefineOptions& options,
                          KwayRefineStats* stats) {
  const Graph& g = input.graph();
  const std::uint32_t n = g.num_vertices();
  const std::uint32_t k = input.k();
  if (stats != nullptr) stats->initial_cut = input.edge_cut();

  std::vector<std::uint32_t> labels(input.parts().begin(),
                                    input.parts().end());
  std::vector<std::uint32_t> counts(k, 0);
  for (std::uint32_t p : labels) ++counts[p];

  const std::uint32_t slack = options.size_tolerance;
  const std::uint32_t lo_base = n / k;
  const std::uint32_t lo = lo_base > slack ? lo_base - slack : 0;
  const std::uint32_t hi = (n + k - 1) / k + slack;

  // conn[p] = edge weight from the current vertex into part p, built
  // with a timestamp so clearing is O(deg) not O(k).
  std::vector<Weight> conn(k, 0);
  std::vector<std::uint32_t> stamp(k, 0);
  std::uint32_t now = 0;

  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;

  std::uint32_t passes = 0;
  for (;;) {
    ++passes;
    rng.shuffle(order);
    std::uint64_t moves_this_pass = 0;
    for (Vertex v : order) {
      const std::uint32_t from = labels[v];
      if (counts[from] <= lo) continue;  // would underfill `from`
      ++now;
      const auto nbrs = g.neighbors(v);
      const auto wts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::uint32_t p = labels[nbrs[i]];
        if (stamp[p] != now) {
          stamp[p] = now;
          conn[p] = 0;
        }
        conn[p] += wts[i];
      }
      const Weight conn_from = stamp[from] == now ? conn[from] : 0;
      std::uint32_t best_part = from;
      Weight best_gain = 0;
      // Only parts the vertex actually touches can improve the cut.
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::uint32_t q = labels[nbrs[i]];
        if (q == from || counts[q] >= hi) continue;
        const Weight gain = conn[q] - conn_from;
        if (gain > best_gain) {
          best_gain = gain;
          best_part = q;
        }
      }
      if (best_part != from) {
        labels[v] = best_part;
        --counts[from];
        ++counts[best_part];
        ++moves_this_pass;
      }
    }
    if (stats != nullptr) stats->moves += moves_this_pass;
    if (moves_this_pass == 0) break;
    if (options.max_passes != 0 && passes >= options.max_passes) break;
  }

  KwayPartition result(g, k, std::move(labels));
  if (stats != nullptr) {
    stats->passes = passes;
    stats->final_cut = result.edge_cut();
  }
  return result;
}

}  // namespace gbis
