// Fiduccia-Mattheyses refinement (FM; Fiduccia & Mattheyses, DAC 1982)
// specialized to bisection.
//
// Not part of the 1989 paper's comparison, but the canonical
// linear-time descendant of KL: single-vertex moves with gain buckets
// instead of pair swaps. Included as an ablation comparator (is the
// compaction effect specific to KL-style swaps?) and because
// compaction + FM is exactly the shape later multilevel partitioners
// (METIS, KaHIP) industrialized.
//
// One pass: all vertices unlocked; repeatedly move the best-gain
// unlocked vertex from the heavier side (ties: the side whose top gain
// is larger), lock it, update neighbor gains; finally keep the prefix
// of moves with the best cumulative cut, subject to the balance
// tolerance.
#pragma once

#include <cstdint>

#include "gbis/partition/bisection.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

class MetricsSink;

/// What quantity the balance tolerance constrains.
enum class FmBalance {
  kCount,   ///< vertex counts (the bisection-problem default)
  kWeight,  ///< vertex weights — for contracted graphs with non-uniform
            ///< supernodes (pair_leftovers = false) or weighted inputs
};

/// Tuning knobs for the FM driver.
struct FmOptions {
  /// Maximum passes; 0 = run to fixpoint.
  std::uint32_t max_passes = 0;
  /// Maximum allowed side difference (in vertices or weight units,
  /// per `balance`) during and after a pass. With kCount, 1 is a
  /// strict bisection (also legal for odd |V|). With kWeight the
  /// transient slack is the heaviest vertex instead of one unit.
  std::uint64_t balance_tolerance = 1;
  FmBalance balance = FmBalance::kCount;
  /// Cooperative wall-clock budget: the pass loop and each pass's step
  /// loop poll it and throw DeadlineExceeded on expiry (the trial
  /// runner maps that to a `timed_out` trial). Default: unlimited.
  Deadline deadline;
  /// Observability sink (obs/metrics.hpp): per-pass move/bucket-op
  /// counters, the pass-improvement histogram, and one convergence
  /// point per pass. nullptr (the default) records nothing; the pass
  /// accumulates into locals and flushes once at the end.
  MetricsSink* metrics = nullptr;
};

/// Per-run diagnostics.
struct FmStats {
  std::uint32_t passes = 0;
  std::uint64_t moves_considered = 0;  ///< vertices locked across passes
  std::uint64_t moves_applied = 0;     ///< prefix moves actually kept
  Weight initial_cut = 0;
  Weight final_cut = 0;
};

/// Runs FM passes on `bisection` in place until fixpoint (or
/// options.max_passes). Never increases the cut; preserves balance
/// within the tolerance (the input must already satisfy it). Returns
/// diagnostics.
FmStats fm_refine(Bisection& bisection, const FmOptions& options = {});

}  // namespace gbis
