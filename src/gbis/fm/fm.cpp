#include "gbis/fm/fm.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "gbis/obs/metrics.hpp"
#include "gbis/partition/buckets.hpp"
#include "gbis/partition/gains.hpp"

namespace gbis {

namespace {

/// One FM pass. Returns the cut improvement (>= 0).
Weight fm_pass(Bisection& bisection, const FmOptions& options,
               FmStats* stats) {
  const Graph& g = bisection.graph();
  const std::uint32_t n = g.num_vertices();
  if (n < 2) return 0;

  Weight max_gain = 1;
  for (Vertex v = 0; v < n; ++v) {
    max_gain = std::max(max_gain, g.weighted_degree(v));
  }

  GainBuckets buckets[2] = {GainBuckets(n, max_gain),
                            GainBuckets(n, max_gain)};
  std::vector<Weight> gains = all_gains(bisection);
  std::vector<std::uint8_t> sides(bisection.sides().begin(),
                                  bisection.sides().end());
  const bool by_weight = options.balance == FmBalance::kWeight;
  // "size" of a side: vertex count or vertex weight per the policy.
  std::int64_t size[2];
  if (by_weight) {
    size[0] = bisection.side_weight(0);
    size[1] = bisection.side_weight(1);
  } else {
    size[0] = bisection.side_count(0);
    size[1] = bisection.side_count(1);
  }
  Weight max_vertex_weight = 1;
  std::uint64_t bucket_ops = 0;  // inserts + removes + gain updates
  for (Vertex v = 0; v < n; ++v) {
    max_vertex_weight = std::max(max_vertex_weight, g.vertex_weight(v));
    buckets[sides[v]].insert(v, gains[v]);
  }
  bucket_ops += n;
  auto size_of = [&](Vertex v) -> std::int64_t {
    return by_weight ? g.vertex_weight(v) : 1;
  };

  std::vector<Vertex> sequence;
  sequence.reserve(n);
  Weight cumulative = 0, best_prefix_gain = 0;
  std::size_t best_prefix_len = 0;

  // A single move changes the size difference by twice the moved
  // amount, so a strict tolerance would forbid every move from a
  // perfectly balanced state. Standard FM remedy: allow one move's
  // worth of slack transiently (one unit / the heaviest vertex), but
  // accept a prefix only where the configured tolerance holds again.
  const std::int64_t transient_tolerance =
      static_cast<std::int64_t>(options.balance_tolerance) +
      (by_weight ? max_vertex_weight : 1);

  std::uint64_t polls = 0;
  for (std::uint32_t step = 0; step < n; ++step) {
    // Cooperative deadline poll; throwing here is safe — moves apply
    // only after the loop.
    if ((step & 255u) == 0) {
      options.deadline.check();
      ++polls;
    }
    // Pick the source side: any side we can legally move from,
    // preferring the larger side, then the better top gain.
    const Weight top[2] = {buckets[0].max_gain_present(),
                           buckets[1].max_gain_present()};
    int from = -1;
    for (int s = 0; s < 2; ++s) {
      if (top[s] == GainBuckets::kEmpty) continue;
      // Cheapest legality screen: moving the head vertex of the top
      // bucket must keep the transient window.
      const auto head = static_cast<Vertex>(buckets[s].bucket_head(top[s]));
      const std::int64_t amount = size_of(head);
      const std::int64_t diff = (size[1 - s] + amount) - (size[s] - amount);
      if ((diff < 0 ? -diff : diff) > transient_tolerance) continue;
      if (from == -1 || size[s] > size[from] ||
          (size[s] == size[from] && top[s] > top[from])) {
        from = s;
      }
    }
    if (from == -1) break;

    const auto v = static_cast<Vertex>(buckets[from].bucket_head(top[from]));
    buckets[from].remove(v);
    ++bucket_ops;
    sequence.push_back(v);
    cumulative += gains[v];
    const std::int64_t amount = size_of(v);
    size[from] -= amount;
    size[from ^ 1] += amount;
    const std::int64_t imbalance_after =
        size[0] >= size[1] ? size[0] - size[1] : size[1] - size[0];
    if (cumulative > best_prefix_gain &&
        imbalance_after <=
            static_cast<std::int64_t>(options.balance_tolerance)) {
      best_prefix_gain = cumulative;
      best_prefix_len = sequence.size();
    }

    update_gains_after_move(g, sides, v, gains);
    sides[v] ^= 1;
    for (Vertex x : g.neighbors(v)) {
      if (buckets[sides[x]].contains(x)) {
        buckets[sides[x]].update(x, gains[x]);
        ++bucket_ops;
      }
    }
  }

  if (stats != nullptr) {
    stats->moves_considered += sequence.size();
    stats->moves_applied += best_prefix_len;
  }
  if (MetricsSink* sink = options.metrics; sink != nullptr) {
    // One flush per pass: the step loop above only touches locals.
    sink->add(Counter::kFmMovesConsidered, sequence.size());
    sink->add(Counter::kFmMovesApplied, best_prefix_len);
    sink->add(Counter::kFmBucketOps, bucket_ops);
    sink->add(Counter::kDeadlinePolls, polls);
  }
  for (std::size_t i = 0; i < best_prefix_len; ++i) {
    bisection.move(sequence[i]);
  }
  return best_prefix_gain;
}

}  // namespace

FmStats fm_refine(Bisection& bisection, const FmOptions& options) {
  const std::uint64_t imbalance =
      options.balance == FmBalance::kWeight
          ? static_cast<std::uint64_t>(bisection.weight_imbalance())
          : bisection.count_imbalance();
  if (imbalance > options.balance_tolerance) {
    throw std::invalid_argument(
        "fm_refine: input violates the balance tolerance");
  }
  FmStats stats;
  stats.initial_cut = bisection.cut();
  for (;;) {
    options.deadline.check();
    const Weight improvement = fm_pass(bisection, options, &stats);
    ++stats.passes;
    if (MetricsSink* sink = options.metrics; sink != nullptr) {
      sink->add(Counter::kFmPasses);
      sink->add(Counter::kDeadlinePolls);  // the per-pass check above
      sink->observe(Hist::kFmPassImprovement,
                    static_cast<std::uint64_t>(improvement));
      sink->trace_point(TraceSource::kFm, bisection.cut());
    }
    if (improvement <= 0) break;
    if (options.max_passes != 0 && stats.passes >= options.max_passes) break;
  }
  stats.final_cut = bisection.cut();
  return stats;
}

}  // namespace gbis
