#include "gbis/core/matching.hpp"

#include <algorithm>

namespace gbis {

Matching maximal_matching(const Graph& g, Rng& rng, MatchPolicy policy) {
  const std::uint32_t n = g.num_vertices();
  std::vector<std::uint8_t> matched(n, 0);
  Matching result;
  result.reserve(n / 2);

  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  if (policy != MatchPolicy::kFirstFit) rng.shuffle(order);

  std::vector<Vertex> free_neighbors;
  for (Vertex v : order) {
    if (matched[v]) continue;
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    Vertex mate = v;  // sentinel: no free neighbor found
    switch (policy) {
      case MatchPolicy::kRandom: {
        free_neighbors.clear();
        for (Vertex w : nbrs) {
          if (!matched[w]) free_neighbors.push_back(w);
        }
        if (!free_neighbors.empty()) {
          mate = free_neighbors[static_cast<std::size_t>(
              rng.below(free_neighbors.size()))];
        }
        break;
      }
      case MatchPolicy::kHeavyEdge: {
        Weight best = -1;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (!matched[nbrs[i]] && wts[i] > best) {
            best = wts[i];
            mate = nbrs[i];
          }
        }
        break;
      }
      case MatchPolicy::kFirstFit: {
        for (Vertex w : nbrs) {
          if (!matched[w]) {
            mate = w;
            break;
          }
        }
        break;
      }
    }
    if (mate != v) {
      matched[v] = matched[mate] = 1;
      result.emplace_back(v, mate);
    }
  }
  return result;
}

bool is_matching(const Graph& g, const Matching& m) {
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  for (const auto& [u, v] : m) {
    if (u >= g.num_vertices() || v >= g.num_vertices()) return false;
    if (u == v || !g.has_edge(u, v)) return false;
    if (seen[u] || seen[v]) return false;
    seen[u] = seen[v] = 1;
  }
  return true;
}

bool is_maximal_matching(const Graph& g, const Matching& m) {
  if (!is_matching(g, m)) return false;
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  for (const auto& [u, v] : m) seen[u] = seen[v] = 1;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (seen[v]) continue;
    for (Vertex w : g.neighbors(v)) {
      if (!seen[w]) return false;  // both free: not maximal
    }
  }
  return true;
}

}  // namespace gbis
