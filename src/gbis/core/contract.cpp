#include "gbis/core/contract.hpp"

#include <stdexcept>

#include "gbis/graph/builder.hpp"

namespace gbis {

namespace {
constexpr Vertex kNoCoarse = 0xFFFFFFFFu;
}  // namespace

std::vector<std::uint8_t> Contraction::project(
    std::span<const std::uint8_t> coarse_sides) const {
  if (coarse_sides.size() != coarse.num_vertices()) {
    throw std::invalid_argument("Contraction::project: size mismatch");
  }
  std::vector<std::uint8_t> fine(map.size());
  for (std::size_t v = 0; v < map.size(); ++v) {
    fine[v] = coarse_sides[map[v]];
  }
  return fine;
}

Contraction contract_matching(const Graph& g, const Matching& m, Rng& rng,
                              bool pair_leftovers) {
  if (!is_matching(g, m)) {
    throw std::invalid_argument("contract_matching: not a matching of g");
  }
  const std::uint32_t n = g.num_vertices();

  Contraction result;
  result.map.assign(n, kNoCoarse);

  std::uint32_t next_id = 0;
  for (const auto& [u, v] : m) {
    result.map[u] = result.map[v] = next_id++;
  }
  if (pair_leftovers) {
    std::vector<Vertex> leftovers;
    for (Vertex v = 0; v < n; ++v) {
      if (result.map[v] == kNoCoarse) leftovers.push_back(v);
    }
    rng.shuffle(leftovers);
    std::size_t i = 0;
    for (; i + 1 < leftovers.size(); i += 2) {
      result.map[leftovers[i]] = result.map[leftovers[i + 1]] = next_id++;
    }
    if (i < leftovers.size()) result.map[leftovers[i]] = next_id++;
  } else {
    for (Vertex v = 0; v < n; ++v) {
      if (result.map[v] == kNoCoarse) result.map[v] = next_id++;
    }
  }

  GraphBuilder builder(next_id, GraphBuilder::SelfLoops::kDrop);
  std::vector<Weight> coarse_vw(next_id, 0);
  for (Vertex v = 0; v < n; ++v) {
    coarse_vw[result.map[v]] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto wts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i]) {
        // Same supernode => dropped self-loop; otherwise the builder
        // merges parallels by summing, which is the contraction rule.
        builder.add_edge(result.map[v], result.map[nbrs[i]], wts[i]);
      }
    }
  }
  for (Vertex c = 0; c < next_id; ++c) {
    builder.set_vertex_weight(c, coarse_vw[c]);
  }
  result.coarse = builder.build();
  return result;
}

}  // namespace gbis
