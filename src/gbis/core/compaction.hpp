// The compaction heuristic (paper section V) — the paper's primary
// contribution, first proposed in Bui-Chaudhuri-Leighton-Sipser 1987:
//
//   1. form a maximal random matching M of G;
//   2. contract M into a smaller, denser graph G';
//   3. run the bisection heuristic on G';
//   4. uncompact: project the bisection of G' back to G;
//   5. use it as the starting configuration for the same heuristic on G.
//
// Contracting roughly doubles the average degree, and both KL and SA
// behave far better on graphs of average degree > 3 (Observation 1), so
// the heuristic gets a high-quality starting bisection almost for free.
// Instantiated with KL this is "CKL", with SA "CSA".
#pragma once

#include <cstdint>
#include <functional>

#include "gbis/core/contract.hpp"
#include "gbis/core/matching.hpp"
#include "gbis/fm/fm.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace gbis {

class MetricsSink;

/// A bisection heuristic usable at both levels of the compaction
/// scheme: refines `bisection` in place, drawing randomness from `rng`.
using Refiner = std::function<void(Bisection& bisection, Rng& rng)>;

/// Knobs for the compaction wrapper.
struct CompactionOptions {
  MatchPolicy match_policy = MatchPolicy::kRandom;
  /// Coalesce unmatched leftovers in random pairs (keeps supernode
  /// weights uniform; see contract.hpp).
  bool pair_leftovers = true;
  /// csa() only: initial-acceptance target for the fine-level anneal.
  /// The projected start is already good; re-heating it to the
  /// cold-start target (~0.4) would re-randomize it, so the fine level
  /// restarts cool. Measured: same cuts at roughly half the time of a
  /// full re-heat on Gbreg(5000, b, 3).
  double csa_fine_acceptance = 0.05;
  /// Observability sink (obs/metrics.hpp): wall-clock phase spans for
  /// the Chrome-trace export — compact (steps 1-2), bisect (step 3),
  /// uncoalesce (step 4), refine (step 5). nullptr records nothing.
  /// Counters inside the refiners ride on the refiner options' own
  /// sink, not this one.
  MetricsSink* metrics = nullptr;
};

/// Diagnostics of one compacted run.
struct CompactionStats {
  std::uint32_t coarse_vertices = 0;
  std::uint64_t coarse_edges = 0;
  double coarse_average_degree = 0.0;
  Weight coarse_cut = 0;     ///< cut found on G'
  Weight projected_cut = 0;  ///< the same cut measured on G (equal by construction)
  Weight final_cut = 0;      ///< after refining on G
};

/// Runs the five-step compacted heuristic and returns the resulting
/// bisection of g. The same `refiner` is used on G' (from a random
/// start) and on G (from the projected start).
Bisection compacted_bisect(const Graph& g, Rng& rng, const Refiner& refiner,
                           const CompactionOptions& options = {},
                           CompactionStats* stats = nullptr);

/// As above with distinct refiners for the coarse solve (step 3) and
/// the fine refinement (step 5) — used when the fine level should be
/// configured for a warm start (csa()) or ablated separately.
Bisection compacted_bisect(const Graph& g, Rng& rng,
                           const Refiner& coarse_refiner,
                           const Refiner& fine_refiner,
                           const CompactionOptions& options = {},
                           CompactionStats* stats = nullptr);

/// Convenience refiners for the four methods the paper compares.
Refiner kl_refiner(KlOptions options = {});
Refiner sa_refiner(SaOptions options = {});
Refiner fm_refiner(FmOptions options = {});

/// Compacted Kernighan-Lin (the paper's CKL).
Bisection ckl(const Graph& g, Rng& rng, const KlOptions& kl_options = {},
              const CompactionOptions& c_options = {},
              CompactionStats* stats = nullptr);

/// Compacted simulated annealing (the paper's CSA).
Bisection csa(const Graph& g, Rng& rng, const SaOptions& sa_options = {},
              const CompactionOptions& c_options = {},
              CompactionStats* stats = nullptr);

}  // namespace gbis
