// Edge contraction — step 2 of the compaction heuristic (paper section
// V): "coalesce the two endpoints of an edge in the random matching M
// to form a new vertex. All vertices incident to the two original
// vertices are now incident to the new vertex."
//
// Parallel edges created by coalescing merge into one edge of summed
// weight, and a supernode's vertex weight is the sum of its members' —
// this preserves exactly the quantities bisection cares about: the cut
// of any coarse bisection equals the cut of its projection to the fine
// graph, and weight balance is preserved by projection.
//
// Leftover policy: a maximal matching can leave unmatched vertices
// (odd components, isolated vertices). By default we coalesce leftover
// vertices in random pairs too — contracting a non-edge is harmless —
// so every supernode has equal weight and any balanced coarse bisection
// projects to a balanced fine bisection. DESIGN.md section 5 discusses
// the alternative.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gbis/core/matching.hpp"
#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// A contraction: the coarse graph plus the fine-to-coarse vertex map.
struct Contraction {
  Graph coarse;
  std::vector<Vertex> map;  ///< fine vertex -> coarse vertex

  /// Projects a coarse side assignment to the fine graph ("uncompact",
  /// paper step 4). Throws std::invalid_argument on a size mismatch.
  std::vector<std::uint8_t> project(
      std::span<const std::uint8_t> coarse_sides) const;
};

/// Contracts the matched pairs of `m` (and, when pair_leftovers, random
/// pairs of unmatched vertices). `m` must be a matching of g.
Contraction contract_matching(const Graph& g, const Matching& m, Rng& rng,
                              bool pair_leftovers = true);

}  // namespace gbis
