// Random maximal matching — step 1 of the compaction heuristic (paper
// section V): "Form a maximum random matching M of the graph G."
//
// ("Maximum random matching" in the paper means a maximal matching
// grown in random order, not an optimum-cardinality matching; BCLS87
// use the same greedy construction. A greedy maximal matching already
// covers at least half the vertices of every component with an edge.)
#pragma once

#include <cstdint>
#include <vector>

#include "gbis/graph/graph.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// A matching: vertex pairs, each vertex in at most one pair.
using Matching = std::vector<std::pair<Vertex, Vertex>>;

/// Matching policies (the paper uses kRandom; the others exist for the
/// ablation bench A1 and for the multilevel extension, where heavy-edge
/// matching is what METIS-style coarsening later adopted).
enum class MatchPolicy {
  kRandom,     ///< visit vertices in random order, match to a random free neighbor
  kHeavyEdge,  ///< visit vertices in random order, match to the heaviest free edge
  kFirstFit,   ///< deterministic: lowest-id vertex to its lowest-id free neighbor
};

/// Greedy maximal matching under the given policy. Every returned pair
/// is an edge of g; no vertex repeats. The result is maximal: every
/// unmatched vertex has only matched neighbors.
Matching maximal_matching(const Graph& g, Rng& rng,
                          MatchPolicy policy = MatchPolicy::kRandom);

/// True if `m` is a matching in g (pairwise-disjoint edges of g).
bool is_matching(const Graph& g, const Matching& m);

/// True if `m` is maximal in g.
bool is_maximal_matching(const Graph& g, const Matching& m);

}  // namespace gbis
