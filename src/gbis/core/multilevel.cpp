#include "gbis/core/multilevel.hpp"

#include <vector>

#include "gbis/obs/metrics.hpp"
#include "gbis/partition/balance.hpp"

namespace gbis {

Bisection multilevel_bisect(const Graph& g, Rng& rng, const Refiner& refiner,
                            const MultilevelOptions& options,
                            MultilevelStats* stats) {
  MetricsSink* sink = options.metrics;

  // Coarsening phase: a stack of contractions, finest first.
  std::vector<Contraction> levels;
  const Graph* current = &g;
  for (std::uint32_t level = 0; level < options.max_levels; ++level) {
    if (current->num_vertices() <= options.min_vertices) break;
    const ScopedPhase phase(sink, Phase::kCompact);
    const Matching m = maximal_matching(*current, rng, options.match_policy);
    Contraction c =
        contract_matching(*current, m, rng, options.pair_leftovers);
    const double shrink = static_cast<double>(c.coarse.num_vertices()) /
                          static_cast<double>(current->num_vertices());
    if (shrink > options.min_shrink_factor) break;  // coarsening stalled
    levels.push_back(std::move(c));
    current = &levels.back().coarse;
  }

  // Initial solution on the coarsest graph.
  Bisection bisection = Bisection::random(*current, rng);
  {
    const ScopedPhase phase(sink, Phase::kBisect);
    refiner(bisection, rng);
  }
  if (stats != nullptr) {
    stats->levels = static_cast<std::uint32_t>(levels.size());
    stats->coarsest_vertices = current->num_vertices();
    stats->coarsest_cut = bisection.cut();
  }

  // Uncoarsening phase: project and refine level by level. Each
  // projection is rebalanced first: odd supernode counts leave a small
  // count imbalance that refiners expect repaired.
  for (std::size_t i = levels.size(); i-- > 0;) {
    const Graph& finer =
        (i == 0) ? g : levels[i - 1].coarse;
    if (sink != nullptr) sink->begin_phase(Phase::kUncoalesce);
    Bisection projected(finer, levels[i].project(bisection.sides()));
    rebalance(projected);
    if (sink != nullptr) sink->end_phase(Phase::kUncoalesce);
    {
      const ScopedPhase phase(sink, Phase::kRefine);
      refiner(projected, rng);
    }
    bisection = std::move(projected);
  }

  if (stats != nullptr) stats->final_cut = bisection.cut();
  return bisection;
}

}  // namespace gbis
