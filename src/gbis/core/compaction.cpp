#include "gbis/core/compaction.hpp"

#include <optional>

#include "gbis/obs/metrics.hpp"
#include "gbis/partition/balance.hpp"

namespace gbis {

Bisection compacted_bisect(const Graph& g, Rng& rng, const Refiner& refiner,
                           const CompactionOptions& options,
                           CompactionStats* stats) {
  return compacted_bisect(g, rng, refiner, refiner, options, stats);
}

Bisection compacted_bisect(const Graph& g, Rng& rng,
                           const Refiner& coarse_refiner,
                           const Refiner& fine_refiner,
                           const CompactionOptions& options,
                           CompactionStats* stats) {
  MetricsSink* sink = options.metrics;

  // Step 1: maximal random matching. Step 2: contract. One "compact"
  // span covers both — they are a single coarsening action in the
  // Chrome trace.
  std::optional<Contraction> contraction;
  {
    const ScopedPhase phase(sink, Phase::kCompact);
    const Matching matching = maximal_matching(g, rng, options.match_policy);
    contraction.emplace(
        contract_matching(g, matching, rng, options.pair_leftovers));
  }
  const Graph& coarse = contraction->coarse;

  // Step 3: bisect G' from a random start.
  Bisection coarse_bisection = Bisection::random(coarse, rng);
  {
    const ScopedPhase phase(sink, Phase::kBisect);
    coarse_refiner(coarse_bisection, rng);
  }

  if (stats != nullptr) {
    stats->coarse_vertices = coarse.num_vertices();
    stats->coarse_edges = coarse.num_edges();
    stats->coarse_average_degree = coarse.average_degree();
    stats->coarse_cut = coarse_bisection.cut();
  }

  // Step 4: uncompact into an initial bisection of G.
  std::optional<Bisection> fine;
  {
    const ScopedPhase phase(sink, Phase::kUncoalesce);
    fine.emplace(g, contraction->project(coarse_bisection.sides()));
    if (stats != nullptr) stats->projected_cut = fine->cut();
    // An odd supernode count (or non-uniform supernode weights under
    // pair_leftovers=false) can leave the projection off-balance by a
    // few vertices; repair before refining so the result is a true
    // bisection.
    rebalance(*fine);
  }

  // Step 5: refine on the original graph.
  {
    const ScopedPhase phase(sink, Phase::kRefine);
    fine_refiner(*fine, rng);
  }
  if (stats != nullptr) stats->final_cut = fine->cut();
  return std::move(*fine);
}

Refiner kl_refiner(KlOptions options) {
  return [options](Bisection& bisection, Rng&) {
    kl_refine(bisection, options);
  };
}

Refiner sa_refiner(SaOptions options) {
  return [options](Bisection& bisection, Rng& rng) {
    sa_refine(bisection, rng, options);
  };
}

Refiner fm_refiner(FmOptions options) {
  return [options](Bisection& bisection, Rng&) {
    fm_refine(bisection, options);
  };
}

Bisection ckl(const Graph& g, Rng& rng, const KlOptions& kl_options,
              const CompactionOptions& c_options, CompactionStats* stats) {
  return compacted_bisect(g, rng, kl_refiner(kl_options), c_options, stats);
}

Bisection csa(const Graph& g, Rng& rng, const SaOptions& sa_options,
              const CompactionOptions& c_options, CompactionStats* stats) {
  SaOptions fine_options = sa_options;
  fine_options.init_acceptance_target = c_options.csa_fine_acceptance;
  return compacted_bisect(g, rng, sa_refiner(sa_options),
                          sa_refiner(fine_options), c_options, stats);
}

}  // namespace gbis
