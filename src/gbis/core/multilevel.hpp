// Multilevel (recursive) compaction — the natural extension of the
// paper's heuristic, applied to itself: keep contracting matchings
// until the graph is small, bisect the coarsest graph, then project and
// refine level by level. One level of this scheme *is* the paper's
// compaction; iterating it is the coarsen/initial-partition/uncoarsen
// template that METIS and its successors industrialized a few years
// later. Included as the "future work" extension and exercised by the
// A2 ablation bench (depth sweep).
#pragma once

#include <cstdint>

#include "gbis/core/compaction.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {

/// Knobs for the multilevel driver.
struct MultilevelOptions {
  /// Maximum coarsening levels. 0 = plain single-level run (no
  /// compaction); 1 = the paper's compaction; larger = deeper.
  std::uint32_t max_levels = 16;
  /// Stop coarsening once the coarse graph has at most this many
  /// vertices.
  std::uint32_t min_vertices = 64;
  /// Stop coarsening when a level shrinks the vertex count by less
  /// than this factor (guards against matching-starved graphs).
  double min_shrink_factor = 0.9;
  MatchPolicy match_policy = MatchPolicy::kRandom;
  bool pair_leftovers = true;
  /// Observability sink (obs/metrics.hpp): wall-clock phase spans for
  /// the Chrome-trace export — one compact span per coarsening level,
  /// one bisect span for the coarsest solve, and an uncoalesce + refine
  /// pair per uncoarsening level. nullptr records nothing.
  MetricsSink* metrics = nullptr;
};

/// Per-run diagnostics.
struct MultilevelStats {
  std::uint32_t levels = 0;             ///< contractions performed
  std::uint32_t coarsest_vertices = 0;  ///< size of the deepest graph
  Weight coarsest_cut = 0;              ///< cut found at the deepest level
  Weight final_cut = 0;
};

/// Multilevel bisection of g: coarsen, solve the coarsest level with
/// `refiner` from a random start, then project upward refining with
/// `refiner` at every level. Returns the resulting bisection of g.
Bisection multilevel_bisect(const Graph& g, Rng& rng, const Refiner& refiner,
                            const MultilevelOptions& options = {},
                            MultilevelStats* stats = nullptr);

}  // namespace gbis
