// The partition-service network front end: a poll(2)-driven socket
// listener that multiplexes many concurrent NDJSON clients — TCP
// (`--listen HOST:PORT`) and/or Unix-domain (`--listen-unix PATH`) —
// onto one Service (svc/scheduler). The event loop runs on a single
// driver thread (the same thread that calls Service::submit_line /
// process_batch, preserving the service's single-driver contract);
// the worker pool inside the Service is still the only place solves
// run in parallel.
//
// Dispatch model: every poll cycle reads whatever arrived on every
// connection, submits complete lines in read order, and flushes the
// service queue at the end of the cycle (sooner when --batch fills).
// The requests that arrive together form the batch — the coalescing
// window — and responses are routed back to their connections in
// service arrival order, so each connection sees its own responses in
// its own request order (exceptions below).
//
// Admission is layered:
//   * connection limit  — accepts beyond --max-conns answer one
//     "rejected: connection limit" line and close (svc.conn.rejected);
//   * per-client quota  — a client with --conn-quota requests already
//     in flight gets "rejected: connection request quota" immediately
//     (svc.quota_rejected); like the service's queue-full reject, this
//     jumps the arrival-order stream (correlate by id);
//   * service queue     — the existing `rejected: queue full` bound,
//     tied to the svc.queue_depth gauge.
// Slow clients (no write progress for --write-timeout seconds, or a
// response backlog beyond the write-buffer cap) are disconnected and
// counted in svc.conn.slow_closed. Overlong request lines answer
// "parse: request line exceeds N bytes" and resync at the next
// newline.
//
// Graceful drain: on SIGINT/SIGTERM the loop stops accepting and
// reading, answers everything already admitted (queued solves drain
// under the service's shutdown semantics), flushes response buffers
// under a deadline, and closes. The CLI then exits 130.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbis/svc/connection.hpp"
#include "gbis/svc/scheduler.hpp"

namespace gbis {

struct ListenerOptions {
  /// TCP endpoint "HOST:PORT"; "" = no TCP listener. Port 0 binds an
  /// ephemeral port — read the bound one back from tcp_endpoint().
  std::string tcp_endpoint;
  /// Unix-domain socket path; "" = no UDS listener. A stale file at
  /// the path is replaced; the file is unlinked on shutdown.
  std::string unix_path;
  /// Accept bound: connections beyond it answer one structured reject
  /// line and close.
  std::size_t max_connections = 1024;
  /// Request lines longer than this reject and resync (framing guard
  /// against unframed garbage and memory growth).
  std::size_t max_line_bytes = 4u << 20;
  /// Per-connection request quota: submitted-but-unanswered requests a
  /// single client may have in flight before its lines bounce.
  std::size_t conn_request_quota = 64;
  /// Slow-client stall bound: a connection with pending output and no
  /// write progress for this long is disconnected.
  double write_timeout_seconds = 10.0;
  /// Response backlog cap per connection; exceeding it is the same
  /// slow-client disconnect without waiting out the stall clock.
  std::size_t max_write_buffer = 8u << 20;
  /// When non-empty, the bound endpoints are published here (atomic
  /// tmp + rename) once listening: one "tcp HOST:PORT" / "unix PATH"
  /// line each — how scripted clients find an ephemeral port.
  std::string ready_file;
  /// Seconds granted to flush remaining responses during drain.
  double drain_flush_seconds = 5.0;
  /// Observation hook invoked once per response line delivered (the
  /// CLI's progress meter); also sees responses whose connection died.
  std::function<void(const std::string&)> on_response;
};

/// Overlays GBIS_SVC_LISTEN ("HOST:PORT") and GBIS_SVC_LISTEN_UNIX
/// (a path) onto `base`. Malformed values warn on stderr and keep the
/// default, matching every other GBIS_* knob.
ListenerOptions listener_options_from_env(ListenerOptions base);

class Listener {
 public:
  /// Binds nothing yet; call start(). `service` must outlive the
  /// listener and must not be driven by anyone else while the listener
  /// runs (single-driver contract).
  Listener(Service& service, ListenerOptions options);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Creates, binds, and listens on the configured sockets; publishes
  /// the ready file. Throws IoError (CLI exit 3) on any failure.
  void start();

  /// Bound endpoints after start() ("" when that family is off). The
  /// TCP one carries the real port even when 0 was requested.
  const std::string& tcp_endpoint() const { return tcp_bound_; }
  const std::string& unix_endpoint() const { return options_.unix_path; }

  /// One event-loop cycle: accept, read, dispatch, write, reap.
  /// Returns true when anything happened (a poll hit, not a timeout).
  /// Exposed so embedders (tests, the bench) can interleave the loop
  /// with their own work; pass `stop` to honor shutdown inside the
  /// cycle.
  bool poll_once(int timeout_ms, const std::atomic<bool>* stop = nullptr);

  /// Serves until `stop` is set, then drains gracefully.
  void run(const std::atomic<bool>& stop);

  /// The graceful-shutdown tail of run(), callable directly by
  /// embedders that loop poll_once themselves: stop accepting, answer
  /// everything admitted, flush under the drain deadline, close.
  void drain(const std::atomic<bool>* stop);

  std::size_t connection_count() const { return connections_.size(); }
  const ListenerOptions& options() const { return options_; }

 private:
  void accept_ready(int listen_fd);
  void handle_events(Connection& conn, std::vector<ConnEvent>& events);
  void dispatch_pending(const std::atomic<bool>* stop);
  void route_responses(const std::vector<std::string>& responses);
  void deliver(const std::string& line, std::uint64_t conn_id);
  void close_connection(std::uint64_t conn_id, bool slow);
  void reap(double now_seconds);
  void stop_accepting();
  void publish_ready_file() const;

  Service& service_;
  ListenerOptions options_;
  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  std::string tcp_bound_;
  bool unix_bound_ = false;  ///< we own the socket file (unlink it)
  std::uint64_t next_conn_id_ = 0;
  /// Open connections by id. std::map-free lookup on every response.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>>
      connections_;
  /// Connection id per queued (not-immediately-answered) request, in
  /// service arrival order — process_batch emits exactly one response
  /// per entry, so routing is a front-pop per response line.
  std::deque<std::uint64_t> routes_;
  WallTimer clock_;
};

}  // namespace gbis
