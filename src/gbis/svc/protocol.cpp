#include "gbis/svc/protocol.hpp"

#include <cstdio>

#include "gbis/util/json_lite.hpp"

namespace gbis {

bool parse_request(const std::string& line, SvcRequest& out,
                   std::string& error) {
  out = SvcRequest{};
  json_parse_string(line, "id", out.id);  // best-effort, for correlation
  if (line.empty() || line.find_first_not_of(" \t") == std::string::npos) {
    error = "parse: empty request";
    return false;
  }
  if (line[line.find_first_not_of(" \t")] != '{') {
    error = "parse: request is not a JSON object";
    return false;
  }
  // Structural gate before any field scan: on a socket, arbitrary
  // bytes arrive here, and a lenient scan of a malformed line is how
  // fields get silently misread (see util/json_lite).
  if (!json_object_valid(line)) {
    error = "parse: malformed request line";
    return false;
  }
  std::string op;
  if (json_parse_string(line, "op", op)) {
    if (op == "solve") {
      out.op = SvcRequest::Op::kSolve;
    } else if (op == "ping") {
      out.op = SvcRequest::Op::kPing;
    } else if (op == "stats") {
      out.op = SvcRequest::Op::kStats;
    } else {
      error = "parse: unknown op \"" + op + "\"";
      return false;
    }
  }
  if (out.op == SvcRequest::Op::kStats) {
    json_parse_string(line, "format", out.format);
    if (out.format != "" && out.format != "json" && out.format != "prom") {
      error = "parse: unknown stats format \"" + out.format + "\"";
      return false;
    }
  }
  if (out.op != SvcRequest::Op::kSolve) return true;

  json_parse_string(line, "path", out.path);
  json_parse_string(line, "inline", out.inline_graph);
  if (out.path.empty() == out.inline_graph.empty()) {
    error = out.path.empty()
                ? "parse: solve needs a graph payload (\"path\" or \"inline\")"
                : "parse: \"path\" and \"inline\" are mutually exclusive";
    return false;
  }
  json_parse_string(line, "method", out.method);
  if (out.method.empty()) {
    error = "parse: empty method";
    return false;
  }
  // Present-but-invalid scalars are errors, not silent defaults: a
  // request that says {"budget":-1} meant something; answering it with
  // the default budget would hide the mistake (and pre-hardening, the
  // strtoull wraparound turned it into 2^64-1 trials).
  std::uint64_t budget = 0;
  if (json_find_value(line, "budget") != std::string::npos) {
    if (!json_parse_u64(line, "budget", budget) || budget == 0 ||
        budget > 0xFFFFFFFFull) {
      error = "parse: budget out of range";
      return false;
    }
    out.budget = static_cast<std::uint32_t>(budget);
  }
  if (json_find_value(line, "deadline_s") != std::string::npos) {
    double deadline = 0;
    if (!json_parse_double(line, "deadline_s", deadline) ||
        !(deadline >= 0)) {  // rejects negatives and NaN
      error = "parse: deadline_s must be >= 0";
      return false;
    }
    out.deadline_seconds = deadline;
  }
  if (json_find_value(line, "seed") != std::string::npos) {
    if (!json_parse_u64(line, "seed", out.seed)) {
      error = "parse: seed out of range";
      return false;
    }
    out.has_seed = true;
  }
  if (json_find_value(line, "want_sides") != std::string::npos &&
      !json_parse_bool(line, "want_sides", out.want_sides)) {
    error = "parse: want_sides must be true or false";
    return false;
  }
  return true;
}

std::string encode_response(const SvcResponse& response) {
  std::string line = "{\"id\":";
  append_json_string(line, response.id);
  line += response.ok ? ",\"ok\":true" : ",\"ok\":false";
  if (!response.op.empty()) {
    line += ",\"op\":";
    append_json_string(line, response.op);
  }
  if (response.has_solve && response.ok) {
    line += ",\"cut\":" + std::to_string(response.cut);
    line += ",\"method\":";
    append_json_string(line, response.method);
    line += ",\"trials_ok\":" + std::to_string(response.trials_ok);
    line += ",\"degraded\":" + std::to_string(response.degraded);
    line += ",\"fingerprint\":\"" + to_hex16(response.fingerprint) + "\"";
  }
  for (const auto& [key, value] : response.stats) {
    line += ",\"" + key + "\":" + std::to_string(value);
  }
  for (const auto& [key, value] : response.stats_real) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    line += ",\"" + key + "\":" + buf;
  }
  if (!response.cache.empty()) {
    line += ",\"cache\":";
    append_json_string(line, response.cache);
  }
  // Free-form strings last (flat-scanner convention).
  if (!response.sides.empty()) {
    line += ",\"sides\":";
    append_json_string(line, response.sides);
  }
  if (!response.prom.empty()) {
    line += ",\"prom\":";
    append_json_string(line, response.prom);
  }
  if (!response.ok) {
    if (response.retry_after_ms != 0) {
      line += ",\"retry_after_ms\":" + std::to_string(response.retry_after_ms);
    }
    line += ",\"error\":";
    append_json_string(line, response.error);
  }
  line += "}";
  return line;
}

}  // namespace gbis
