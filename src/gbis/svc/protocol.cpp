#include "gbis/svc/protocol.hpp"

#include <cstdio>

#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

/// Parses the graph reference shared by solve ("graph") and mutate
/// ("parent"): a to_hex16 fingerprint string. False only on a
/// present-but-invalid value; absence leaves `out` untouched.
bool parse_fingerprint_field(const std::string& line, const std::string& key,
                             SvcRequest& out, std::string& error) {
  if (json_find_value(line, key) == std::string::npos) return true;
  std::string hex;
  if (!json_parse_string(line, key, hex) ||
      !parse_hex16(hex, out.fingerprint)) {
    error = "parse: \"" + key + "\" must be a 16-digit hex fingerprint";
    return false;
  }
  out.has_fingerprint = true;
  return true;
}

/// Parses one optional edit array. False on a present-but-invalid
/// value (wrong type, bad element, over the length cap).
bool parse_edit_array(const std::string& line, const std::string& key,
                      std::vector<std::uint64_t>& out, std::string& error) {
  if (json_find_value(line, key) == std::string::npos) return true;
  if (!json_parse_u64_array(line, key, out, kMaxEditElements)) {
    error = "parse: \"" + key + "\" must be an array of at most " +
            std::to_string(kMaxEditElements) + " non-negative integers";
    return false;
  }
  return true;
}

bool parse_mutate_fields(const std::string& line, SvcRequest& out,
                         std::string& error) {
  const int payloads = (out.path.empty() ? 0 : 1) +
                       (out.inline_graph.empty() ? 0 : 1) +
                       (out.has_fingerprint ? 1 : 0);
  if (payloads != 1) {
    error = payloads == 0
                ? "parse: mutate needs a parent graph (\"parent\", \"path\" "
                  "or \"inline\")"
                : "parse: mutate parent references are mutually exclusive";
    return false;
  }
  if (!parse_edit_array(line, "add_edges", out.batch.add_edges, error) ||
      !parse_edit_array(line, "del_edges", out.batch.del_edges, error) ||
      !parse_edit_array(line, "del_vertices", out.batch.del_vertices, error)) {
    return false;
  }
  if (out.batch.add_edges.size() % 2 != 0 ||
      out.batch.del_edges.size() % 2 != 0) {
    error = "parse: edge arrays must hold (u,v) pairs";
    return false;
  }
  if (json_find_value(line, "add_vertices") != std::string::npos) {
    std::uint64_t count = 0;
    if (!json_parse_u64(line, "add_vertices", count) ||
        count > 0xFFFFFFFFull) {
      error = "parse: add_vertices out of range";
      return false;
    }
    out.batch.add_vertices = count;
  }
  // A no-op mutate would mint a fresh lineage edge aliasing the parent
  // fingerprint; reject it at the parse layer so it can never reach
  // the mutation machinery.
  if (out.batch.empty()) {
    error = "parse: empty edit batch";
    return false;
  }
  return true;
}

}  // namespace

bool parse_request(const std::string& line, SvcRequest& out,
                   std::string& error) {
  out = SvcRequest{};
  json_parse_string(line, "id", out.id);  // best-effort, for correlation
  if (line.empty() || line.find_first_not_of(" \t") == std::string::npos) {
    error = "parse: empty request";
    return false;
  }
  if (line[line.find_first_not_of(" \t")] != '{') {
    error = "parse: request is not a JSON object";
    return false;
  }
  // Structural gate before any field scan: on a socket, arbitrary
  // bytes arrive here, and a lenient scan of a malformed line is how
  // fields get silently misread (see util/json_lite).
  if (!json_object_valid(line)) {
    error = "parse: malformed request line";
    return false;
  }
  std::string op;
  if (json_parse_string(line, "op", op)) {
    if (op == "solve") {
      out.op = SvcRequest::Op::kSolve;
    } else if (op == "ping") {
      out.op = SvcRequest::Op::kPing;
    } else if (op == "stats") {
      out.op = SvcRequest::Op::kStats;
    } else if (op == "mutate") {
      out.op = SvcRequest::Op::kMutate;
    } else if (op == "trace") {
      out.op = SvcRequest::Op::kTrace;
    } else {
      error = "parse: unknown op \"" + op + "\"";
      return false;
    }
  }
  // The optional client trace id rides on any op (it selects the span
  // set to export on op:"trace" and overrides the derived id
  // elsewhere), so it parses before the early returns below.
  if (json_find_value(line, "trace") != std::string::npos) {
    std::string hex;
    if (!json_parse_string(line, "trace", hex) ||
        !parse_hex16(hex, out.trace_id)) {
      error = "parse: \"trace\" must be a 16-digit hex trace id";
      return false;
    }
    out.has_trace = true;
  }
  if (out.op == SvcRequest::Op::kStats) {
    static constexpr const char* kFormats[] = {"json", "prom"};
    if (json_parse_enum(line, "format", kFormats, 2, out.format) ==
        JsonEnumStatus::kInvalid) {
      error = "parse: unknown stats format \"" + out.format + "\"";
      return false;
    }
  }
  if (out.op == SvcRequest::Op::kPing || out.op == SvcRequest::Op::kStats ||
      out.op == SvcRequest::Op::kTrace) {
    return true;
  }

  json_parse_string(line, "path", out.path);
  json_parse_string(line, "inline", out.inline_graph);
  if (out.op == SvcRequest::Op::kMutate) {
    return parse_fingerprint_field(line, "parent", out, error) &&
           parse_mutate_fields(line, out, error);
  }

  if (!parse_fingerprint_field(line, "graph", out, error)) return false;
  const int payloads = (out.path.empty() ? 0 : 1) +
                       (out.inline_graph.empty() ? 0 : 1) +
                       (out.has_fingerprint ? 1 : 0);
  if (payloads != 1) {
    error = payloads == 0
                ? "parse: solve needs a graph payload (\"path\", \"inline\" "
                  "or \"graph\")"
                : "parse: graph payloads are mutually exclusive";
    return false;
  }
  json_parse_string(line, "method", out.method);
  if (out.method.empty()) {
    error = "parse: empty method";
    return false;
  }
  static constexpr const char* kQualities[] = {"fast", "balanced", "best"};
  if (json_parse_enum(line, "quality", kQualities, 3, out.quality) ==
      JsonEnumStatus::kInvalid) {
    error = "parse: unknown quality \"" + out.quality + "\"";
    return false;
  }
  // Present-but-invalid scalars are errors, not silent defaults: a
  // request that says {"budget":-1} meant something; answering it with
  // the default budget would hide the mistake (and pre-hardening, the
  // strtoull wraparound turned it into 2^64-1 trials).
  std::uint64_t budget = 0;
  if (json_find_value(line, "budget") != std::string::npos) {
    if (!json_parse_u64(line, "budget", budget) || budget == 0 ||
        budget > 0xFFFFFFFFull) {
      error = "parse: budget out of range";
      return false;
    }
    out.budget = static_cast<std::uint32_t>(budget);
  }
  if (json_find_value(line, "deadline_s") != std::string::npos) {
    double deadline = 0;
    if (!json_parse_double(line, "deadline_s", deadline) ||
        !(deadline >= 0)) {  // rejects negatives and NaN
      error = "parse: deadline_s must be >= 0";
      return false;
    }
    out.deadline_seconds = deadline;
  }
  if (json_find_value(line, "seed") != std::string::npos) {
    if (!json_parse_u64(line, "seed", out.seed)) {
      error = "parse: seed out of range";
      return false;
    }
    out.has_seed = true;
  }
  if (json_find_value(line, "want_sides") != std::string::npos &&
      !json_parse_bool(line, "want_sides", out.want_sides)) {
    error = "parse: want_sides must be true or false";
    return false;
  }
  return true;
}

std::string encode_response(const SvcResponse& response) {
  std::string line = "{\"id\":";
  append_json_string(line, response.id);
  line += response.ok ? ",\"ok\":true" : ",\"ok\":false";
  if (!response.op.empty()) {
    line += ",\"op\":";
    append_json_string(line, response.op);
  }
  // Only when the client sent a "trace" field: derived ids are not
  // echoed, keeping pre-tracing response streams byte-identical.
  if (response.has_trace) {
    line += ",\"trace\":\"" + to_hex16(response.trace_id) + "\"";
  }
  if (response.has_solve && response.ok) {
    line += ",\"cut\":" + std::to_string(response.cut);
    line += ",\"method\":";
    append_json_string(line, response.method);
    line += ",\"trials_ok\":" + std::to_string(response.trials_ok);
    line += ",\"degraded\":" + std::to_string(response.degraded);
    line += ",\"fingerprint\":\"" + to_hex16(response.fingerprint) + "\"";
    // Emitted only when true: cold solve lines predate the field and
    // must stay byte-identical.
    if (response.warm) line += ",\"warm\":true";
  }
  if (response.has_mutate && response.ok) {
    line += ",\"fingerprint\":\"" + to_hex16(response.fingerprint) + "\"";
    line += ",\"parent\":\"" + to_hex16(response.parent) + "\"";
    line += ",\"vertices\":" + std::to_string(response.vertices);
    line += ",\"edges\":" + std::to_string(response.edges);
    line += ",\"edit_distance\":" + std::to_string(response.edit_distance);
    line += ",\"depth\":" + std::to_string(response.depth);
  }
  if (response.has_traces && response.ok) {
    line += ",\"traces\":" + std::to_string(response.traces);
  }
  for (const auto& [key, value] : response.stats) {
    line += ",\"" + key + "\":" + std::to_string(value);
  }
  for (const auto& [key, value] : response.stats_real) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    line += ",\"" + key + "\":" + buf;
  }
  for (const auto& [key, value] : response.stats_text) {
    line += ",\"" + key + "\":";
    append_json_string(line, value);
  }
  if (!response.cache.empty()) {
    line += ",\"cache\":";
    append_json_string(line, response.cache);
  }
  // Free-form strings last (flat-scanner convention).
  if (!response.sides.empty()) {
    line += ",\"sides\":";
    append_json_string(line, response.sides);
  }
  if (!response.prom.empty()) {
    line += ",\"prom\":";
    append_json_string(line, response.prom);
  }
  if (response.has_traces && response.ok) {
    line += ",\"spans\":";
    append_json_string(line, response.spans);
  }
  if (!response.ok) {
    if (response.retry_after_ms != 0) {
      line += ",\"retry_after_ms\":" + std::to_string(response.retry_after_ms);
    }
    line += ",\"error\":";
    append_json_string(line, response.error);
  }
  line += "}";
  return line;
}

}  // namespace gbis
