#include "gbis/svc/policy.hpp"

#include <array>
#include <limits>
#include <new>

#include "gbis/harness/timer.hpp"
#include "gbis/obs/span.hpp"
#include "gbis/rng/splitmix.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

std::span<const Method> policy_portfolio() {
  return quality_portfolio(QualityTier::kBest);
}

namespace {

/// Converts one trial's bounded convergence trace into request-trace
/// sub-spans: a "trial" header span, then one span per kept trace
/// point, all stamped at the trial's start offset. The SpanBuffer
/// applies its own second-level decimation, so a budget-heavy request
/// still yields a bounded, thread-count-invariant span list.
void offer_trial_spans(SpanBuffer& spans, std::uint32_t trial,
                       std::int64_t cut, const TrialMetrics& tm,
                       double trial_start, double trial_wall) {
  SpanRec header;
  header.name = "trial";
  header.step = trial;
  header.has_step = true;
  header.value = cut;
  header.has_value = cut >= 0;
  header.start_seconds = trial_start;
  header.duration_seconds = trial_wall;
  spans.offer(std::move(header));
  for (const TracePoint& pt : tm.trace) {
    SpanRec rec;
    rec.name = span_name_for_trace_source(pt.source);
    rec.step = pt.step;
    rec.has_step = true;
    rec.value = pt.cut;
    rec.has_value = true;
    if (pt.source == TraceSource::kSa) {
      rec.aux = pt.aux;
      rec.has_aux = true;
    }
    rec.start_seconds = trial_start;
    spans.offer(std::move(rec));
  }
}

}  // namespace

PolicyResult run_policy(const Graph& g, const PolicySpec& spec,
                        std::uint64_t seed, const RunConfig& base,
                        bool keep_sides, const std::atomic<bool>* stop,
                        SpanBuffer* spans) {
  PolicyResult result;
  if (spec.budget == 0) return result;  // all-skipped, status kSkipped
  const bool tracing = spans != nullptr && spans->bound();
  const WallTimer policy_clock;  // span offsets relative to policy entry

  // One deadline for the whole request, shared by every trial.
  const Deadline deadline = spec.deadline_seconds > 0
                                ? Deadline::after(spec.deadline_seconds)
                                : Deadline();
  RunConfig config = base;
  config.obs = ObsOptions{};  // the service keeps its own counters
  config.metrics = nullptr;
  config.kl.metrics = nullptr;
  config.sa.metrics = nullptr;
  config.fm.metrics = nullptr;
  config.compaction.metrics = nullptr;
  config.multilevel.metrics = nullptr;
  config.kl.deadline = deadline;
  config.sa.deadline = deadline;
  config.fm.deadline = deadline;
  config.path.deadline = deadline;
  config.path.metrics = nullptr;

  const std::span<const Method> portfolio = quality_portfolio(spec.quality);
  result.best_cut = std::numeric_limits<Weight>::max();
  for (std::uint32_t i = 0; i < spec.budget; ++i) {
    const Method method =
        spec.portfolio ? portfolio[i % portfolio.size()] : spec.method;
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      ++result.skipped;
      continue;
    }
    if (deadline.expired()) {
      // Budget the request can no longer spend: count the remaining
      // trials timed out without paying for their generation phases.
      ++result.timed_out;
      if (result.first_error.empty()) {
        result.first_error = "deadline exceeded";
      }
      continue;
    }
    const CpuTimer timer;
    // Tracing binds a throwaway per-trial sink so the trial's
    // convergence trace becomes its sub-spans; the service's own
    // counters stay untouched either way.
    TrialMetrics trial_metrics;
    MetricsSink trial_sink(&trial_metrics, 64);
    MetricsSink* sink = tracing ? &trial_sink : nullptr;
    config.kl.metrics = sink;
    config.sa.metrics = sink;
    config.fm.metrics = sink;
    config.path.metrics = sink;
    config.compaction.metrics = sink;
    config.multilevel.metrics = sink;
    const double trial_start = policy_clock.elapsed_seconds();
    std::int64_t trial_cut = -1;
    try {
      Rng rng(splitmix64_at(seed, i));
      const Bisection b = run_one_start(g, method, rng, config);
      trial_cut = b.cut();
      if (b.cut() < result.best_cut) {
        result.best_cut = b.cut();
        result.best_method = method;
        if (keep_sides) {
          result.best_sides.assign(b.sides().begin(), b.sides().end());
        }
      }
      ++result.ok;
    } catch (const DeadlineExceeded& error) {
      ++result.timed_out;
      if (result.first_error.empty()) result.first_error = error.what();
    } catch (const std::bad_alloc& error) {
      ++result.failed;
      if (result.first_error.empty()) {
        result.first_error = error.what();
        result.oom = true;
      }
    } catch (const std::exception& error) {
      ++result.failed;
      if (result.first_error.empty()) result.first_error = error.what();
    } catch (...) {
      ++result.failed;
      if (result.first_error.empty()) result.first_error = "unknown exception";
    }
    result.cpu_seconds += timer.elapsed_seconds();
    if (tracing) {
      offer_trial_spans(*spans, i, trial_cut, trial_metrics, trial_start,
                        policy_clock.elapsed_seconds() - trial_start);
    }
  }

  if (result.ok > 0) {
    result.status = TrialStatus::kOk;
  } else {
    result.best_cut = 0;  // no valid cut; callers must consult status
    if (result.failed > 0) {
      result.status = TrialStatus::kFailed;
    } else if (result.timed_out > 0) {
      result.status = TrialStatus::kTimedOut;
    } else {
      result.status = TrialStatus::kSkipped;
    }
  }
  return result;
}

}  // namespace gbis
