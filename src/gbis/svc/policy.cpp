#include "gbis/svc/policy.hpp"

#include <array>
#include <limits>
#include <new>

#include "gbis/harness/timer.hpp"
#include "gbis/rng/splitmix.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {

std::span<const Method> policy_portfolio() {
  return quality_portfolio(QualityTier::kBest);
}

PolicyResult run_policy(const Graph& g, const PolicySpec& spec,
                        std::uint64_t seed, const RunConfig& base,
                        bool keep_sides, const std::atomic<bool>* stop) {
  PolicyResult result;
  if (spec.budget == 0) return result;  // all-skipped, status kSkipped

  // One deadline for the whole request, shared by every trial.
  const Deadline deadline = spec.deadline_seconds > 0
                                ? Deadline::after(spec.deadline_seconds)
                                : Deadline();
  RunConfig config = base;
  config.obs = ObsOptions{};  // the service keeps its own counters
  config.metrics = nullptr;
  config.kl.metrics = nullptr;
  config.sa.metrics = nullptr;
  config.fm.metrics = nullptr;
  config.compaction.metrics = nullptr;
  config.multilevel.metrics = nullptr;
  config.kl.deadline = deadline;
  config.sa.deadline = deadline;
  config.fm.deadline = deadline;
  config.path.deadline = deadline;
  config.path.metrics = nullptr;

  const std::span<const Method> portfolio = quality_portfolio(spec.quality);
  result.best_cut = std::numeric_limits<Weight>::max();
  for (std::uint32_t i = 0; i < spec.budget; ++i) {
    const Method method =
        spec.portfolio ? portfolio[i % portfolio.size()] : spec.method;
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      ++result.skipped;
      continue;
    }
    if (deadline.expired()) {
      // Budget the request can no longer spend: count the remaining
      // trials timed out without paying for their generation phases.
      ++result.timed_out;
      if (result.first_error.empty()) {
        result.first_error = "deadline exceeded";
      }
      continue;
    }
    const CpuTimer timer;
    try {
      Rng rng(splitmix64_at(seed, i));
      const Bisection b = run_one_start(g, method, rng, config);
      if (b.cut() < result.best_cut) {
        result.best_cut = b.cut();
        result.best_method = method;
        if (keep_sides) {
          result.best_sides.assign(b.sides().begin(), b.sides().end());
        }
      }
      ++result.ok;
    } catch (const DeadlineExceeded& error) {
      ++result.timed_out;
      if (result.first_error.empty()) result.first_error = error.what();
    } catch (const std::bad_alloc& error) {
      ++result.failed;
      if (result.first_error.empty()) {
        result.first_error = error.what();
        result.oom = true;
      }
    } catch (const std::exception& error) {
      ++result.failed;
      if (result.first_error.empty()) result.first_error = error.what();
    } catch (...) {
      ++result.failed;
      if (result.first_error.empty()) result.first_error = "unknown exception";
    }
    result.cpu_seconds += timer.elapsed_seconds();
  }

  if (result.ok > 0) {
    result.status = TrialStatus::kOk;
  } else {
    result.best_cut = 0;  // no valid cut; callers must consult status
    if (result.failed > 0) {
      result.status = TrialStatus::kFailed;
    } else if (result.timed_out > 0) {
      result.status = TrialStatus::kTimedOut;
    } else {
      result.status = TrialStatus::kSkipped;
    }
  }
  return result;
}

}  // namespace gbis
