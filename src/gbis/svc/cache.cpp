#include "gbis/svc/cache.hpp"

#include <algorithm>
#include <iterator>

#include "gbis/svc/fingerprint.hpp"

namespace gbis {

std::size_t SvcCacheKeyHash::operator()(const SvcCacheKey& k) const {
  Hash64 h;
  h.add(k.fingerprint);
  h.add(static_cast<std::uint64_t>(k.method_key));
  h.add(static_cast<std::uint64_t>(k.budget));
  h.add(k.seed);
  h.add(k.deadline_bits);
  h.add(static_cast<std::uint64_t>(k.quality_key));
  return static_cast<std::size_t>(h.digest());
}

std::uint64_t SvcResultCache::value_bytes(const SvcCacheValue& value) {
  // Approximate resident cost: fixed envelope + the variable payloads.
  return sizeof(Entry) + value.method.size() + value.sides.size();
}

const SvcCacheValue* SvcResultCache::lookup(const SvcCacheKey& key) {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to MRU
  return &it->second->value;
}

void SvcResultCache::insert(const SvcCacheKey& key, SvcCacheValue value) {
  const std::uint64_t bytes = value_bytes(value);
  if (bytes > max_bytes_) return;  // oversized (or caching disabled)
  if (const auto it = map_.find(key); it != map_.end()) {
    // Refresh: deterministic solves make the new value identical, but
    // keeping the newest write is the least surprising policy.
    stats_.bytes -= it->second->bytes;
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    stats_.bytes += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_until_fits();
    return;
  }
  lru_.push_front(Entry{key, std::move(value), bytes});
  map_.emplace(key, lru_.begin());
  by_fingerprint_[key.fingerprint].push_back(lru_.begin());
  stats_.bytes += bytes;
  stats_.entries = map_.size();
  evict_until_fits();
}

const SvcCacheValue* SvcResultCache::best_for_fingerprint(
    std::uint64_t fingerprint) const {
  const auto it = by_fingerprint_.find(fingerprint);
  if (it == by_fingerprint_.end()) return nullptr;
  const SvcCacheValue* best = nullptr;
  for (const auto& entry_it : it->second) {
    const SvcCacheValue& value = entry_it->value;
    if (value.sides.empty()) continue;
    if (best == nullptr || value.cut < best->cut) best = &value;
  }
  return best;
}

void SvcResultCache::evict_until_fits() {
  while (stats_.bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    map_.erase(victim.key);
    const auto fp_it = by_fingerprint_.find(victim.key.fingerprint);
    if (fp_it != by_fingerprint_.end()) {
      auto& entries = fp_it->second;
      const auto victim_it = std::prev(lru_.end());
      entries.erase(std::remove(entries.begin(), entries.end(), victim_it),
                    entries.end());
      if (entries.empty()) by_fingerprint_.erase(fp_it);
    }
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = map_.size();
}

}  // namespace gbis
