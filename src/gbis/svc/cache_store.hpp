// Durable backing store for the partition service's result cache
// (svc/cache): an append-only JSONL journal with CRC-guarded lines and
// atomic tmp+rename compaction — the same publish idiom as the
// campaign checkpoint journal (harness/checkpoint).
//
// File format (one flat JSON object per line, util/json_lite contract):
//
//   {"type":"svc_cache","version":2}                          <- header
//   {"fingerprint":"<hex16>","method_key":N,"budget":N,"seed":N,
//    "deadline_bits":"<hex16>","cut":N,"method":"CKL","trials_ok":N,
//    "degraded":N,"warm":1,"sides":"0110...","crc":"<hex16>"} <- entry
//   {"lineage":1,"child":"<hex16>","parent":"<hex16>","batch":"<hex16>",
//    "adds":N,"dels":N,"vadds":N,"vdels":N,"edit":N,"depth":N,"pv":N,
//    "vertices":N,"edges":N,"crc":"<hex16>"}                  <- lineage
//
// Every entry carries the full solve-identity key (the same
// SvcCacheKey the live cache uses, graph fingerprint included) plus
// the cached value, and ends in a Hash64 CRC over the preceding bytes
// of its own line. The optional "warm" field (emitted only when set,
// so version-1 cold entries are byte-identical under version 2) marks
// a lineage warm-start result. Lineage lines journal the dynamic-graph
// subsystem's derivation edges (dyn/lineage) — identity only, no
// vertex maps — so a warm restart can answer repeated mutates
// byte-identically; restored edges are non-projectable until the chain
// is re-materialized. A crash mid-append leaves a torn tail; the CRC
// (or the structural gate) rejects it, and restore falls back to the
// longest valid prefix — corruption never crashes the service and a
// damaged line is never served. Version-1 files (no lineage lines, no
// warm fields) restore unchanged.
//
// Restore replays valid entries in append order into the LRU (so the
// recency order survives a restart), then compacts the file when the
// tail was damaged or the journal carries dead weight (refreshed or
// evicted entries). At runtime every insert appends one line and
// flushes before the scheduler emits the batch's responses, keeping
// the invariant that any response a client saw is recoverable from the
// journal. Single-driver like the cache itself: the service scheduler
// owns all calls on the dispatch thread.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

#include "gbis/dyn/lineage.hpp"
#include "gbis/svc/cache.hpp"

namespace gbis {

/// What a warm restart recovered (mirrored into svc.cache.* counters).
struct SvcCacheRestore {
  std::uint64_t entries_restored = 0;  ///< valid entries replayed
  std::uint64_t lineage_restored = 0;  ///< valid lineage edges replayed
  std::uint64_t lines_dropped = 0;     ///< invalid-tail lines discarded
  std::uint64_t bytes_written = 0;     ///< bytes appended during open
  bool compacted = false;              ///< the open rewrote the journal
};

/// The journal. Construct, then open_and_restore() once; append() /
/// append_lineage() per insert; maybe_compact() once per batch.
class SvcCacheStore {
 public:
  explicit SvcCacheStore(std::string path) : path_(std::move(path)) {}

  /// Opens the journal and replays its longest valid prefix into
  /// `cache` and (when non-null) `lineage` (both should be empty).
  /// Tolerates a missing file (fresh journal), a torn or corrupt tail
  /// (drops it), and a foreign or wrong-version header (restores
  /// nothing, rewrites fresh). Returns false only when the path cannot
  /// be opened for writing — the one condition the caller should treat
  /// as fatal configuration.
  bool open_and_restore(SvcResultCache& cache, SvcLineage* lineage,
                        SvcCacheRestore& report);

  /// Appends one entry line and flushes. Returns the bytes appended
  /// (0 on a write error, which also clears ok()).
  std::uint64_t append(const SvcCacheKey& key, const SvcCacheValue& value);

  /// Appends one lineage line and flushes (same error contract).
  std::uint64_t append_lineage(const LineageRecord& record);

  /// Compacts when the journal has outgrown its resident state (dead
  /// entries from refreshes and evictions): rewrites lineage records
  /// in insertion order, then live cache entries in LRU->MRU order, to
  /// `<path>.tmp`, renames over the journal, and reopens for append.
  /// Returns the bytes written by the rewrite, 0 when no compaction
  /// ran. `lineage` may be null (no lineage lines are written).
  std::uint64_t maybe_compact(const SvcResultCache& cache,
                              const SvcLineage* lineage);

  /// False after any write failure; the service keeps serving (the
  /// cache still works, durability is degraded) and warns once.
  bool ok() const { return ok_; }
  const std::string& path() const { return path_; }
  /// Entry lines in the current journal file (restore + appends).
  std::uint64_t file_entries() const { return file_entries_; }

  // Wire format, exposed for the corruption-corpus tests.
  static std::string header_line();
  static std::string encode_entry(const SvcCacheKey& key,
                                  const SvcCacheValue& value);
  static bool decode_entry(const std::string& line, SvcCacheKey& key,
                           SvcCacheValue& value);
  static std::string encode_lineage(const LineageRecord& record);
  /// Decoded records carry an empty vertex map (maps are not
  /// journaled): valid for identity, non-projectable for warm starts.
  static bool decode_lineage(const std::string& line, LineageRecord& record);
  /// True when `line` is a lineage line (top-level "lineage" key) —
  /// how restore dispatches between the two line kinds.
  static bool is_lineage_line(const std::string& line);
  /// The CRC every entry line carries (Hash64 over the line's bytes
  /// before the ",\"crc\":" suffix, length-extended).
  static std::uint64_t text_crc(const std::string& text);

 private:
  std::uint64_t rewrite(const SvcResultCache& cache,
                        const SvcLineage* lineage);

  std::string path_;
  std::ofstream out_;
  std::uint64_t file_entries_ = 0;
  bool ok_ = true;
};

}  // namespace gbis
