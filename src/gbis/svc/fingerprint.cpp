#include "gbis/svc/fingerprint.hpp"

namespace gbis {

void hash_graph(Hash64& h, const Graph& g) {
  h.add(static_cast<std::uint64_t>(g.num_vertices()));
  h.add(g.num_edges());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    h.add(static_cast<std::uint64_t>(g.vertex_weight(v)));
    const auto neighbors = g.neighbors(v);
    const auto weights = g.edge_weights(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      if (neighbors[i] <= v) continue;
      h.add(static_cast<std::uint64_t>(v));
      h.add(static_cast<std::uint64_t>(neighbors[i]));
      h.add(static_cast<std::uint64_t>(weights[i]));
    }
  }
}

std::uint64_t graph_fingerprint(const Graph& g) {
  Hash64 h;
  hash_graph(h, g);
  return h.digest();
}

}  // namespace gbis
