#include "gbis/svc/access_log.hpp"

#include <utility>

#include "gbis/util/json_lite.hpp"

namespace gbis {

std::string encode_access_entry(const AccessEntry& entry) {
  std::string line = "{\"seq\":" + std::to_string(entry.seq);
  line += ",\"id\":";
  append_json_string(line, entry.id);
  line += ",\"op\":";
  append_json_string(line, entry.op);
  line += ",\"status\":";
  append_json_string(line, entry.status);
  if (!entry.cache.empty()) {
    line += ",\"cache\":";
    append_json_string(line, entry.cache);
  }
  if (!entry.method.empty()) {
    line += ",\"method\":";
    append_json_string(line, entry.method);
  }
  if (entry.has_fingerprint) {
    line += ",\"fingerprint\":\"" + to_hex16(entry.fingerprint) + "\"";
  }
  if (entry.has_cut) {
    line += ",\"cut\":" + std::to_string(entry.cut);
  }
  if (!entry.error.empty()) {
    line += ",\"error\":";
    append_json_string(line, entry.error);
  }
  // Timing fields last (and only here), so ",\"t_..._us\":N" stripping
  // recovers the deterministic prefix exactly.
  line += ",\"t_queue_us\":" + std::to_string(entry.t_queue_us);
  line += ",\"t_solve_us\":" + std::to_string(entry.t_solve_us);
  line += ",\"t_total_us\":" + std::to_string(entry.t_total_us);
  line += "}";
  return line;
}

AccessLog::AccessLog(std::string path) : path_(std::move(path)) {
  out_.open(path_, std::ios::out | std::ios::app);
}

void AccessLog::append(const AccessEntry& entry) {
  if (!ok()) return;
  std::string line = encode_access_entry(entry);
  line.push_back('\n');
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
}

void AccessLog::flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace gbis
