#include "gbis/svc/access_log.hpp"

#include <cstdio>
#include <utility>

#include "gbis/util/json_lite.hpp"

namespace gbis {

std::string encode_access_entry(const AccessEntry& entry) {
  std::string line = "{\"seq\":" + std::to_string(entry.seq);
  line += ",\"id\":";
  append_json_string(line, entry.id);
  line += ",\"op\":";
  append_json_string(line, entry.op);
  line += ",\"status\":";
  append_json_string(line, entry.status);
  if (entry.has_trace) {
    line += ",\"trace\":\"" + to_hex16(entry.trace) + "\"";
  }
  if (!entry.cache.empty()) {
    line += ",\"cache\":";
    append_json_string(line, entry.cache);
  }
  if (!entry.method.empty()) {
    line += ",\"method\":";
    append_json_string(line, entry.method);
  }
  if (entry.has_fingerprint) {
    line += ",\"fingerprint\":\"" + to_hex16(entry.fingerprint) + "\"";
  }
  if (entry.has_cut) {
    line += ",\"cut\":" + std::to_string(entry.cut);
  }
  if (!entry.error.empty()) {
    line += ",\"error\":";
    append_json_string(line, entry.error);
  }
  // Timing fields last (and only here), so ",\"t_..._us\":N" stripping
  // recovers the deterministic prefix exactly.
  line += ",\"t_queue_us\":" + std::to_string(entry.t_queue_us);
  line += ",\"t_solve_us\":" + std::to_string(entry.t_solve_us);
  line += ",\"t_total_us\":" + std::to_string(entry.t_total_us);
  line += "}";
  return line;
}

AccessLog::AccessLog(std::string path, std::uint64_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  out_.open(path_, std::ios::out | std::ios::app);
  if (out_.is_open()) {
    const auto pos = out_.tellp();
    bytes_ = pos > 0 ? static_cast<std::uint64_t>(pos) : 0;
  }
}

void AccessLog::maybe_rotate(std::size_t incoming_bytes) {
  // Rotate before the write that would cross the bound, never on an
  // empty file (one oversized line still gets logged whole).
  if (max_bytes_ == 0 || bytes_ == 0 || bytes_ + incoming_bytes <= max_bytes_) {
    return;
  }
  out_.flush();
  out_.close();
  std::rename(path_.c_str(), (path_ + ".1").c_str());
  out_.open(path_, std::ios::out | std::ios::trunc);
  bytes_ = 0;
}

void AccessLog::append(const AccessEntry& entry) {
  if (!ok()) return;
  std::string line = encode_access_entry(entry);
  line.push_back('\n');
  maybe_rotate(line.size());
  if (!ok()) return;
  out_.write(line.data(), static_cast<std::streamsize>(line.size()));
  bytes_ += line.size();
}

void AccessLog::flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace gbis
