// The partition service scheduler: an embeddable front end that turns
// NDJSON request lines (svc/protocol) into solved bisections, batching
// admitted requests onto the harness ThreadPool and answering repeats
// from the LRU result cache (svc/cache).
//
// Determinism contract — the whole point of the design:
//   * Responses are emitted in request-arrival order (the single
//     exception is a queue-full rejection, which is produced at submit
//     time because a full queue has nowhere to hold it).
//   * All cache lookups, cache inserts, and counter updates happen on
//     the dispatching thread, in arrival order; the worker pool only
//     ever runs the solve bodies. Combined with the per-request seeding
//     scheme (svc/policy), the response byte stream is a pure function
//     of the request byte stream plus the service options, for ANY
//     worker count — `gbis serve --replay` asserts exactly this.
//   * Duplicate solve keys inside one batch coalesce onto the first
//     occurrence (the leader); followers answer "cache":"coalesced"
//     without spending budget.
//
// The service is single-driver: one thread calls submit_line /
// process_batch / drain (the CLI serve loop, or a test). It is not a
// socket server on purpose — stdin/stdout framing keeps it trivially
// embeddable and testable; callers who need transport put one in front.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbis/dyn/graph_store.hpp"
#include "gbis/dyn/lineage.hpp"
#include "gbis/harness/fault_injection.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/harness/thread_pool.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/obs/flight_recorder.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/obs/trace_export.hpp"
#include "gbis/svc/access_log.hpp"
#include "gbis/svc/cache.hpp"
#include "gbis/svc/cache_store.hpp"
#include "gbis/svc/policy.hpp"
#include "gbis/svc/protocol.hpp"

namespace gbis {

/// Service configuration. Defaults suit the CLI; tests shrink them.
struct SvcOptions {
  /// Admitted requests dispatched per process_batch call. The serve
  /// loop flushes whenever this many are queued (and at EOF), so it is
  /// also the coalescing window. 1 = fully interactive, no batching.
  std::size_t batch_size = 16;
  /// Admission bound: submit_line rejects ("rejected: queue full")
  /// once this many requests are queued and unprocessed.
  std::size_t max_queue = 256;
  /// Result-cache byte budget; 0 disables caching.
  std::uint64_t cache_bytes = 64ull << 20;
  /// Trials per solve when the request does not say ("budget":0/absent).
  std::uint32_t default_budget = 2;
  /// Request deadline in seconds when the request does not say; 0 =
  /// unlimited.
  double default_deadline_seconds = 0;
  /// Seed for requests without one. Part of the solve identity.
  std::uint64_t default_seed = 42;
  /// Ladder rung for "auto" solves that do not say ("quality" absent).
  /// kBest races the historical portfolio, so pre-ladder request
  /// streams replay byte-identically under the default.
  QualityTier default_quality = QualityTier::kBest;
  /// Worker threads for cross-request parallelism; 0 = hardware.
  unsigned threads = 0;
  /// Per-request JSONL access log destination (svc/access_log);
  /// "" = off. Opened append-mode at construction.
  std::string access_log_path;
  /// Access-log size bound in whole mebibytes: once the file would
  /// cross it, it rolls to `<path>.1` and starts fresh. 0 = unbounded
  /// (the historical behavior).
  std::uint64_t access_log_max_mb = 0;
  /// Flight-recorder dump path (`--flight-file` / GBIS_SVC_FLIGHT):
  /// the fd pre-opened for async-signal-safe JSONL dumps on SIGQUIT
  /// and the injected-crash path. "" = the recorder still serves
  /// op:"trace" from memory but signal dumps go nowhere.
  std::string flight_file;
  /// Completed span sets held by the flight recorder's ring.
  std::uint32_t flight_ring = 64;
  /// Slow-request sampling threshold in milliseconds: requests whose
  /// total latency reaches it are recorded as SvcSlowSamples for the
  /// Chrome trace. < 0 disables sampling; 0 samples every request
  /// (which is what makes the sampled *set* testable — see
  /// docs/SERVICE.md).
  double slow_ms = -1;
  /// Slow samples held before stride-doubling decimation kicks in.
  std::uint32_t slow_capacity = 128;
  /// Durable result-cache journal path (svc/cache_store); "" = the
  /// cache is memory-only. A warm restart replays the journal before
  /// the first request, so repeats of pre-crash solves answer as hits
  /// with byte-identical payloads.
  std::string cache_file;
  /// Service-scoped fault plan (GBIS_SVC_FAULTS); empty = no faults.
  SvcFaultPlan faults;
  /// Overload brownout ladder (see docs/ROBUSTNESS.md): false turns
  /// every level into 0 (no clamping, no shedding).
  bool brownout = true;
  /// Cold-solve outcomes in the deadline-miss window the brownout
  /// controller watches.
  std::uint32_t brownout_window = 32;
  /// Graph-store byte budget (dyn/graph_store): materialized graphs a
  /// mutate or solve-by-fingerprint request can reference. 0 keeps
  /// only the most recent graph (the store always retains one).
  std::uint64_t graph_store_bytes = 256ull << 20;
  /// Lineage chain-depth cap: a mutate whose parent already sits at
  /// this depth is rejected ("mutate: lineage depth limit ...").
  std::uint32_t lineage_max_depth = 64;
  /// Lineage record cap; at the cap new mutates are rejected
  /// ("mutate: lineage store full").
  std::uint64_t lineage_max_records = 65536;
  /// Warm-start solves (dyn/warm): project a cached ancestor partition
  /// through the lineage and refine with bounded KL instead of cold
  /// portfolio racing. false = every solve runs cold.
  bool warm = true;
  /// Warm-start edit guardrail: the chain's cumulative edit distance
  /// must stay within this fraction of the target's |E|+1, else the
  /// solve runs cold (the ancestor partition is too stale to help).
  double warm_edit_ratio = 0.25;
  /// KL pass cap for warm refinement.
  std::uint32_t warm_max_passes = 8;
  /// Solver knobs shared by every request (KlOptions etc.). The obs
  /// block and metric sinks are ignored — the service keeps its own.
  RunConfig run;
};

/// Overlays GBIS_SVC_CACHE_MB (whole mebibytes; 0 disables the cache),
/// GBIS_SVC_ACCESS_LOG (a path), GBIS_SVC_SLOW_MS (milliseconds,
/// >= 0), GBIS_SVC_CACHE_FILE (a journal path), GBIS_SVC_FAULTS (a
/// service fault plan), GBIS_SVC_BROWNOUT (0/1),
/// GBIS_SVC_BROWNOUT_WINDOW (> 0), GBIS_SVC_GRAPH_MB (whole mebibytes
/// for the graph store), GBIS_SVC_WARM (0/1), and GBIS_SVC_QUALITY
/// (fast|balanced|best, the ladder rung for "auto" solves that do not
/// say), GBIS_SVC_FLIGHT (a flight-recorder dump path),
/// GBIS_SVC_FLIGHT_RING (> 0 completed span sets held), and
/// GBIS_SVC_ACCESS_LOG_MAX_MB (whole mebibytes; 0 = unbounded) onto
/// `base`.
/// Malformed values warn on stderr and keep the default, matching
/// every other GBIS_* knob.
SvcOptions svc_options_from_env(SvcOptions base);

/// The service. See the file comment for the determinism contract.
class Service {
 public:
  explicit Service(SvcOptions options);
  ~Service();  // out-of-line: Pending is an implementation detail

  /// Feeds one request line. Responses that become ready — which is
  /// only a queue-full rejection here; everything else waits for a
  /// batch — are appended to `out` as encoded lines without trailing
  /// newlines. Call process_batch once pending() reaches batch_size.
  /// The two-argument form is the stdio path: connection id 0 with a
  /// service-internal line ordinal, so its trace ids are a pure
  /// function of line position.
  void submit_line(const std::string& line, std::vector<std::string>& out);

  /// Transport-aware submit: `conn_id` and `conn_ordinal` (lines
  /// previously submitted on that connection) derive the request's
  /// trace id via splitmix64_at(conn_id, conn_ordinal) — deterministic
  /// per (connection, line) at any thread count. The listener calls
  /// this; embedders with their own framing can too.
  void submit_line(const std::string& line, std::vector<std::string>& out,
                   std::uint64_t conn_id, std::uint64_t conn_ordinal);

  /// Dispatches every queued request and appends their responses to
  /// `out` in arrival order. When `stop` is non-null and set, queued
  /// solves drain as "shutdown" errors instead of running (in-flight
  /// pool jobs still finish) — the kill-mid-replay path.
  void process_batch(std::vector<std::string>& out,
                     const std::atomic<bool>* stop = nullptr);

  /// Flushes everything still queued (EOF / shutdown).
  void drain(std::vector<std::string>& out,
             const std::atomic<bool>* stop = nullptr);

  std::size_t pending() const { return queue_.size(); }
  const SvcOptions& options() const { return options_; }
  const SvcCacheStats& cache_stats() const { return cache_.stats(); }
  const GraphStoreStats& graph_store_stats() const {
    return graph_store_.stats();
  }
  /// Lineage records currently held (tests and the stats op).
  std::uint64_t lineage_size() const { return lineage_.size(); }
  /// Service-lifetime obs counters, gauges, and latency histograms
  /// (svc.* plus nothing else; solver counters stay with the solver
  /// runs that own them). Cache counters and svc.cache.bytes are
  /// mirrored once per batch — metrics_snapshot() re-mirrors them
  /// fresh, which is what the prom exposition and stats op use.
  const TrialMetrics& metrics() const { return metrics_; }
  TrialMetrics metrics_snapshot() const;
  /// Slow requests sampled so far (options().slow_ms >= 0); feed to
  /// write_svc_trace.
  const std::vector<SvcSlowSample>& slow_samples() const {
    return slow_samples_;
  }
  /// False when the configured access log could not be opened.
  bool access_log_ok() const;
  /// False when the configured cache journal could not be opened for
  /// writing (corruption is tolerated and is NOT this — see
  /// svc/cache_store).
  bool cache_store_ok() const;
  /// Current brownout ladder rung (0 = normal ... 3 = shedding),
  /// recomputed at every batch dispatch.
  std::uint32_t brownout_level() const { return brownout_level_; }
  /// The request-trace flight recorder (always present; the ring backs
  /// op:"trace" even with no dump file configured).
  const FlightRecorder& flight() const { return *flight_; }
  /// False when the configured --flight-file could not be opened.
  bool flight_ok() const { return flight_ok_; }
  /// Prometheus exposition with latency-histogram exemplars attached —
  /// what the stats op's "prom" format and the CLI --stats-file
  /// snapshot both emit.
  void write_prom(std::ostream& out) const;

  /// Listener hooks (svc/listener.*). Single-driver like everything
  /// else here: the listener event loop runs on the same thread that
  /// calls submit_line/process_batch, so these are plain updates of
  /// the service's own metric slots.
  void note_conn_opened();                ///< svc.conn.accepted + gauge
  void note_conn_closed(bool slow);       ///< svc.conn.closed (+slow_closed)
  void note_conn_rejected();              ///< svc.conn.rejected (limit)
  void note_quota_rejected();             ///< svc.quota_rejected

 private:
  struct Pending;

  void prepare(Pending& entry, std::size_t queue_index,
               std::unordered_map<SvcCacheKey, std::size_t, SvcCacheKeyHash>&
                   leaders,
               std::vector<std::size_t>& cold_queue_index);
  /// Phase-1 mutate resolution (arrival order, dispatch thread): the
  /// whole op — parent lookup, apply, lineage + graph-store inserts,
  /// journal append — completes here, so a later request in the same
  /// batch can already reference the child fingerprint.
  void prepare_mutate(Pending& entry);
  /// Plans a warm start for a cold solve leader (phase 1): lineage
  /// walk + partition projection onto `entry`'s graph.
  void plan_warm(Pending& entry);
  void finalize_solve(Pending& entry, const PolicyResult& result);
  void update_brownout();
  void note_solve_outcome(bool deadline_miss);
  void fill_stats(SvcResponse& response) const;
  /// Phase-3 handler for op:"trace": exports one span set (request has
  /// a "trace" id) or the whole completed ring.
  void fill_trace(Pending& entry);
  void finalize_telemetry(Pending& entry, double now_seconds);
  void record_slow(const Pending& entry, double total_seconds);
  static void fill_from_value(SvcResponse& response, const SvcCacheValue& value,
                              bool want_sides);

  SvcOptions options_;
  ThreadPool pool_;
  SvcResultCache cache_;
  GraphStore graph_store_;
  SvcLineage lineage_;
  std::unique_ptr<SvcCacheStore> store_;  ///< non-null with cache_file
  bool store_open_ok_ = true;
  bool store_warned_ = false;  ///< one stderr warning per write failure
  TrialMetrics metrics_;
  std::vector<std::unique_ptr<Pending>> queue_;
  std::unique_ptr<AccessLog> access_log_;
  std::unique_ptr<FlightRecorder> flight_;
  bool flight_ok_ = true;
  std::uint64_t stdio_submitted_ = 0;  ///< 2-arg submit_line ordinal
  /// Max-latency exemplars per latency histogram (stats v5 +
  /// OpenMetrics exemplar rows).
  HistExemplars request_exemplars_;
  HistExemplars solve_exemplars_;
  HistExemplars queue_exemplars_;
  std::vector<SvcSlowSample> slow_samples_;
  WallTimer clock_;               ///< service epoch for all timings
  std::uint64_t next_seq_ = 0;    ///< request ordinal (access-log "seq")
  std::uint64_t slow_ordinal_ = 0;  ///< slow samples offered so far
  std::uint64_t slow_stride_ = 1;   ///< keep every stride-th slow sample
  std::uint64_t batch_ordinal_ = 0;  ///< non-empty batches dispatched
  std::uint64_t cold_ordinal_ = 0;   ///< cold solves started (leaders)
  // Brownout controller state: the current rung plus a sliding window
  // of recent cold-solve outcomes (true = deadline miss), all updated
  // on the dispatch thread in arrival order.
  std::uint32_t brownout_level_ = 0;
  std::deque<bool> miss_window_;
  std::uint64_t window_misses_ = 0;
};

}  // namespace gbis
