// One accepted socket of the partition-service listener: per-connection
// NDJSON framing (read side) and a bounded, flushable response buffer
// (write side). The connection owns nothing but its fd and buffers —
// all protocol decisions (quotas, dispatch, routing) live in
// svc/listener.*, and everything here runs on the listener's single
// driver thread.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gbis {

/// One framing event extracted from the read buffer: either a complete
/// request line, or the notice that a line overran the size bound (the
/// line's bytes are discarded up to the next newline — the connection
/// resyncs and stays usable).
struct ConnEvent {
  enum class Kind : std::uint8_t { kLine = 0, kOverlong };
  Kind kind = Kind::kLine;
  std::string line;  ///< complete request line (kLine only)
};

class Connection {
 public:
  /// Takes ownership of `fd` (closed on destruction). `id` is the
  /// listener-assigned ordinal used for response routing.
  Connection(int fd, std::uint64_t id);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  std::uint64_t id() const { return id_; }

  /// Drains whatever the socket currently holds and appends framing
  /// events. A line longer than `max_line_bytes` (exclusive of the
  /// newline) yields one kOverlong event and discard-until-newline
  /// resync. Returns false when the peer hung up or the read errored
  /// fatally — the caller should finish flushing and close. On EOF a
  /// trailing unterminated line is delivered as a final kLine (the
  /// stdio path's getline does the same).
  bool read_events(std::vector<ConnEvent>& events,
                   std::size_t max_line_bytes);

  /// Queues one response line (newline appended) for writing.
  void queue_line(const std::string& line);

  /// Writes as much buffered output as the socket accepts right now.
  /// `now_seconds` stamps write progress for the stall clock. Returns
  /// false on a fatal write error (peer reset).
  bool flush_writes(double now_seconds);

  bool wants_write() const { return write_pos_ < write_buffer_.size(); }
  std::size_t write_backlog() const {
    return write_buffer_.size() - write_pos_;
  }
  /// True when output has been pending without any byte of progress
  /// for longer than `timeout_seconds` — the slow-client signal.
  bool write_stalled(double now_seconds, double timeout_seconds) const {
    return wants_write() &&
           now_seconds - last_progress_seconds_ > timeout_seconds;
  }

  /// Peer sent EOF (or errored): no more reads; close once the write
  /// buffer drains and no responses are owed.
  void mark_closing() { closing_ = true; }
  bool closing() const { return closing_; }

  /// Requests submitted to the service and not yet answered. The
  /// listener maintains this; it gates both the per-connection quota
  /// and close-after-EOF.
  std::size_t inflight = 0;
  /// Lifetime request count (quota accounting / access-log style
  /// diagnostics).
  std::uint64_t requests = 0;
  /// Lines actually submitted to the service (excludes quota/overlong
  /// rejections answered locally) — the per-connection trace-id
  /// ordinal, so trace ids are a pure function of (connection, line).
  std::uint64_t submitted = 0;

 private:
  int fd_;
  std::uint64_t id_;
  std::string read_buffer_;
  bool discarding_ = false;  ///< inside an overlong line, seeking '\n'
  std::string write_buffer_;
  std::size_t write_pos_ = 0;
  double last_progress_seconds_ = 0;
  bool closing_ = false;
};

}  // namespace gbis
