#include "gbis/svc/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "gbis/io/edge_list.hpp"
#include "gbis/io/metis.hpp"
#include "gbis/svc/fingerprint.hpp"

namespace gbis {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Same stderr shape as the other GBIS_* knobs: name the variable and
// the rejected text, then keep the default.
void warn_rejected(const char* var, const char* text) {
  std::cerr << "gbis: ignoring malformed " << var << "=\"" << text
            << "\" (keeping default)\n";
}

}  // namespace

SvcOptions svc_options_from_env(SvcOptions base) {
  if (const char* v = std::getenv("GBIS_SVC_CACHE_MB"); v != nullptr) {
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(v, &end, 10);
    if (*v == '\0' || end == nullptr || *end != '\0') {
      warn_rejected("GBIS_SVC_CACHE_MB", v);
    } else {
      base.cache_bytes = static_cast<std::uint64_t>(mb) << 20;
    }
  }
  return base;
}

/// One queued request: everything phase 1 resolves (graph, solve
/// identity, cache disposition) plus the response under construction.
struct Service::Pending {
  SvcRequest request;
  SvcResponse response;
  bool done = false;  ///< response fully materialized before phase 2

  // Solve identity (valid once `has_key`).
  SvcCacheKey key;
  bool has_key = false;
  PolicySpec spec;
  std::uint64_t seed = 0;

  Graph graph;            ///< loaded payload; kept only for cold leaders
  bool cold = false;      ///< leader of a cold solve
  std::size_t cold_index = 0;   ///< slot in the batch's cold-job array
  bool coalesced = false;       ///< follower of a same-batch leader
  std::size_t leader_cold_index = 0;
};

Service::~Service() = default;

Service::Service(SvcOptions options)
    : options_(options),
      pool_(ThreadPool::resolve_threads(options.threads)),
      cache_(options.cache_bytes) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
  if (options_.default_budget == 0) options_.default_budget = 1;
}

void Service::submit_line(const std::string& line,
                          std::vector<std::string>& out) {
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcRequests)];
  auto entry = std::make_unique<Pending>();
  std::string error;
  if (!parse_request(line, entry->request, error)) {
    entry->response.id = entry->request.id;
    entry->response.ok = false;
    entry->response.error = error;
    entry->done = true;
  }
  if (queue_.size() >= options_.max_queue) {
    // Nowhere to hold it: this is the one response that jumps the
    // arrival-order queue (and the rejection itself is deterministic —
    // queue depth is a pure function of the submit/process call
    // sequence).
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcRejected)];
    SvcResponse rejected;
    rejected.id = entry->request.id;
    rejected.ok = false;
    rejected.error = "rejected: queue full (" + std::to_string(queue_.size()) +
                     " queued, max " + std::to_string(options_.max_queue) +
                     ")";
    out.push_back(encode_response(rejected));
    return;
  }
  queue_.push_back(std::move(entry));
}

void Service::prepare(
    Pending& entry, std::size_t queue_index,
    std::unordered_map<SvcCacheKey, std::size_t, SvcCacheKeyHash>& leaders,
    std::vector<std::size_t>& cold_queue_index) {
  const SvcRequest& req = entry.request;
  entry.response.id = req.id;

  // Resolve the solve identity: method selector, budget, deadline,
  // seed. Unknown method names are protocol errors, not solve failures.
  entry.spec.portfolio = req.method == "auto";
  if (!entry.spec.portfolio &&
      !method_from_name(req.method, entry.spec.method)) {
    entry.response.ok = false;
    entry.response.error = "parse: unknown method \"" + req.method + "\"";
    entry.done = true;
    return;
  }
  entry.spec.budget = req.budget != 0 ? req.budget : options_.default_budget;
  entry.spec.deadline_seconds = req.deadline_seconds >= 0
                                    ? req.deadline_seconds
                                    : options_.default_deadline_seconds;
  entry.seed = req.has_seed ? req.seed : options_.default_seed;

  // Load the graph payload. Path errors are I/O; inline payloads that
  // fail to parse are protocol errors.
  try {
    if (!req.path.empty()) {
      entry.graph = ends_with(req.path, ".metis")
                        ? read_metis_file(req.path)
                        : read_edge_list_file(req.path);
    } else {
      std::istringstream in(req.inline_graph);
      entry.graph = read_edge_list(in);
    }
  } catch (const std::exception& error) {
    entry.response.ok = false;
    entry.response.error =
        (req.path.empty() ? std::string("parse: inline graph: ")
                          : std::string("io: ")) +
        error.what();
    entry.done = true;
    return;
  }

  entry.key.fingerprint = graph_fingerprint(entry.graph);
  entry.key.method_key =
      entry.spec.portfolio
          ? SvcCacheKey::kPortfolio
          : static_cast<std::uint32_t>(entry.spec.method);
  entry.key.budget = entry.spec.budget;
  entry.key.seed = entry.seed;
  entry.key.deadline_bits = std::bit_cast<std::uint64_t>(
      entry.spec.deadline_seconds);
  entry.has_key = true;
  entry.response.fingerprint = entry.key.fingerprint;

  // Cache lookup and within-batch coalescing, on the dispatch thread in
  // arrival order — the hit/miss/coalesce disposition of every request
  // is decided before any solve runs.
  if (const SvcCacheValue* value = cache_.lookup(entry.key)) {
    // Materialize now: the pointer dies at the next insert.
    entry.response.ok = true;
    entry.response.cache = "hit";
    fill_from_value(entry.response, *value, req.want_sides);
    entry.done = true;
    return;
  }
  if (const auto it = leaders.find(entry.key); it != leaders.end()) {
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcCoalesced)];
    entry.coalesced = true;
    entry.leader_cold_index = it->second;
    entry.graph = Graph();  // the leader's copy is the one that solves
    return;
  }
  entry.cold = true;
  entry.cold_index = cold_queue_index.size();
  leaders.emplace(entry.key, entry.cold_index);
  cold_queue_index.push_back(queue_index);
}

void Service::fill_from_value(SvcResponse& response,
                              const SvcCacheValue& value, bool want_sides) {
  response.has_solve = true;
  response.cut = value.cut;
  response.method = value.method;
  response.trials_ok = value.trials_ok;
  response.degraded = value.trials_degraded;
  if (want_sides) {
    response.sides.reserve(value.sides.size());
    for (const std::uint8_t side : value.sides) {
      response.sides.push_back(side != 0 ? '1' : '0');
    }
  }
}

void Service::finalize_solve(Pending& entry, const PolicyResult& result) {
  SvcResponse& response = entry.response;
  switch (result.status) {
    case TrialStatus::kOk: {
      SvcCacheValue value;
      value.cut = result.best_cut;
      value.method = method_name(result.best_method);
      value.trials_ok = result.ok;
      value.trials_degraded = result.failed + result.timed_out + result.skipped;
      value.sides = result.best_sides;
      response.ok = true;
      fill_from_value(response, value, entry.request.want_sides);
      if (entry.cold) cache_.insert(entry.key, std::move(value));
      break;
    }
    case TrialStatus::kTimedOut:
      response.ok = false;
      response.error = "deadline exceeded before any trial completed";
      break;
    case TrialStatus::kFailed:
      response.ok = false;
      response.error = "internal: " + result.first_error;
      break;
    case TrialStatus::kSkipped:
      response.ok = false;
      response.error = "shutdown: request drained before any trial ran";
      break;
  }
}

void Service::fill_stats(SvcResponse& response) const {
  const SvcCacheStats& cache = cache_.stats();
  const auto counter = [this](Counter c) {
    return metrics_.counters[static_cast<std::size_t>(c)];
  };
  response.stats = {
      {"requests", counter(Counter::kSvcRequests)},
      {"rejected", counter(Counter::kSvcRejected)},
      {"coalesced", counter(Counter::kSvcCoalesced)},
      {"cache_hits", cache.hits},
      {"cache_misses", cache.misses},
      {"cache_evictions", cache.evictions},
      {"cache_entries", cache.entries},
      {"cache_bytes", cache.bytes},
      {"cache_max_bytes", cache_.max_bytes()},
  };
}

void Service::process_batch(std::vector<std::string>& out,
                            const std::atomic<bool>* stop) {
  if (queue_.empty()) return;
  const bool stopping =
      stop != nullptr && stop->load(std::memory_order_acquire);

  // Phase 1 (dispatch thread, arrival order): parse results are already
  // in; resolve identities, load graphs, decide hit/coalesce/cold.
  std::unordered_map<SvcCacheKey, std::size_t, SvcCacheKeyHash> leaders;
  std::vector<std::size_t> cold_queue_index;  // queue slots of cold leaders
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Pending& entry = *queue_[i];
    if (entry.done) continue;
    if (entry.request.op != SvcRequest::Op::kSolve) continue;
    if (stopping) {
      entry.response.id = entry.request.id;
      entry.response.ok = false;
      entry.response.error = "shutdown: request drained before any trial ran";
      entry.done = true;
      continue;
    }
    prepare(entry, i, leaders, cold_queue_index);
  }

  // Phase 2 (worker pool): run the cold solves, one pool job each —
  // cross-request parallelism; trials inside a request stay serial
  // (svc/policy). Workers touch only their own slots.
  std::vector<PolicyResult> results(cold_queue_index.size());
  if (!cold_queue_index.empty()) {
    const auto outcomes = pool_.parallel_for_collect(
        cold_queue_index.size(),
        [&](std::size_t j) {
          Pending& entry = *queue_[cold_queue_index[j]];
          results[j] = run_policy(entry.graph, entry.spec, entry.seed,
                                  options_.run, /*keep_sides=*/true, stop);
        },
        stop);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      if (outcomes[j].state == JobState::kDone) continue;
      // kNotRun (drained) stays kSkipped; a thrown job becomes kFailed.
      results[j] = PolicyResult{};
      if (outcomes[j].state == JobState::kError) {
        results[j].status = TrialStatus::kFailed;
        try {
          std::rethrow_exception(outcomes[j].error);
        } catch (const std::exception& error) {
          results[j].first_error = error.what();
        } catch (...) {
          results[j].first_error = "unknown exception";
        }
      }
    }
  }

  // Phase 3 (dispatch thread, arrival order): cache inserts, follower
  // copies, ping/stats payloads, and the response stream itself.
  for (auto& entry_ptr : queue_) {
    Pending& entry = *entry_ptr;
    if (!entry.done) {
      if (entry.request.op == SvcRequest::Op::kPing) {
        entry.response.id = entry.request.id;
        entry.response.ok = true;
        entry.response.op = "ping";
      } else if (entry.request.op == SvcRequest::Op::kStats) {
        entry.response.id = entry.request.id;
        entry.response.ok = true;
        entry.response.op = "stats";
        fill_stats(entry.response);
      } else if (entry.cold) {
        entry.response.cache = "miss";
        finalize_solve(entry, results[entry.cold_index]);
      } else if (entry.coalesced) {
        entry.response.cache = "coalesced";
        finalize_solve(entry, results[entry.leader_cold_index]);
      }
    }
    out.push_back(encode_response(entry.response));
  }
  queue_.clear();

  // Mirror the cache's own monotone counters into the obs catalog
  // (absolute assignment: both sides count service lifetime).
  const SvcCacheStats& cache = cache_.stats();
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheHits)] =
      cache.hits;
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheMisses)] =
      cache.misses;
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheEvictions)] =
      cache.evictions;
}

void Service::drain(std::vector<std::string>& out,
                    const std::atomic<bool>* stop) {
  while (!queue_.empty()) process_batch(out, stop);
}

}  // namespace gbis
