#include "gbis/svc/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "gbis/dyn/mutation.hpp"
#include "gbis/dyn/warm.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/io/metis.hpp"
#include "gbis/obs/prom_export.hpp"
#include "gbis/rng/splitmix.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Same stderr shape as the other GBIS_* knobs: name the variable and
// the rejected text, then keep the default.
void warn_rejected(const char* var, const char* text) {
  std::cerr << "gbis: ignoring malformed " << var << "=\"" << text
            << "\" (keeping default)\n";
}

const char* op_name(SvcRequest::Op op) {
  switch (op) {
    case SvcRequest::Op::kSolve: return "solve";
    case SvcRequest::Op::kPing: return "ping";
    case SvcRequest::Op::kStats: return "stats";
    case SvcRequest::Op::kMutate: return "mutate";
    case SvcRequest::Op::kTrace: return "trace";
  }
  return "solve";
}

std::uint64_t to_us(double seconds) {
  if (!(seconds > 0)) return 0;
  return static_cast<std::uint64_t>(std::llround(seconds * 1e6));
}

}  // namespace

SvcOptions svc_options_from_env(SvcOptions base) {
  if (const char* v = std::getenv("GBIS_SVC_CACHE_MB"); v != nullptr) {
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(v, &end, 10);
    if (*v == '\0' || end == nullptr || *end != '\0') {
      warn_rejected("GBIS_SVC_CACHE_MB", v);
    } else {
      base.cache_bytes = static_cast<std::uint64_t>(mb) << 20;
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_ACCESS_LOG"); v != nullptr) {
    if (*v == '\0') {
      warn_rejected("GBIS_SVC_ACCESS_LOG", v);
    } else {
      base.access_log_path = v;
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_SLOW_MS"); v != nullptr) {
    char* end = nullptr;
    const double ms = std::strtod(v, &end);
    if (*v == '\0' || end == nullptr || *end != '\0' || !(ms >= 0)) {
      warn_rejected("GBIS_SVC_SLOW_MS", v);
    } else {
      base.slow_ms = ms;
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_CACHE_FILE"); v != nullptr) {
    if (*v == '\0') {
      warn_rejected("GBIS_SVC_CACHE_FILE", v);
    } else {
      base.cache_file = v;
    }
  }
  // SvcFaultPlan::from_env warns and yields an empty plan on a
  // malformed spec, matching the campaign GBIS_FAULTS knob.
  if (const SvcFaultPlan plan = SvcFaultPlan::from_env(); !plan.empty()) {
    base.faults = plan;
  }
  if (const char* v = std::getenv("GBIS_SVC_BROWNOUT"); v != nullptr) {
    const std::string text(v);
    if (text == "0") {
      base.brownout = false;
    } else if (text == "1") {
      base.brownout = true;
    } else {
      warn_rejected("GBIS_SVC_BROWNOUT", v);
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_BROWNOUT_WINDOW"); v != nullptr) {
    char* end = nullptr;
    const unsigned long long window = std::strtoull(v, &end, 10);
    if (*v == '\0' || end == nullptr || *end != '\0' || window == 0 ||
        window > 0xFFFFFFFFull) {
      warn_rejected("GBIS_SVC_BROWNOUT_WINDOW", v);
    } else {
      base.brownout_window = static_cast<std::uint32_t>(window);
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_GRAPH_MB"); v != nullptr) {
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(v, &end, 10);
    if (*v == '\0' || end == nullptr || *end != '\0') {
      warn_rejected("GBIS_SVC_GRAPH_MB", v);
    } else {
      base.graph_store_bytes = static_cast<std::uint64_t>(mb) << 20;
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_WARM"); v != nullptr) {
    const std::string text(v);
    if (text == "0") {
      base.warm = false;
    } else if (text == "1") {
      base.warm = true;
    } else {
      warn_rejected("GBIS_SVC_WARM", v);
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_QUALITY"); v != nullptr) {
    QualityTier tier;
    if (quality_tier_from_name(v, tier)) {
      base.default_quality = tier;
    } else {
      warn_rejected("GBIS_SVC_QUALITY", v);
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_FLIGHT"); v != nullptr) {
    if (*v == '\0') {
      warn_rejected("GBIS_SVC_FLIGHT", v);
    } else {
      base.flight_file = v;
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_FLIGHT_RING"); v != nullptr) {
    char* end = nullptr;
    const unsigned long long ring = std::strtoull(v, &end, 10);
    if (*v == '\0' || end == nullptr || *end != '\0' || ring == 0 ||
        ring > 0xFFFFFFFFull) {
      warn_rejected("GBIS_SVC_FLIGHT_RING", v);
    } else {
      base.flight_ring = static_cast<std::uint32_t>(ring);
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_ACCESS_LOG_MAX_MB");
      v != nullptr) {
    char* end = nullptr;
    const unsigned long long mb = std::strtoull(v, &end, 10);
    if (*v == '\0' || end == nullptr || *end != '\0') {
      warn_rejected("GBIS_SVC_ACCESS_LOG_MAX_MB", v);
    } else {
      base.access_log_max_mb = static_cast<std::uint64_t>(mb);
    }
  }
  return base;
}

/// One queued request: everything phase 1 resolves (graph, solve
/// identity, cache disposition) plus the response under construction.
struct Service::Pending {
  SvcRequest request;
  SvcResponse response;
  bool done = false;  ///< response fully materialized before phase 2

  // Solve identity (valid once `has_key`).
  SvcCacheKey key;
  bool has_key = false;
  PolicySpec spec;
  std::uint64_t seed = 0;

  /// Loaded/referenced payload; shared with the graph store so an
  /// eviction mid-batch cannot free a graph a worker is solving.
  std::shared_ptr<const Graph> graph;
  bool cold = false;      ///< leader of a cold solve
  std::size_t cold_index = 0;   ///< slot in the batch's cold-job array
  bool coalesced = false;       ///< follower of a same-batch leader
  std::size_t leader_cold_index = 0;
  std::uint64_t solve_ordinal = 0;  ///< service-lifetime cold-solve ordinal

  // Warm-start plan (dyn/warm), resolved in phase 1 for leaders only;
  // the worker consumes warm_seed and falls back to the cold policy
  // when the quality guardrail trips.
  bool warm_start = false;
  std::vector<std::uint8_t> warm_seed;  ///< projected sides (2 = unplaced)
  Weight warm_parent_cut = 0;           ///< donor partition's cut
  std::uint64_t warm_edits = 0;         ///< cumulative chain edit distance
  /// Raw internal-failure text (exception what()); clients get the
  /// stable "internal: ..." reason, this goes to stderr + access log.
  std::string internal_detail;

  // Telemetry (wall clock against the service epoch; the worker fills
  // the solve span for its own slot, read back after the pool joins).
  std::uint64_t seq = 0;           ///< request ordinal (access-log "seq")
  double submit_seconds = 0;       ///< stamped in submit_line
  double dispatch_seconds = 0;     ///< stamped at process_batch entry
  double solve_start_seconds = 0;  ///< cold leaders only
  double solve_seconds = 0;        ///< cold leaders only

  // Request tracing (obs/span): the derived-or-client trace id plus
  // the span set under construction. `spans` is driver-owned (submit /
  // phase 1 / phase 3); `worker_spans` is the one slot a phase-2
  // worker writes, appended in phase 3 so merged span order is
  // arrival-deterministic.
  std::uint64_t trace_id = 0;
  bool client_trace = false;  ///< id came from the request's "trace"
  std::vector<SpanRec> spans;
  std::vector<SpanRec> worker_spans;

  /// Appends a zero-duration structural span stamped `at` seconds.
  void mark(const char* name, double at) {
    SpanRec rec;
    rec.name = name;
    rec.start_seconds = at;
    spans.push_back(std::move(rec));
  }
  /// The set as currently known — what the flight recorder sees at
  /// each in-flight checkpoint and at completion.
  SpanSet span_set(const char* status_text) const {
    SpanSet set;
    set.trace_id = trace_id;
    set.seq = seq;
    set.id = request.id;
    set.op = op_name(request.op);
    set.status = status_text;
    set.spans = spans;
    return set;
  }
};

// Out-of-line for Pending; the flight recorder uninstalls itself from
// the dump hook in its own destructor.
Service::~Service() = default;

Service::Service(SvcOptions options)
    : options_(options),
      pool_(ThreadPool::resolve_threads(options.threads)),
      cache_(options.cache_bytes),
      graph_store_(options.graph_store_bytes),
      lineage_(std::max<std::uint32_t>(options.lineage_max_depth, 1),
               std::max<std::uint64_t>(options.lineage_max_records, 1)) {
  if (options_.batch_size == 0) options_.batch_size = 1;
  if (options_.max_queue == 0) options_.max_queue = 1;
  if (options_.default_budget == 0) options_.default_budget = 1;
  if (options_.slow_capacity == 0) options_.slow_capacity = 1;
  if (options_.brownout_window == 0) options_.brownout_window = 1;
  if (options_.flight_ring == 0) options_.flight_ring = 1;
  if (!options_.access_log_path.empty()) {
    access_log_ = std::make_unique<AccessLog>(
        options_.access_log_path, options_.access_log_max_mb << 20);
  }
  // The flight recorder always exists (it backs op:"trace"); the
  // signal-dump slots and fd only come with a configured flight file.
  flight_ = std::make_unique<FlightRecorder>(options_.flight_ring,
                                             2 * options_.max_queue);
  if (!options_.flight_file.empty()) {
    flight_ok_ = flight_->open_dump_file(options_.flight_file);
  }
  FlightRecorder::install(flight_.get());
  if (!options_.cache_file.empty()) {
    // Warm restart: replay the journal's longest valid prefix into the
    // LRU before the first request. A damaged tail is dropped (and the
    // file compacted) — a crash mid-append must never poison a start.
    store_ = std::make_unique<SvcCacheStore>(options_.cache_file);
    SvcCacheRestore report;
    store_open_ok_ = store_->open_and_restore(cache_, &lineage_, report);
    if (store_open_ok_) {
      metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheRestored)] +=
          report.entries_restored;
      metrics_.counters[static_cast<std::size_t>(
          Counter::kSvcLineageRestored)] += report.lineage_restored;
      metrics_.counters[static_cast<std::size_t>(
          Counter::kSvcCacheJournalBytes)] += report.bytes_written;
      if (report.compacted) {
        ++metrics_.counters[static_cast<std::size_t>(
            Counter::kSvcCacheCompactions)];
      }
      if (report.lines_dropped > 0) {
        std::cerr << "gbis: serve: cache journal " << options_.cache_file
                  << ": dropped " << report.lines_dropped
                  << " damaged line(s), restored " << report.entries_restored
                  << " entrie(s) from the valid prefix\n";
      }
    }
  }
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcBatchSize)] = 0;
}

bool Service::access_log_ok() const {
  return access_log_ == nullptr || access_log_->ok();
}

bool Service::cache_store_ok() const {
  return store_ == nullptr || store_open_ok_;
}

void Service::note_conn_opened() {
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcConnAccepted)];
  ++metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcConnections)];
}

void Service::note_conn_closed(bool slow) {
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcConnClosed)];
  if (slow) {
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcConnSlowClosed)];
  }
  --metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcConnections)];
}

void Service::note_conn_rejected() {
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcConnRejected)];
}

void Service::note_quota_rejected() {
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcQuotaRejected)];
}

void Service::submit_line(const std::string& line,
                          std::vector<std::string>& out) {
  // Stdio path: connection 0, ordinal = lines submitted so far.
  submit_line(line, out, 0, stdio_submitted_++);
}

void Service::submit_line(const std::string& line,
                          std::vector<std::string>& out,
                          std::uint64_t conn_id,
                          std::uint64_t conn_ordinal) {
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcRequests)];
  auto entry = std::make_unique<Pending>();
  entry->seq = next_seq_++;
  entry->submit_seconds = clock_.elapsed_seconds();
  // Derived trace id first so even a parse failure is traceable; the
  // client's own "trace" (if the line parses) replaces it below.
  entry->trace_id = splitmix64_at(conn_id, conn_ordinal);
  entry->mark("accept", entry->submit_seconds);
  std::string error;
  if (!parse_request(line, entry->request, error)) {
    entry->response.id = entry->request.id;
    entry->response.ok = false;
    entry->response.error = error;
    entry->done = true;
  } else if (entry->request.has_trace &&
             entry->request.op != SvcRequest::Op::kTrace) {
    // On op:"trace" the field selects the set to export; on every
    // other op it overrides the derived id.
    entry->trace_id = entry->request.trace_id;
    entry->client_trace = true;
  }
  {
    SpanRec parse_span;
    parse_span.name = "parse";
    parse_span.start_seconds = entry->submit_seconds;
    parse_span.duration_seconds =
        clock_.elapsed_seconds() - entry->submit_seconds;
    entry->spans.push_back(std::move(parse_span));
  }
  if (queue_.size() >= options_.max_queue) {
    // Nowhere to hold it: this is the one response that jumps the
    // arrival-order queue (and the rejection itself is deterministic —
    // queue depth is a pure function of the submit/process call
    // sequence).
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcRejected)];
    SvcResponse rejected;
    rejected.id = entry->request.id;
    rejected.ok = false;
    if (entry->client_trace) {
      rejected.trace_id = entry->trace_id;
      rejected.has_trace = true;
    }
    rejected.error = "rejected: queue full (" + std::to_string(queue_.size()) +
                     " queued, max " + std::to_string(options_.max_queue) +
                     ")";
    out.push_back(encode_response(rejected));
    if (access_log_ != nullptr) {
      // Logged at submit time to match the response's position in the
      // stream (rejections jump the queue there too).
      AccessEntry logged;
      logged.seq = entry->seq;
      logged.id = entry->request.id;
      logged.op = op_name(entry->request.op);
      logged.status = "rejected";
      logged.trace = entry->trace_id;
      logged.has_trace = true;
      if (entry->request.op == SvcRequest::Op::kSolve) {
        logged.method = entry->request.method;
      }
      logged.error = rejected.error;
      logged.t_total_us =
          to_us(clock_.elapsed_seconds() - entry->submit_seconds);
      access_log_->append(logged);
      access_log_->flush();
    }
    // A rejected request still completes into the flight ring: tail
    // forensics need the shed requests most of all.
    metrics_.counters[static_cast<std::size_t>(Counter::kSvcTraceSpans)] +=
        entry->spans.size();
    flight_->complete(entry->span_set("rejected"));
    metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcFlightRing)] =
        static_cast<std::int64_t>(flight_->completed().size());
    return;
  }
  entry->mark("admit", clock_.elapsed_seconds());
  flight_->record_inflight(entry->span_set("queued"));
  queue_.push_back(std::move(entry));
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcQueueDepth)] =
      static_cast<std::int64_t>(queue_.size());
}

void Service::prepare(
    Pending& entry, std::size_t queue_index,
    std::unordered_map<SvcCacheKey, std::size_t, SvcCacheKeyHash>& leaders,
    std::vector<std::size_t>& cold_queue_index) {
  const SvcRequest& req = entry.request;
  entry.response.id = req.id;

  // Resolve the solve identity: method selector, budget, deadline,
  // seed. Unknown method names are protocol errors, not solve failures.
  entry.spec.portfolio = req.method == "auto";
  if (!entry.spec.portfolio &&
      !method_from_name(req.method, entry.spec.method)) {
    entry.response.ok = false;
    entry.response.error = "parse: unknown method \"" + req.method + "\"";
    entry.done = true;
    return;
  }
  entry.spec.budget = req.budget != 0 ? req.budget : options_.default_budget;
  entry.spec.deadline_seconds = req.deadline_seconds >= 0
                                    ? req.deadline_seconds
                                    : options_.default_deadline_seconds;
  entry.seed = req.has_seed ? req.seed : options_.default_seed;
  // Ladder rung: the request's "quality" when present (the protocol
  // layer already rejected unknown values), else the service default.
  // An explicit method accepts-and-ignores the field — the rung only
  // picks which portfolio an "auto" race draws from.
  entry.spec.quality = options_.default_quality;
  if (!req.quality.empty()) {
    quality_tier_from_name(req.quality, entry.spec.quality);
  }
  static constexpr Counter kQualityCounter[kNumQualityTiers] = {
      Counter::kSvcQualityFast, Counter::kSvcQualityBalanced,
      Counter::kSvcQualityBest};
  ++metrics_.counters[static_cast<std::size_t>(
      kQualityCounter[static_cast<std::size_t>(entry.spec.quality)])];

  // Brownout ladder (docs/ROBUSTNESS.md): degrade BEFORE the cache key
  // is computed, so a degraded solve is cached under its degraded
  // identity and can never answer a full-quality request later.
  if (brownout_level_ >= 3) {
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcBrownoutShed)];
    entry.response.ok = false;
    entry.response.error =
        "rejected: brownout (level 3): " + std::to_string(queue_.size()) +
        " queued of " + std::to_string(options_.max_queue);
    // The hint is a pure function of scheduler-visible state (queue
    // depth at dispatch), never of the clock, so replays agree.
    entry.response.retry_after_ms = static_cast<std::uint32_t>(
        std::clamp<std::size_t>(10 * queue_.size(), 100, 5000));
    entry.done = true;
    return;
  }
  if (brownout_level_ == 2) {
    // Downgrade toward the cheap end of the quality/cost curve: "auto"
    // collapses to one CKL start — or one greedy+hill-climb start when
    // the request already asked for the fast rung, which is cheaper
    // still — and an explicitly named method keeps its method but
    // spends one trial.
    if (entry.spec.portfolio) {
      entry.spec.portfolio = false;
      entry.spec.method = entry.spec.quality == QualityTier::kFast
                              ? Method::kGreedyHc
                              : Method::kCkl;
    }
    entry.spec.budget = 1;
  } else if (brownout_level_ == 1) {
    entry.spec.budget = std::min<std::uint32_t>(entry.spec.budget, 2);
  }

  // Load the graph payload. Path errors are I/O; inline payloads that
  // fail to parse are protocol errors. A fingerprint reference defers
  // materialization until after the cache lookup — the key is
  // computable from the reference alone, so a pre-crash repeat can
  // answer as a hit even when the graph itself is gone.
  if (req.has_fingerprint) {
    entry.key.fingerprint = req.fingerprint;
  } else {
    try {
      Graph loaded;
      if (!req.path.empty()) {
        loaded = ends_with(req.path, ".metis") ? read_metis_file(req.path)
                                               : read_edge_list_file(req.path);
      } else {
        std::istringstream in(req.inline_graph);
        loaded = read_edge_list(in);
      }
      entry.graph = std::make_shared<const Graph>(std::move(loaded));
    } catch (const std::exception& error) {
      entry.response.ok = false;
      entry.response.error =
          (req.path.empty() ? std::string("parse: inline graph: ")
                            : std::string("io: ")) +
          error.what();
      entry.done = true;
      return;
    }
    entry.key.fingerprint = graph_fingerprint(*entry.graph);
    // Every materialized graph feeds the store, so later requests can
    // name it by fingerprint (mutate parents, re-solves).
    graph_store_.insert(entry.key.fingerprint, entry.graph);
  }
  entry.key.method_key =
      entry.spec.portfolio
          ? SvcCacheKey::kPortfolio
          : static_cast<std::uint32_t>(entry.spec.method);
  // The rung is identity only for portfolio races; an explicit method
  // normalizes to kQualityNone so a decorated request coalesces with
  // an undecorated one (the rung cannot influence its outcome).
  entry.key.quality_key =
      entry.spec.portfolio ? static_cast<std::uint8_t>(entry.spec.quality)
                           : SvcCacheKey::kQualityNone;
  entry.key.budget = entry.spec.budget;
  entry.key.seed = entry.seed;
  entry.key.deadline_bits = std::bit_cast<std::uint64_t>(
      entry.spec.deadline_seconds);
  entry.has_key = true;
  entry.response.fingerprint = entry.key.fingerprint;

  // Cache lookup and within-batch coalescing, on the dispatch thread in
  // arrival order — the hit/miss/coalesce disposition of every request
  // is decided before any solve runs.
  if (const SvcCacheValue* value = cache_.lookup(entry.key)) {
    // Materialize now: the pointer dies at the next insert.
    entry.response.ok = true;
    entry.response.cache = "hit";
    fill_from_value(entry.response, *value, req.want_sides);
    entry.done = true;
    return;
  }
  if (const auto it = leaders.find(entry.key); it != leaders.end()) {
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcCoalesced)];
    entry.coalesced = true;
    entry.leader_cold_index = it->second;
    entry.graph.reset();  // the leader's copy is the one that solves
    return;
  }
  // A fingerprint-referenced solve needs the graph materialized now
  // (a miss past the cache means it must actually be solved).
  if (entry.graph == nullptr) {
    entry.graph = graph_store_.lookup(entry.key.fingerprint);
    if (entry.graph == nullptr) {
      entry.response.ok = false;
      entry.response.error =
          "io: unknown graph \"" + to_hex16(entry.key.fingerprint) + "\"";
      entry.done = true;
      return;
    }
  }
  entry.cold = true;
  entry.cold_index = cold_queue_index.size();
  entry.solve_ordinal = cold_ordinal_++;
  leaders.emplace(entry.key, entry.cold_index);
  cold_queue_index.push_back(queue_index);
  if (options_.warm) plan_warm(entry);
}

void Service::plan_warm(Pending& entry) {
  // Guardrail: a chain whose cumulative edits rival the graph itself
  // makes the ancestor partition worthless as a seed.
  const std::uint64_t max_edits = static_cast<std::uint64_t>(
      options_.warm_edit_ratio *
      static_cast<double>(entry.graph->num_edges() + 1));
  WarmPlan plan;
  if (!plan_warm_start(
          lineage_, entry.key.fingerprint, max_edits,
          [this](std::uint64_t fp) {
            return cache_.best_for_fingerprint(fp) != nullptr;
          },
          plan)) {
    return;
  }
  const SvcCacheValue* donor = cache_.best_for_fingerprint(plan.ancestor);
  std::vector<std::uint8_t> seeded;
  if (donor == nullptr || !project_sides(plan, donor->sides, seeded) ||
      seeded.size() != entry.graph->num_vertices()) {
    return;  // stale plan (shape drift) — run cold
  }
  entry.warm_start = true;
  entry.warm_seed = std::move(seeded);
  entry.warm_parent_cut = donor->cut;
  entry.warm_edits = plan.cumulative_edits;
}

void Service::prepare_mutate(Pending& entry) {
  const SvcRequest& req = entry.request;
  entry.response.id = req.id;
  const auto reject = [this, &entry](std::string reason) {
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcMutateRejected)];
    entry.response.ok = false;
    entry.response.error = std::move(reason);
    entry.done = true;
  };
  const auto answer = [this, &entry](const LineageRecord& record) {
    ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcMutateOk)];
    entry.response.ok = true;
    entry.response.op = "mutate";
    entry.response.has_mutate = true;
    entry.response.fingerprint = record.child;
    entry.response.parent = record.parent;
    entry.response.vertices = record.child_vertices;
    entry.response.edges = record.child_edges;
    entry.response.edit_distance = record.edit_distance;
    entry.response.depth = record.depth;
    // The child identity in the access log.
    entry.key.fingerprint = record.child;
    entry.has_key = true;
    entry.done = true;
  };

  // Resolve the parent graph and its fingerprint.
  std::shared_ptr<const Graph> parent;
  std::uint64_t parent_fp = 0;
  if (req.has_fingerprint) {
    parent_fp = req.fingerprint;
    parent = graph_store_.lookup(parent_fp);  // may miss; see below
  } else {
    try {
      Graph loaded;
      if (!req.path.empty()) {
        loaded = ends_with(req.path, ".metis") ? read_metis_file(req.path)
                                               : read_edge_list_file(req.path);
      } else {
        std::istringstream in(req.inline_graph);
        loaded = read_edge_list(in);
      }
      parent = std::make_shared<const Graph>(std::move(loaded));
    } catch (const std::exception& error) {
      reject((req.path.empty() ? std::string("parse: inline graph: ")
                               : std::string("io: ")) +
             error.what());
      return;
    }
    parent_fp = graph_fingerprint(*parent);
    graph_store_.insert(parent_fp, parent);
  }

  const std::uint64_t batch_hash = req.batch.hash();
  const LineageRecord* known = lineage_.by_batch(parent_fp, batch_hash);
  if (parent == nullptr) {
    // Graphs are evictable and never journaled; the lineage record is
    // the durable identity. A known derivation answers without either
    // graph — which is exactly how a warm restart replays a pre-crash
    // mutation chain byte-identically.
    if (known != nullptr) {
      answer(*known);
      return;
    }
    reject("io: unknown graph \"" + to_hex16(parent_fp) + "\"");
    return;
  }
  if (known != nullptr && !known->map.empty() &&
      graph_store_.contains(known->child)) {
    // Fully-materialized repeat: nothing to recompute.
    answer(*known);
    return;
  }
  if (known == nullptr) {
    // Only a *new* derivation grows the lineage; repeats (known !=
    // nullptr) re-apply solely to heal maps / re-materialize the child.
    const std::uint32_t parent_depth = lineage_.depth_of(parent_fp);
    if (parent_depth >= lineage_.max_depth()) {
      reject("mutate: lineage depth limit (" +
             std::to_string(lineage_.max_depth()) + ") reached");
      return;
    }
    if (lineage_.full()) {
      reject("mutate: lineage store full (" +
             std::to_string(lineage_.size()) + " records)");
      return;
    }
  }

  MutationResult mutated;
  try {
    mutated = apply_mutation(*parent, req.batch);
  } catch (const std::invalid_argument& error) {
    reject(std::string("mutate: ") + error.what());
    return;
  } catch (const std::bad_alloc&) {
    reject("internal: out of memory");
    return;
  }
  const std::uint64_t child_fp = graph_fingerprint(mutated.child);
  LineageRecord record;
  record.parent = parent_fp;
  record.child = child_fp;
  record.batch_hash = batch_hash;
  record.adds = req.batch.add_edges.size() / 2;
  record.dels = req.batch.del_edges.size() / 2;
  record.vadds = req.batch.add_vertices;
  record.vdels = req.batch.del_vertices.size();
  record.edit_distance = req.batch.edit_distance();
  record.depth = lineage_.depth_of(parent_fp) + 1;
  record.parent_vertices = parent->num_vertices();
  record.child_vertices = mutated.child.num_vertices();
  record.child_edges = mutated.child.num_edges();
  record.map = std::move(mutated.map);
  graph_store_.insert(child_fp,
                      std::make_shared<const Graph>(std::move(mutated.child)));

  if (child_fp == parent_fp) {
    // Net no-op batch (e.g. add an edge, delete it again): the child
    // IS the parent. No lineage edge — a self-edge would put a cycle
    // in the DAG — but the response still reports the derivation.
    record.depth = lineage_.depth_of(parent_fp);
    answer(record);
    return;
  }
  const auto [stored, inserted] = lineage_.insert(std::move(record));
  if (stored == nullptr) {
    // Raced the record cap via a duplicate-child path; treat as full.
    reject("mutate: lineage store full (" + std::to_string(lineage_.size()) +
           " records)");
    return;
  }
  if (inserted && store_ != nullptr && store_->ok()) {
    // Journal-then-answer, like cache inserts: by the time the client
    // sees the child fingerprint, the lineage edge is on disk.
    metrics_.counters[static_cast<std::size_t>(
        Counter::kSvcCacheJournalBytes)] += store_->append_lineage(*stored);
  }
  answer(*stored);
}

void Service::update_brownout() {
  std::uint32_t level = 0;
  if (options_.brownout) {
    // Queue pressure: depth at dispatch as a fraction of the admission
    // bound. Deadline pressure: miss rate over the recent cold-solve
    // window (the window denominator even while filling, so a cold
    // start can't trip on its first miss).
    const std::size_t queue_pct =
        queue_.size() * 100 / std::max<std::size_t>(options_.max_queue, 1);
    const std::uint64_t miss_pct =
        window_misses_ * 100 /
        std::max<std::uint64_t>(options_.brownout_window, 1);
    if (queue_pct >= 90) {
      level = 3;
    } else if (queue_pct >= 75 || miss_pct >= 50) {
      level = 2;
    } else if (queue_pct >= 50 || miss_pct >= 25) {
      level = 1;
    }
  }
  if (brownout_level_ == 0 && level > 0) {
    ++metrics_.counters[static_cast<std::size_t>(
        Counter::kSvcBrownoutEntered)];
  } else if (brownout_level_ > 0 && level == 0) {
    ++metrics_.counters[static_cast<std::size_t>(
        Counter::kSvcBrownoutRestored)];
  }
  brownout_level_ = level;
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcBrownoutLevel)] =
      static_cast<std::int64_t>(level);
}

void Service::note_solve_outcome(bool deadline_miss) {
  miss_window_.push_back(deadline_miss);
  if (deadline_miss) ++window_misses_;
  while (miss_window_.size() > options_.brownout_window) {
    if (miss_window_.front()) --window_misses_;
    miss_window_.pop_front();
  }
}

void Service::fill_from_value(SvcResponse& response,
                              const SvcCacheValue& value, bool want_sides) {
  response.has_solve = true;
  response.cut = value.cut;
  response.method = value.method;
  response.trials_ok = value.trials_ok;
  response.degraded = value.trials_degraded;
  response.warm = value.warm;
  if (want_sides) {
    response.sides.reserve(value.sides.size());
    for (const std::uint8_t side : value.sides) {
      response.sides.push_back(side != 0 ? '1' : '0');
    }
  }
}

void Service::finalize_solve(Pending& entry, const PolicyResult& result) {
  SvcResponse& response = entry.response;
  switch (result.status) {
    case TrialStatus::kOk: {
      SvcCacheValue value;
      value.cut = result.best_cut;
      // Warm results display "warm-kl" — method_from_name never says
      // that, so a warm result can never alias a requestable method.
      value.method = result.warm ? "warm-kl" : method_name(result.best_method);
      value.trials_ok = result.ok;
      value.trials_degraded = result.failed + result.timed_out + result.skipped;
      value.warm = result.warm;
      value.sides = result.best_sides;
      response.ok = true;
      fill_from_value(response, value, entry.request.want_sides);
      if (entry.cold) {
        // Attribute the solve to its winning method (methods/registry)
        // so sum(svc.solve_by.*) == ok cold solves; warm results go
        // under "other" — "warm-kl" is not a registry method, and warm
        // volume already has its own kSvcSolveWarm counter.
        const Counter solved_by =
            result.warm ? Counter::kSvcSolveByOther
                        : method_info(result.best_method).solve_counter;
        ++metrics_.counters[static_cast<std::size_t>(solved_by)];
        // Journal before the in-memory insert (the value is still
        // whole) and flush per append: by the time any response of
        // this batch reaches a client, its entry is on disk.
        if (store_ != nullptr && store_->ok()) {
          metrics_.counters[static_cast<std::size_t>(
              Counter::kSvcCacheJournalBytes)] +=
              store_->append(entry.key, value);
        }
        cache_.insert(entry.key, std::move(value));
      }
      break;
    }
    case TrialStatus::kTimedOut:
      response.ok = false;
      response.error = "deadline exceeded before any trial completed";
      break;
    case TrialStatus::kFailed:
      // Stable reasons only on the wire (SERVICE.md error catalog);
      // the raw exception text goes to stderr (leaders once) and the
      // access log, never to clients.
      response.ok = false;
      response.error =
          result.oom ? "internal: out of memory" : "internal: solve failed";
      entry.internal_detail = result.first_error;
      if (entry.cold) {
        std::cerr << "gbis: serve: internal error (seq " << entry.seq
                  << "): " << result.first_error << '\n';
      }
      break;
    case TrialStatus::kSkipped:
      response.ok = false;
      response.error = "shutdown: request drained before any trial ran";
      break;
  }
}

void Service::fill_stats(SvcResponse& response) const {
  const SvcCacheStats& cache = cache_.stats();
  const auto counter = [this](Counter c) {
    return metrics_.counters[static_cast<std::size_t>(c)];
  };
  const auto gauge = [this](Gauge g) {
    return static_cast<std::uint64_t>(
        metrics_.gauges[static_cast<std::size_t>(g)]);
  };
  response.stats = {
      {"requests", counter(Counter::kSvcRequests)},
      {"rejected", counter(Counter::kSvcRejected)},
      {"coalesced", counter(Counter::kSvcCoalesced)},
      {"cache_hits", cache.hits},
      {"cache_misses", cache.misses},
      {"cache_evictions", cache.evictions},
      {"cache_entries", cache.entries},
      {"cache_bytes", cache.bytes},
      {"cache_max_bytes", cache_.max_bytes()},
      // v2: gauges and histogram summaries. v3: dynamic-graph keys.
      // v4: method-portfolio keys. v5: tracing/flight-recorder keys.
      // Keys are append-only; the *_count fields are deterministic
      // (they count finalized requests/solves at this stream
      // position), while everything under stats_real carries the
      // nondeterministic "_us" marker.
      {"stats_version", 5},
      {"queue_depth", gauge(Gauge::kSvcQueueDepth)},
      {"inflight", gauge(Gauge::kSvcInflight)},
      {"batch_size", gauge(Gauge::kSvcBatchSize)},
      // Listener surface (all zero without --listen; keys append-only).
      {"connections", gauge(Gauge::kSvcConnections)},
      {"conn_accepted", counter(Counter::kSvcConnAccepted)},
      {"conn_closed", counter(Counter::kSvcConnClosed)},
      {"conn_slow_closed", counter(Counter::kSvcConnSlowClosed)},
      {"conn_rejected", counter(Counter::kSvcConnRejected)},
      {"quota_rejected", counter(Counter::kSvcQuotaRejected)},
      // Durable-cache and brownout surface (PR 7; keys append-only).
      {"cache_restored", counter(Counter::kSvcCacheRestored)},
      {"cache_journal_bytes", counter(Counter::kSvcCacheJournalBytes)},
      {"cache_compactions", counter(Counter::kSvcCacheCompactions)},
      {"brownout_level", gauge(Gauge::kSvcBrownoutLevel)},
      {"brownout_entered", counter(Counter::kSvcBrownoutEntered)},
      {"brownout_restored", counter(Counter::kSvcBrownoutRestored)},
      {"brownout_shed", counter(Counter::kSvcBrownoutShed)},
      // Dynamic-graph surface (PR 8; keys append-only). Graph-store
      // numbers read the store directly so a stats op mid-batch is
      // already current.
      {"mutate_ok", counter(Counter::kSvcMutateOk)},
      {"mutate_rejected", counter(Counter::kSvcMutateRejected)},
      {"solve_warm", counter(Counter::kSvcSolveWarm)},
      {"warm_fallback", counter(Counter::kSvcSolveWarmFallback)},
      {"graphstore_bytes", graph_store_.stats().bytes},
      {"graphstore_entries", graph_store_.stats().entries},
      {"graphstore_evictions", graph_store_.stats().evictions},
      {"lineage_records", lineage_.size()},
      {"lineage_restored", counter(Counter::kSvcLineageRestored)},
      // Method-portfolio surface (PR 9, stats v4; keys append-only).
      // Counted at dispatch: quality_* when a solve's rung resolves,
      // solve_by_* when an ok cold solve finalizes — so both are pure
      // functions of the request stream position, like every other
      // *_count key.
      {"quality_fast", counter(Counter::kSvcQualityFast)},
      {"quality_balanced", counter(Counter::kSvcQualityBalanced)},
      {"quality_best", counter(Counter::kSvcQualityBest)},
      {"solve_by_ckl", counter(Counter::kSvcSolveByCkl)},
      {"solve_by_csa", counter(Counter::kSvcSolveByCsa)},
      {"solve_by_kl", counter(Counter::kSvcSolveByKl)},
      {"solve_by_sa", counter(Counter::kSvcSolveBySa)},
      {"solve_by_mlkl", counter(Counter::kSvcSolveByMlkl)},
      {"solve_by_path", counter(Counter::kSvcSolveByPath)},
      {"solve_by_greedy_hc", counter(Counter::kSvcSolveByGreedyHc)},
      {"solve_by_other", counter(Counter::kSvcSolveByOther)},
      // Request-tracing surface (PR 10, stats v5; keys append-only).
      // All deterministic: span structure and ring occupancy are pure
      // functions of the request stream.
      {"trace_spans", counter(Counter::kSvcTraceSpans)},
      {"trace_exports", counter(Counter::kSvcTraceExports)},
      {"flight_ring", static_cast<std::uint64_t>(flight_->completed().size())},
      {"flight_capacity", options_.flight_ring},
      {"flight_inflight",
       static_cast<std::uint64_t>(flight_->inflight_count())},
  };
  const struct {
    const char* prefix;
    Hist hist;
  } latency_stats[] = {
      {"request_latency", Hist::kSvcRequestLatencyUs},
      {"solve_latency", Hist::kSvcSolveLatencyUs},
      {"queue_wait", Hist::kSvcQueueWaitUs},
  };
  for (const auto& [prefix, hist] : latency_stats) {
    const HistSummary summary = summarize_hist(metrics_.hist(hist));
    const std::string p(prefix);
    response.stats.emplace_back(p + "_count", summary.count);
    response.stats_real.emplace_back(p + "_sum_us",
                                     static_cast<double>(summary.sum));
    response.stats_real.emplace_back(p + "_p50_us", summary.p50);
    response.stats_real.emplace_back(p + "_p90_us", summary.p90);
    response.stats_real.emplace_back(p + "_p99_us", summary.p99);
  }
  // Max-latency exemplars (stats v5): the trace id of the slowest
  // sample per histogram, "" until one lands. *Which* request was
  // slowest is wall-clock data, hence the "_us" suffix on the keys
  // even though the values are trace ids.
  const struct {
    const char* key;
    const HistExemplars* exemplars;
  } exemplar_stats[] = {
      {"request_latency_exemplar_us", &request_exemplars_},
      {"solve_latency_exemplar_us", &solve_exemplars_},
      {"queue_wait_exemplar_us", &queue_exemplars_},
  };
  for (const auto& [key, exemplars] : exemplar_stats) {
    const BucketExemplar top = exemplars->top();
    response.stats_text.emplace_back(key,
                                     top.has ? to_hex16(top.trace) : "");
  }
}

void Service::write_prom(std::ostream& out) const {
  std::array<const HistExemplars*, kNumHists> exemplars{};
  exemplars[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)] =
      &request_exemplars_;
  exemplars[static_cast<std::size_t>(Hist::kSvcSolveLatencyUs)] =
      &solve_exemplars_;
  exemplars[static_cast<std::size_t>(Hist::kSvcQueueWaitUs)] =
      &queue_exemplars_;
  write_prom_exposition(out, metrics_snapshot(), exemplars);
}

void Service::fill_trace(Pending& entry) {
  SvcResponse& response = entry.response;
  response.id = entry.request.id;
  response.op = "trace";
  if (entry.request.has_trace) {
    // Export one set by id — echoed so the caller sees what it asked
    // for even on a miss.
    response.trace_id = entry.request.trace_id;
    response.has_trace = true;
    bool inflight = false;
    const SpanSet* found = flight_->find(entry.request.trace_id, &inflight);
    if (found == nullptr) {
      response.ok = false;
      response.error = "trace: unknown trace id \"" +
                       to_hex16(entry.request.trace_id) + "\"";
      entry.done = true;
      return;
    }
    response.ok = true;
    response.has_traces = true;
    response.traces = 1;
    response.spans = encode_span_set(*found, inflight ? "inflight" : "done");
    response.spans += '\n';
  } else {
    response.ok = true;
    response.has_traces = true;
    response.traces = flight_->completed().size();
    response.spans = flight_->export_completed();
  }
  ++metrics_.counters[static_cast<std::size_t>(Counter::kSvcTraceExports)];
  entry.done = true;
}

TrialMetrics Service::metrics_snapshot() const {
  TrialMetrics snapshot = metrics_;
  const SvcCacheStats& cache = cache_.stats();
  snapshot.counters[static_cast<std::size_t>(Counter::kSvcCacheHits)] =
      cache.hits;
  snapshot.counters[static_cast<std::size_t>(Counter::kSvcCacheMisses)] =
      cache.misses;
  snapshot.counters[static_cast<std::size_t>(Counter::kSvcCacheEvictions)] =
      cache.evictions;
  snapshot.gauges[static_cast<std::size_t>(Gauge::kSvcCacheBytes)] =
      static_cast<std::int64_t>(cache.bytes);
  const GraphStoreStats& graphs = graph_store_.stats();
  snapshot.counters[static_cast<std::size_t>(
      Counter::kSvcGraphStoreEvictions)] = graphs.evictions;
  snapshot.gauges[static_cast<std::size_t>(Gauge::kSvcGraphStoreBytes)] =
      static_cast<std::int64_t>(graphs.bytes);
  snapshot.gauges[static_cast<std::size_t>(Gauge::kSvcGraphStoreEntries)] =
      static_cast<std::int64_t>(graphs.entries);
  return snapshot;
}

void Service::record_slow(const Pending& entry, double total_seconds) {
  if (options_.slow_ms < 0) return;
  if (total_seconds * 1000.0 < options_.slow_ms) return;
  // Same deterministic stride-doubling decimation as the convergence
  // trace: which offered samples are kept depends only on the offered
  // sequence (and at --slow-ms 0 every finalized request is offered).
  const std::uint64_t ordinal = slow_ordinal_++;
  if (ordinal % slow_stride_ != 0) return;
  if (slow_samples_.size() >= options_.slow_capacity) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < slow_samples_.size(); i += 2) {
      // Guard i == kept: self-move-assignment would gut the strings.
      if (i != kept) slow_samples_[kept] = std::move(slow_samples_[i]);
      ++kept;
    }
    slow_samples_.resize(kept);
    slow_stride_ *= 2;
    if (ordinal % slow_stride_ != 0) return;
  }
  SvcSlowSample sample;
  sample.seq = entry.seq;
  sample.id = entry.request.id;
  if (entry.request.op == SvcRequest::Op::kSolve) {
    sample.method = entry.request.method;
  }
  sample.cache = entry.response.cache;
  sample.status = entry.response.ok ? "ok" : "error";
  sample.submit_seconds = entry.submit_seconds;
  sample.queue_seconds = entry.dispatch_seconds - entry.submit_seconds;
  sample.solve_start_seconds = entry.solve_start_seconds;
  sample.solve_seconds = entry.solve_seconds;
  sample.total_seconds = total_seconds;
  slow_samples_.push_back(std::move(sample));
}

void Service::finalize_telemetry(Pending& entry, double now_seconds) {
  const double total = now_seconds - entry.submit_seconds;
  const double queue_wait = entry.dispatch_seconds - entry.submit_seconds;
  metrics_.hists[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)]
      .observe(to_us(total));
  metrics_.hists[static_cast<std::size_t>(Hist::kSvcQueueWaitUs)].observe(
      to_us(queue_wait));
  request_exemplars_.offer(to_us(total), entry.trace_id);
  queue_exemplars_.offer(to_us(queue_wait), entry.trace_id);
  if (entry.cold) {
    metrics_.hists[static_cast<std::size_t>(Hist::kSvcSolveLatencyUs)]
        .observe(to_us(entry.solve_seconds));
    solve_exemplars_.offer(to_us(entry.solve_seconds), entry.trace_id);
  }
  if (access_log_ != nullptr) {
    AccessEntry logged;
    logged.seq = entry.seq;
    logged.id = entry.request.id;
    logged.op = op_name(entry.request.op);
    logged.status = entry.response.ok ? "ok" : "error";
    logged.trace = entry.trace_id;
    logged.has_trace = true;
    logged.cache = entry.response.cache;
    if (entry.request.op == SvcRequest::Op::kSolve) {
      logged.method = entry.request.method;
    }
    logged.fingerprint = entry.key.fingerprint;
    logged.has_fingerprint = entry.has_key;
    if (entry.response.ok && entry.response.has_solve) {
      logged.cut = static_cast<std::int64_t>(entry.response.cut);
      logged.has_cut = true;
    }
    logged.error = entry.response.error;
    if (!entry.internal_detail.empty()) {
      // The access log keeps the full failure text the wire hides.
      logged.error += " (" + entry.internal_detail + ")";
    }
    logged.t_queue_us = to_us(queue_wait);
    logged.t_solve_us = to_us(entry.solve_seconds);
    logged.t_total_us = to_us(total);
    access_log_->append(logged);
  }
  record_slow(entry, total);
  // Close out the span set: the worker's solve sub-spans (leaders
  // only) merge here on the dispatch thread in arrival order, then the
  // finalize/write bookends. The completed set replaces the in-flight
  // record in the flight ring.
  for (SpanRec& span : entry.worker_spans) {
    entry.spans.push_back(std::move(span));
  }
  entry.worker_spans.clear();
  entry.mark("finalize", now_seconds);
  entry.mark("write", clock_.elapsed_seconds());
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcTraceSpans)] +=
      entry.spans.size();
  flight_->complete(entry.span_set(entry.response.ok ? "ok" : "error"));
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcFlightRing)] =
      static_cast<std::int64_t>(flight_->completed().size());
}

void Service::process_batch(std::vector<std::string>& out,
                            const std::atomic<bool>* stop) {
  if (queue_.empty()) return;
  // batch-site fault injection: the ordinal counts non-empty batches,
  // a deterministic function of the submit/process call sequence.
  // crash@batch:N is the chaos suite's SIGKILL — batches before N are
  // fully journaled and flushed, this one dies before any work.
  maybe_inject_svc_fault(&options_.faults, SvcFaultSite::kBatch,
                         batch_ordinal_++, Deadline(), stop);
  const bool stopping =
      stop != nullptr && stop->load(std::memory_order_acquire);

  // Brownout decision for the whole batch, from dispatch-time queue
  // depth and the recent deadline-miss window — scheduler-visible
  // state only, so a stdio --replay reproduces the same levels.
  update_brownout();

  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcBatchSize)] =
      static_cast<std::int64_t>(queue_.size());
  const double dispatch_seconds = clock_.elapsed_seconds();
  for (auto& entry : queue_) {
    entry->dispatch_seconds = dispatch_seconds;
    SpanRec queued;
    queued.name = "queue";
    queued.start_seconds = entry->submit_seconds;
    queued.duration_seconds = dispatch_seconds - entry->submit_seconds;
    entry->spans.push_back(std::move(queued));
  }

  // Phase 1 (dispatch thread, arrival order): parse results are already
  // in; resolve identities, load graphs, decide hit/coalesce/cold.
  std::unordered_map<SvcCacheKey, std::size_t, SvcCacheKeyHash> leaders;
  std::vector<std::size_t> cold_queue_index;  // queue slots of cold leaders
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Pending& entry = *queue_[i];
    if (entry.done) continue;
    if (entry.request.op == SvcRequest::Op::kMutate) {
      // Mutations complete entirely in phase 1, so a later request in
      // the same batch can already solve the child by fingerprint.
      if (stopping) {
        entry.response.id = entry.request.id;
        entry.response.ok = false;
        entry.response.error = "shutdown: request drained before any trial ran";
        entry.done = true;
      } else {
        SpanRec mutate_span;
        mutate_span.name = "mutate";
        mutate_span.start_seconds = clock_.elapsed_seconds();
        prepare_mutate(entry);
        mutate_span.duration_seconds =
            clock_.elapsed_seconds() - mutate_span.start_seconds;
        entry.spans.push_back(std::move(mutate_span));
      }
      continue;
    }
    if (entry.request.op != SvcRequest::Op::kSolve) continue;
    if (stopping) {
      entry.response.id = entry.request.id;
      entry.response.ok = false;
      entry.response.error = "shutdown: request drained before any trial ran";
      entry.done = true;
      continue;
    }
    SpanRec lookup;
    lookup.name = "lookup";
    lookup.start_seconds = clock_.elapsed_seconds();
    prepare(entry, i, leaders, cold_queue_index);
    lookup.duration_seconds = clock_.elapsed_seconds() - lookup.start_seconds;
    entry.spans.push_back(std::move(lookup));
    if (entry.warm_start) {
      // Phase 1 planned a warm start: record the projection (the edit
      // count is the span's "cut" payload — it is what the guardrail
      // reasons about).
      SpanRec project;
      project.name = "warm.project";
      project.value = static_cast<std::int64_t>(entry.warm_edits);
      project.has_value = true;
      project.start_seconds = clock_.elapsed_seconds();
      entry.spans.push_back(std::move(project));
    }
  }
  // Checkpoint every in-flight set now that phase 1 resolved lookups:
  // from here to phase 3 the driver never touches these spans, so the
  // flight recorder's slots are quiescent while workers run — which is
  // what makes the crash-path dump complete AND race-free.
  for (auto& entry : queue_) {
    flight_->record_inflight(entry->span_set("pending"));
  }

  // Phase 2 (worker pool): run the cold solves, one pool job each —
  // cross-request parallelism; trials inside a request stay serial
  // (svc/policy). Workers touch only their own slots.
  std::vector<PolicyResult> results(cold_queue_index.size());
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcInflight)] =
      static_cast<std::int64_t>(cold_queue_index.size());
  if (!cold_queue_index.empty()) {
    const auto outcomes = pool_.parallel_for_collect(
        cold_queue_index.size(),
        [&](std::size_t j) {
          Pending& entry = *queue_[cold_queue_index[j]];
          entry.solve_start_seconds = clock_.elapsed_seconds();
          // req-/solve-site fault injection, at the exact point a cold
          // solve starts. Exceptions land in the pool's per-job error
          // slot and are mapped below like any other solve failure.
          if (!options_.faults.empty()) {
            const Deadline deadline = entry.spec.deadline_seconds > 0
                                          ? Deadline::after(
                                                entry.spec.deadline_seconds)
                                          : Deadline();
            maybe_inject_svc_fault(&options_.faults, SvcFaultSite::kReq,
                                   entry.seq, deadline, stop);
            maybe_inject_svc_fault(&options_.faults, SvcFaultSite::kSolve,
                                   entry.solve_ordinal, deadline, stop);
          }
          bool solved = false;
          SpanBuffer span_buffer(&entry.worker_spans);
          if (entry.warm_start) {
            // Warm start: refine the projected ancestor partition with
            // bounded KL. The quality guardrail compares against what
            // the chain could plausibly have cost — each edit can
            // change the cut by at most its own weight-1 edge, so a
            // warm cut far beyond parent + edits means the projection
            // landed badly and the cold policy should run instead.
            const Deadline deadline =
                entry.spec.deadline_seconds > 0
                    ? Deadline::after(entry.spec.deadline_seconds)
                    : Deadline();
            const double refine_start = clock_.elapsed_seconds();
            WarmSolveResult w =
                warm_solve(*entry.graph, std::move(entry.warm_seed),
                           options_.warm_max_passes, deadline);
            SpanRec refine;
            refine.name = "warm.refine";
            refine.value = static_cast<std::int64_t>(w.cut);
            refine.has_value = true;
            refine.start_seconds = refine_start;
            refine.duration_seconds =
                clock_.elapsed_seconds() - refine_start;
            span_buffer.offer(std::move(refine));
            const Weight bound =
                2 * (entry.warm_parent_cut +
                     static_cast<Weight>(entry.warm_edits)) +
                8;
            if (w.cut <= bound) {
              PolicyResult warm;
              warm.status = TrialStatus::kOk;
              warm.best_cut = w.cut;
              warm.best_method = Method::kKl;
              warm.ok = 1;
              warm.warm = true;
              warm.best_sides = std::move(w.sides);
              results[j] = std::move(warm);
              solved = true;
            }
          }
          if (!solved) {
            const std::size_t policy_span_begin = entry.worker_spans.size();
            const double policy_start = clock_.elapsed_seconds();
            results[j] = run_policy(*entry.graph, entry.spec, entry.seed,
                                    options_.run, /*keep_sides=*/true, stop,
                                    &span_buffer);
            // Policy spans are recorded against the policy's own clock;
            // rebase them onto the service epoch (wall-clock data only —
            // structure is already epoch-free).
            for (std::size_t k = policy_span_begin;
                 k < entry.worker_spans.size(); ++k) {
              entry.worker_spans[k].start_seconds += policy_start;
            }
          }
          entry.solve_seconds =
              clock_.elapsed_seconds() - entry.solve_start_seconds;
          SpanRec solve_span;
          solve_span.name = "solve";
          solve_span.start_seconds = entry.solve_start_seconds;
          solve_span.duration_seconds = entry.solve_seconds;
          entry.worker_spans.insert(entry.worker_spans.begin(),
                                    std::move(solve_span));
        },
        stop);
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
      if (outcomes[j].state == JobState::kDone) continue;
      // kNotRun (drained) stays kSkipped; a thrown job becomes kFailed
      // (a deadline overrun kTimedOut, an allocation failure flagged
      // oom for the stable-reason mapping).
      results[j] = PolicyResult{};
      if (outcomes[j].state == JobState::kError) {
        results[j].status = TrialStatus::kFailed;
        try {
          std::rethrow_exception(outcomes[j].error);
        } catch (const DeadlineExceeded& error) {
          results[j].status = TrialStatus::kTimedOut;
          results[j].first_error = error.what();
        } catch (const std::bad_alloc& error) {
          results[j].first_error = error.what();
          results[j].oom = true;
        } catch (const std::exception& error) {
          results[j].first_error = error.what();
        } catch (...) {
          results[j].first_error = "unknown exception";
        }
      }
    }
  }

  // Phase 3 (dispatch thread, arrival order): cache inserts, follower
  // copies, ping/stats payloads, and the response stream itself.
  for (auto& entry_ptr : queue_) {
    Pending& entry = *entry_ptr;
    if (!entry.done) {
      if (entry.request.op == SvcRequest::Op::kPing) {
        entry.response.id = entry.request.id;
        entry.response.ok = true;
        entry.response.op = "ping";
      } else if (entry.request.op == SvcRequest::Op::kStats) {
        entry.response.id = entry.request.id;
        entry.response.ok = true;
        entry.response.op = "stats";
        if (entry.request.format == "prom") {
          std::ostringstream prom;
          write_prom(prom);
          entry.response.prom = prom.str();
        } else {
          fill_stats(entry.response);
        }
      } else if (entry.request.op == SvcRequest::Op::kTrace) {
        fill_trace(entry);
      } else if (entry.cold) {
        entry.response.cache = "miss";
        const PolicyResult& result = results[entry.cold_index];
        finalize_solve(entry, result);
        // Feed the brownout deadline-miss window (leaders only, in
        // arrival order): any trial the deadline took counts.
        note_solve_outcome(result.status == TrialStatus::kTimedOut ||
                           result.timed_out > 0);
        if (result.warm) {
          ++metrics_.counters[static_cast<std::size_t>(
              Counter::kSvcSolveWarm)];
        } else if (entry.warm_start) {
          // Planned warm but ran cold — the guardrail tripped, or the
          // warm refinement itself failed/timed out.
          ++metrics_.counters[static_cast<std::size_t>(
              Counter::kSvcSolveWarmFallback)];
        }
      } else if (entry.coalesced) {
        entry.response.cache = "coalesced";
        finalize_solve(entry, results[entry.leader_cold_index]);
      }
    }
    // Echo the trace id only when the client supplied one — derived ids
    // live in the access log / flight recorder, so byte streams of
    // trace-unaware clients are unchanged.
    if (entry.client_trace && !entry.response.has_trace) {
      entry.response.trace_id = entry.trace_id;
      entry.response.has_trace = true;
    }
    out.push_back(encode_response(entry.response));
    // After the response: a stats op reports the latencies of requests
    // strictly before it in the stream, which keeps its *_count fields
    // deterministic.
    finalize_telemetry(entry, clock_.elapsed_seconds());
  }
  queue_.clear();
  if (access_log_ != nullptr) access_log_->flush();

  // Journal upkeep: compact once the file outgrows the resident cache,
  // and surface a write failure exactly once (the service keeps
  // serving; durability is degraded until restart).
  if (store_ != nullptr) {
    if (store_->ok()) {
      const std::uint64_t rewritten = store_->maybe_compact(cache_, &lineage_);
      if (rewritten > 0) {
        metrics_.counters[static_cast<std::size_t>(
            Counter::kSvcCacheJournalBytes)] += rewritten;
        ++metrics_.counters[static_cast<std::size_t>(
            Counter::kSvcCacheCompactions)];
      }
    }
    if (!store_->ok() && !store_warned_) {
      store_warned_ = true;
      std::cerr << "gbis: serve: cache journal " << store_->path()
                << ": write failed; continuing without durability\n";
    }
  }

  // Mirror the cache's own monotone counters into the obs catalog
  // (absolute assignment: both sides count service lifetime).
  const SvcCacheStats& cache = cache_.stats();
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheHits)] =
      cache.hits;
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheMisses)] =
      cache.misses;
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcCacheEvictions)] =
      cache.evictions;
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcCacheBytes)] =
      static_cast<std::int64_t>(cache.bytes);
  const GraphStoreStats& graphs = graph_store_.stats();
  metrics_.counters[static_cast<std::size_t>(Counter::kSvcGraphStoreEvictions)] =
      graphs.evictions;
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcGraphStoreBytes)] =
      static_cast<std::int64_t>(graphs.bytes);
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcGraphStoreEntries)] =
      static_cast<std::int64_t>(graphs.entries);
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcQueueDepth)] = 0;
  metrics_.gauges[static_cast<std::size_t>(Gauge::kSvcInflight)] = 0;
}

void Service::drain(std::vector<std::string>& out,
                    const std::atomic<bool>* stop) {
  while (!queue_.empty()) process_batch(out, stop);
}

}  // namespace gbis
