// Budgeted solver policy for the partition service: race the
// portfolio of one quality-vs-latency ladder rung under a trial
// budget and an optional request-wide deadline, and return the best
// cut found so far when either runs out. The rungs
// (methods/registry.hpp quality_portfolio):
//
//   fast     — greedy+hill-climb only: bounded-latency microsecond
//              answers, no refiner loop to interrupt;
//   balanced — CKL, path optimization, multilevel-KL: the strong
//              quality-per-second refiners;
//   best     — the historical CKL/CSA/KL/SA/mlkl race with path
//              optimization appended (the default rung, so pre-ladder
//              request streams replay byte-identically).
//
// Why a portfolio: heuristic cut quality is a *distribution* over
// random starts (Schreiber & Martin, PAPERS.md), so a fixed budget is
// best spent on diverse starts; and which heuristic wins is
// graph-class dependent (Berry & Goldberg), so the race covers the
// classes instead of betting on one. Dispatch order puts CKL first —
// the paper's best quality-per-second method — so budget=1 degrades to
// exactly `gbis solve <g> ckl` with one start (fast rung excepted).
//
// Determinism: trial i of a request draws from an Rng seeded with
// splitmix64_at(request seed, i) — the parallel-runner scheme — and
// trials run *serially inside* the request (cross-request parallelism
// belongs to the service scheduler, whose pool jobs must not nest).
// With no deadline the result is a pure function of (graph, spec,
// seed); with one, completed trials still produce identical cuts but
// *which* trials complete is honest wall-clock data, exactly like
// campaign trial deadlines.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gbis/harness/parallel_runner.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/methods/registry.hpp"

namespace gbis {

class SpanBuffer;

/// What to run for one request.
struct PolicySpec {
  bool portfolio = true;         ///< true: race the portfolio ("auto")
  Method method = Method::kCkl;  ///< used when portfolio is false
  /// Ladder rung whose portfolio the race draws from (portfolio only;
  /// an explicit method ignores it).
  QualityTier quality = QualityTier::kBest;
  std::uint32_t budget = 2;      ///< total trials to spend
  /// Request-wide wall-clock budget in seconds; 0 = unlimited. One
  /// Deadline is armed for the whole request: trials still queued when
  /// it expires are marked timed out without running, and the trial in
  /// flight is interrupted at its next cooperative poll.
  double deadline_seconds = 0;
};

/// The racing order of the default ("best") rung's portfolio (trial i
/// runs method i mod size, start i / size). Rung-specific portfolios
/// come from quality_portfolio(tier) in methods/registry.hpp.
std::span<const Method> policy_portfolio();

/// What the policy produced. `status` follows the campaign cell
/// convention: kOk when any trial finished, else the dominant failure.
struct PolicyResult {
  TrialStatus status = TrialStatus::kSkipped;
  Weight best_cut = 0;             ///< valid only when status == kOk
  Method best_method = Method::kCkl;  ///< method of the winning trial
  std::uint32_t ok = 0, failed = 0, timed_out = 0, skipped = 0;
  double cpu_seconds = 0;   ///< summed over executed trials
  std::string first_error;  ///< first failure/timeout text, trial order
  /// True when the first failure was an allocation failure — the
  /// scheduler maps it to the stable "internal: out of memory" client
  /// reason (full text stays on stderr + the access log).
  bool oom = false;
  /// True when this result came from a lineage warm start (dyn/warm)
  /// rather than the cold policy — set by the scheduler's warm path,
  /// never by run_policy itself.
  bool warm = false;
  std::vector<std::uint8_t> best_sides;  ///< filled when keep_sides
};

/// Runs the policy. `base` supplies the solver knobs (KlOptions etc.);
/// its obs block is ignored — the service keeps its own counters.
/// `stop` (optional) drains remaining trials as skipped, the graceful-
/// shutdown path. Never throws on trial failure; failures are data.
/// A bound `spans` buffer (obs/span.hpp) collects per-method sub-spans
/// for request tracing: one "trial" span per executed trial plus the
/// trial's convergence points (kl.pass / sa.temp / fm.pass / po.pass),
/// with times relative to run_policy entry. The span *structure* is a
/// pure function of (graph, spec, seed) like the cuts themselves.
PolicyResult run_policy(const Graph& g, const PolicySpec& spec,
                        std::uint64_t seed, const RunConfig& base = {},
                        bool keep_sides = false,
                        const std::atomic<bool>* stop = nullptr,
                        SpanBuffer* spans = nullptr);

}  // namespace gbis
