// The service wire protocol: newline-delimited JSON, one flat object
// per line, requests in and responses out (docs/SERVICE.md is the
// schema reference). Parsing uses the shared flat-field scanner
// (util/json_lite) — the same contract as the checkpoint journal, so
// producers must emit free-form string payloads (inline graphs, error
// text) with proper JSON escaping.
//
// Request (all fields optional except the graph payload for solve):
//   {"id":"r1","op":"solve","path":"g.graph","method":"auto",
//    "budget":4,"deadline_s":0.5,"seed":7,"want_sides":true}
//   {"op":"solve","inline":"2 1\n0 1\n","method":"kl"}
//   {"op":"solve","graph":"<hex16 fingerprint>"}
//   {"op":"mutate","parent":"<hex16>","add_edges":[0,2],"del_edges":[],
//    "add_vertices":1,"del_vertices":[3]}
//   {"id":"p","op":"ping"}      {"id":"s","op":"stats"}
//
// Response: `"ok":true` carries the solve payload (or the ping/stats
// echo, or the op:"trace" span export); `"ok":false` carries `"error"`
// with a stable reason prefix — "parse:", "io:", "rejected:",
// "mutate:", "trace:", "deadline", "shutdown", "internal:".
// Responses deliberately contain no timing fields outside the "_us"
// convention: a response stream is a pure function of the request
// stream (plus the service seed), so replays are byte-identical at any
// thread count. The one carrier of wall-clock data is the op:"trace"
// span export, whose embedded t_start_us/t_dur_us keys follow the
// same strippable "_us" convention (escaped, inside the "spans"
// string).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gbis/dyn/mutation.hpp"
#include "gbis/graph/graph.hpp"

namespace gbis {

/// Per-array element cap on mutate edit lists — a parse-layer bound so
/// a hostile line cannot stage a multi-gigabyte vector before the
/// mutation layer ever sees it.
inline constexpr std::size_t kMaxEditElements = 1u << 20;

/// One parsed request line.
struct SvcRequest {
  enum class Op : std::uint8_t { kSolve = 0, kPing, kStats, kMutate, kTrace };

  std::string id;       ///< echoed verbatim in the response; may be ""
  Op op = Op::kSolve;
  std::string path;          ///< graph file payload (edge-list / .metis)
  std::string inline_graph;  ///< inline edge-list payload
  /// Graph reference by canonical fingerprint: the solve target
  /// ("graph") or the mutate parent ("parent"). Valid only with
  /// has_fingerprint; mutually exclusive with path/inline.
  std::uint64_t fingerprint = 0;
  bool has_fingerprint = false;
  /// Mutate payload (op == kMutate only). Never empty after a
  /// successful parse — an empty edit batch is a parse error.
  MutationBatch batch;
  std::string method = "auto";  ///< "auto" or a method_from_name() name
  /// Quality-vs-latency rung for "auto" solves: "fast" | "balanced" |
  /// "best", or "" for the service default. Present-but-invalid is a
  /// parse error (never a silent default); the field is accepted and
  /// ignored on explicit-method solves so clients can set it
  /// unconditionally.
  std::string quality;
  std::uint32_t budget = 0;     ///< trials; 0 = service default
  double deadline_seconds = -1;  ///< request deadline; < 0 = default
  std::uint64_t seed = 0;
  bool has_seed = false;  ///< absent seed falls back to the service seed
  bool want_sides = false;  ///< include the side assignment in the reply
  /// Stats output format: "" / "json" (the flat key/value payload) or
  /// "prom" (Prometheus text exposition in the "prom" response field).
  std::string format;
  /// Client-supplied trace id (optional "trace" field, any op): on
  /// solve/mutate/ping/stats it *replaces* the derived id and is echoed
  /// in the response and access log; on op:"trace" it selects which
  /// recorded span set to export (absent = dump the whole ring).
  std::uint64_t trace_id = 0;
  bool has_trace = false;
};

/// Parses one request line. On failure returns false and sets `error`
/// to a "parse: ..." reason (the caller wraps it in an error response);
/// `out.id` is still recovered when present so the error can be
/// correlated.
bool parse_request(const std::string& line, SvcRequest& out,
                   std::string& error);

/// One response line, pre-encoding. Exactly one of the payload blocks
/// is active: solve (has_solve), stats (non-empty stats), or the bare
/// ping/err envelope.
struct SvcResponse {
  std::string id;
  bool ok = false;
  std::string op;     ///< echoed for ping/stats/trace; "" for solve
  /// Trace-id echo: set only when the client supplied a "trace" field
  /// (the only-when-present rule that keeps pre-tracing response
  /// streams byte-identical). Derived ids appear in the access log and
  /// the flight recorder instead.
  std::uint64_t trace_id = 0;
  bool has_trace = false;
  std::string cache;  ///< "hit" | "miss" | "coalesced" | "" (non-solve)
  std::string error;  ///< set iff !ok
  /// Backoff hint accompanying a brownout shed ("rejected: brownout
  /// ..."); 0 = absent. Deterministic: a function of the queue depth
  /// the scheduler saw, never of the clock.
  std::uint32_t retry_after_ms = 0;

  bool has_solve = false;
  Weight cut = 0;
  std::string method;  ///< winning method display name
  std::uint32_t trials_ok = 0;
  std::uint32_t degraded = 0;  ///< failed + timed out + skipped trials
  std::uint64_t fingerprint = 0;
  /// Solve payload: result came from a lineage warm start (projected
  /// ancestor partition + bounded KL), not the cold portfolio. Carried
  /// through the cache so repeats stay byte-identical.
  bool warm = false;
  std::string sides;  ///< "0"/"1" per vertex; only when requested

  /// Mutate payload (ok && has_mutate): the child graph's identity and
  /// its lineage edge. `fingerprint` above holds the child fingerprint.
  bool has_mutate = false;
  std::uint64_t parent = 0;
  std::uint64_t vertices = 0;       ///< child |V|
  std::uint64_t edges = 0;          ///< child |E|
  std::uint64_t edit_distance = 0;  ///< this batch's edit distance
  std::uint32_t depth = 0;          ///< lineage chain depth of the child

  /// Trace-export payload (op == "trace"): number of span sets in
  /// "spans" (has_traces gates emission so other ops are unchanged).
  std::uint64_t traces = 0;
  bool has_traces = false;

  /// Ordered key/value payload of a stats response.
  std::vector<std::pair<std::string, std::uint64_t>> stats;
  /// Ordered real-valued stats payload (histogram sums/percentiles).
  /// Keys end in "_us": wall-clock timing, outside the determinism
  /// contract — replay comparisons strip fields with that suffix.
  std::vector<std::pair<std::string, double>> stats_real;
  /// Ordered string-valued stats payload (latency exemplar trace ids).
  /// Keys end in "_us" by the same convention as stats_real: *which*
  /// request was slowest is wall-clock data.
  std::vector<std::pair<std::string, std::string>> stats_text;
  /// Prometheus text exposition (stats with format:"prom").
  std::string prom;
  /// Trace-export payload: newline-separated encode_span_set() lines
  /// (see obs/span.hpp), emitted as one JSON string field.
  std::string spans;
};

/// Encodes one response line (no trailing newline). Field order is
/// fixed and free-form strings come last, keeping the output friendly
/// to the same flat scanner that reads requests.
std::string encode_response(const SvcResponse& response);

}  // namespace gbis
