#include "gbis/svc/listener.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "gbis/harness/shutdown.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

void warn_rejected(const char* var, const char* text) {
  std::cerr << "gbis: ignoring malformed " << var << "=\"" << text
            << "\" (keeping default)\n";
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Splits "HOST:PORT" at the last colon. Empty host means all
/// interfaces.
bool split_endpoint(const std::string& endpoint, std::string& host,
                    std::string& port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    return false;
  }
  host = endpoint.substr(0, colon);
  port = endpoint.substr(colon + 1);
  return port.find_first_not_of("0123456789") == std::string::npos;
}

/// The one response line a request that never reaches the service
/// gets: ok:false with a stable-prefix reason, id recovered
/// best-effort for correlation.
std::string local_error_line(const std::string& request_line,
                             const std::string& error) {
  SvcResponse response;
  json_parse_string(request_line, "id", response.id);
  response.ok = false;
  response.error = error;
  return encode_response(response);
}

}  // namespace

ListenerOptions listener_options_from_env(ListenerOptions base) {
  if (const char* v = std::getenv("GBIS_SVC_LISTEN"); v != nullptr) {
    std::string host, port;
    if (!split_endpoint(v, host, port)) {
      warn_rejected("GBIS_SVC_LISTEN", v);
    } else {
      base.tcp_endpoint = v;
    }
  }
  if (const char* v = std::getenv("GBIS_SVC_LISTEN_UNIX"); v != nullptr) {
    if (*v == '\0') {
      warn_rejected("GBIS_SVC_LISTEN_UNIX", v);
    } else {
      base.unix_path = v;
    }
  }
  return base;
}

Listener::Listener(Service& service, ListenerOptions options)
    : service_(service), options_(std::move(options)) {}

Listener::~Listener() {
  stop_accepting();
  connections_.clear();  // Connection dtor closes each fd
}

void Listener::start() {
  if (options_.tcp_endpoint.empty() && options_.unix_path.empty()) {
    throw IoError("listener: no endpoint configured");
  }
  if (!options_.tcp_endpoint.empty()) {
    std::string host, port;
    if (!split_endpoint(options_.tcp_endpoint, host, port)) {
      throw IoError("listener: malformed --listen endpoint \"" +
                    options_.tcp_endpoint + "\" (want HOST:PORT)");
    }
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* found = nullptr;
    const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                                 port.c_str(), &hints, &found);
    if (rc != 0) {
      throw IoError("listener: cannot resolve \"" + options_.tcp_endpoint +
                    "\": " + ::gai_strerror(rc));
    }
    int fd = -1;
    std::string bind_error;
    for (addrinfo* ai = found; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
          ::listen(fd, SOMAXCONN) == 0) {
        break;
      }
      bind_error = std::strerror(errno);
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(found);
    if (fd < 0) {
      throw IoError("listener: cannot bind " + options_.tcp_endpoint + ": " +
                    (bind_error.empty() ? "no usable address" : bind_error));
    }
    set_nonblocking(fd);
    tcp_fd_ = fd;
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      char ip[INET_ADDRSTRLEN] = "0.0.0.0";
      ::inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof ip);
      tcp_bound_ = std::string(ip) + ":" +
                   std::to_string(ntohs(bound.sin_port));
    } else {
      tcp_bound_ = options_.tcp_endpoint;
    }
  }
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    if (options_.unix_path.size() >= sizeof addr.sun_path) {
      throw IoError("listener: unix socket path too long: " +
                    options_.unix_path);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw IoError(std::string("listener: cannot create unix socket: ") +
                    std::strerror(errno));
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.unix_path.c_str(),
                options_.unix_path.size() + 1);
    ::unlink(options_.unix_path.c_str());  // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, SOMAXCONN) != 0) {
      const std::string reason = std::strerror(errno);
      ::close(fd);
      throw IoError("listener: cannot bind unix socket " +
                    options_.unix_path + ": " + reason);
    }
    set_nonblocking(fd);
    unix_fd_ = fd;
    unix_bound_ = true;
  }
  publish_ready_file();
}

void Listener::publish_ready_file() const {
  if (options_.ready_file.empty()) return;
  const std::string tmp = options_.ready_file + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  if (!out) throw IoError("listener: cannot open ready file " + tmp);
  if (!tcp_bound_.empty()) out << "tcp " << tcp_bound_ << '\n';
  if (unix_bound_) out << "unix " << options_.unix_path << '\n';
  out.flush();
  if (!out) throw IoError("listener: ready file write failed: " + tmp);
  out.close();
  std::error_code ec;
  std::filesystem::rename(tmp, options_.ready_file, ec);
  if (ec) {
    throw IoError("listener: cannot publish ready file " +
                  options_.ready_file + ": " + ec.message());
  }
}

void Listener::stop_accepting() {
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (unix_bound_) {
    ::unlink(options_.unix_path.c_str());
    unix_bound_ = false;
  }
}

void Listener::accept_ready(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: next cycle
    }
    if (connections_.size() >= options_.max_connections) {
      // Structured shed, single best-effort write: the client learns
      // why instead of seeing a bare RST.
      SvcResponse rejected;
      rejected.ok = false;
      rejected.error = "rejected: connection limit (" +
                       std::to_string(options_.max_connections) +
                       ") reached";
      const std::string line = encode_response(rejected) + "\n";
      (void)::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      ::close(fd);
      service_.note_conn_rejected();
      continue;
    }
    if (listen_fd == tcp_fd_) {
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof one);
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    const std::uint64_t id = next_conn_id_++;
    connections_.emplace(id, std::make_unique<Connection>(fd, id));
    service_.note_conn_opened();
  }
}

void Listener::deliver(const std::string& line, std::uint64_t conn_id) {
  if (options_.on_response) options_.on_response(line);
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;  // client died before its answer
  it->second->queue_line(line);
}

void Listener::route_responses(const std::vector<std::string>& responses) {
  for (const std::string& line : responses) {
    // One response per queued entry, in arrival order — the routing
    // deque is aligned by construction.
    if (routes_.empty()) break;  // defensive; cannot happen
    const std::uint64_t conn_id = routes_.front();
    routes_.pop_front();
    const auto it = connections_.find(conn_id);
    if (it != connections_.end() && it->second->inflight > 0) {
      --it->second->inflight;
    }
    deliver(line, conn_id);
  }
}

void Listener::dispatch_pending(const std::atomic<bool>* stop) {
  if (service_.pending() == 0) return;
  std::vector<std::string> responses;
  service_.process_batch(responses, stop);
  route_responses(responses);
}

void Listener::handle_events(Connection& conn,
                             std::vector<ConnEvent>& events) {
  for (ConnEvent& event : events) {
    if (event.kind == ConnEvent::Kind::kOverlong) {
      deliver(local_error_line("", "parse: request line exceeds " +
                                       std::to_string(
                                           options_.max_line_bytes) +
                                       " bytes"),
              conn.id());
      continue;
    }
    if (event.line.empty()) continue;  // blank keep-alive line
    ++conn.requests;
    if (conn.inflight >= options_.conn_request_quota) {
      // Like the service's queue-full reject, this jumps the
      // arrival-order stream — it has nowhere to wait.
      service_.note_quota_rejected();
      deliver(local_error_line(
                  event.line,
                  "rejected: connection request quota (" +
                      std::to_string(options_.conn_request_quota) +
                      " in flight) exceeded"),
              conn.id());
      continue;
    }
    std::vector<std::string> immediate;
    service_.submit_line(event.line, immediate, conn.id(), conn.submitted++);
    if (immediate.empty()) {
      routes_.push_back(conn.id());
      ++conn.inflight;
    } else {
      for (const std::string& line : immediate) deliver(line, conn.id());
    }
    if (service_.pending() >= service_.options().batch_size) {
      dispatch_pending(nullptr);
    }
  }
  events.clear();
}

void Listener::close_connection(std::uint64_t conn_id, bool slow) {
  const auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  connections_.erase(it);  // closes the fd; stale routes drop on arrival
  service_.note_conn_closed(slow);
}

void Listener::reap(double now_seconds) {
  std::vector<std::uint64_t> closing;
  std::vector<std::uint64_t> slow;
  for (const auto& [id, conn] : connections_) {
    if (conn->write_stalled(now_seconds, options_.write_timeout_seconds) ||
        conn->write_backlog() > options_.max_write_buffer) {
      slow.push_back(id);
    } else if (conn->closing() && conn->inflight == 0 &&
               !conn->wants_write()) {
      closing.push_back(id);
    }
  }
  for (const std::uint64_t id : slow) close_connection(id, /*slow=*/true);
  for (const std::uint64_t id : closing) {
    close_connection(id, /*slow=*/false);
  }
}

bool Listener::poll_once(int timeout_ms, const std::atomic<bool>* stop) {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (or ~0 listener)
  if (tcp_fd_ >= 0) {
    fds.push_back({tcp_fd_, POLLIN, 0});
    fd_conn.push_back(~0ull);
  }
  if (unix_fd_ >= 0) {
    fds.push_back({unix_fd_, POLLIN, 0});
    fd_conn.push_back(~0ull);
  }
  for (const auto& [id, conn] : connections_) {
    short events = 0;
    if (!conn->closing()) events |= POLLIN;
    if (conn->wants_write()) events |= POLLOUT;
    if (events == 0) events = POLLIN;  // still notice hangup
    fds.push_back({conn->fd(), events, 0});
    fd_conn.push_back(id);
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return false;  // EINTR: caller re-checks the stop flag

  const double now = clock_.elapsed_seconds();
  std::vector<ConnEvent> events;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (fd_conn[i] == ~0ull) {
      accept_ready(fds[i].fd);
      continue;
    }
    const auto it = connections_.find(fd_conn[i]);
    if (it == connections_.end()) continue;
    Connection& conn = *it->second;
    if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0 &&
        !conn.closing()) {
      const bool alive = conn.read_events(events, options_.max_line_bytes);
      handle_events(conn, events);
      if (!alive) conn.mark_closing();
    }
    if ((fds[i].revents & POLLOUT) != 0) {
      if (!conn.flush_writes(now)) conn.mark_closing();
    }
  }

  // End-of-cycle flush: whatever arrived together forms the batch.
  dispatch_pending(stop);

  // Push responses out opportunistically (most sockets accept the
  // write immediately; stragglers wait for POLLOUT next cycle).
  for (const auto& [id, conn] : connections_) {
    if (conn->wants_write() && !conn->flush_writes(now)) {
      conn->mark_closing();
    }
  }
  reap(clock_.elapsed_seconds());
  return ready > 0;
}

void Listener::run(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    poll_once(/*timeout_ms=*/200, &stop);
  }
  drain(&stop);
}

void Listener::drain(const std::atomic<bool>* stop) {
  stop_accepting();
  // Answer everything admitted: queued solves drain under the
  // service's shutdown semantics when the stop flag is up. An
  // escalated shutdown (second SIGTERM/SIGINT) answers nothing new:
  // whatever is queued stays unanswered, only already-buffered bytes
  // get the bounded flush below.
  if (!shutdown_escalated()) {
    std::vector<std::string> responses;
    service_.drain(responses, stop);
    route_responses(responses);
  }
  // Flush under a deadline; a client that will not read its final
  // responses is shed like any other slow client. Escalation mid-flush
  // cuts the loop at the next iteration.
  const WallTimer flush_clock;
  while (flush_clock.elapsed_seconds() < options_.drain_flush_seconds &&
         !shutdown_escalated()) {
    bool pending = false;
    for (const auto& [id, conn] : connections_) {
      if (conn->wants_write()) {
        pending = true;
        break;
      }
    }
    if (!pending) break;
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;
    for (const auto& [id, conn] : connections_) {
      if (!conn->wants_write()) continue;
      fds.push_back({conn->fd(), POLLOUT, 0});
      fd_conn.push_back(id);
    }
    (void)::poll(fds.data(), fds.size(), 100);
    const double now = clock_.elapsed_seconds();
    std::vector<std::uint64_t> dead;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const auto it = connections_.find(fd_conn[i]);
      if (it == connections_.end()) continue;
      if (!it->second->flush_writes(now) ||
          it->second->write_stalled(now, options_.write_timeout_seconds)) {
        dead.push_back(fd_conn[i]);
      }
    }
    for (const std::uint64_t id : dead) close_connection(id, /*slow=*/true);
  }
  // Drop whatever is left; every connection close is counted.
  while (!connections_.empty()) {
    close_connection(connections_.begin()->first, /*slow=*/false);
  }
  routes_.clear();
}

}  // namespace gbis
