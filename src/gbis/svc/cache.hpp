// Bounded LRU result cache for the partition service. Keyed by the
// full solve identity — (graph fingerprint, method selector, quality
// rung, trial budget, seed, deadline bucket) — so a hit is guaranteed to be
// byte-identical to what a cold solve of the same request would have
// produced (the service's determinism contract makes every solve a
// pure function of exactly that tuple).
//
// The cache is bounded by an approximate byte budget (entry payloads
// are dominated by the cached side assignment, one byte per vertex)
// and evicts least-recently-used entries on insert. Not thread-safe by
// design: the service scheduler performs all lookups and inserts on
// the dispatch thread, in request-arrival order, which is what keeps
// hit/miss/eviction counters — and therefore `stats` responses —
// deterministic for any worker count.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// Solve identity. `method_key` is the Method enum value, or
/// SvcCacheKey::kPortfolio for the budgeted "auto" policy.
/// `deadline_bits` is the bit pattern of the resolved deadline (in
/// seconds, 0 = unlimited) — deadlines influence outcomes (a trial can
/// time out), so two requests with different deadlines must never
/// alias, and exact bits avoid any rounding bucket that could merge a
/// tiny deadline with "unlimited".
struct SvcCacheKey {
  static constexpr std::uint32_t kPortfolio = 0xffffffffu;
  /// quality_key value for explicit-method solves, where the ladder
  /// rung cannot influence the outcome — normalizing it keeps
  /// `{"method":"kl","quality":"fast"}` coalescing with plain
  /// `{"method":"kl"}`.
  static constexpr std::uint8_t kQualityNone = 0xffu;

  std::uint64_t fingerprint = 0;
  std::uint32_t method_key = kPortfolio;
  std::uint32_t budget = 0;
  std::uint64_t seed = 0;
  std::uint64_t deadline_bits = 0;
  /// Resolved ladder rung of an "auto" solve (the QualityTier enum
  /// value: 0 fast, 1 balanced, 2 best), or kQualityNone for explicit
  /// methods. Rungs race different portfolios, so two qualities of the
  /// same request must never alias.
  std::uint8_t quality_key = kQualityNone;

  friend bool operator==(const SvcCacheKey&, const SvcCacheKey&) = default;
};

/// Hash for SvcCacheKey (usable by the scheduler's within-batch
/// coalescing map as well as the cache itself).
struct SvcCacheKeyHash {
  std::size_t operator()(const SvcCacheKey& key) const;
};

/// What a completed solve caches: everything a response needs except
/// the per-request envelope (id, cache disposition).
struct SvcCacheValue {
  Weight cut = 0;
  std::string method;  ///< winning method's display name
  std::uint32_t trials_ok = 0;
  std::uint32_t trials_degraded = 0;  ///< failed + timed out + skipped
  /// Result came from a lineage warm start (dyn/warm). Part of the
  /// cached payload so a repeat of the request replays the same
  /// `"warm":true` byte for byte.
  bool warm = false;
  std::vector<std::uint8_t> sides;    ///< winning side assignment
};

/// Monotone counters, exposed verbatim by the `stats` protocol op.
struct SvcCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  ///< current resident entries
  std::uint64_t bytes = 0;    ///< current approximate payload bytes
};

/// The LRU map. Lookup promotes to most-recently-used; insert evicts
/// from the LRU tail until the byte budget holds. A byte budget of 0
/// disables caching entirely (every lookup misses, inserts drop).
class SvcResultCache {
 public:
  explicit SvcResultCache(std::uint64_t max_bytes) : max_bytes_(max_bytes) {}

  /// Returns the cached value or nullptr; counts a hit or a miss. The
  /// pointer is valid until the next insert().
  const SvcCacheValue* lookup(const SvcCacheKey& key);

  /// Inserts (or refreshes) `value` under `key`, then evicts LRU
  /// entries until the byte budget holds. Oversized single entries are
  /// admitted alone: a value larger than the whole budget is dropped.
  void insert(const SvcCacheKey& key, SvcCacheValue value);

  /// Deterministic warm-start donor: among resident entries for
  /// `fingerprint` that carry a side assignment, the one with the
  /// smallest cut (ties: earliest inserted). No promotion, no
  /// hit/miss counting — this is lineage machinery peeking, not a
  /// request identity hit. nullptr when none qualifies; the pointer is
  /// valid until the next insert().
  const SvcCacheValue* best_for_fingerprint(std::uint64_t fingerprint) const;

  const SvcCacheStats& stats() const { return stats_; }
  std::uint64_t max_bytes() const { return max_bytes_; }

  /// Visits every resident entry from least- to most-recently used —
  /// the order a journal compaction writes them, so replaying the
  /// compacted journal rebuilds the same recency order (svc/cache_store).
  template <typename Fn>
  void visit_lru_to_mru(Fn&& fn) const {
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      fn(it->key, it->value);
    }
  }

 private:
  struct Entry {
    SvcCacheKey key;
    SvcCacheValue value;
    std::uint64_t bytes = 0;
  };

  static std::uint64_t value_bytes(const SvcCacheValue& value);
  void evict_until_fits();

  std::uint64_t max_bytes_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<SvcCacheKey, std::list<Entry>::iterator,
                     SvcCacheKeyHash> map_;
  /// Per-fingerprint entry index in insertion order (dispatch-thread
  /// order, hence deterministic) — what best_for_fingerprint scans.
  std::unordered_map<std::uint64_t, std::vector<std::list<Entry>::iterator>>
      by_fingerprint_;
  SvcCacheStats stats_;
};

}  // namespace gbis
