// Structured per-request access log for the partition service: one
// flat JSON object per request, appended to a JSONL file
// (`--access-log PATH` / GBIS_SVC_ACCESS_LOG; schema reference in
// docs/SERVICE.md).
//
// Entries are finalized on the scheduler's dispatch thread in
// arrival order (phase 3 of process_batch; queue-full rejections at
// submit time, matching their position in the response stream), so the
// log line sequence is a pure function of the request stream — except
// the trailing `t_*_us` timing fields, which are wall-clock data and
// explicitly nondeterministic. Timing keys all end in "_us" and sit
// last on the line, so byte-comparisons strip them with one pattern.
//
// Each line is written with a single stream write into a file opened
// in append mode: on POSIX, concurrent services logging to the same
// path interleave whole lines, not bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>

namespace gbis {

/// One finalized request, ready to log.
struct AccessEntry {
  std::uint64_t seq = 0;  ///< request ordinal within the service lifetime
  std::string id;         ///< request id, verbatim
  std::string op;         ///< "solve" | "ping" | "stats" | ...
  std::string status;     ///< "ok" | "error" | "rejected"
  /// Trace id (16-hex on the line) — derived or client-supplied; every
  /// entry carries one once the scheduler assigns ids.
  std::uint64_t trace = 0;
  bool has_trace = false;
  std::string cache;      ///< "hit" | "miss" | "coalesced" | ""
  std::string method;     ///< requested method selector (solve only)
  std::uint64_t fingerprint = 0;  ///< graph fingerprint (when resolved)
  bool has_fingerprint = false;
  std::int64_t cut = 0;  ///< winning cut (ok solves only)
  bool has_cut = false;
  std::string error;  ///< stable-prefix reason when status != "ok"
  /// Wall-clock timings in microseconds — nondeterministic; keys end
  /// "_us" and come last on the encoded line.
  std::uint64_t t_queue_us = 0;  ///< submit -> batch dispatch
  std::uint64_t t_solve_us = 0;  ///< cold-solve duration (leader's, if any)
  std::uint64_t t_total_us = 0;  ///< submit -> response finalized
};

/// Encodes one log line (no trailing newline); flat-scanner friendly,
/// free-form strings JSON-escaped.
std::string encode_access_entry(const AccessEntry& entry);

/// Append-mode JSONL writer. Never throws: a path that cannot be
/// opened leaves ok() false and every append a no-op (the caller
/// decides whether that is fatal — the CLI treats it as an I/O error).
class AccessLog {
 public:
  /// `max_bytes` > 0 bounds the file: when appending a line would push
  /// it past the bound, the current file is atomically renamed to
  /// `<path>.1` (replacing any previous rollover) and a fresh file is
  /// started — one generation of history, bounded total footprint.
  explicit AccessLog(std::string path, std::uint64_t max_bytes = 0);

  bool ok() const { return out_.is_open() && out_.good(); }
  const std::string& path() const { return path_; }

  /// Writes one line (entry + '\n') with a single stream write.
  void append(const AccessEntry& entry);
  /// Flushes buffered lines (the scheduler flushes once per batch).
  void flush();

 private:
  void maybe_rotate(std::size_t incoming_bytes);

  std::string path_;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t bytes_ = 0;  ///< current file size (append position)
  std::ofstream out_;
};

}  // namespace gbis
