#include "gbis/svc/cache_store.hpp"

#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "gbis/methods/registry.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {

std::uint64_t SvcCacheStore::text_crc(const std::string& text) {
  Hash64 h;
  std::uint64_t word = 0;
  int packed = 0;
  for (const unsigned char c : text) {
    word |= static_cast<std::uint64_t>(c) << (8 * packed);
    if (++packed == 8) {
      h.add(word);
      word = 0;
      packed = 0;
    }
  }
  if (packed != 0) h.add(word);
  // Length extension: a truncated line whose packed words happen to
  // agree must still miss.
  h.add(static_cast<std::uint64_t>(text.size()));
  return h.digest();
}

std::string SvcCacheStore::header_line() {
  return "{\"type\":\"svc_cache\",\"version\":3}";
}

std::string SvcCacheStore::encode_entry(const SvcCacheKey& key,
                                        const SvcCacheValue& value) {
  std::string line = "{\"fingerprint\":\"" + to_hex16(key.fingerprint) + "\"";
  line += ",\"method_key\":" + std::to_string(key.method_key);
  line += ",\"budget\":" + std::to_string(key.budget);
  line += ",\"seed\":" + std::to_string(key.seed);
  line += ",\"deadline_bits\":\"" + to_hex16(key.deadline_bits) + "\"";
  line += ",\"quality\":" + std::to_string(key.quality_key);
  line += ",\"cut\":" + std::to_string(value.cut);
  line += ",\"method\":";
  append_json_string(line, value.method);
  line += ",\"trials_ok\":" + std::to_string(value.trials_ok);
  line += ",\"degraded\":" + std::to_string(value.trials_degraded);
  // Emitted only when set: cold entries keep their version-1 bytes.
  if (value.warm) line += ",\"warm\":1";
  std::string sides;
  sides.reserve(value.sides.size());
  for (const std::uint8_t side : value.sides) {
    sides.push_back(side != 0 ? '1' : '0');
  }
  line += ",\"sides\":";
  append_json_string(line, sides);
  line += ",\"crc\":\"" + to_hex16(text_crc(line)) + "\"}";
  return line;
}

bool SvcCacheStore::decode_entry(const std::string& line, SvcCacheKey& key,
                                 SvcCacheValue& value) {
  if (!json_object_valid(line)) return false;
  // The CRC covers every byte before its own ",\"crc\":" suffix; a line
  // without the suffix (or with trailing bytes after the object) fails.
  const std::size_t crc_pos = line.rfind(",\"crc\":\"");
  if (crc_pos == std::string::npos) return false;
  std::string crc_text;
  std::uint64_t crc = 0;
  if (!json_parse_string(line, "crc", crc_text) ||
      !parse_hex16(crc_text, crc) ||
      crc != text_crc(line.substr(0, crc_pos))) {
    return false;
  }

  std::string hex;
  if (!json_parse_string(line, "fingerprint", hex) ||
      !parse_hex16(hex, key.fingerprint)) {
    return false;
  }
  std::uint64_t method_key = 0, budget = 0, trials_ok = 0, degraded = 0;
  if (!json_parse_u64(line, "method_key", method_key) ||
      method_key > 0xffffffffull ||
      !json_parse_u64(line, "budget", budget) || budget == 0 ||
      budget > 0xffffffffull || !json_parse_u64(line, "seed", key.seed) ||
      !json_parse_string(line, "deadline_bits", hex) ||
      !parse_hex16(hex, key.deadline_bits)) {
    return false;
  }
  key.method_key = static_cast<std::uint32_t>(method_key);
  key.budget = static_cast<std::uint32_t>(budget);
  // Version <= 2 lines predate the quality rung. Portfolio entries
  // were implicitly the (then only) "best" race and explicit-method
  // entries never depended on a rung, which is exactly how the
  // scheduler normalizes quality_key today — so the default
  // reconstructs the identity the entry would get now, and pre-ladder
  // journals keep answering byte-identical warm hits.
  if (json_find_value(line, "quality") != std::string::npos) {
    std::uint64_t quality = 0;
    if (!json_parse_u64(line, "quality", quality) ||
        (quality >= kNumQualityTiers &&
         quality != SvcCacheKey::kQualityNone)) {
      return false;
    }
    key.quality_key = static_cast<std::uint8_t>(quality);
  } else {
    key.quality_key = key.method_key == SvcCacheKey::kPortfolio
                          ? static_cast<std::uint8_t>(QualityTier::kBest)
                          : SvcCacheKey::kQualityNone;
  }

  std::int64_t cut = 0;
  if (!json_parse_i64(line, "cut", cut) ||
      !json_parse_string(line, "method", value.method) ||
      value.method.empty() || !json_parse_u64(line, "trials_ok", trials_ok) ||
      trials_ok > 0xffffffffull ||
      !json_parse_u64(line, "degraded", degraded) ||
      degraded > 0xffffffffull) {
    return false;
  }
  value.cut = cut;
  value.trials_ok = static_cast<std::uint32_t>(trials_ok);
  value.trials_degraded = static_cast<std::uint32_t>(degraded);
  value.warm = false;
  if (json_find_value(line, "warm") != std::string::npos) {
    std::uint64_t warm = 0;
    if (!json_parse_u64(line, "warm", warm) || warm != 1) return false;
    value.warm = true;
  }

  std::string sides;
  if (!json_parse_string(line, "sides", sides)) return false;
  value.sides.clear();
  value.sides.reserve(sides.size());
  for (const char c : sides) {
    if (c != '0' && c != '1') return false;
    value.sides.push_back(c == '1' ? 1 : 0);
  }
  return true;
}

std::string SvcCacheStore::encode_lineage(const LineageRecord& record) {
  std::string line = "{\"lineage\":1";
  line += ",\"child\":\"" + to_hex16(record.child) + "\"";
  line += ",\"parent\":\"" + to_hex16(record.parent) + "\"";
  line += ",\"batch\":\"" + to_hex16(record.batch_hash) + "\"";
  line += ",\"adds\":" + std::to_string(record.adds);
  line += ",\"dels\":" + std::to_string(record.dels);
  line += ",\"vadds\":" + std::to_string(record.vadds);
  line += ",\"vdels\":" + std::to_string(record.vdels);
  line += ",\"edit\":" + std::to_string(record.edit_distance);
  line += ",\"depth\":" + std::to_string(record.depth);
  line += ",\"pv\":" + std::to_string(record.parent_vertices);
  line += ",\"vertices\":" + std::to_string(record.child_vertices);
  line += ",\"edges\":" + std::to_string(record.child_edges);
  line += ",\"crc\":\"" + to_hex16(text_crc(line)) + "\"}";
  return line;
}

bool SvcCacheStore::is_lineage_line(const std::string& line) {
  return json_find_value(line, "lineage") != std::string::npos;
}

bool SvcCacheStore::decode_lineage(const std::string& line,
                                   LineageRecord& record) {
  if (!json_object_valid(line)) return false;
  const std::size_t crc_pos = line.rfind(",\"crc\":\"");
  if (crc_pos == std::string::npos) return false;
  std::string crc_text;
  std::uint64_t crc = 0;
  if (!json_parse_string(line, "crc", crc_text) ||
      !parse_hex16(crc_text, crc) ||
      crc != text_crc(line.substr(0, crc_pos))) {
    return false;
  }
  std::uint64_t tag = 0;
  if (!json_parse_u64(line, "lineage", tag) || tag != 1) return false;
  std::string hex;
  if (!json_parse_string(line, "child", hex) ||
      !parse_hex16(hex, record.child) ||
      !json_parse_string(line, "parent", hex) ||
      !parse_hex16(hex, record.parent) ||
      !json_parse_string(line, "batch", hex) ||
      !parse_hex16(hex, record.batch_hash)) {
    return false;
  }
  std::uint64_t depth = 0;
  if (!json_parse_u64(line, "adds", record.adds) ||
      !json_parse_u64(line, "dels", record.dels) ||
      !json_parse_u64(line, "vadds", record.vadds) ||
      !json_parse_u64(line, "vdels", record.vdels) ||
      !json_parse_u64(line, "edit", record.edit_distance) ||
      !json_parse_u64(line, "depth", depth) || depth == 0 ||
      depth > 0xffffffffull ||
      !json_parse_u64(line, "pv", record.parent_vertices) ||
      !json_parse_u64(line, "vertices", record.child_vertices) ||
      !json_parse_u64(line, "edges", record.child_edges)) {
    return false;
  }
  record.depth = static_cast<std::uint32_t>(depth);
  // Maps are never journaled: the restored edge answers identity
  // queries but cannot project a partition (dyn/lineage file comment).
  record.map.clear();
  return true;
}

bool SvcCacheStore::open_and_restore(SvcResultCache& cache,
                                     SvcLineage* lineage,
                                     SvcCacheRestore& report) {
  report = SvcCacheRestore{};
  bool tail_damaged = false;
  std::uint64_t valid_entries = 0;
  std::uint64_t lineage_lines = 0;
  {
    std::ifstream in(path_);
    if (in.is_open()) {
      std::string line;
      bool first = true;
      bool stopped = false;
      while (std::getline(in, line)) {
        if (first) {
          first = false;
          std::string type;
          std::uint64_t version = 0;
          if (!json_object_valid(line) ||
              !json_parse_string(line, "type", type) || type != "svc_cache" ||
              !json_parse_u64(line, "version", version) ||
              (version < 1 || version > 3)) {
            // Foreign or future-version file: restore nothing, rewrite
            // fresh below. Every remaining line is "dropped". Version 1
            // is a strict subset of version 2 (no lineage lines, no
            // "warm" fields) and version 3 only adds the optional
            // "quality" key field, so all three replay through the
            // same loop.
            tail_damaged = true;
            stopped = true;
            ++report.lines_dropped;
            continue;
          }
          continue;
        }
        if (stopped) {
          ++report.lines_dropped;
          continue;
        }
        if (is_lineage_line(line)) {
          LineageRecord record;
          if (!decode_lineage(line, record)) {
            tail_damaged = true;
            stopped = true;
            ++report.lines_dropped;
            continue;
          }
          ++lineage_lines;
          if (lineage != nullptr && lineage->insert(std::move(record)).second) {
            ++report.lineage_restored;
          }
          continue;
        }
        SvcCacheKey key;
        SvcCacheValue value;
        if (!decode_entry(line, key, value)) {
          // Longest-valid-prefix semantics: a damaged line orphans
          // everything after it (append order is the recency order, so
          // replaying past a hole would scramble it — and a torn tail
          // is by far the common case).
          tail_damaged = true;
          stopped = true;
          ++report.lines_dropped;
          continue;
        }
        cache.insert(key, std::move(value));
        ++valid_entries;
        ++report.entries_restored;
      }
      // A final line without a newline still comes back from getline;
      // decode_entry already judged it. An empty existing file gets a
      // header via the rewrite below.
      if (first) tail_damaged = true;
    }
  }

  const bool missing = !std::filesystem::exists(path_);
  const bool lineage_dead_weight =
      lineage != nullptr ? lineage_lines > lineage->size() : lineage_lines > 0;
  if (missing || tail_damaged || valid_entries > cache.stats().entries ||
      lineage_dead_weight) {
    // Fresh file, damaged tail, or dead weight (entries evicted during
    // replay because the byte budget shrank, duplicates, or lineage
    // lines the bounded store refused): rewrite the canonical snapshot.
    const std::uint64_t written = rewrite(cache, lineage);
    if (!ok_) return false;
    report.bytes_written = written;
    report.compacted = !missing;
    return true;
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    ok_ = false;
    return false;
  }
  file_entries_ = valid_entries + lineage_lines;
  return true;
}

std::uint64_t SvcCacheStore::append(const SvcCacheKey& key,
                                    const SvcCacheValue& value) {
  if (!ok_ || !out_.is_open()) return 0;
  const std::string line = encode_entry(key, value);
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    ok_ = false;
    return 0;
  }
  ++file_entries_;
  return line.size() + 1;
}

std::uint64_t SvcCacheStore::append_lineage(const LineageRecord& record) {
  if (!ok_ || !out_.is_open()) return 0;
  const std::string line = encode_lineage(record);
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    ok_ = false;
    return 0;
  }
  ++file_entries_;
  return line.size() + 1;
}

std::uint64_t SvcCacheStore::rewrite(const SvcResultCache& cache,
                                     const SvcLineage* lineage) {
  if (out_.is_open()) out_.close();
  const std::string tmp = path_ + ".tmp";
  std::uint64_t written = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      ok_ = false;
      return 0;
    }
    const std::string header = header_line();
    out << header << '\n';
    written += header.size() + 1;
    std::uint64_t entries = 0;
    if (lineage != nullptr) {
      // Lineage first, in insertion order: parents precede children,
      // so a restore replays the DAG without forward references.
      lineage->visit([&out, &written, &entries](const LineageRecord& record) {
        const std::string line = encode_lineage(record);
        out << line << '\n';
        written += line.size() + 1;
        ++entries;
      });
    }
    cache.visit_lru_to_mru(
        [&out, &written, &entries](const SvcCacheKey& key,
                                   const SvcCacheValue& value) {
          const std::string line = encode_entry(key, value);
          out << line << '\n';
          written += line.size() + 1;
          ++entries;
        });
    out.flush();
    if (!out) {
      ok_ = false;
      return 0;
    }
    file_entries_ = entries;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    ok_ = false;
    return 0;
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    ok_ = false;
    return 0;
  }
  return written;
}

std::uint64_t SvcCacheStore::maybe_compact(const SvcResultCache& cache,
                                           const SvcLineage* lineage) {
  if (!ok_) return 0;
  // Dead weight bound: the journal may hold up to 4x the resident
  // lines (plus slack so tiny caches don't thrash) before a rewrite.
  const std::uint64_t live =
      cache.stats().entries + (lineage != nullptr ? lineage->size() : 0);
  if (file_entries_ <= 4 * live + 64) return 0;
  return rewrite(cache, lineage);
}

}  // namespace gbis
