#include "gbis/svc/cache_store.hpp"

#include <cstdlib>
#include <filesystem>
#include <system_error>
#include <utility>

#include "gbis/svc/fingerprint.hpp"
#include "gbis/util/json_lite.hpp"

namespace gbis {

namespace {

/// Strict 16-lower-hex-digit parse (the to_hex16 wire format). The
/// lenient strtoull would accept "0x...", signs, and short strings —
/// all of which should fail a CRC-guarded journal line instead.
bool parse_hex16(const std::string& text, std::uint64_t& out) {
  if (text.size() != 16) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else return false;
    value = (value << 4) | digit;
  }
  out = value;
  return true;
}

}  // namespace

std::uint64_t SvcCacheStore::text_crc(const std::string& text) {
  Hash64 h;
  std::uint64_t word = 0;
  int packed = 0;
  for (const unsigned char c : text) {
    word |= static_cast<std::uint64_t>(c) << (8 * packed);
    if (++packed == 8) {
      h.add(word);
      word = 0;
      packed = 0;
    }
  }
  if (packed != 0) h.add(word);
  // Length extension: a truncated line whose packed words happen to
  // agree must still miss.
  h.add(static_cast<std::uint64_t>(text.size()));
  return h.digest();
}

std::string SvcCacheStore::header_line() {
  return "{\"type\":\"svc_cache\",\"version\":1}";
}

std::string SvcCacheStore::encode_entry(const SvcCacheKey& key,
                                        const SvcCacheValue& value) {
  std::string line = "{\"fingerprint\":\"" + to_hex16(key.fingerprint) + "\"";
  line += ",\"method_key\":" + std::to_string(key.method_key);
  line += ",\"budget\":" + std::to_string(key.budget);
  line += ",\"seed\":" + std::to_string(key.seed);
  line += ",\"deadline_bits\":\"" + to_hex16(key.deadline_bits) + "\"";
  line += ",\"cut\":" + std::to_string(value.cut);
  line += ",\"method\":";
  append_json_string(line, value.method);
  line += ",\"trials_ok\":" + std::to_string(value.trials_ok);
  line += ",\"degraded\":" + std::to_string(value.trials_degraded);
  std::string sides;
  sides.reserve(value.sides.size());
  for (const std::uint8_t side : value.sides) {
    sides.push_back(side != 0 ? '1' : '0');
  }
  line += ",\"sides\":";
  append_json_string(line, sides);
  line += ",\"crc\":\"" + to_hex16(text_crc(line)) + "\"}";
  return line;
}

bool SvcCacheStore::decode_entry(const std::string& line, SvcCacheKey& key,
                                 SvcCacheValue& value) {
  if (!json_object_valid(line)) return false;
  // The CRC covers every byte before its own ",\"crc\":" suffix; a line
  // without the suffix (or with trailing bytes after the object) fails.
  const std::size_t crc_pos = line.rfind(",\"crc\":\"");
  if (crc_pos == std::string::npos) return false;
  std::string crc_text;
  std::uint64_t crc = 0;
  if (!json_parse_string(line, "crc", crc_text) ||
      !parse_hex16(crc_text, crc) ||
      crc != text_crc(line.substr(0, crc_pos))) {
    return false;
  }

  std::string hex;
  if (!json_parse_string(line, "fingerprint", hex) ||
      !parse_hex16(hex, key.fingerprint)) {
    return false;
  }
  std::uint64_t method_key = 0, budget = 0, trials_ok = 0, degraded = 0;
  if (!json_parse_u64(line, "method_key", method_key) ||
      method_key > 0xffffffffull ||
      !json_parse_u64(line, "budget", budget) || budget == 0 ||
      budget > 0xffffffffull || !json_parse_u64(line, "seed", key.seed) ||
      !json_parse_string(line, "deadline_bits", hex) ||
      !parse_hex16(hex, key.deadline_bits)) {
    return false;
  }
  key.method_key = static_cast<std::uint32_t>(method_key);
  key.budget = static_cast<std::uint32_t>(budget);

  std::int64_t cut = 0;
  if (!json_parse_i64(line, "cut", cut) ||
      !json_parse_string(line, "method", value.method) ||
      value.method.empty() || !json_parse_u64(line, "trials_ok", trials_ok) ||
      trials_ok > 0xffffffffull ||
      !json_parse_u64(line, "degraded", degraded) ||
      degraded > 0xffffffffull) {
    return false;
  }
  value.cut = cut;
  value.trials_ok = static_cast<std::uint32_t>(trials_ok);
  value.trials_degraded = static_cast<std::uint32_t>(degraded);

  std::string sides;
  if (!json_parse_string(line, "sides", sides)) return false;
  value.sides.clear();
  value.sides.reserve(sides.size());
  for (const char c : sides) {
    if (c != '0' && c != '1') return false;
    value.sides.push_back(c == '1' ? 1 : 0);
  }
  return true;
}

bool SvcCacheStore::open_and_restore(SvcResultCache& cache,
                                     SvcCacheRestore& report) {
  report = SvcCacheRestore{};
  bool tail_damaged = false;
  std::uint64_t valid_entries = 0;
  {
    std::ifstream in(path_);
    if (in.is_open()) {
      std::string line;
      bool first = true;
      bool stopped = false;
      while (std::getline(in, line)) {
        if (first) {
          first = false;
          std::string type;
          std::uint64_t version = 0;
          if (!json_object_valid(line) ||
              !json_parse_string(line, "type", type) || type != "svc_cache" ||
              !json_parse_u64(line, "version", version) || version != 1) {
            // Foreign or future-version file: restore nothing, rewrite
            // fresh below. Every remaining line is "dropped".
            tail_damaged = true;
            stopped = true;
            ++report.lines_dropped;
            continue;
          }
          continue;
        }
        if (stopped) {
          ++report.lines_dropped;
          continue;
        }
        SvcCacheKey key;
        SvcCacheValue value;
        if (!decode_entry(line, key, value)) {
          // Longest-valid-prefix semantics: a damaged line orphans
          // everything after it (append order is the recency order, so
          // replaying past a hole would scramble it — and a torn tail
          // is by far the common case).
          tail_damaged = true;
          stopped = true;
          ++report.lines_dropped;
          continue;
        }
        cache.insert(key, std::move(value));
        ++valid_entries;
        ++report.entries_restored;
      }
      // A final line without a newline still comes back from getline;
      // decode_entry already judged it. An empty existing file gets a
      // header via the rewrite below.
      if (first) tail_damaged = true;
    }
  }

  const bool missing = !std::filesystem::exists(path_);
  if (missing || tail_damaged || valid_entries > cache.stats().entries) {
    // Fresh file, damaged tail, or dead weight (entries evicted during
    // replay because the byte budget shrank, or duplicates): rewrite
    // the canonical snapshot.
    const std::uint64_t written = rewrite(cache);
    if (!ok_) return false;
    report.bytes_written = written;
    report.compacted = !missing;
    return true;
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    ok_ = false;
    return false;
  }
  file_entries_ = valid_entries;
  return true;
}

std::uint64_t SvcCacheStore::append(const SvcCacheKey& key,
                                    const SvcCacheValue& value) {
  if (!ok_ || !out_.is_open()) return 0;
  const std::string line = encode_entry(key, value);
  out_ << line << '\n';
  out_.flush();
  if (!out_) {
    ok_ = false;
    return 0;
  }
  ++file_entries_;
  return line.size() + 1;
}

std::uint64_t SvcCacheStore::rewrite(const SvcResultCache& cache) {
  if (out_.is_open()) out_.close();
  const std::string tmp = path_ + ".tmp";
  std::uint64_t written = 0;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      ok_ = false;
      return 0;
    }
    const std::string header = header_line();
    out << header << '\n';
    written += header.size() + 1;
    std::uint64_t entries = 0;
    cache.visit_lru_to_mru(
        [&out, &written, &entries](const SvcCacheKey& key,
                                   const SvcCacheValue& value) {
          const std::string line = encode_entry(key, value);
          out << line << '\n';
          written += line.size() + 1;
          ++entries;
        });
    out.flush();
    if (!out) {
      ok_ = false;
      return 0;
    }
    file_entries_ = entries;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path_, ec);
  if (ec) {
    ok_ = false;
    return 0;
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    ok_ = false;
    return 0;
  }
  return written;
}

std::uint64_t SvcCacheStore::maybe_compact(const SvcResultCache& cache) {
  if (!ok_) return 0;
  // Dead weight bound: the journal may hold up to 4x the resident
  // entries (plus slack so tiny caches don't thrash) before a rewrite.
  const std::uint64_t live = cache.stats().entries;
  if (file_entries_ <= 4 * live + 64) return 0;
  return rewrite(cache);
}

}  // namespace gbis
