// Canonical 64-bit content fingerprints, shared by the service result
// cache and the campaign checkpoint journal.
//
// Hash64 is a SplitMix64-style order-sensitive accumulator (the exact
// scheme the checkpoint fingerprint has used since PR 2 — extracting
// it here did not change a single journal fingerprint; test_svc pins a
// golden value to prove it). graph_fingerprint(g) hashes the vertex
// count, edge count, vertex weights, and every undirected (u, v, w)
// edge straight off the CSR.
//
// Stability contract: the Graph invariants (sorted adjacency, merged
// parallel edges) make the CSR a canonical form of the *labeled*
// graph, so the fingerprint is independent of edge insertion order,
// input file format, and builder history. It is NOT isomorphism-
// invariant: relabeling vertices changes the fingerprint, which is the
// right identity for a result cache whose cached side assignments are
// label-addressed.
#pragma once

#include <bit>
#include <cstdint>

#include "gbis/graph/graph.hpp"

namespace gbis {

/// SplitMix64-style accumulator: order-sensitive, avalanching.
class Hash64 {
 public:
  void add(std::uint64_t value) {
    std::uint64_t z = (state_ += value + 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    state_ = z ^ (z >> 31);
  }
  void add(double value) { add(std::bit_cast<std::uint64_t>(value)); }
  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0x6274697367626973ULL;  // arbitrary non-zero
};

/// Folds g's full content into h: vertex count, edge count, vertex
/// weights in vertex order, then every (u, v, w) with u < v in CSR
/// order. Byte-for-byte the per-graph sequence campaign_fingerprint
/// has always hashed.
void hash_graph(Hash64& h, const Graph& g);

/// Canonical fingerprint of one graph (a fresh Hash64 over
/// hash_graph). Stable across edge insertion order and file format;
/// label-sensitive by design (see the header comment).
std::uint64_t graph_fingerprint(const Graph& g);

}  // namespace gbis
