#include "gbis/svc/connection.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace gbis {

namespace {

/// Read chunk size. Lines are usually short; inline-graph payloads can
/// be large, so keep the chunk big enough to drain them quickly.
constexpr std::size_t kReadChunk = 64 * 1024;

}  // namespace

Connection::Connection(int fd, std::uint64_t id) : fd_(fd), id_(id) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

bool Connection::read_events(std::vector<ConnEvent>& events,
                             std::size_t max_line_bytes) {
  char chunk[kReadChunk];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      std::size_t begin = 0;
      for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
        if (chunk[i] != '\n') continue;
        if (discarding_) {
          // Tail of an overlong line: drop it and resync.
          discarding_ = false;
        } else {
          read_buffer_.append(chunk + begin, i - begin);
          if (read_buffer_.size() > max_line_bytes) {
            // A line can overrun within one chunk, not just across
            // reads — the bound applies either way.
            events.push_back(ConnEvent{ConnEvent::Kind::kOverlong, {}});
            read_buffer_.clear();
          } else {
            if (!read_buffer_.empty() && read_buffer_.back() == '\r') {
              read_buffer_.pop_back();  // tolerate CRLF framing
            }
            ConnEvent event;
            event.kind = ConnEvent::Kind::kLine;
            event.line = std::move(read_buffer_);
            events.push_back(std::move(event));
            read_buffer_.clear();
          }
        }
        begin = i + 1;
      }
      if (!discarding_) {
        read_buffer_.append(chunk + begin, static_cast<std::size_t>(n) - begin);
        if (read_buffer_.size() > max_line_bytes) {
          events.push_back(ConnEvent{ConnEvent::Kind::kOverlong, {}});
          read_buffer_.clear();
          discarding_ = true;
        }
      }
      continue;  // drain until EAGAIN or EOF
    }
    if (n == 0) {
      // EOF: a trailing unterminated line still counts, matching the
      // stdio replay path's final getline.
      if (!discarding_ && !read_buffer_.empty()) {
        ConnEvent event;
        event.kind = ConnEvent::Kind::kLine;
        event.line = std::move(read_buffer_);
        events.push_back(std::move(event));
        read_buffer_.clear();
      }
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;  // fatal read error (ECONNRESET and friends)
  }
}

void Connection::queue_line(const std::string& line) {
  // Compact the consumed prefix before growing — keeps the buffer
  // bounded by the actual backlog, not the lifetime byte count.
  if (write_pos_ > 0 && write_pos_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_pos_ = 0;
  } else if (write_pos_ > 64 * 1024) {
    write_buffer_.erase(0, write_pos_);
    write_pos_ = 0;
  }
  write_buffer_ += line;
  write_buffer_ += '\n';
}

bool Connection::flush_writes(double now_seconds) {
  if (!wants_write()) {
    last_progress_seconds_ = now_seconds;
    return true;
  }
  while (write_pos_ < write_buffer_.size()) {
    const ssize_t n =
        ::send(fd_, write_buffer_.data() + write_pos_,
               write_buffer_.size() - write_pos_, MSG_NOSIGNAL);
    if (n > 0) {
      write_pos_ += static_cast<std::size_t>(n);
      last_progress_seconds_ = now_seconds;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EPIPE / ECONNRESET: peer is gone
  }
  last_progress_seconds_ = now_seconds;
  return true;
}

}  // namespace gbis
