// E4: appendix "Binary trees" table.
#include "gbis/harness/experiments.hpp"

int main() {
  gbis::experiment_bintree(gbis::experiment_env());
  return 0;
}
