// k-way recursive bisection scaling: cut and balance versus k, with
// and without compaction, on the paper's sparse regular family — the
// VLSI-flow view of the headline result.
#include <algorithm>
#include <iostream>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/kway/kway_fm.hpp"
#include "gbis/kway/recursive.hpp"
#include "gbis/kway/refine.hpp"

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  const auto two_n = static_cast<std::uint32_t>(5000 * env.scale) / 2 * 2;
  const Graph g = make_regular_planted({two_n, 16, 3}, rng);

  std::cout << "Recursive k-way on Gbreg(" << two_n
            << ", 16, 3): compacted KL vs plain KL per level, plus "
               "direct k-way refinement on top of CKL\n";
  TablePrinter table(std::cout, {{"k", 4},
                                 {"cut_ckl", 9},
                                 {"t_ckl", 8},
                                 {"+greedy", 9},
                                 {"+kwayfm", 9},
                                 {"cut_kl", 9},
                                 {"t_kl", 8},
                                 {"spread", 7}});
  table.print_header();

  for (std::uint32_t k : {2u, 3u, 4u, 8u, 16u, 32u}) {
    KwayOptions with;
    with.use_compaction = true;
    KwayOptions without;
    without.use_compaction = false;

    const WallTimer t1;
    const KwayPartition pc = recursive_kway(g, k, rng, with);
    const double time_c = t1.elapsed_seconds();
    const KwayPartition pc_refined = kway_refine(pc, rng);
    const KwayPartition pc_fm = kway_fm_refine(pc, rng);
    const WallTimer t2;
    const KwayPartition pp = recursive_kway(g, k, rng, without);
    const double time_p = t2.elapsed_seconds();

    table.cell(std::to_string(k))
        .cell(static_cast<std::int64_t>(pc.edge_cut()))
        .cell(time_c, 3)
        .cell(static_cast<std::int64_t>(pc_refined.edge_cut()))
        .cell(static_cast<std::int64_t>(pc_fm.edge_cut()))
        .cell(static_cast<std::int64_t>(pp.edge_cut()))
        .cell(time_p, 3)
        .cell(static_cast<std::uint64_t>(
            std::max(pc.max_count_spread(), pp.max_count_spread())));
    table.end_row();
  }
  std::cout << '\n';
  return 0;
}
