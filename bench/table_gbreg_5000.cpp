// E7 + O1/O2: appendix "Gbreg(5000, b, 3)" and "Gbreg(5000, b, 4)"
// tables — the paper's headline result. The improvement columns carry
// Observation 2 (compaction >= 90% on degree 3) and the cut columns
// carry Observation 1 (uncompacted cuts 20-50x the planted width at
// degree 3; planted width found at degree 4).
#include "gbis/harness/experiments.hpp"

int main() {
  const gbis::ExperimentEnv env = gbis::experiment_env();
  gbis::experiment_gbreg(env, 5000, 3);
  gbis::experiment_gbreg(env, 5000, 4);
  return 0;
}
