// E2: appendix "Ladder graphs" table — KL/SA/CKL/CSA cuts, times, and
// compaction improvements on ladders of growing size.
#include "gbis/harness/experiments.hpp"

int main() {
  gbis::experiment_ladder(gbis::experiment_env());
  return 0;
}
