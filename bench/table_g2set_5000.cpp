// E5: appendix "G2set(5000, pA, pB, b)" tables, one per average degree
// (2.5, 3, 3.5, 4) as in the paper.
#include "gbis/harness/experiments.hpp"

int main() {
  const gbis::ExperimentEnv env = gbis::experiment_env();
  for (double degree : {2.5, 3.0, 3.5, 4.0}) {
    gbis::experiment_g2set(env, 5000, degree);
  }
  return 0;
}
