// A2: ablation — recursion depth of compaction. Depth 0 is plain KL,
// depth 1 is the paper's compaction, deeper levels are the multilevel
// extension (the METIS-shaped scheme). Run on the family where
// compaction matters most: sparse regular planted graphs.
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "gbis/core/multilevel.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  const auto two_n =
      static_cast<std::uint32_t>(5000 * env.scale) / 2 * 2;
  constexpr std::uint64_t kPlantedWidth = 16;
  std::vector<Graph> graphs;
  for (int i = 0; i < 3; ++i) {
    graphs.push_back(make_regular_planted({two_n, kPlantedWidth, 3}, rng));
  }

  std::cout << "Multilevel-depth ablation on Gbreg(" << two_n << ", "
            << kPlantedWidth << ", 3), KL refiner, best of " << env.starts
            << " starts (planted width " << kPlantedWidth << ")\n";
  TablePrinter table(std::cout, {{"max_levels", 10},
                                 {"avg_cut", 10},
                                 {"avg_time", 10},
                                 {"levels_used", 11}});
  table.print_header();

  for (std::uint32_t depth : {0u, 1u, 2u, 3u, 16u}) {
    MultilevelOptions options;
    options.max_levels = depth;
    options.min_vertices = 32;
    double cut_total = 0, time_total = 0, levels_total = 0;
    for (const Graph& g : graphs) {
      const WallTimer timer;
      Weight best = std::numeric_limits<Weight>::max();
      std::uint32_t levels = 0;
      for (std::uint32_t s = 0; s < env.starts; ++s) {
        MultilevelStats stats;
        const Bisection b =
            multilevel_bisect(g, rng, kl_refiner(), options, &stats);
        best = std::min(best, b.cut());
        levels = stats.levels;
      }
      cut_total += static_cast<double>(best);
      time_total += timer.elapsed_seconds();
      levels_total += levels;
    }
    const auto k = static_cast<double>(graphs.size());
    table.cell(std::to_string(depth))
        .cell(cut_total / k, 1)
        .cell(time_total / k, 3)
        .cell(levels_total / k, 1);
    table.end_row();
  }
  std::cout << '\n';
  return 0;
}
