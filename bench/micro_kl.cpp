// M1: microbenchmarks for the Kernighan-Lin hot paths — a full pass and
// a full refinement run across graph sizes and degrees.
#include <benchmark/benchmark.h>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

Graph bench_graph(std::uint32_t two_n, std::uint32_t d) {
  Rng rng(two_n * 7 + d);
  return make_regular_planted({two_n, 16, d}, rng);
}

void BM_KlPass(benchmark::State& state) {
  const auto two_n = static_cast<std::uint32_t>(state.range(0));
  const auto d = static_cast<std::uint32_t>(state.range(1));
  const Graph g = bench_graph(two_n, d);
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Bisection b = Bisection::random(g, rng);
    state.ResumeTiming();
    benchmark::DoNotOptimize(kl_pass(b));
  }
  state.SetItemsProcessed(state.iterations() * two_n);
}
BENCHMARK(BM_KlPass)
    ->Args({512, 3})
    ->Args({2048, 3})
    ->Args({2048, 4})
    ->Args({8192, 3})
    ->Unit(benchmark::kMillisecond);

void BM_KlRefineToFixpoint(benchmark::State& state) {
  const auto two_n = static_cast<std::uint32_t>(state.range(0));
  const Graph g = bench_graph(two_n, 3);
  Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    Bisection b = Bisection::random(g, rng);
    state.ResumeTiming();
    const KlStats stats = kl_refine(b);
    benchmark::DoNotOptimize(stats.final_cut);
  }
}
BENCHMARK(BM_KlRefineToFixpoint)
    ->Arg(512)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond);

}  // namespace
