// E8 (part): appendix "Gbreg(2000, b, 3)" and "Gbreg(2000, b, 4)"
// tables.
#include "gbis/harness/experiments.hpp"

int main() {
  const gbis::ExperimentEnv env = gbis::experiment_env();
  gbis::experiment_gbreg(env, 2000, 3);
  gbis::experiment_gbreg(env, 2000, 4);
  return 0;
}
