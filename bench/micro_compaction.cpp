// M1: microbenchmarks for the compaction machinery — matching,
// contraction, and the full CKL pipeline.
#include <benchmark/benchmark.h>

#include "gbis/core/compaction.hpp"
#include "gbis/core/contract.hpp"
#include "gbis/core/matching.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

Graph bench_graph(std::uint32_t two_n) {
  Rng rng(two_n * 3 + 1);
  return make_regular_planted({two_n, 16, 3}, rng);
}

void BM_MaximalMatching(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(maximal_matching(g, rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_MaximalMatching)->Arg(2048)->Arg(8192);

void BM_ContractMatching(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  Rng rng(2);
  const Matching m = maximal_matching(g, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(contract_matching(g, m, rng));
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_ContractMatching)->Arg(2048)->Arg(8192);

void BM_CklEndToEnd(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::uint32_t>(state.range(0)));
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ckl(g, rng).cut());
  }
}
BENCHMARK(BM_CklEndToEnd)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace
