// Incremental re-solve: the price of answering a solve after a graph
// mutation, warm versus cold, end to end through the NDJSON front door
// (mutate -> lineage -> warm-start projection -> bounded KL).
//
//   Warm — the service warm-starts each child solve from the cached
//          parent partition projected through the lineage maps. The PR
//          acceptance bar is >= 5x faster than Cold at edit distance
//          <= 1% of |E|, with the cut within 5% (compare mean_cut).
//   Cold — the same mutate/solve traffic against a --no-warm service,
//          so every child runs the full auto portfolio (budget 4, the
//          service's usual request shape) from scratch.
//
// Arg is the edit distance: a positive value is absolute, a negative
// value -N means |E|/N of the benchmark graph (-100 -> 1% of |E|,
// -10 -> 10%), resolved at run time and reported as the edit_distance
// counter. Each iteration derives a distinct child (the added edge's
// endpoint varies with the iteration index), so the timed solve is
// always a cache miss and always warm-starts from the parent, never
// from an earlier identical sibling.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <vector>

#include "gbis/gen/gnp.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/svc/scheduler.hpp"
#include "gbis/util/json_lite.hpp"

namespace {

using namespace gbis;

Graph bench_graph() {
  Rng rng(97);
  return make_gnp(2000, gnp_p_for_degree(2000, 5.0), rng);
}

// The parent's edge list as (u, v) pairs with u < v, in CSR order —
// the pool the deletion batches draw from.
std::vector<std::pair<Vertex, Vertex>> edge_pairs(const Graph& g) {
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(g.num_edges());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u < v) pairs.emplace_back(u, v);
    }
  }
  return pairs;
}

std::string solve_inline_line(const Graph& g) {
  std::ostringstream payload;
  write_edge_list(payload, g);
  std::string line =
      "{\"op\":\"solve\",\"method\":\"auto\",\"budget\":4,\"seed\":7,\"inline\":";
  append_json_string(line, payload.str());
  line += "}";
  return line;
}

// An edit batch of exactly `distance` edits whose child fingerprint is
// unique per iteration: one added vertex, one added edge whose far
// endpoint walks with `iteration`, and deletions from the front of the
// parent's edge list for the remainder. distance == 1 falls back to a
// single varying deletion.
std::string mutate_line(const std::string& parent_fp,
                        const std::vector<std::pair<Vertex, Vertex>>& pairs,
                        std::uint64_t distance, std::uint64_t iteration,
                        Vertex parent_vertices) {
  std::string line = "{\"op\":\"mutate\",\"parent\":\"" + parent_fp + "\"";
  if (distance == 1) {
    const auto& e = pairs[iteration % pairs.size()];
    line += ",\"del_edges\":[" + std::to_string(e.first) + "," +
            std::to_string(e.second) + "]";
  } else {
    line += ",\"add_vertices\":1";
    line += ",\"add_edges\":[" + std::to_string(parent_vertices) + "," +
            std::to_string(iteration % parent_vertices) + "]";
    if (distance > 2) {
      line += ",\"del_edges\":[";
      for (std::uint64_t k = 0; k < distance - 2; ++k) {
        if (k > 0) line += ",";
        const auto& e = pairs[k];
        line += std::to_string(e.first) + "," + std::to_string(e.second);
      }
      line += "]";
    }
  }
  line += "}";
  return line;
}

std::uint64_t resolve_distance(std::int64_t arg, std::uint64_t edges) {
  if (arg > 0) return static_cast<std::uint64_t>(arg);
  return edges / static_cast<std::uint64_t>(-arg);
}

// Shared driver: mutate (untimed) then solve the child (timed) against
// a service with warm starts on or off.
void run_incremental(benchmark::State& state, bool warm) {
  const Graph g = bench_graph();
  const auto pairs = edge_pairs(g);
  const std::uint64_t distance =
      resolve_distance(state.range(0), g.num_edges());

  SvcOptions options;
  options.threads = 1;
  options.batch_size = 1;
  options.warm = warm;
  Service service(options);

  std::vector<std::string> out;
  service.submit_line(solve_inline_line(g), out);
  service.drain(out);
  std::string parent_fp;
  if (out.empty() || !json_parse_string(out[0], "fingerprint", parent_fp)) {
    state.SkipWithError("parent solve did not return a fingerprint");
    return;
  }
  out.clear();

  std::uint64_t iteration = 0;
  double cut_sum = 0.0;
  std::uint64_t cut_count = 0;
  for (auto _ : state) {
    state.PauseTiming();
    service.submit_line(
        mutate_line(parent_fp, pairs, distance, iteration++,
                    g.num_vertices()),
        out);
    service.drain(out);
    std::string child_fp;
    if (out.empty() || !json_parse_string(out[0], "fingerprint", child_fp)) {
      state.SkipWithError("mutate did not return a child fingerprint");
      return;
    }
    out.clear();
    state.ResumeTiming();

    service.submit_line("{\"op\":\"solve\",\"graph\":\"" + child_fp +
                            "\",\"method\":\"auto\",\"budget\":4,\"seed\":7}",
                        out);
    service.drain(out);
    benchmark::DoNotOptimize(out);
    state.PauseTiming();
    std::uint64_t cut = 0;
    if (!out.empty() && json_parse_u64(out[0], "cut", cut)) {
      cut_sum += static_cast<double>(cut);
      ++cut_count;
    }
    out.clear();
    state.ResumeTiming();
  }

  state.counters["edit_distance"] = static_cast<double>(distance);
  state.counters["mean_cut"] =
      cut_count > 0 ? cut_sum / static_cast<double>(cut_count) : 0.0;
  const TrialMetrics snap = service.metrics_snapshot();
  const double solves = static_cast<double>(iteration);
  state.counters["warm_ratio"] =
      solves > 0.0
          ? static_cast<double>(snap.counter(Counter::kSvcSolveWarm)) / solves
          : 0.0;
}

void BM_SvcIncremental_Warm(benchmark::State& state) {
  run_incremental(state, /*warm=*/true);
}
BENCHMARK(BM_SvcIncremental_Warm)
    ->Arg(1)
    ->Arg(10)
    ->Arg(-100)  // 1% of |E|
    ->Arg(-10)   // 10% of |E|
    ->Unit(benchmark::kMillisecond);

void BM_SvcIncremental_Cold(benchmark::State& state) {
  run_incremental(state, /*warm=*/false);
}
BENCHMARK(BM_SvcIncremental_Cold)
    ->Arg(1)
    ->Arg(10)
    ->Arg(-100)
    ->Arg(-10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
