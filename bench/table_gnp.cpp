// E6 + E8 (part): appendix "Gnp(5000, p)" and "Gnp(2000, p)" tables
// (rows swept over average degree; the paper averaged 7 graphs per
// entry — set GBIS_GRAPHS_PER_SETTING=7 to match exactly).
#include "gbis/harness/experiments.hpp"

int main() {
  const gbis::ExperimentEnv env = gbis::experiment_env();
  gbis::experiment_gnp(env, 5000);
  gbis::experiment_gnp(env, 2000);
  return 0;
}
