// M1: microbenchmarks for simulated annealing — full anneals under the
// fast schedule, across sizes.
#include <benchmark/benchmark.h>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"

namespace {

using namespace gbis;

void BM_SaRefine(benchmark::State& state) {
  const auto two_n = static_cast<std::uint32_t>(state.range(0));
  Rng gen_rng(two_n);
  const Graph g = make_regular_planted({two_n, 16, 3}, gen_rng);
  Rng rng(1);
  SaOptions options;
  options.temperature_length_factor = 4.0;
  options.cooling_ratio = 0.9;
  for (auto _ : state) {
    state.PauseTiming();
    Bisection b = Bisection::random(g, rng);
    state.ResumeTiming();
    const SaStats stats = sa_refine(b, rng, options);
    benchmark::DoNotOptimize(stats.final_cut);
  }
}
BENCHMARK(BM_SaRefine)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_SaMoveThroughput(benchmark::State& state) {
  // Throughput of the proposal loop in isolation: capped-move anneal.
  const auto two_n = static_cast<std::uint32_t>(state.range(0));
  Rng gen_rng(two_n + 1);
  const Graph g = make_regular_planted({two_n, 16, 3}, gen_rng);
  Rng rng(2);
  SaOptions options;
  options.max_total_moves = 100000;
  options.initial_temperature = 2.0;
  for (auto _ : state) {
    state.PauseTiming();
    Bisection b = Bisection::random(g, rng);
    state.ResumeTiming();
    const SaStats stats = sa_refine(b, rng, options);
    benchmark::DoNotOptimize(stats.moves_proposed);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SaMoveThroughput)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace
