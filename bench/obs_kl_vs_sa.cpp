// O4/O5: Observations 4-5 — KL vs SA speed ratios and quality
// win-rates with and without compaction.
#include "gbis/harness/experiments.hpp"

int main() {
  gbis::experiment_obs_kl_vs_sa(gbis::experiment_env());
  return 0;
}
