// O7 (section VII): the SA early-termination flaw. The paper: SA "may
// then continue to search for an optimal solution a long time after
// finding a good bisection... Attempts at correcting this flaw caused
// the algorithm to terminate prematurely." This bench sweeps the
// stagnation cut-off and shows exactly that trade: small cut-offs save
// most of the time but give up cut quality before the cold phase can
// deliver it.
#include <iostream>
#include <vector>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/sa/sa.hpp"

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  const auto two_n = static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;
  std::vector<Graph> graphs;
  for (int i = 0; i < 3; ++i) {
    graphs.push_back(make_regular_planted({two_n, 16, 3}, rng));
  }

  std::cout << "SA early-termination ablation on Gbreg(" << two_n
            << ", 16, 3), single start per cell (planted width 16; 0 = "
               "run to freezing)\n";
  TablePrinter table(std::cout, {{"stagnation", 10},
                                 {"avg_cut", 9},
                                 {"avg_time", 9},
                                 {"avg_temps", 9}});
  table.print_header();

  for (std::uint32_t stagnation : {0u, 2u, 4u, 8u, 16u, 32u}) {
    SaOptions options;
    options.temperature_length_factor = env.sa_length_factor;
    options.stagnation_temperatures = stagnation;
    double cut_total = 0, time_total = 0, temps_total = 0;
    for (const Graph& g : graphs) {
      const WallTimer timer;
      Bisection b = Bisection::random(g, rng);
      const SaStats stats = sa_refine(b, rng, options);
      cut_total += static_cast<double>(b.cut());
      time_total += timer.elapsed_seconds();
      temps_total += stats.temperatures;
    }
    const auto k = static_cast<double>(graphs.size());
    table.cell(std::to_string(stagnation))
        .cell(cut_total / k, 1)
        .cell(time_total / k, 3)
        .cell(temps_total / k, 0);
    table.end_row();
  }
  std::cout << '\n';
  return 0;
}
