// O2 (size trend): "once again compaction provides more of a benefit
// as the graph size increases" — KL vs CKL across instance sizes at
// fixed planted width and degree 3.
#include <iostream>
#include <vector>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/stats.hpp"
#include "gbis/harness/table.hpp"

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);

  std::cout << "Compaction benefit vs size on Gbreg(n, 16, 3) (avg of 3 "
               "graphs, best of " << config.starts << " starts)\n";
  TablePrinter table(std::cout, {{"n", 7},
                                 {"bkl", 8},
                                 {"bckl", 8},
                                 {"kl_impr%", 9},
                                 {"bsa", 8},
                                 {"bcsa", 8},
                                 {"sa_impr%", 9}});
  table.print_header();

  for (std::uint32_t base : {500u, 1000u, 2000u, 5000u, 10000u}) {
    const auto n =
        static_cast<std::uint32_t>(base * env.scale) / 2 * 2;
    std::vector<Graph> graphs;
    for (int i = 0; i < 3; ++i) {
      graphs.push_back(make_regular_planted({n, 16, 3}, rng));
    }
    const FourWayRow row = run_four_way(graphs, rng, config);
    table.cell(std::to_string(n))
        .cell(row.bkl, 1)
        .cell(row.bckl, 1)
        .cell(percent_improvement(row.bkl, row.bckl), 1)
        .cell(row.bsa, 1)
        .cell(row.bcsa, 1)
        .cell(percent_improvement(row.bsa, row.bcsa), 1);
    table.end_row();
  }
  std::cout << '\n';
  return 0;
}
