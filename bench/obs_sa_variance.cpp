// O6 (Observation 4, consistency): "In the quality of the solution
// returned, the Kernighan-Lin procedure was more consistent than
// simulated annealing. ... Simulated annealing occasionally showed
// large differences in the results of the two trials." This bench runs
// each method many times on the same instances and reports the spread.
#include <iostream>
#include <vector>

#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/stats.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/sa/sa.hpp"

namespace {

using namespace gbis;

void study(const char* label, const Graph& g, Rng& rng, double sa_length,
           TablePrinter& table) {
  constexpr int kTrials = 12;
  std::vector<double> kl_cuts, sa_cuts;
  SaOptions sa_options;
  sa_options.temperature_length_factor = sa_length;
  for (int t = 0; t < kTrials; ++t) {
    Bisection kl_b = Bisection::random(g, rng);
    kl_refine(kl_b);
    kl_cuts.push_back(static_cast<double>(kl_b.cut()));
    Bisection sa_b = Bisection::random(g, rng);
    sa_refine(sa_b, rng, sa_options);
    sa_cuts.push_back(static_cast<double>(sa_b.cut()));
  }
  const Summary kl = summarize(kl_cuts);
  const Summary sa = summarize(sa_cuts);
  table.cell(label)
      .cell("KL")
      .cell(kl.min, 0)
      .cell(kl.mean, 1)
      .cell(kl.max, 0)
      .cell(kl.stddev, 1);
  table.end_row();
  table.cell(label)
      .cell("SA")
      .cell(sa.min, 0)
      .cell(sa.mean, 1)
      .cell(sa.max, 0)
      .cell(sa.stddev, 1);
  table.end_row();
}

}  // namespace

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);
  const auto two_n = static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;

  std::cout << "Trial-to-trial variance (12 independent starts per "
               "method per graph)\n";
  TablePrinter table(std::cout, {{"graph", 22},
                                 {"method", 6},
                                 {"min", 7},
                                 {"mean", 8},
                                 {"max", 7},
                                 {"stddev", 7}});
  table.print_header();

  const Graph gbreg = make_regular_planted({two_n, 16, 3}, rng);
  study("Gbreg(2000,16,3)", gbreg, rng, env.sa_length_factor, table);
  const Graph planted =
      make_planted(planted_params_for_degree(two_n, 3.0, 32), rng);
  study("G2set(2000,deg3,b32)", planted, rng, env.sa_length_factor, table);
  const Graph ladder = make_ladder(two_n / 2);
  study("Ladder(2000)", ladder, rng, env.sa_length_factor, table);
  std::cout << '\n';
  return 0;
}
