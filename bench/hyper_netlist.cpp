// Netlist partitioning shoot-out: native hypergraph FM vs. the paper's
// graph algorithms run on clique and star expansions, on planted
// circuit netlists. All columns report the true *net cut* of the
// resulting cell partition (expansion cuts are mapped back to nets).
#include <algorithm>
#include <iostream>
#include <limits>
#include <span>
#include <vector>

#include "gbis/core/compaction.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/hypergraph/expand.hpp"
#include "gbis/hypergraph/fm_hyper.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/balance.hpp"
#include "gbis/partition/bisection.hpp"

namespace {

using namespace gbis;

/// Net cut of a cell-side assignment.
Weight net_cut(const Hypergraph& h, std::span<const std::uint8_t> sides) {
  return HyperBisection(
             h, std::vector<std::uint8_t>(sides.begin(), sides.end()))
      .cut();
}

}  // namespace

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  const auto cells = static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;
  std::cout << "Planted netlist bisection: native FM vs expansions ("
            << "cells=" << cells << ", nets=" << cells * 3 / 2
            << ", best of " << env.starts << " starts; all columns are "
            << "net cuts)\n";
  TablePrinter table(std::cout, {{"cross", 7},
                                 {"fm", 8},
                                 {"t_fm", 8},
                                 {"clq_ckl", 8},
                                 {"t_clq", 8},
                                 {"star_ckl", 8},
                                 {"t_star", 8}});
  table.print_header();

  for (std::uint32_t cross : {8u, 16u, 32u, 64u}) {
    const NetlistParams params{cells, cells * 3 / 2, 1.0};
    const Hypergraph h = make_planted_netlist(params, cross, rng);

    // Native hypergraph FM.
    WallTimer t_fm;
    Weight fm_best = std::numeric_limits<Weight>::max();
    for (std::uint32_t s = 0; s < env.starts; ++s) {
      HyperBisection b = HyperBisection::random(h, rng);
      hyper_fm_refine(b);
      fm_best = std::min(fm_best, b.cut());
    }
    const double fm_time = t_fm.elapsed_seconds();

    // Clique expansion + CKL.
    const Graph clique = clique_expansion(h);
    WallTimer t_clq;
    Weight clq_best = std::numeric_limits<Weight>::max();
    for (std::uint32_t s = 0; s < env.starts; ++s) {
      const Bisection b = ckl(clique, rng);
      clq_best = std::min(clq_best, net_cut(h, b.sides()));
    }
    const double clq_time = t_clq.elapsed_seconds();

    // Star expansion + CKL; hub sides are dropped, cells rebalanced.
    const Graph star = star_expansion(h);
    WallTimer t_star;
    Weight star_best = std::numeric_limits<Weight>::max();
    for (std::uint32_t s = 0; s < env.starts; ++s) {
      const Bisection b = ckl(star, rng);
      std::vector<std::uint8_t> cell_sides(b.sides().begin(),
                                           b.sides().begin() + cells);
      // The star split balances cells+hubs; rebalance the cells alone
      // through a throwaway clique-graph bisection.
      Bisection cells_only(clique, std::move(cell_sides));
      rebalance(cells_only);
      star_best = std::min(star_best, net_cut(h, cells_only.sides()));
    }
    const double star_time = t_star.elapsed_seconds();

    table.cell(std::to_string(cross))
        .cell(static_cast<std::int64_t>(fm_best))
        .cell(fm_time, 3)
        .cell(static_cast<std::int64_t>(clq_best))
        .cell(clq_time, 3)
        .cell(static_cast<std::int64_t>(star_best))
        .cell(star_time, 3);
    table.end_row();
  }
  std::cout << "(clq/star columns run the paper's compacted KL on the "
               "expansion, then score the induced cell split by nets)\n\n";
  return 0;
}
