// Certified optimality gaps: at sizes the branch-and-bound oracle can
// close (n <= ~56), print the true optimum next to what each heuristic
// returns — the paper's "expected bisection" column upgraded from
// with-high-probability to certified.
#include <algorithm>
#include <iostream>
#include <limits>

#include "gbis/core/compaction.hpp"
#include "gbis/exact/branch_bound.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/sa/sa.hpp"

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  std::cout << "Certified optima on Gbreg(n, 2, 3) vs best-of-"
            << env.starts << " heuristics (branch-and-bound oracle)\n";
  TablePrinter table(std::cout, {{"n", 5},
                                 {"optimum", 8},
                                 {"kl", 6},
                                 {"ckl", 6},
                                 {"sa", 6},
                                 {"bb_nodes", 10}});
  table.print_header();

  SaOptions sa_options;
  sa_options.temperature_length_factor = env.sa_length_factor;

  for (std::uint32_t n : {32u, 40u, 48u, 56u}) {
    const RegularPlantedParams params{n, 2, 3};
    const Graph g = make_regular_planted(params, rng);

    Bisection incumbent = Bisection::random(g, rng);
    kl_refine(incumbent);
    BranchBoundOptions options;
    options.initial_upper_bound = incumbent.cut();
    BranchBoundStats stats;
    const ExactBisection exact = branch_bound_bisection(g, options, &stats);

    Weight kl_best = std::numeric_limits<Weight>::max();
    Weight ckl_best = std::numeric_limits<Weight>::max();
    Weight sa_best = std::numeric_limits<Weight>::max();
    for (std::uint32_t s = 0; s < env.starts; ++s) {
      Bisection b = Bisection::random(g, rng);
      kl_refine(b);
      kl_best = std::min(kl_best, b.cut());
      ckl_best = std::min(ckl_best, ckl(g, rng).cut());
      Bisection b2 = Bisection::random(g, rng);
      sa_refine(b2, rng, sa_options);
      sa_best = std::min(sa_best, b2.cut());
    }
    table.cell(std::to_string(n))
        .cell(static_cast<std::int64_t>(exact.cut))
        .cell(static_cast<std::int64_t>(kl_best))
        .cell(static_cast<std::int64_t>(ckl_best))
        .cell(static_cast<std::int64_t>(sa_best))
        .cell(stats.nodes);
    table.end_row();
  }
  std::cout << '\n';
  return 0;
}
