// E1: Table 1 — average bisection-width improvement made by compaction
// on grids, ladders, and binary trees, against the paper's reported
// percentages (KL/SA: Grid 13/34, Ladder 12/24, Binary tree 56/17).
#include "gbis/harness/experiments.hpp"

int main() {
  gbis::experiment_table1_summary(gbis::experiment_env());
  return 0;
}
