// M1: microbenchmarks for the graph generators.
#include <benchmark/benchmark.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

void BM_Gnp(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  const double p = gnp_p_for_degree(n, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_gnp(n, p, rng).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gnp)->Arg(2048)->Arg(16384);

void BM_Planted(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng(2);
  const PlantedParams params = planted_params_for_degree(n, 3.0, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_planted(params, rng).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Planted)->Arg(2048)->Arg(16384);

void BM_RegularPlanted(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto d = static_cast<std::uint32_t>(state.range(1));
  Rng rng(3);
  const RegularPlantedParams params{n, 16, d};
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_regular_planted(params, rng).num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RegularPlanted)->Args({2048, 3})->Args({2048, 4})->Args({8192, 3});

void BM_SpecialFamilies(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_grid(n, n).num_edges());
    benchmark::DoNotOptimize(make_ladder(n * n / 2).num_edges());
    benchmark::DoNotOptimize(make_binary_tree(n * n).num_edges());
  }
}
BENCHMARK(BM_SpecialFamilies)->Arg(32)->Arg(64);

}  // namespace
