// A1: ablation — does the matching policy inside compaction matter?
// Compares random maximal matching (the paper's choice), heavy-edge
// matching (the later METIS-style choice), and deterministic first-fit
// on sparse regular and planted instances.
#include <iostream>
#include <vector>

#include "gbis/core/compaction.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/stats.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"

namespace {

using namespace gbis;

void sweep(const char* label, const std::vector<Graph>& graphs, Rng& rng,
           const RunConfig& config) {
  std::cout << "Matching-policy ablation on " << label << " ("
            << graphs.size() << " graphs, best of " << config.starts
            << " starts)\n";
  TablePrinter table(std::cout, {{"policy", 10},
                                 {"ckl_cut", 10},
                                 {"ckl_time", 10},
                                 {"csa_cut", 10},
                                 {"csa_time", 10}});
  table.print_header();
  struct PolicyCase {
    const char* name;
    MatchPolicy policy;
  };
  const PolicyCase cases[] = {{"random", MatchPolicy::kRandom},
                              {"heavy", MatchPolicy::kHeavyEdge},
                              {"firstfit", MatchPolicy::kFirstFit}};
  for (const PolicyCase& c : cases) {
    RunConfig cfg = config;
    cfg.compaction.match_policy = c.policy;
    double ckl_cut = 0, ckl_time = 0, csa_cut = 0, csa_time = 0;
    for (const Graph& g : graphs) {
      const RunResult rk = run_method(g, Method::kCkl, rng, cfg);
      const RunResult rs = run_method(g, Method::kCsa, rng, cfg);
      ckl_cut += static_cast<double>(rk.best_cut);
      ckl_time += rk.cpu_seconds;
      csa_cut += static_cast<double>(rs.best_cut);
      csa_time += rs.cpu_seconds;
    }
    const auto k = static_cast<double>(graphs.size());
    table.cell(c.name)
        .cell(ckl_cut / k, 1)
        .cell(ckl_time / k, 3)
        .cell(csa_cut / k, 1)
        .cell(csa_time / k, 3);
    table.end_row();
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);
  const RunConfig config = experiment_run_config(env);

  const auto two_n =
      static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;
  std::vector<Graph> gbreg;
  for (int i = 0; i < 3; ++i) {
    gbreg.push_back(make_regular_planted({two_n, 16, 3}, rng));
  }
  sweep("Gbreg(2000, 16, 3)", gbreg, rng, config);

  std::vector<Graph> planted;
  const PlantedParams params = planted_params_for_degree(two_n, 3.0, 32);
  for (int i = 0; i < 3; ++i) {
    planted.push_back(make_planted(params, rng));
  }
  sweep("G2set(2000, deg 3, b=32)", planted, rng, config);
  return 0;
}
