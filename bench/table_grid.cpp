// E3: appendix "Grid graphs" (N x N) table.
#include "gbis/harness/experiments.hpp"

int main() {
  gbis::experiment_grid(gbis::experiment_env());
  return 0;
}
