// A5: ablation — SA move neighborhood. Figure 1 says only "pick a
// random solution S'"; this bench compares single-vertex flips with
// the imbalance-penalty cost (Johnson et al., our default) against
// strictly balanced pair swaps, across the families where the two
// plausibly differ.
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/sa/sa.hpp"

namespace {

using namespace gbis;

void row(TablePrinter& table, const char* label, const Graph& g,
         SaNeighborhood neighborhood, std::uint32_t starts, double length,
         Rng& rng) {
  SaOptions options;
  options.neighborhood = neighborhood;
  options.temperature_length_factor = length;
  const WallTimer timer;
  Weight best = std::numeric_limits<Weight>::max();
  std::uint64_t proposed = 0;
  for (std::uint32_t s = 0; s < starts; ++s) {
    Bisection b = Bisection::random(g, rng);
    const SaStats stats = sa_refine(b, rng, options);
    best = std::min(best, b.cut());
    proposed += stats.moves_proposed;
  }
  table.cell(label)
      .cell(neighborhood == SaNeighborhood::kFlip ? "flip" : "swap")
      .cell(static_cast<std::int64_t>(best))
      .cell(timer.elapsed_seconds(), 3)
      .cell(static_cast<std::uint64_t>(proposed));
  table.end_row();
}

}  // namespace

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);
  const auto two_n = static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;

  std::cout << "SA neighborhood ablation (best of " << env.starts
            << " starts)\n";
  TablePrinter table(std::cout, {{"graph", 22},
                                 {"moves", 6},
                                 {"cut", 8},
                                 {"time", 8},
                                 {"proposed", 10}});
  table.print_header();

  const Graph gbreg = make_regular_planted({two_n, 16, 3}, rng);
  row(table, "Gbreg(2000,16,3)", gbreg, SaNeighborhood::kFlip, env.starts,
      env.sa_length_factor, rng);
  row(table, "Gbreg(2000,16,3)", gbreg, SaNeighborhood::kSwap, env.starts,
      env.sa_length_factor, rng);

  const Graph planted =
      make_planted(planted_params_for_degree(two_n, 3.0, 32), rng);
  row(table, "G2set(2000,deg3,b32)", planted, SaNeighborhood::kFlip,
      env.starts, env.sa_length_factor, rng);
  row(table, "G2set(2000,deg3,b32)", planted, SaNeighborhood::kSwap,
      env.starts, env.sa_length_factor, rng);

  const Graph ladder = make_ladder(two_n / 2);
  row(table, "Ladder(2000)", ladder, SaNeighborhood::kFlip, env.starts,
      env.sa_length_factor, rng);
  row(table, "Ladder(2000)", ladder, SaNeighborhood::kSwap, env.starts,
      env.sa_length_factor, rng);

  const Graph tree = make_binary_tree(two_n);
  row(table, "BinaryTree(2000)", tree, SaNeighborhood::kFlip, env.starts,
      env.sa_length_factor, rng);
  row(table, "BinaryTree(2000)", tree, SaNeighborhood::kSwap, env.starts,
      env.sa_length_factor, rng);
  std::cout << '\n';
  return 0;
}
