// Partition-service throughput: the price of a cold solve versus a
// cache-hit answer for the same request, end to end through the NDJSON
// front door (parse -> fingerprint -> cache -> policy -> encode).
//
//   Cold     — every iteration carries a fresh seed, so the cache can
//              never hit and the full portfolio budget runs
//   CacheHit — every iteration repeats one request; after the first,
//              answers come from the LRU cache. The PR acceptance bar
//              is >= 10x faster than Cold on this graph.
//   Fingerprint — the canonical graph hash alone, the fixed cost every
//              request pays before the cache can speak
//   Socket   — the same NDJSON front door over a loopback unix socket:
//              N concurrent clients pipeline ping requests through the
//              poll(2) listener, so the measured cost is framing +
//              routing + syscalls, with the solve path held at zero
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/io/edge_list.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/svc/fingerprint.hpp"
#include "gbis/svc/listener.hpp"
#include "gbis/svc/scheduler.hpp"
#include "gbis/util/json_lite.hpp"

namespace {

using namespace gbis;

// Serve-path telemetry alongside the timing: request-latency p50/p99
// (from the service's own log2 histogram) and the cache-hit ratio.
// These land in BENCH_<date>.json as extra counter fields.
void report_service_counters(benchmark::State& state,
                             const Service& service) {
  const HistSummary latency = summarize_hist(
      service.metrics_snapshot().hist(Hist::kSvcRequestLatencyUs));
  state.counters["latency_p50_us"] = latency.p50;
  state.counters["latency_p99_us"] = latency.p99;
  const SvcCacheStats& cache = service.cache_stats();
  const double lookups = static_cast<double>(cache.hits + cache.misses);
  state.counters["hit_ratio"] =
      lookups > 0.0 ? static_cast<double>(cache.hits) / lookups : 0.0;
}

Graph bench_graph() {
  Rng rng(97);
  return make_gnp(500, gnp_p_for_degree(500, 5.0), rng);
}

std::string request_line(const Graph& g, std::uint64_t seed,
                         const std::string& quality = "") {
  std::ostringstream payload;
  write_edge_list(payload, g);
  std::string line = "{\"op\":\"solve\",\"seed\":" + std::to_string(seed);
  if (!quality.empty()) line += ",\"quality\":\"" + quality + "\"";
  line += ",\"budget\":4,\"inline\":";
  append_json_string(line, payload.str());
  line += "}";
  return line;
}

SvcOptions bench_options() {
  SvcOptions options;
  options.threads = 1;
  options.batch_size = 1;  // one request, one batch: pure request cost
  return options;
}

void BM_SvcSolve_Cold(benchmark::State& state) {
  const Graph g = bench_graph();
  Service service(bench_options());
  std::uint64_t seed = 0;
  std::vector<std::string> out;
  for (auto _ : state) {
    // A fresh seed is a fresh solve identity: guaranteed cache miss.
    service.submit_line(request_line(g, ++seed), out);
    service.drain(out);
    benchmark::DoNotOptimize(out);
    out.clear();
  }
  state.counters["cache_hits"] =
      static_cast<double>(service.cache_stats().hits);
  report_service_counters(state, service);
}
BENCHMARK(BM_SvcSolve_Cold)->Unit(benchmark::kMillisecond);

void BM_SvcSolve_CacheHit(benchmark::State& state) {
  const Graph g = bench_graph();
  Service service(bench_options());
  const std::string line = request_line(g, 7);
  std::vector<std::string> out;
  service.submit_line(line, out);  // warm the cache outside the loop
  service.drain(out);
  out.clear();
  for (auto _ : state) {
    service.submit_line(line, out);
    service.drain(out);
    benchmark::DoNotOptimize(out);
    out.clear();
  }
  state.counters["cache_hits"] =
      static_cast<double>(service.cache_stats().hits);
  report_service_counters(state, service);
}
BENCHMARK(BM_SvcSolve_CacheHit)->Unit(benchmark::kMillisecond);

// The quality-vs-latency ladder, one rung per Arg: cold solves pinned
// to a single tier, so the per-rung request-latency summaries land in
// the snapshot side by side. The ladder acceptance is monotone cost:
// fast p99 < balanced p99 < best p99 on this graph (fast runs one
// greedy+hill-climb trial; best races the full six-method portfolio).
void BM_SvcSolve_Quality(benchmark::State& state) {
  static constexpr const char* kTiers[] = {"fast", "balanced", "best"};
  const std::string tier = kTiers[state.range(0)];
  const Graph g = bench_graph();
  Service service(bench_options());
  std::uint64_t seed = 0;
  std::vector<std::string> out;
  for (auto _ : state) {
    service.submit_line(request_line(g, ++seed, tier), out);
    service.drain(out);
    benchmark::DoNotOptimize(out);
    out.clear();
  }
  state.SetLabel(tier);
  report_service_counters(state, service);
}
BENCHMARK(BM_SvcSolve_Quality)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Warm restart (svc/cache_store): seed a journal with `entries`
// distinct solve identities once, then measure the crash-recovery
// path. BM_SvcWarmRestore times the journal replay alone (Service
// construction); BM_SvcWarmRestart_Serve times restart-then-serve,
// where every request lands on the restored cache — its
// post_restart_hit_ratio counter is the crash-safety payoff and part
// of the snapshot schema.
std::string seed_journal(const Graph& g, int entries,
                         std::vector<std::string>& lines) {
  const std::string path = "/tmp/gbis_bench_warm_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(entries) + ".jsonl";
  std::remove(path.c_str());
  SvcOptions options = bench_options();
  options.cache_file = path;
  Service seeder(options);
  std::vector<std::string> out;
  for (int i = 0; i < entries; ++i) {
    lines.push_back(request_line(g, 1000 + static_cast<std::uint64_t>(i)));
    seeder.submit_line(lines.back(), out);
    seeder.drain(out);
    out.clear();
  }
  return path;
}

void BM_SvcWarmRestore(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  const Graph g = bench_graph();
  std::vector<std::string> lines;
  const std::string path = seed_journal(g, entries, lines);
  SvcOptions options = bench_options();
  options.cache_file = path;
  std::uint64_t restored = 0;
  for (auto _ : state) {
    Service warm(options);
    restored = warm.metrics().counter(Counter::kSvcCacheRestored);
    benchmark::DoNotOptimize(restored);
  }
  state.counters["restored_entries"] = static_cast<double>(restored);
  std::remove(path.c_str());
}
BENCHMARK(BM_SvcWarmRestore)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SvcWarmRestart_Serve(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  const Graph g = bench_graph();
  std::vector<std::string> lines;
  const std::string path = seed_journal(g, entries, lines);
  SvcOptions options = bench_options();
  options.cache_file = path;
  double hit_ratio = 0.0;
  for (auto _ : state) {
    Service warm(options);
    std::vector<std::string> out;
    for (const std::string& line : lines) {
      warm.submit_line(line, out);
      warm.drain(out);
      benchmark::DoNotOptimize(out);
      out.clear();
    }
    const SvcCacheStats& cache = warm.cache_stats();
    const double lookups = static_cast<double>(cache.hits + cache.misses);
    hit_ratio =
        lookups > 0.0 ? static_cast<double>(cache.hits) / lookups : 0.0;
  }
  state.counters["post_restart_hit_ratio"] = hit_ratio;
  state.SetItemsProcessed(state.iterations() * entries);
  std::remove(path.c_str());
}
BENCHMARK(BM_SvcWarmRestart_Serve)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_SvcFingerprint(benchmark::State& state) {
  const Graph g = bench_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph_fingerprint(g));
  }
}
BENCHMARK(BM_SvcFingerprint)->Unit(benchmark::kMicrosecond);

// One client session against the loopback listener: connect, pipeline
// `requests` ping lines in a single write, read until the matching
// number of response newlines, hang up. Runs on its own thread while
// the bench thread drives Listener::poll_once.
void socket_client_session(const std::string& path, int requests,
                           std::atomic<int>& done) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof addr) != 0) {
    if (fd >= 0) ::close(fd);
    done.fetch_add(1);
    return;
  }
  std::string payload;
  for (int i = 0; i < requests; ++i) {
    payload += "{\"id\":\"p\",\"op\":\"ping\"}\n";
  }
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n =
        ::send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  int newlines = 0;
  char chunk[4096];
  while (newlines < requests) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    for (ssize_t i = 0; i < n; ++i) {
      if (chunk[i] == '\n') ++newlines;
    }
  }
  ::close(fd);
  done.fetch_add(1);
}

// Socket-mode round trips: Arg is the concurrent client count. Each
// iteration runs a full client cohort to completion; items/sec is the
// sustained request rate through the event loop.
void BM_SvcSocket_PingPipeline(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kRequestsPerClient = 64;
  Service service(bench_options());
  ListenerOptions lopt;
  lopt.unix_path =
      "/tmp/gbis_bench_" + std::to_string(::getpid()) + ".sock";
  Listener listener(service, lopt);
  listener.start();
  for (auto _ : state) {
    std::atomic<int> done{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back(socket_client_session, lopt.unix_path,
                           kRequestsPerClient, std::ref(done));
    }
    while (done.load() < clients) listener.poll_once(1);
    for (auto& t : threads) t.join();
    listener.poll_once(0);  // reap the hung-up connections
  }
  state.SetItemsProcessed(state.iterations() * clients *
                          kRequestsPerClient);
  std::atomic<bool> stop{true};
  listener.drain(&stop);
}
BENCHMARK(BM_SvcSocket_PingPipeline)
    ->Arg(1)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
