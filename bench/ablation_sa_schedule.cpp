// A3: ablation — SA schedule parameters. Sweeps the temperature length
// (moves per temperature per vertex) and cooling ratio, reporting the
// quality/time trade-off the paper describes ("fine tuning of the
// annealing schedule can be a big job").
#include <iostream>
#include <vector>

#include "gbis/gen/planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/sa/sa.hpp"

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  const auto two_n =
      static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;
  const PlantedParams params = planted_params_for_degree(two_n, 3.0, 32);
  std::vector<Graph> graphs;
  for (int i = 0; i < 3; ++i) graphs.push_back(make_planted(params, rng));

  std::cout << "SA schedule ablation on G2set(" << two_n
            << ", deg 3, b=32), single start per cell, planted width 32\n";
  TablePrinter table(std::cout, {{"temp_len", 9},
                                 {"cooling", 9},
                                 {"avg_cut", 9},
                                 {"avg_time", 9},
                                 {"avg_temps", 9}});
  table.print_header();

  for (double length : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    for (double cooling : {0.8, 0.9, 0.95}) {
      SaOptions options;
      options.temperature_length_factor = length;
      options.cooling_ratio = cooling;
      double cut_total = 0, time_total = 0, temps_total = 0;
      for (const Graph& g : graphs) {
        const WallTimer timer;
        Bisection b = Bisection::random(g, rng);
        const SaStats stats = sa_refine(b, rng, options);
        cut_total += static_cast<double>(b.cut());
        time_total += timer.elapsed_seconds();
        temps_total += stats.temperatures;
      }
      const auto k = static_cast<double>(graphs.size());
      table.cell(length, 0)
          .cell(cooling, 2)
          .cell(cut_total / k, 1)
          .cell(time_total / k, 3)
          .cell(temps_total / k, 0);
      table.end_row();
    }
  }
  std::cout << '\n';
  return 0;
}
