// O6a (section II): quenching vs annealing. The paper motivates SA by
// the statistical-mechanics analogy — accepting only downhill moves is
// "extremely rapid quenching from high temperature to zero" and lands
// in "metastable, locally optimal" states. This bench runs the plain
// iterative-improvement hill climber (quench) against SA on the same
// instances and shows the controlled-uphill advantage, plus multistart
// quenching (the paper's remedy of "several times with different
// randomly generated starting configurations").
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "gbis/baseline/hill_climb.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/sa/sa.hpp"

namespace {

using namespace gbis;

void contest(const char* label, const Graph& g, Rng& rng,
             const ExperimentEnv& env, TablePrinter& table) {
  // Quench: single start.
  WallTimer t_q1;
  Bisection q1 = Bisection::random(g, rng);
  hill_climb(q1, rng);
  const double q1_time = t_q1.elapsed_seconds();

  // Quench: 10 restarts, best kept (the pre-SA remedy).
  WallTimer t_q10;
  Weight q10 = std::numeric_limits<Weight>::max();
  for (int s = 0; s < 10; ++s) {
    Bisection b = Bisection::random(g, rng);
    hill_climb(b, rng);
    q10 = std::min(q10, b.cut());
  }
  const double q10_time = t_q10.elapsed_seconds();

  // Anneal: single start.
  SaOptions sa_options;
  sa_options.temperature_length_factor = env.sa_length_factor;
  WallTimer t_sa;
  Bisection annealed = Bisection::random(g, rng);
  sa_refine(annealed, rng, sa_options);
  const double sa_time = t_sa.elapsed_seconds();

  table.cell(label)
      .cell(static_cast<std::int64_t>(q1.cut()))
      .cell(q1_time, 3)
      .cell(static_cast<std::int64_t>(q10))
      .cell(q10_time, 3)
      .cell(static_cast<std::int64_t>(annealed.cut()))
      .cell(sa_time, 3);
  table.end_row();
}

}  // namespace

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);
  const auto two_n = static_cast<std::uint32_t>(2000 * env.scale) / 2 * 2;

  std::cout << "Quench (iterative improvement) vs anneal — section II's "
               "motivation\n";
  TablePrinter table(std::cout, {{"graph", 22},
                                 {"quench", 8},
                                 {"t_q", 7},
                                 {"quench10", 8},
                                 {"t_q10", 7},
                                 {"anneal", 8},
                                 {"t_sa", 7}});
  table.print_header();

  const Graph gbreg = make_regular_planted({two_n, 16, 3}, rng);
  contest("Gbreg(2000,16,3)", gbreg, rng, env, table);
  const Graph gbreg4 = make_regular_planted({two_n, 16, 4}, rng);
  contest("Gbreg(2000,16,4)", gbreg4, rng, env, table);
  const Graph planted =
      make_planted(planted_params_for_degree(two_n, 3.0, 32), rng);
  contest("G2set(2000,deg3,b32)", planted, rng, env, table);
  std::cout << '\n';
  return 0;
}
