// A4: ablation — KL pair-selection rule. Compares the faithful
// Figure-2 selection (full argmax g_ab scan) against the greedy-tops
// shortcut (best a, then best partner for that a). Quantifies how much
// of KL's strength lives in the pair scan — one candidate explanation
// for why the 1989 KL numbers trail a careful implementation
// (EXPERIMENTS.md, divergence D1).
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/experiments.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"

namespace {

using namespace gbis;

struct Row {
  double cut = 0, time = 0, scanned = 0;
};

Row measure(const std::vector<Graph>& graphs, KlPairSelection selection,
            std::uint32_t starts, Rng& rng) {
  Row row;
  KlOptions options;
  options.pair_selection = selection;
  for (const Graph& g : graphs) {
    const WallTimer timer;
    Weight best = std::numeric_limits<Weight>::max();
    std::uint64_t scanned = 0;
    for (std::uint32_t s = 0; s < starts; ++s) {
      Bisection b = Bisection::random(g, rng);
      const KlStats stats = kl_refine(b, options);
      best = std::min(best, b.cut());
      scanned += stats.candidates_scanned;
    }
    row.cut += static_cast<double>(best);
    row.time += timer.elapsed_seconds();
    row.scanned += static_cast<double>(scanned);
  }
  const auto k = static_cast<double>(graphs.size());
  row.cut /= k;
  row.time /= k;
  row.scanned /= k;
  return row;
}

void sweep(const char* label, const std::vector<Graph>& graphs, Rng& rng,
           std::uint32_t starts) {
  std::cout << "KL pair-selection ablation on " << label << " ("
            << graphs.size() << " graphs, best of " << starts
            << " starts)\n";
  TablePrinter table(std::cout, {{"selection", 10},
                                 {"avg_cut", 9},
                                 {"avg_time", 9},
                                 {"avg_scans", 12}});
  table.print_header();
  const Row best = measure(graphs, KlPairSelection::kBestPair, starts, rng);
  table.cell("best-pair").cell(best.cut, 1).cell(best.time, 4).cell(
      best.scanned, 0);
  table.end_row();
  const Row greedy =
      measure(graphs, KlPairSelection::kGreedyTops, starts, rng);
  table.cell("greedy").cell(greedy.cut, 1).cell(greedy.time, 4).cell(
      greedy.scanned, 0);
  table.end_row();
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gbis;
  const ExperimentEnv env = experiment_env();
  Rng rng(env.seed);

  const auto two_n = static_cast<std::uint32_t>(5000 * env.scale) / 2 * 2;
  std::vector<Graph> gbreg;
  for (int i = 0; i < 3; ++i) {
    gbreg.push_back(make_regular_planted({two_n, 16, 3}, rng));
  }
  sweep("Gbreg(5000, 16, 3)", gbreg, rng, env.starts);

  std::vector<Graph> ladders{make_ladder(two_n / 2)};
  sweep("Ladder(5000)", ladders, rng, env.starts);

  std::vector<Graph> trees{make_binary_tree(two_n - two_n % 2)};
  sweep("BinaryTree(5000)", trees, rng, env.starts);
  return 0;
}
