// M1 follow-up: prices the observability hooks on the KL hot path.
// Three variants of the same refinement run on Gnp(1000, 0.01):
//   ObsOff   — KlOptions::metrics == nullptr (the shipping default);
//              must stay within noise of the seed micro_kl numbers
//              (< 2% is the PR acceptance bar)
//   NullSink — a sink with no destination: prices the call + branch
//              overhead alone
//   Full     — a bound sink recording counters, histograms, and the
//              bounded convergence trace
// The SpanBuffer pair prices the request-tracing layer the same way:
// Null is the shipping default inside run_policy (tracing disabled),
// Bound is a trace-op/flight-recorder request actually collecting.
#include <benchmark/benchmark.h>

#include <vector>

#include "gbis/gen/gnp.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/obs/span.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace {

using namespace gbis;

Graph bench_graph() {
  Rng rng(97);
  return make_gnp(1000, 0.01, rng);
}

void refine_loop(benchmark::State& state, const KlOptions& options) {
  const Graph g = bench_graph();
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    Bisection b = Bisection::random(g, rng);
    state.ResumeTiming();
    const KlStats stats = kl_refine(b, options);
    benchmark::DoNotOptimize(stats.final_cut);
  }
}

void BM_KlRefine_ObsOff(benchmark::State& state) {
  refine_loop(state, KlOptions{});
}
BENCHMARK(BM_KlRefine_ObsOff)->Unit(benchmark::kMillisecond);

void BM_KlRefine_ObsNullSink(benchmark::State& state) {
  MetricsSink sink;  // unbound: every record call is a no-op branch
  KlOptions options;
  options.metrics = &sink;
  refine_loop(state, options);
}
BENCHMARK(BM_KlRefine_ObsNullSink)->Unit(benchmark::kMillisecond);

void BM_KlRefine_ObsFull(benchmark::State& state) {
  TrialMetrics tm;
  MetricsSink sink(&tm);
  KlOptions options;
  options.metrics = &sink;
  refine_loop(state, options);
  benchmark::DoNotOptimize(tm.counter(Counter::kKlPasses));
}
BENCHMARK(BM_KlRefine_ObsFull)->Unit(benchmark::kMillisecond);

SpanRec bench_span(std::uint64_t step) {
  SpanRec rec;
  rec.name = "kl.pass";
  rec.step = step;
  rec.has_step = true;
  rec.value = static_cast<std::int64_t>(1000 - step);
  rec.has_value = true;
  return rec;
}

void BM_SpanBuffer_Null(benchmark::State& state) {
  SpanBuffer buffer;  // unbound: offer() is the disabled-tracing branch
  std::uint64_t step = 0;
  for (auto _ : state) {
    buffer.offer(bench_span(step++));
  }
}
BENCHMARK(BM_SpanBuffer_Null);

void BM_SpanBuffer_Bound(benchmark::State& state) {
  std::vector<SpanRec> dest;
  SpanBuffer buffer(&dest);
  std::uint64_t step = 0;
  for (auto _ : state) {
    buffer.offer(bench_span(step++));
    if (dest.size() >= SpanBuffer::kDefaultCapacity) {
      // Steady state: a fresh buffer per span set, like run_policy.
      state.PauseTiming();
      dest.clear();
      buffer = SpanBuffer(&dest);
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(dest.data());
}
BENCHMARK(BM_SpanBuffer_Bound);

}  // namespace
