// Observability suite: the metrics registry, the bounded convergence
// trace and its JSONL/CSV export, the Chrome trace-event export, the
// progress meter, and the journaled metric summaries. The load-bearing
// property throughout: counters, histograms, and trace points of trial
// t are pure functions of (seed, t), so every deterministic artifact —
// merged summaries, metrics JSON, convergence files — is bit-identical
// for any thread count, and a killed-and-resumed campaign reproduces
// the metric summaries of an uninterrupted run exactly.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/harness/checkpoint.hpp"
#include "gbis/harness/fault_injection.hpp"
#include "gbis/harness/parallel_runner.hpp"
#include "gbis/harness/shutdown.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/obs/progress.hpp"
#include "gbis/obs/trace.hpp"
#include "gbis/obs/trace_export.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

RunConfig fast_config(std::uint32_t starts, std::uint32_t threads) {
  RunConfig config;
  config.starts = starts;
  config.threads = threads;
  config.sa.temperature_length_factor = 2.0;
  config.sa.cooling_ratio = 0.85;
  return config;
}

Graph test_graph() {
  Rng rng(7);
  return make_gnp(96, gnp_p_for_degree(96, 3.0), rng);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// --- MetricsSink -----------------------------------------------------------

TEST(MetricsSink, NullSinkRecordsNothingAndNeverCrashes) {
  MetricsSink sink;  // unbound
  EXPECT_FALSE(sink.bound());
  sink.add(Counter::kKlPasses);
  sink.add(Counter::kFmBucketOps, 100);
  sink.observe(Hist::kKlPassImprovement, 7);
  sink.trace_point(TraceSource::kKl, 42);
  sink.begin_phase(Phase::kGen);
  sink.end_phase(Phase::kGen);
  { const ScopedPhase phase(&sink, Phase::kRefine); }
  { const ScopedPhase phase(nullptr, Phase::kRefine); }
}

TEST(MetricsSink, BoundSinkAccumulates) {
  TrialMetrics tm;
  MetricsSink sink(&tm);
  EXPECT_TRUE(sink.bound());
  EXPECT_TRUE(tm.summary_empty());
  sink.add(Counter::kKlPasses);
  sink.add(Counter::kKlPasses, 2);
  sink.observe(Hist::kKlPassImprovement, 5);  // bucket bit_width(5) = 3
  EXPECT_EQ(tm.counter(Counter::kKlPasses), 3u);
  EXPECT_EQ(tm.hist(Hist::kKlPassImprovement).buckets[3], 1u);
  EXPECT_EQ(tm.hist(Hist::kKlPassImprovement).total(), 1u);
  EXPECT_FALSE(tm.summary_empty());
}

TEST(MetricsSink, TracePointTracksRunningBest) {
  TrialMetrics tm;
  MetricsSink sink(&tm);
  sink.trace_point(TraceSource::kKl, 10);
  sink.trace_point(TraceSource::kKl, 6);
  sink.trace_point(TraceSource::kSa, 8, /*aux=*/2.5);
  ASSERT_EQ(tm.trace.size(), 3u);
  EXPECT_EQ(tm.trace[0].best, 10);
  EXPECT_EQ(tm.trace[1].best, 6);
  EXPECT_EQ(tm.trace[2].cut, 8);
  EXPECT_EQ(tm.trace[2].best, 6);  // best is the running min over sources
  EXPECT_DOUBLE_EQ(tm.trace[2].aux, 2.5);
}

TEST(MetricsSink, TraceDecimationIsBoundedAndDeterministic) {
  // Offer far more points than the capacity: the trace must stay within
  // capacity, keep step 0, stay strictly increasing in step, and be a
  // pure function of the offered sequence.
  constexpr std::uint32_t kCapacity = 16;
  constexpr std::int64_t kOffered = 1000;
  auto record = [&] {
    TrialMetrics tm;
    MetricsSink sink(&tm, kCapacity);
    for (std::int64_t i = 0; i < kOffered; ++i) {
      sink.trace_point(TraceSource::kKl, kOffered - i);
    }
    return tm.trace;
  };
  const std::vector<TracePoint> a = record();
  const std::vector<TracePoint> b = record();
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_LE(a.size(), kCapacity);
  EXPECT_EQ(a.front().step, 0u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].step, a[i].step);
  }
}

TEST(SaStageBuckets, SplitAtHalfAndTwentiethOfT0) {
  EXPECT_EQ(sa_stage(10.0, 10.0), SaStage::kHot);
  EXPECT_EQ(sa_stage(5.0, 10.0), SaStage::kHot);
  EXPECT_EQ(sa_stage(4.99, 10.0), SaStage::kWarm);
  EXPECT_EQ(sa_stage(0.5, 10.0), SaStage::kWarm);
  EXPECT_EQ(sa_stage(0.49, 10.0), SaStage::kCold);
}

TEST(MetricNames, RoundTripThroughReverseLookup) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    Counter back = Counter::kCount;
    ASSERT_TRUE(counter_from_name(counter_name(c), back)) << counter_name(c);
    EXPECT_EQ(back, c);
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const auto h = static_cast<Hist>(i);
    Hist back = Hist::kCount;
    ASSERT_TRUE(hist_from_name(hist_name(h), back)) << hist_name(h);
    EXPECT_EQ(back, h);
  }
  Counter c;
  EXPECT_FALSE(counter_from_name("no.such.counter", c));
  Hist h;
  EXPECT_FALSE(hist_from_name("no.such.hist", h));
}

// --- Collection through the trial runner -----------------------------------

std::vector<TrialResult> run_collected(std::uint32_t threads,
                                       std::uint64_t seed = 11) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  RunConfig config = fast_config(2, threads);
  config.obs.collect = true;
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  return run_trials(graphs, trials, config, seed, threads);
}

TEST(ObsCollection, EveryExecutedTrialCarriesMetrics) {
  const std::vector<TrialResult> results = run_collected(2);
  ASSERT_EQ(results.size(), 8u);
  for (const TrialResult& r : results) {
    ASSERT_EQ(r.status, TrialStatus::kOk);
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_FALSE(r.metrics->summary_empty());
    EXPECT_FALSE(r.metrics->trace.empty());
    EXPECT_FALSE(r.metrics->phases.empty());
    EXPECT_GE(r.metrics->wall_seconds, 0.0);
  }
  // Method-specific counters land where they should (trial order is
  // method-major over KL, SA, FM, CKL with 2 starts each).
  EXPECT_GT(results[0].metrics->counter(Counter::kKlPasses), 0u);
  EXPECT_GT(results[0].metrics->counter(Counter::kKlPairsSelected), 0u);
  EXPECT_GT(results[2].metrics->counter(Counter::kSaTemperatures), 0u);
  EXPECT_GT(results[2].metrics->counter(Counter::kSaProposalsHot) +
                results[2].metrics->counter(Counter::kSaProposalsWarm) +
                results[2].metrics->counter(Counter::kSaProposalsCold),
            0u);
  EXPECT_GT(results[4].metrics->counter(Counter::kFmMovesConsidered), 0u);
  EXPECT_GT(results[4].metrics->counter(Counter::kFmBucketOps), 0u);
  // CKL runs KL on the coarse and fine graphs and stamps
  // compact/bisect/uncoalesce/refine phases.
  EXPECT_GT(results[6].metrics->counter(Counter::kKlPasses), 0u);
  bool saw_compact = false;
  for (const PhaseSpan& span : results[6].metrics->phases) {
    if (span.phase == Phase::kCompact) saw_compact = true;
  }
  EXPECT_TRUE(saw_compact);
}

TEST(ObsCollection, DisabledObsRecordsNothing) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  const RunConfig config = fast_config(2, 2);  // obs untouched: disabled
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const std::vector<TrialResult> results =
      run_trials(graphs, trials, config, /*seed=*/11, config.threads);
  for (const TrialResult& r : results) {
    EXPECT_EQ(r.metrics, nullptr);
  }
}

// The determinism tentpole: the deterministic half of TrialMetrics is
// bit-identical at 1 and 8 threads, and so is everything derived from
// it (merged report, metrics JSON, convergence JSONL/CSV).
TEST(ObsDeterminism, MetricsBitIdenticalAcrossThreadCounts) {
  const std::vector<TrialResult> serial = run_collected(1);
  const std::vector<TrialResult> parallel = run_collected(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    ASSERT_NE(serial[t].metrics, nullptr);
    ASSERT_NE(parallel[t].metrics, nullptr);
    EXPECT_EQ(serial[t].cut, parallel[t].cut) << "trial " << t;
    EXPECT_EQ(serial[t].metrics->counters, parallel[t].metrics->counters)
        << "trial " << t;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      EXPECT_EQ(serial[t].metrics->hists[h].buckets,
                parallel[t].metrics->hists[h].buckets)
          << "trial " << t << " hist " << h;
    }
    EXPECT_EQ(serial[t].metrics->trace, parallel[t].metrics->trace)
        << "trial " << t;
  }

  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 2);
  std::ostringstream json1, json8;
  write_convergence_jsonl(json1, serial, trials);
  write_convergence_jsonl(json8, parallel, trials);
  EXPECT_EQ(json1.str(), json8.str());
  std::ostringstream csv1, csv8;
  write_convergence_csv(csv1, serial, trials);
  write_convergence_csv(csv8, parallel, trials);
  EXPECT_EQ(csv1.str(), csv8.str());

  // The aggregated counters/hists are identical, so the metrics JSON
  // differs only in the CPU-seconds distribution — zero both out to
  // compare the rest byte-for-byte.
  MetricsReport report1 = build_metrics_report(serial);
  MetricsReport report8 = build_metrics_report(parallel);
  EXPECT_EQ(report1.totals.counters, report8.totals.counters);
  report1.cpu_min = report1.cpu_max = report1.cpu_mean = 0;
  report1.cpu_p50 = report1.cpu_p90 = report1.cpu_p99 = 0;
  report8.cpu_min = report8.cpu_max = report8.cpu_mean = 0;
  report8.cpu_p50 = report8.cpu_p90 = report8.cpu_p99 = 0;
  std::ostringstream metrics1, metrics8;
  write_metrics_json(metrics1, report1);
  write_metrics_json(metrics8, report8);
  EXPECT_EQ(metrics1.str(), metrics8.str());
}

// --- Convergence export ----------------------------------------------------

TEST(ConvergenceTrace, JsonlRoundTrips) {
  const std::vector<TrialResult> results = run_collected(2);
  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 2);

  std::ostringstream out;
  write_convergence_jsonl(out, results, trials);

  // Reconstruct the expected lines straight from the in-memory traces.
  std::vector<ConvergenceLine> expected;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const TracePoint& p : results[i].metrics->trace) {
      expected.push_back({i, trials[i].graph_index,
                          method_name(trials[i].method),
                          trials[i].start_index, p});
    }
  }
  ASSERT_FALSE(expected.empty());

  std::istringstream in(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(n, expected.size());
    EXPECT_EQ(parse_convergence_line(line), expected[n]) << line;
    ++n;
  }
  EXPECT_EQ(n, expected.size());
}

TEST(ConvergenceTrace, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_convergence_line("not json"), IoError);
  EXPECT_THROW(parse_convergence_line("{\"trial\":0}"), IoError);
  EXPECT_THROW(
      parse_convergence_line(
          "{\"trial\":0,\"graph\":0,\"method\":\"KL\",\"start\":0,"
          "\"step\":1,\"source\":\"volcano\",\"cut\":3,\"best\":3,"
          "\"aux\":0}"),
      IoError);
}

// --- Chrome trace ----------------------------------------------------------

// Minimal structural JSON check: balanced {} / [] outside strings and
// a clean end. Enough to catch every way the hand-rolled writer could
// emit a torn file, without a JSON dependency.
void check_balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        ASSERT_FALSE(stack.empty()) << "unbalanced at byte " << i;
        ASSERT_EQ(stack.back(), c) << "mismatched at byte " << i;
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

TEST(ChromeTrace, IsStructurallyValidWithNestedNonOverlappingSpans) {
  const std::vector<TrialResult> results = run_collected(4);
  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 2);
  std::ostringstream out;
  write_chrome_trace(out, results, trials);
  const std::string text = out.str();

  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  check_balanced_json(text);

  // Span structure from the source of truth the writer serializes:
  // phases nest inside their trial span, and trial spans on one worker
  // lane never overlap (a worker runs one trial at a time).
  constexpr double kSlack = 1e-6;  // timer-read ordering slack, seconds
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> lanes;
  for (const TrialResult& r : results) {
    ASSERT_NE(r.metrics, nullptr);
    const TrialMetrics& tm = *r.metrics;
    for (const PhaseSpan& span : tm.phases) {
      EXPECT_GE(span.start_seconds, -kSlack);
      EXPECT_GE(span.duration_seconds, 0.0);
      EXPECT_LE(span.start_seconds + span.duration_seconds,
                tm.wall_seconds + kSlack);
    }
    lanes[tm.tid].push_back({tm.start_offset_seconds,
                             tm.start_offset_seconds + tm.wall_seconds});
  }
  EXPECT_FALSE(lanes.empty());
  for (auto& [tid, spans] : lanes) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].second, spans[i].first + kSlack)
          << "overlapping trials on lane " << tid;
    }
  }
}

TEST(ChromeTrace, IncludesFailedTrialsWithErrorArgs) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  RunConfig config = fast_config(2, 1);
  config.obs.collect = true;
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const FaultPlan faults = FaultPlan::parse("throw@trial:0");
  TrialRunOptions options;
  options.faults = &faults;
  const std::vector<TrialResult> results =
      run_trials_ex(graphs, trials, config, /*seed=*/11, 1, options);
  ASSERT_EQ(results[0].status, TrialStatus::kFailed);
  ASSERT_NE(results[0].metrics, nullptr);  // failed trials still traced

  std::ostringstream out;
  write_chrome_trace(out, results, trials);
  EXPECT_NE(out.str().find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(out.str().find("\"error\":"), std::string::npos);
  check_balanced_json(out.str());
}

// --- File export + env knobs -----------------------------------------------

TEST(ObsExport, WritesMetricsAndTraceFiles) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl, Method::kSa};
  RunConfig config = fast_config(2, 2);
  config.obs.metrics_path = temp_path("obs_export_metrics.json");
  config.obs.trace_dir = temp_path("obs_export_traces");
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const std::vector<TrialResult> results =
      run_trials(graphs, trials, config, /*seed=*/3, config.threads);
  ASSERT_EQ(results.size(), 4u);

  std::ifstream metrics(config.obs.metrics_path);
  ASSERT_TRUE(metrics.good());
  std::string json((std::istreambuf_iterator<char>(metrics)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"schema\":\"gbis-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kl.passes\":"), std::string::npos);
  check_balanced_json(json);

  for (const char* name :
       {"/convergence.jsonl", "/convergence.csv", "/trace.json"}) {
    std::ifstream file(config.obs.trace_dir + name);
    EXPECT_TRUE(file.good()) << name;
  }
}

TEST(ObsExport, UnwritableDestinationThrowsIoError) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  RunConfig config = fast_config(1, 1);
  config.obs.metrics_path = temp_path("no_such_dir/metrics.json");
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 1);
  EXPECT_THROW(run_trials(graphs, trials, config, /*seed=*/3, 1), IoError);
}

TEST(ObsOptionsEnv, ParsesAndWarnsOnMalformed) {
  ::setenv("GBIS_METRICS", "/tmp/m.json", 1);
  ::setenv("GBIS_TRACE_DIR", "/tmp/traces", 1);
  ::setenv("GBIS_PROGRESS", "1", 1);
  ObsOptions obs = obs_options_from_env();
  EXPECT_EQ(obs.metrics_path, "/tmp/m.json");
  EXPECT_EQ(obs.trace_dir, "/tmp/traces");
  EXPECT_TRUE(obs.progress);
  EXPECT_TRUE(obs.enabled());

  // Malformed values keep the default and never throw.
  ::setenv("GBIS_PROGRESS", "maybe", 1);
  ::setenv("GBIS_METRICS", "", 1);
  ObsOptions base;
  base.progress = false;
  obs = obs_options_from_env(base);
  EXPECT_FALSE(obs.progress);
  EXPECT_TRUE(obs.metrics_path.empty());

  ::unsetenv("GBIS_METRICS");
  ::unsetenv("GBIS_TRACE_DIR");
  ::unsetenv("GBIS_PROGRESS");
  EXPECT_FALSE(obs_options_from_env().enabled());
}

// --- Progress meter --------------------------------------------------------

TEST(ProgressMeter, CountsAndFinishesOnAnyStream) {
  std::ostringstream out;
  {
    ProgressMeter meter(4, &out, /*min_interval_seconds=*/0.0);
    meter.adopt(ProgressOutcome::kOk);
    meter.record(ProgressOutcome::kOk);
    meter.record(ProgressOutcome::kFailed);
    meter.record(ProgressOutcome::kTimedOut);
    meter.finish();
    meter.finish();  // idempotent
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("4/4 trials"), std::string::npos);
  EXPECT_NE(text.find("ok 2"), std::string::npos);
  EXPECT_NE(text.find("failed 1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');  // finish() releases the line
}

// --- Journaled metric summaries --------------------------------------------

TEST(CheckpointJournal, RoundTripsMetricSummaries) {
  auto tm = std::make_shared<TrialMetrics>();
  tm->counters[static_cast<std::size_t>(Counter::kKlPasses)] = 5;
  tm->counters[static_cast<std::size_t>(Counter::kDeadlinePolls)] = 123;
  tm->hists[static_cast<std::size_t>(Hist::kKlPassImprovement)].observe(9);
  tm->hists[static_cast<std::size_t>(Hist::kKlPassImprovement)].observe(9);
  tm->hists[static_cast<std::size_t>(Hist::kSaTempAcceptancePct)].observe(0);

  const std::string path = temp_path("journal_metrics.jsonl");
  {
    CheckpointJournal journal(path, /*fingerprint=*/1, /*num_trials=*/3);
    journal.append({0, TrialStatus::kOk, 7, 0.5, "", tm});
    // An error whose text mentions "metrics": must not confuse the flat
    // field scanner (it is JSON-escaped in the line).
    journal.append(
        {1, TrialStatus::kFailed, 0, 0.1, "bad \"metrics\": oops", tm});
    journal.append({2, TrialStatus::kOk, 8, 0.2, "", nullptr});
  }
  const CheckpointJournal::Loaded loaded = CheckpointJournal::load(path);
  ASSERT_EQ(loaded.records.size(), 3u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    ASSERT_NE(loaded.records[i].metrics, nullptr) << i;
    EXPECT_EQ(loaded.records[i].metrics->counters, tm->counters) << i;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      EXPECT_EQ(loaded.records[i].metrics->hists[h].buckets,
                tm->hists[h].buckets)
          << "record " << i << " hist " << h;
    }
  }
  EXPECT_EQ(loaded.records[1].error, "bad \"metrics\": oops");
  EXPECT_EQ(loaded.records[2].metrics, nullptr);
}

// Kill a campaign halfway (stop@trial:N), resume from the journal, and
// require per-trial metric summaries — adopted ones included — to match
// an uninterrupted run exactly.
TEST(Campaign, KillAndResumeReproducesMetricSummaries) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl, Method::kSa, Method::kCkl};
  RunConfig config = fast_config(2, 1);
  config.obs.collect = true;
  const std::uint64_t seed = 21;
  const FaultPlan no_faults;

  CampaignOptions clean;
  clean.faults = &no_faults;
  const CampaignResult reference =
      run_campaign(graphs, methods, config, seed, clean);
  ASSERT_EQ(reference.ok, 6u);

  const std::string path = temp_path("journal_obs_resume.jsonl");
  const FaultPlan stop_plan = FaultPlan::parse("stop@trial:2");
  reset_shutdown();
  CampaignOptions interrupted;
  interrupted.journal_path = path;
  interrupted.stop = &shutdown_flag();
  interrupted.faults = &stop_plan;
  const CampaignResult partial =
      run_campaign(graphs, methods, config, seed, interrupted);
  reset_shutdown();
  ASSERT_TRUE(partial.interrupted);
  ASSERT_GT(partial.ok, 0u);

  CampaignOptions resume;
  resume.journal_path = path;
  resume.resume_path = path;
  resume.faults = &no_faults;
  const CampaignResult resumed =
      run_campaign(graphs, methods, config, seed, resume);
  EXPECT_EQ(resumed.ok, 6u);
  EXPECT_EQ(resumed.resumed, partial.ok);

  ASSERT_EQ(resumed.trials.size(), reference.trials.size());
  for (std::size_t t = 0; t < reference.trials.size(); ++t) {
    ASSERT_NE(reference.trials[t].metrics, nullptr) << t;
    ASSERT_NE(resumed.trials[t].metrics, nullptr) << t;
    EXPECT_EQ(resumed.trials[t].metrics->counters,
              reference.trials[t].metrics->counters)
        << "trial " << t;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      EXPECT_EQ(resumed.trials[t].metrics->hists[h].buckets,
                reference.trials[t].metrics->hists[h].buckets)
          << "trial " << t << " hist " << h;
    }
  }

  // And so the campaign-level fold matches byte-for-byte too (after
  // zeroing the wall-clock CPU distribution).
  MetricsReport ref_report = build_metrics_report(reference.trials);
  MetricsReport res_report = build_metrics_report(resumed.trials);
  EXPECT_EQ(ref_report.totals.counters, res_report.totals.counters);
  for (std::size_t h = 0; h < kNumHists; ++h) {
    EXPECT_EQ(ref_report.totals.hists[h].buckets,
              res_report.totals.hists[h].buckets);
  }
}

}  // namespace
}  // namespace gbis
