// Observability suite: the metrics registry, the bounded convergence
// trace and its JSONL/CSV export, the Chrome trace-event export, the
// progress meter, and the journaled metric summaries. The load-bearing
// property throughout: counters, histograms, and trace points of trial
// t are pure functions of (seed, t), so every deterministic artifact —
// merged summaries, metrics JSON, convergence files — is bit-identical
// for any thread count, and a killed-and-resumed campaign reproduces
// the metric summaries of an uninterrupted run exactly.
#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/harness/checkpoint.hpp"
#include "gbis/harness/fault_injection.hpp"
#include "gbis/harness/parallel_runner.hpp"
#include "gbis/harness/shutdown.hpp"
#include "gbis/harness/stats.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/obs/flight_recorder.hpp"
#include "gbis/obs/metrics.hpp"
#include "gbis/obs/progress.hpp"
#include "gbis/obs/prom_export.hpp"
#include "gbis/obs/span.hpp"
#include "gbis/obs/trace.hpp"
#include "gbis/obs/trace_export.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

RunConfig fast_config(std::uint32_t starts, std::uint32_t threads) {
  RunConfig config;
  config.starts = starts;
  config.threads = threads;
  config.sa.temperature_length_factor = 2.0;
  config.sa.cooling_ratio = 0.85;
  return config;
}

Graph test_graph() {
  Rng rng(7);
  return make_gnp(96, gnp_p_for_degree(96, 3.0), rng);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// --- MetricsSink -----------------------------------------------------------

TEST(MetricsSink, NullSinkRecordsNothingAndNeverCrashes) {
  MetricsSink sink;  // unbound
  EXPECT_FALSE(sink.bound());
  sink.add(Counter::kKlPasses);
  sink.add(Counter::kFmBucketOps, 100);
  sink.observe(Hist::kKlPassImprovement, 7);
  sink.trace_point(TraceSource::kKl, 42);
  sink.begin_phase(Phase::kGen);
  sink.end_phase(Phase::kGen);
  { const ScopedPhase phase(&sink, Phase::kRefine); }
  { const ScopedPhase phase(nullptr, Phase::kRefine); }
}

TEST(MetricsSink, BoundSinkAccumulates) {
  TrialMetrics tm;
  MetricsSink sink(&tm);
  EXPECT_TRUE(sink.bound());
  EXPECT_TRUE(tm.summary_empty());
  sink.add(Counter::kKlPasses);
  sink.add(Counter::kKlPasses, 2);
  sink.observe(Hist::kKlPassImprovement, 5);  // bucket bit_width(5) = 3
  EXPECT_EQ(tm.counter(Counter::kKlPasses), 3u);
  EXPECT_EQ(tm.hist(Hist::kKlPassImprovement).buckets[3], 1u);
  EXPECT_EQ(tm.hist(Hist::kKlPassImprovement).total(), 1u);
  EXPECT_FALSE(tm.summary_empty());
}

TEST(MetricsSink, GaugesSetAddAndNullSink) {
  MetricsSink null_sink;  // unbound: every gauge call is a no-op
  null_sink.set_gauge(Gauge::kSvcQueueDepth, 42);
  null_sink.add_gauge(Gauge::kSvcInflight, 1);

  TrialMetrics tm;
  MetricsSink sink(&tm);
  EXPECT_EQ(tm.gauge(Gauge::kSvcQueueDepth), 0);
  sink.set_gauge(Gauge::kSvcQueueDepth, 7);
  EXPECT_EQ(tm.gauge(Gauge::kSvcQueueDepth), 7);
  sink.set_gauge(Gauge::kSvcQueueDepth, 3);  // set overwrites, no max
  EXPECT_EQ(tm.gauge(Gauge::kSvcQueueDepth), 3);
  sink.add_gauge(Gauge::kSvcInflight, 2);
  sink.add_gauge(Gauge::kSvcInflight, -1);
  EXPECT_EQ(tm.gauge(Gauge::kSvcInflight), 1);
  // A nonzero gauge alone makes the summary non-empty.
  EXPECT_FALSE(tm.summary_empty());
}

TEST(MetricsSink, TracePointTracksRunningBest) {
  TrialMetrics tm;
  MetricsSink sink(&tm);
  sink.trace_point(TraceSource::kKl, 10);
  sink.trace_point(TraceSource::kKl, 6);
  sink.trace_point(TraceSource::kSa, 8, /*aux=*/2.5);
  ASSERT_EQ(tm.trace.size(), 3u);
  EXPECT_EQ(tm.trace[0].best, 10);
  EXPECT_EQ(tm.trace[1].best, 6);
  EXPECT_EQ(tm.trace[2].cut, 8);
  EXPECT_EQ(tm.trace[2].best, 6);  // best is the running min over sources
  EXPECT_DOUBLE_EQ(tm.trace[2].aux, 2.5);
}

TEST(MetricsSink, TraceDecimationIsBoundedAndDeterministic) {
  // Offer far more points than the capacity: the trace must stay within
  // capacity, keep step 0, stay strictly increasing in step, and be a
  // pure function of the offered sequence.
  constexpr std::uint32_t kCapacity = 16;
  constexpr std::int64_t kOffered = 1000;
  auto record = [&] {
    TrialMetrics tm;
    MetricsSink sink(&tm, kCapacity);
    for (std::int64_t i = 0; i < kOffered; ++i) {
      sink.trace_point(TraceSource::kKl, kOffered - i);
    }
    return tm.trace;
  };
  const std::vector<TracePoint> a = record();
  const std::vector<TracePoint> b = record();
  EXPECT_EQ(a, b);
  ASSERT_FALSE(a.empty());
  EXPECT_LE(a.size(), kCapacity);
  EXPECT_EQ(a.front().step, 0u);
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LT(a[i - 1].step, a[i].step);
  }
}

TEST(SaStageBuckets, SplitAtHalfAndTwentiethOfT0) {
  EXPECT_EQ(sa_stage(10.0, 10.0), SaStage::kHot);
  EXPECT_EQ(sa_stage(5.0, 10.0), SaStage::kHot);
  EXPECT_EQ(sa_stage(4.99, 10.0), SaStage::kWarm);
  EXPECT_EQ(sa_stage(0.5, 10.0), SaStage::kWarm);
  EXPECT_EQ(sa_stage(0.49, 10.0), SaStage::kCold);
}

TEST(MetricNames, RoundTripThroughReverseLookup) {
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    const auto c = static_cast<Counter>(i);
    Counter back = Counter::kCount;
    ASSERT_TRUE(counter_from_name(counter_name(c), back)) << counter_name(c);
    EXPECT_EQ(back, c);
  }
  for (std::size_t i = 0; i < kNumHists; ++i) {
    const auto h = static_cast<Hist>(i);
    Hist back = Hist::kCount;
    ASSERT_TRUE(hist_from_name(hist_name(h), back)) << hist_name(h);
    EXPECT_EQ(back, h);
  }
  for (std::size_t i = 0; i < kNumGauges; ++i) {
    const auto g = static_cast<Gauge>(i);
    Gauge back = Gauge::kCount;
    ASSERT_TRUE(gauge_from_name(gauge_name(g), back)) << gauge_name(g);
    EXPECT_EQ(back, g);
  }
  Counter c;
  EXPECT_FALSE(counter_from_name("no.such.counter", c));
  Hist h;
  EXPECT_FALSE(hist_from_name("no.such.hist", h));
  Gauge g;
  EXPECT_FALSE(gauge_from_name("no.such.gauge", g));
}

// --- Histogram summaries ---------------------------------------------------

// hist_percentile must agree with harness/stats.hpp percentile() run
// over the histogram's implied sample (each bucket's count at its
// representative value) — same rank convention, same interpolation.
TEST(HistSummary, PercentilesMatchStatsPercentileConvention) {
  HistData hist;
  const std::uint64_t observed[] = {0, 0, 1, 2, 3, 3, 5, 9, 17, 100, 900};
  std::vector<double> implied;
  for (const std::uint64_t v : observed) {
    hist.observe(v);
  }
  for (std::size_t b = 0; b < hist.buckets.size(); ++b) {
    for (std::uint64_t n = 0; n < hist.buckets[b]; ++n) {
      implied.push_back(hist_bucket_representative(b));
    }
  }
  ASSERT_EQ(implied.size(), std::size(observed));
  for (const double p : {0.0, 25.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(hist_percentile(hist, p), percentile(implied, p))
        << "p" << p;
  }
  // Out-of-range p clamps exactly like percentile() does.
  EXPECT_DOUBLE_EQ(hist_percentile(hist, -5.0), percentile(implied, 0.0));
  EXPECT_DOUBLE_EQ(hist_percentile(hist, 250.0), percentile(implied, 100.0));

  const HistSummary summary = summarize_hist(hist);
  EXPECT_EQ(summary.count, std::size(observed));
  EXPECT_EQ(summary.sum, 0u + 0 + 1 + 2 + 3 + 3 + 5 + 9 + 17 + 100 + 900);
  EXPECT_DOUBLE_EQ(summary.p50, percentile(implied, 50.0));
  EXPECT_DOUBLE_EQ(summary.p90, percentile(implied, 90.0));
  EXPECT_DOUBLE_EQ(summary.p99, percentile(implied, 99.0));
}

TEST(HistSummary, EmptyAndSingletonEdges) {
  const HistData empty;
  EXPECT_DOUBLE_EQ(hist_percentile(empty, 50.0), 0.0);
  const HistSummary none = summarize_hist(empty);
  EXPECT_EQ(none.count, 0u);
  EXPECT_EQ(none.sum, 0u);
  EXPECT_DOUBLE_EQ(none.p50, 0.0);

  HistData one;
  one.observe(6);  // bucket 3: [4,7], representative 5.5
  EXPECT_DOUBLE_EQ(hist_percentile(one, 0.0), 5.5);
  EXPECT_DOUBLE_EQ(hist_percentile(one, 50.0), 5.5);
  EXPECT_DOUBLE_EQ(hist_percentile(one, 100.0), 5.5);

  // Zero-valued observations live in their own exact bucket.
  HistData zeros;
  zeros.observe(0);
  zeros.observe(0);
  EXPECT_DOUBLE_EQ(hist_percentile(zeros, 100.0), 0.0);
  EXPECT_EQ(summarize_hist(zeros).count, 2u);
}

TEST(MetricMerge, GaugesFoldByMaxAndHistSumsAdd) {
  TrialMetrics a, b;
  a.gauges[static_cast<std::size_t>(Gauge::kSvcQueueDepth)] = 3;
  b.gauges[static_cast<std::size_t>(Gauge::kSvcQueueDepth)] = 9;
  a.gauges[static_cast<std::size_t>(Gauge::kSvcCacheBytes)] = 100;
  a.hists[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)].observe(40);
  b.hists[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)].observe(60);
  merge_metric_summaries(a, b);
  EXPECT_EQ(a.gauge(Gauge::kSvcQueueDepth), 9);   // max wins
  EXPECT_EQ(a.gauge(Gauge::kSvcCacheBytes), 100);  // absent-in-b keeps a
  const HistData& merged =
      a.hist(Hist::kSvcRequestLatencyUs);
  EXPECT_EQ(merged.total(), 2u);
  EXPECT_EQ(merged.sum, 100u);
}

// Minimal structural JSON check: balanced {} / [] outside strings and
// a clean end. Enough to catch every way the hand-rolled writers could
// emit a torn file, without a JSON dependency.
void check_balanced_json(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        ASSERT_FALSE(stack.empty()) << "unbalanced at byte " << i;
        ASSERT_EQ(stack.back(), c) << "mismatched at byte " << i;
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

// --- Prometheus exposition -------------------------------------------------

TEST(PromExport, MetricNameMapping) {
  EXPECT_EQ(prom_metric_name("kl.passes"), "gbis_kl_passes");
  EXPECT_EQ(prom_metric_name("svc.cache.bytes"), "gbis_svc_cache_bytes");
  EXPECT_EQ(prom_metric_name("svc.request_latency_us"),
            "gbis_svc_request_latency_us");
}

TEST(PromExport, ExpositionCoversCatalogWithCumulativeBuckets) {
  TrialMetrics tm;
  tm.counters[static_cast<std::size_t>(Counter::kSvcRequests)] = 5;
  tm.gauges[static_cast<std::size_t>(Gauge::kSvcQueueDepth)] = 3;
  HistData& latency =
      tm.hists[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)];
  latency.observe(0);   // bucket 0, le="0"
  latency.observe(3);   // bucket 2, le="3"
  latency.observe(3);
  latency.observe(12);  // bucket 4, le="15"
  std::ostringstream out;
  write_prom_exposition(out, tm);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE gbis_svc_requests_total counter\n"
                      "gbis_svc_requests_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gbis_svc_queue_depth gauge\n"
                      "gbis_svc_queue_depth 3\n"),
            std::string::npos);
  // Histogram: cumulative counts over contiguous log2 buckets, then
  // +Inf == _count, and _sum is the exact sum of observed values.
  EXPECT_NE(text.find("# TYPE gbis_svc_request_latency_us histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("gbis_svc_request_latency_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("gbis_svc_request_latency_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("gbis_svc_request_latency_us_bucket{le=\"15\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("gbis_svc_request_latency_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("gbis_svc_request_latency_us_sum 18\n"),
            std::string::npos);
  EXPECT_NE(text.find("gbis_svc_request_latency_us_count 4\n"),
            std::string::npos);
  // Empty histograms are omitted entirely (no torn TYPE headers).
  EXPECT_EQ(text.find("gbis_kl_pass_improvement"), std::string::npos);
  // Every counter appears even at zero — scrapers want a stable set.
  EXPECT_NE(text.find("gbis_kl_passes_total 0\n"), std::string::npos);
}

TEST(PromExport, ExpositionIsDeterministic) {
  TrialMetrics tm;
  tm.counters[static_cast<std::size_t>(Counter::kSvcRequests)] = 2;
  tm.hists[static_cast<std::size_t>(Hist::kSvcSolveLatencyUs)].observe(77);
  std::ostringstream a, b;
  write_prom_exposition(a, tm);
  write_prom_exposition(b, tm);
  EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsJson, CarriesGaugesBlock) {
  MetricsReport report;
  report.trials = 1;
  report.totals.gauges[static_cast<std::size_t>(Gauge::kSvcQueueDepth)] = 4;
  std::ostringstream out;
  write_metrics_json(out, report);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\":\"gbis-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"svc.queue_depth\":4"), std::string::npos);
  check_balanced_json(json);
}

// --- Service slow-request trace --------------------------------------------

TEST(SvcTrace, EmitsRequestSpansWithPhaseSubSpans) {
  std::vector<SvcSlowSample> samples;
  SvcSlowSample s;
  s.seq = 3;
  s.id = "req-a";
  s.method = "kl";
  s.cache = "miss";
  s.status = "ok";
  s.submit_seconds = 0.010;
  s.queue_seconds = 0.002;
  s.solve_start_seconds = 0.012;
  s.solve_seconds = 0.005;
  s.total_seconds = 0.008;
  samples.push_back(s);
  SvcSlowSample hit;  // cache hit: no solve span
  hit.seq = 4;
  hit.id = "req-b";
  hit.cache = "hit";
  hit.status = "ok";
  hit.submit_seconds = 0.020;
  hit.queue_seconds = 0.001;
  hit.total_seconds = 0.0015;
  samples.push_back(hit);

  std::ostringstream out;
  write_svc_trace(out, samples);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  check_balanced_json(text);
  EXPECT_NE(text.find("\"name\":\"req 3 req-a\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"req 4 req-b\""), std::string::npos);
  EXPECT_NE(text.find("\"cat\":\"svc_phase\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"queue\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"solve\""), std::string::npos);
  // The hit never solved, so exactly one solve sub-span in the file.
  const std::size_t first = text.find("\"name\":\"solve\"");
  EXPECT_EQ(text.find("\"name\":\"solve\"", first + 1), std::string::npos);

  std::ostringstream empty;
  write_svc_trace(empty, {});
  check_balanced_json(empty.str());
}

// --- Collection through the trial runner -----------------------------------

std::vector<TrialResult> run_collected(std::uint32_t threads,
                                       std::uint64_t seed = 11) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  RunConfig config = fast_config(2, threads);
  config.obs.collect = true;
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  return run_trials(graphs, trials, config, seed, threads);
}

TEST(ObsCollection, EveryExecutedTrialCarriesMetrics) {
  const std::vector<TrialResult> results = run_collected(2);
  ASSERT_EQ(results.size(), 8u);
  for (const TrialResult& r : results) {
    ASSERT_EQ(r.status, TrialStatus::kOk);
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_FALSE(r.metrics->summary_empty());
    EXPECT_FALSE(r.metrics->trace.empty());
    EXPECT_FALSE(r.metrics->phases.empty());
    EXPECT_GE(r.metrics->wall_seconds, 0.0);
  }
  // Method-specific counters land where they should (trial order is
  // method-major over KL, SA, FM, CKL with 2 starts each).
  EXPECT_GT(results[0].metrics->counter(Counter::kKlPasses), 0u);
  EXPECT_GT(results[0].metrics->counter(Counter::kKlPairsSelected), 0u);
  EXPECT_GT(results[2].metrics->counter(Counter::kSaTemperatures), 0u);
  EXPECT_GT(results[2].metrics->counter(Counter::kSaProposalsHot) +
                results[2].metrics->counter(Counter::kSaProposalsWarm) +
                results[2].metrics->counter(Counter::kSaProposalsCold),
            0u);
  EXPECT_GT(results[4].metrics->counter(Counter::kFmMovesConsidered), 0u);
  EXPECT_GT(results[4].metrics->counter(Counter::kFmBucketOps), 0u);
  // CKL runs KL on the coarse and fine graphs and stamps
  // compact/bisect/uncoalesce/refine phases.
  EXPECT_GT(results[6].metrics->counter(Counter::kKlPasses), 0u);
  bool saw_compact = false;
  for (const PhaseSpan& span : results[6].metrics->phases) {
    if (span.phase == Phase::kCompact) saw_compact = true;
  }
  EXPECT_TRUE(saw_compact);
}

TEST(ObsCollection, DisabledObsRecordsNothing) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  const RunConfig config = fast_config(2, 2);  // obs untouched: disabled
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const std::vector<TrialResult> results =
      run_trials(graphs, trials, config, /*seed=*/11, config.threads);
  for (const TrialResult& r : results) {
    EXPECT_EQ(r.metrics, nullptr);
  }
}

// The determinism tentpole: the deterministic half of TrialMetrics is
// bit-identical at 1 and 8 threads, and so is everything derived from
// it (merged report, metrics JSON, convergence JSONL/CSV).
TEST(ObsDeterminism, MetricsBitIdenticalAcrossThreadCounts) {
  const std::vector<TrialResult> serial = run_collected(1);
  const std::vector<TrialResult> parallel = run_collected(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    ASSERT_NE(serial[t].metrics, nullptr);
    ASSERT_NE(parallel[t].metrics, nullptr);
    EXPECT_EQ(serial[t].cut, parallel[t].cut) << "trial " << t;
    EXPECT_EQ(serial[t].metrics->counters, parallel[t].metrics->counters)
        << "trial " << t;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      EXPECT_EQ(serial[t].metrics->hists[h].buckets,
                parallel[t].metrics->hists[h].buckets)
          << "trial " << t << " hist " << h;
    }
    EXPECT_EQ(serial[t].metrics->trace, parallel[t].metrics->trace)
        << "trial " << t;
  }

  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 2);
  std::ostringstream json1, json8;
  write_convergence_jsonl(json1, serial, trials);
  write_convergence_jsonl(json8, parallel, trials);
  EXPECT_EQ(json1.str(), json8.str());
  std::ostringstream csv1, csv8;
  write_convergence_csv(csv1, serial, trials);
  write_convergence_csv(csv8, parallel, trials);
  EXPECT_EQ(csv1.str(), csv8.str());

  // The aggregated counters/hists are identical, so the metrics JSON
  // differs only in the CPU-seconds distribution — zero both out to
  // compare the rest byte-for-byte.
  MetricsReport report1 = build_metrics_report(serial);
  MetricsReport report8 = build_metrics_report(parallel);
  EXPECT_EQ(report1.totals.counters, report8.totals.counters);
  report1.cpu_min = report1.cpu_max = report1.cpu_mean = 0;
  report1.cpu_p50 = report1.cpu_p90 = report1.cpu_p99 = 0;
  report8.cpu_min = report8.cpu_max = report8.cpu_mean = 0;
  report8.cpu_p50 = report8.cpu_p90 = report8.cpu_p99 = 0;
  std::ostringstream metrics1, metrics8;
  write_metrics_json(metrics1, report1);
  write_metrics_json(metrics8, report8);
  EXPECT_EQ(metrics1.str(), metrics8.str());
}

// --- Convergence export ----------------------------------------------------

TEST(ConvergenceTrace, JsonlRoundTrips) {
  const std::vector<TrialResult> results = run_collected(2);
  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 2);

  std::ostringstream out;
  write_convergence_jsonl(out, results, trials);

  // Reconstruct the expected lines straight from the in-memory traces.
  std::vector<ConvergenceLine> expected;
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const TracePoint& p : results[i].metrics->trace) {
      expected.push_back({i, trials[i].graph_index,
                          method_name(trials[i].method),
                          trials[i].start_index, p});
    }
  }
  ASSERT_FALSE(expected.empty());

  std::istringstream in(out.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(n, expected.size());
    EXPECT_EQ(parse_convergence_line(line), expected[n]) << line;
    ++n;
  }
  EXPECT_EQ(n, expected.size());
}

TEST(ConvergenceTrace, ParseRejectsMalformedLines) {
  EXPECT_THROW(parse_convergence_line("not json"), IoError);
  EXPECT_THROW(parse_convergence_line("{\"trial\":0}"), IoError);
  EXPECT_THROW(
      parse_convergence_line(
          "{\"trial\":0,\"graph\":0,\"method\":\"KL\",\"start\":0,"
          "\"step\":1,\"source\":\"volcano\",\"cut\":3,\"best\":3,"
          "\"aux\":0}"),
      IoError);
}

// --- Chrome trace ----------------------------------------------------------

TEST(ChromeTrace, IsStructurallyValidWithNestedNonOverlappingSpans) {
  const std::vector<TrialResult> results = run_collected(4);
  const Method methods[] = {Method::kKl, Method::kSa, Method::kFm,
                            Method::kCkl};
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 2);
  std::ostringstream out;
  write_chrome_trace(out, results, trials);
  const std::string text = out.str();

  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  check_balanced_json(text);

  // Span structure from the source of truth the writer serializes:
  // phases nest inside their trial span, and trial spans on one worker
  // lane never overlap (a worker runs one trial at a time).
  constexpr double kSlack = 1e-6;  // timer-read ordering slack, seconds
  std::map<std::uint32_t, std::vector<std::pair<double, double>>> lanes;
  for (const TrialResult& r : results) {
    ASSERT_NE(r.metrics, nullptr);
    const TrialMetrics& tm = *r.metrics;
    for (const PhaseSpan& span : tm.phases) {
      EXPECT_GE(span.start_seconds, -kSlack);
      EXPECT_GE(span.duration_seconds, 0.0);
      EXPECT_LE(span.start_seconds + span.duration_seconds,
                tm.wall_seconds + kSlack);
    }
    lanes[tm.tid].push_back({tm.start_offset_seconds,
                             tm.start_offset_seconds + tm.wall_seconds});
  }
  EXPECT_FALSE(lanes.empty());
  for (auto& [tid, spans] : lanes) {
    std::sort(spans.begin(), spans.end());
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_LE(spans[i - 1].second, spans[i].first + kSlack)
          << "overlapping trials on lane " << tid;
    }
  }
}

TEST(ChromeTrace, IncludesFailedTrialsWithErrorArgs) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  RunConfig config = fast_config(2, 1);
  config.obs.collect = true;
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const FaultPlan faults = FaultPlan::parse("throw@trial:0");
  TrialRunOptions options;
  options.faults = &faults;
  const std::vector<TrialResult> results =
      run_trials_ex(graphs, trials, config, /*seed=*/11, 1, options);
  ASSERT_EQ(results[0].status, TrialStatus::kFailed);
  ASSERT_NE(results[0].metrics, nullptr);  // failed trials still traced

  std::ostringstream out;
  write_chrome_trace(out, results, trials);
  EXPECT_NE(out.str().find("\"status\":\"failed\""), std::string::npos);
  EXPECT_NE(out.str().find("\"error\":"), std::string::npos);
  check_balanced_json(out.str());
}

// --- File export + env knobs -----------------------------------------------

TEST(ObsExport, WritesMetricsAndTraceFiles) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl, Method::kSa};
  RunConfig config = fast_config(2, 2);
  config.obs.metrics_path = temp_path("obs_export_metrics.json");
  config.obs.trace_dir = temp_path("obs_export_traces");
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const std::vector<TrialResult> results =
      run_trials(graphs, trials, config, /*seed=*/3, config.threads);
  ASSERT_EQ(results.size(), 4u);

  std::ifstream metrics(config.obs.metrics_path);
  ASSERT_TRUE(metrics.good());
  std::string json((std::istreambuf_iterator<char>(metrics)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"schema\":\"gbis-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kl.passes\":"), std::string::npos);
  check_balanced_json(json);

  for (const char* name :
       {"/convergence.jsonl", "/convergence.csv", "/trace.json"}) {
    std::ifstream file(config.obs.trace_dir + name);
    EXPECT_TRUE(file.good()) << name;
  }
}

TEST(ObsExport, UnwritableDestinationThrowsIoError) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  RunConfig config = fast_config(1, 1);
  config.obs.metrics_path = temp_path("no_such_dir/metrics.json");
  const std::vector<TrialSpec> trials = enumerate_trial_matrix(1, methods, 1);
  EXPECT_THROW(run_trials(graphs, trials, config, /*seed=*/3, 1), IoError);
}

TEST(ObsOptionsEnv, ParsesAndWarnsOnMalformed) {
  ::setenv("GBIS_METRICS", "/tmp/m.json", 1);
  ::setenv("GBIS_TRACE_DIR", "/tmp/traces", 1);
  ::setenv("GBIS_PROGRESS", "1", 1);
  ObsOptions obs = obs_options_from_env();
  EXPECT_EQ(obs.metrics_path, "/tmp/m.json");
  EXPECT_EQ(obs.trace_dir, "/tmp/traces");
  EXPECT_TRUE(obs.progress);
  EXPECT_TRUE(obs.enabled());

  // Malformed values keep the default and never throw.
  ::setenv("GBIS_PROGRESS", "maybe", 1);
  ::setenv("GBIS_METRICS", "", 1);
  ObsOptions base;
  base.progress = false;
  obs = obs_options_from_env(base);
  EXPECT_FALSE(obs.progress);
  EXPECT_TRUE(obs.metrics_path.empty());

  ::unsetenv("GBIS_METRICS");
  ::unsetenv("GBIS_TRACE_DIR");
  ::unsetenv("GBIS_PROGRESS");
  EXPECT_FALSE(obs_options_from_env().enabled());
}

// --- Progress meter --------------------------------------------------------

TEST(ProgressMeter, CountsAndFinishesOnAnyStream) {
  std::ostringstream out;
  {
    ProgressMeter meter(4, &out, /*min_interval_seconds=*/0.0);
    meter.adopt(ProgressOutcome::kOk);
    meter.record(ProgressOutcome::kOk);
    meter.record(ProgressOutcome::kFailed);
    meter.record(ProgressOutcome::kTimedOut);
    meter.finish();
    meter.finish();  // idempotent
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("4/4 trials"), std::string::npos);
  EXPECT_NE(text.find("ok 2"), std::string::npos);
  EXPECT_NE(text.find("failed 1"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');  // finish() releases the line
}

TEST(ProgressMeter, RequestStyleIsOpenEndedWithRejectedColumn) {
  std::ostringstream out;
  {
    // total 0: a serve stream has no known length, so no "/total", no
    // ETA — the line must stay repaintable forever.
    ProgressMeter meter(0, &out, /*min_interval_seconds=*/0.0,
                       ProgressStyle::kRequests);
    meter.record(ProgressOutcome::kOk);
    meter.record(ProgressOutcome::kSkipped);   // maps to "rejected"
    meter.record(ProgressOutcome::kFailed);    // maps to "err"
    meter.record(ProgressOutcome::kTimedOut);  // also "err"
    meter.finish();
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("4 requests"), std::string::npos);
  EXPECT_NE(text.find("ok 1"), std::string::npos);
  EXPECT_NE(text.find("rejected 1"), std::string::npos);
  EXPECT_NE(text.find("err 2"), std::string::npos);
  EXPECT_NE(text.find("req/s"), std::string::npos);
  EXPECT_EQ(text.find("ETA"), std::string::npos);
  EXPECT_EQ(text.find("trials"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// --- Journaled metric summaries --------------------------------------------

TEST(CheckpointJournal, RoundTripsMetricSummaries) {
  auto tm = std::make_shared<TrialMetrics>();
  tm->counters[static_cast<std::size_t>(Counter::kKlPasses)] = 5;
  tm->counters[static_cast<std::size_t>(Counter::kDeadlinePolls)] = 123;
  tm->hists[static_cast<std::size_t>(Hist::kKlPassImprovement)].observe(9);
  tm->hists[static_cast<std::size_t>(Hist::kKlPassImprovement)].observe(9);
  tm->hists[static_cast<std::size_t>(Hist::kSaTempAcceptancePct)].observe(0);

  const std::string path = temp_path("journal_metrics.jsonl");
  {
    CheckpointJournal journal(path, /*fingerprint=*/1, /*num_trials=*/3);
    journal.append({0, TrialStatus::kOk, 7, 0.5, "", tm});
    // An error whose text mentions "metrics": must not confuse the flat
    // field scanner (it is JSON-escaped in the line).
    journal.append(
        {1, TrialStatus::kFailed, 0, 0.1, "bad \"metrics\": oops", tm});
    journal.append({2, TrialStatus::kOk, 8, 0.2, "", nullptr});
  }
  const CheckpointJournal::Loaded loaded = CheckpointJournal::load(path);
  ASSERT_EQ(loaded.records.size(), 3u);
  for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
    ASSERT_NE(loaded.records[i].metrics, nullptr) << i;
    EXPECT_EQ(loaded.records[i].metrics->counters, tm->counters) << i;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      EXPECT_EQ(loaded.records[i].metrics->hists[h].buckets,
                tm->hists[h].buckets)
          << "record " << i << " hist " << h;
    }
  }
  EXPECT_EQ(loaded.records[1].error, "bad \"metrics\": oops");
  EXPECT_EQ(loaded.records[2].metrics, nullptr);
}

// Kill a campaign halfway (stop@trial:N), resume from the journal, and
// require per-trial metric summaries — adopted ones included — to match
// an uninterrupted run exactly.
TEST(Campaign, KillAndResumeReproducesMetricSummaries) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl, Method::kSa, Method::kCkl};
  RunConfig config = fast_config(2, 1);
  config.obs.collect = true;
  const std::uint64_t seed = 21;
  const FaultPlan no_faults;

  CampaignOptions clean;
  clean.faults = &no_faults;
  const CampaignResult reference =
      run_campaign(graphs, methods, config, seed, clean);
  ASSERT_EQ(reference.ok, 6u);

  const std::string path = temp_path("journal_obs_resume.jsonl");
  const FaultPlan stop_plan = FaultPlan::parse("stop@trial:2");
  reset_shutdown();
  CampaignOptions interrupted;
  interrupted.journal_path = path;
  interrupted.stop = &shutdown_flag();
  interrupted.faults = &stop_plan;
  const CampaignResult partial =
      run_campaign(graphs, methods, config, seed, interrupted);
  reset_shutdown();
  ASSERT_TRUE(partial.interrupted);
  ASSERT_GT(partial.ok, 0u);

  CampaignOptions resume;
  resume.journal_path = path;
  resume.resume_path = path;
  resume.faults = &no_faults;
  const CampaignResult resumed =
      run_campaign(graphs, methods, config, seed, resume);
  EXPECT_EQ(resumed.ok, 6u);
  EXPECT_EQ(resumed.resumed, partial.ok);

  ASSERT_EQ(resumed.trials.size(), reference.trials.size());
  for (std::size_t t = 0; t < reference.trials.size(); ++t) {
    ASSERT_NE(reference.trials[t].metrics, nullptr) << t;
    ASSERT_NE(resumed.trials[t].metrics, nullptr) << t;
    EXPECT_EQ(resumed.trials[t].metrics->counters,
              reference.trials[t].metrics->counters)
        << "trial " << t;
    for (std::size_t h = 0; h < kNumHists; ++h) {
      EXPECT_EQ(resumed.trials[t].metrics->hists[h].buckets,
                reference.trials[t].metrics->hists[h].buckets)
          << "trial " << t << " hist " << h;
    }
  }

  // And so the campaign-level fold matches byte-for-byte too (after
  // zeroing the wall-clock CPU distribution).
  MetricsReport ref_report = build_metrics_report(reference.trials);
  MetricsReport res_report = build_metrics_report(resumed.trials);
  EXPECT_EQ(ref_report.totals.counters, res_report.totals.counters);
  for (std::size_t h = 0; h < kNumHists; ++h) {
    EXPECT_EQ(ref_report.totals.hists[h].buckets,
              res_report.totals.hists[h].buckets);
  }
}

// --- Request spans, the flight recorder, and exemplars ----------------------

SpanRec named_span(const std::string& name, std::uint64_t step) {
  SpanRec rec;
  rec.name = name;
  rec.step = step;
  rec.has_step = true;
  return rec;
}

TEST(SpanBuffer, NullBufferDropsEverything) {
  SpanBuffer buffer;
  EXPECT_FALSE(buffer.bound());
  for (int i = 0; i < 100; ++i) buffer.offer(named_span("kl.pass", i));
  // Nothing to assert beyond "did not crash": there is no destination.
}

TEST(SpanBuffer, DecimationIsBoundedAndKeepsTheOfferedPrefixRule) {
  std::vector<SpanRec> dest;
  SpanBuffer buffer(&dest, 8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    buffer.offer(named_span("sa.temp", i));
  }
  EXPECT_LE(dest.size(), 8u);
  EXPECT_EQ(dest.front().step, 0u);  // ordinal 0 survives every stride
  // Deterministic: the same offered sequence keeps the same subset.
  std::vector<SpanRec> again;
  SpanBuffer rerun(&again, 8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    rerun.offer(named_span("sa.temp", i));
  }
  ASSERT_EQ(dest.size(), again.size());
  for (std::size_t i = 0; i < dest.size(); ++i) {
    EXPECT_EQ(dest[i].step, again[i].step);
  }
}

SpanSet sample_span_set(std::uint64_t trace_id, std::uint64_t seq) {
  SpanSet set;
  set.trace_id = trace_id;
  set.seq = seq;
  set.id = "r" + std::to_string(seq);
  set.op = "solve";
  SpanRec accept;
  accept.name = "accept";
  accept.start_seconds = 0.001;
  set.spans.push_back(accept);
  SpanRec pass = named_span("kl.pass", 3);
  pass.value = 17;
  pass.has_value = true;
  pass.start_seconds = 0.002;
  pass.duration_seconds = 0.0005;
  set.spans.push_back(pass);
  return set;
}

TEST(SpanEncode, GoldenLineWithTimingKeysLast) {
  const std::string line = encode_span_set(sample_span_set(0xabcull, 7),
                                           "done");
  EXPECT_EQ(line,
            "{\"state\":\"done\",\"trace\":\"0000000000000abc\",\"seq\":7,"
            "\"id\":\"r7\",\"op\":\"solve\",\"status\":\"\",\"spans\":["
            "{\"name\":\"accept\",\"t_start_us\":1000,\"t_dur_us\":0},"
            "{\"name\":\"kl.pass\",\"step\":3,\"cut\":17,"
            "\"t_start_us\":2000,\"t_dur_us\":500}]}");
}

TEST(FlightRecorder, RingEvictsAndFindPrefersNewest) {
  FlightRecorder recorder(2, 4);
  recorder.complete(sample_span_set(1, 0));
  recorder.complete(sample_span_set(2, 1));
  recorder.complete(sample_span_set(3, 2));  // evicts trace 1
  EXPECT_EQ(recorder.completed().size(), 2u);
  EXPECT_EQ(recorder.find(1), nullptr);
  bool inflight = true;
  const SpanSet* found = recorder.find(3, &inflight);
  ASSERT_NE(found, nullptr);
  EXPECT_FALSE(inflight);
  recorder.record_inflight(sample_span_set(9, 3));
  found = recorder.find(9, &inflight);
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(inflight);
  EXPECT_EQ(recorder.inflight_count(), 1u);
  // Completing clears the in-flight record.
  recorder.complete(sample_span_set(9, 3));
  recorder.find(9, &inflight);
  EXPECT_FALSE(inflight);
  EXPECT_EQ(recorder.inflight_count(), 0u);
}

TEST(FlightRecorder, DumpWritesCompletedAndInflightLines) {
  const std::string path = testing::TempDir() + "flight_unit.jsonl";
  std::remove(path.c_str());
  FlightRecorder recorder(4, 4);
  ASSERT_TRUE(recorder.open_dump_file(path));
  SpanSet done = sample_span_set(0x11, 0);
  done.status = "ok";
  recorder.complete(done);
  SpanSet live = sample_span_set(0x22, 1);
  live.status = "pending";
  recorder.record_inflight(live);
  recorder.dump_slots();
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"state\":\"done\",\"trace\":\"0000000000000011\""),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("\"state\":\"inflight\",\"trace\":\"0000000000000022\""),
      std::string::npos)
      << text;
  std::remove(path.c_str());
}

TEST(HistExemplars, KeepsTheMaxSamplePerBucketAndOverall) {
  HistExemplars exemplars;
  exemplars.offer(100, 0xaaa);  // bucket of 100
  exemplars.offer(120, 0xbbb);  // same bucket, larger value wins
  exemplars.offer(110, 0xccc);  // same bucket, smaller: ignored
  exemplars.offer(5000, 0xddd);  // different bucket
  const std::size_t bucket = HistData::bucket_of(120);
  EXPECT_TRUE(exemplars.buckets[bucket].has);
  EXPECT_EQ(exemplars.buckets[bucket].trace, 0xbbbull);
  EXPECT_EQ(exemplars.buckets[bucket].value, 120ull);
  const BucketExemplar top = exemplars.top();
  ASSERT_TRUE(top.has);
  EXPECT_EQ(top.trace, 0xdddull);
}

TEST(PromExport, ExemplarSuffixOnBucketsNeverOnInf) {
  TrialMetrics metrics;
  metrics.hists[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)]
      .observe(120);
  HistExemplars exemplars;
  exemplars.offer(120, 0x0123456789abcdefull);
  std::array<const HistExemplars*, kNumHists> bound{};
  bound[static_cast<std::size_t>(Hist::kSvcRequestLatencyUs)] = &exemplars;
  std::ostringstream out;
  write_prom_exposition(out, metrics, bound);
  const std::string text = out.str();
  EXPECT_NE(
      text.find(" # {trace_id=\"0123456789abcdef\"} 120"),
      std::string::npos)
      << text;
  // +Inf buckets stay bare even when the bucket landed a sample.
  for (std::size_t pos = text.find("+Inf"); pos != std::string::npos;
       pos = text.find("+Inf", pos + 1)) {
    const std::size_t eol = text.find('\n', pos);
    EXPECT_EQ(text.substr(pos, eol - pos).find("trace_id"),
              std::string::npos);
  }
}

TEST(ProgressMeter, RatesStayFiniteOnZeroWidthIntervals) {
  std::ostringstream out;
  // min_interval 0: every record paints, including ones arriving
  // within the clock's resolution of construction.
  ProgressMeter meter(0, &out, 0.0, ProgressStyle::kRequests);
  for (int i = 0; i < 3; ++i) meter.record(ProgressOutcome::kOk);
  meter.finish();
  const std::string text = out.str();
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
}

}  // namespace
}  // namespace gbis
