# Smoke test: every example binary must run to completion on its
# default arguments.
foreach(example ${EXAMPLES})
  execute_process(COMMAND ${EXAMPLES_DIR}/${example}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "example ${example} failed (${code}): ${out} ${err}")
  endif()
endforeach()
