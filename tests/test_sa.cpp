// Tests for the simulated annealing bisector and its schedule.
#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/exact/brute.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/sa/sa.hpp"
#include "gbis/sa/schedule.hpp"

namespace gbis {
namespace {

TEST(Schedule, GeometricCooling) {
  GeometricSchedule s(10.0, 0.5);
  EXPECT_DOUBLE_EQ(s.temperature(), 10.0);
  EXPECT_DOUBLE_EQ(s.cool(), 5.0);
  EXPECT_DOUBLE_EQ(s.cool(), 2.5);
  EXPECT_EQ(s.steps(), 3u);
}

TEST(Schedule, RejectsBadParameters) {
  EXPECT_THROW(GeometricSchedule(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(GeometricSchedule(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(GeometricSchedule(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(GeometricSchedule(1.0, 1.0), std::invalid_argument);
}

TEST(Schedule, InitialTemperatureFormula) {
  const double deltas[] = {2.0, 4.0};
  // mean 3; target acceptance e^{-1} => T0 = 3.
  const double t0 =
      initial_temperature_for_acceptance(deltas, std::exp(-1.0));
  EXPECT_NEAR(t0, 3.0, 1e-12);
}

TEST(Schedule, InitialTemperatureFallback) {
  EXPECT_DOUBLE_EQ(
      initial_temperature_for_acceptance({}, 0.5, /*fallback=*/7.0), 7.0);
  EXPECT_THROW(initial_temperature_for_acceptance({}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(initial_temperature_for_acceptance({}, 1.0),
               std::invalid_argument);
}

SaOptions fast_sa() {
  SaOptions options;
  options.temperature_length_factor = 4.0;
  options.cooling_ratio = 0.9;
  return options;
}

TEST(Sa, ReturnsBalancedBisection) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_gnp(60, 0.1, rng);
    Bisection b = Bisection::random(g, rng);
    const SaStats stats = sa_refine(b, rng, fast_sa());
    EXPECT_LE(b.count_imbalance(), 1u);
    EXPECT_EQ(b.cut(), b.recompute_cut());
    EXPECT_EQ(stats.final_cut, b.cut());
    EXPECT_GT(stats.temperatures, 0u);
    EXPECT_GT(stats.moves_proposed, 0u);
  }
}

TEST(Sa, NeverWorseThanBestBalancedSeen) {
  // The initial configuration is balanced, so the result must not be
  // worse than the start.
  Rng rng(2);
  const Graph g = make_gnp(50, 0.15, rng);
  Bisection b = Bisection::random(g, rng);
  const Weight before = b.cut();
  sa_refine(b, rng, fast_sa());
  EXPECT_LE(b.cut(), before);
}

TEST(Sa, SolvesWellSeparatedInstances) {
  Rng rng(3);
  const PlantedParams params{24, 0.9, 0.9, 2};
  const Graph g = make_planted(params, rng);
  const Weight optimal = brute_force_bisection(g).cut;
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 3; ++start) {
    Bisection b = Bisection::random(g, rng);
    sa_refine(b, rng, fast_sa());
    best = std::min(best, b.cut());
  }
  EXPECT_EQ(best, optimal);
}

TEST(Sa, GoodOnLadders) {
  // Observation 4: SA handles ladders well; expect near-optimal (the
  // optimum is 2) from a single start on a modest ladder.
  Rng rng(4);
  const Graph g = make_ladder(40);
  Bisection b = Bisection::random(g, rng);
  SaOptions options;  // default (non-fast) schedule for quality
  options.temperature_length_factor = 8.0;
  sa_refine(b, rng, options);
  EXPECT_LE(b.cut(), 6);
}

TEST(Sa, ExplicitInitialTemperature) {
  Rng rng(5);
  const Graph g = make_gnp(40, 0.2, rng);
  Bisection b = Bisection::random(g, rng);
  SaOptions options = fast_sa();
  options.initial_temperature = 3.5;
  const SaStats stats = sa_refine(b, rng, options);
  EXPECT_DOUBLE_EQ(stats.initial_temperature, 3.5);
}

TEST(Sa, MaxTotalMovesCapsWork) {
  Rng rng(6);
  const Graph g = make_gnp(100, 0.1, rng);
  Bisection b = Bisection::random(g, rng);
  SaOptions options = fast_sa();
  options.max_total_moves = 500;
  const SaStats stats = sa_refine(b, rng, options);
  EXPECT_LE(stats.moves_proposed, 500u);
  EXPECT_LE(b.count_imbalance(), 1u);  // repair still runs
}

TEST(Sa, RejectsNegativeAlpha) {
  Rng rng(7);
  const Graph g = make_path(4);
  Bisection b = Bisection::random(g, rng);
  SaOptions options;
  options.imbalance_alpha = -1.0;
  EXPECT_THROW(sa_refine(b, rng, options), std::invalid_argument);
}

TEST(Sa, TinyGraphs) {
  Rng rng(8);
  const Graph g1 = make_path(1);
  Bisection b1 = Bisection::random(g1, rng);
  const SaStats s1 = sa_refine(b1, rng, fast_sa());
  EXPECT_EQ(s1.final_cut, 0);

  const Graph g2 = make_path(2);
  Bisection b2 = Bisection::random(g2, rng);
  sa_refine(b2, rng, fast_sa());
  EXPECT_EQ(b2.cut(), 1);
  EXPECT_TRUE(b2.is_balanced());
}

TEST(Sa, EdgelessGraph) {
  Rng rng(9);
  GraphBuilder builder(12);
  const Graph g = builder.build();
  Bisection b = Bisection::random(g, rng);
  sa_refine(b, rng, fast_sa());
  EXPECT_EQ(b.cut(), 0);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Sa, StagnationCutoffStopsEarly) {
  // The section-VII premature-termination knob: with a tight
  // stagnation cut-off, SA visits far fewer temperatures than a full
  // run to freezing on the same instance and stream.
  Rng rng_full(21), rng_early(21);
  const Graph g = make_gnp(100, 0.06, rng_full);
  Rng rng_g(21);
  const Graph g2 = make_gnp(100, 0.06, rng_early);  // identical graph

  SaOptions full = fast_sa();
  Bisection b_full = Bisection::random(g, rng_full);
  const SaStats s_full = sa_refine(b_full, rng_full, full);

  SaOptions early = fast_sa();
  early.stagnation_temperatures = 2;
  Bisection b_early = Bisection::random(g2, rng_early);
  const SaStats s_early = sa_refine(b_early, rng_early, early);

  EXPECT_LT(s_early.temperatures, s_full.temperatures);
  EXPECT_LE(b_early.count_imbalance(), 1u);
}

TEST(Sa, AcceptanceDecreasesAsItFreezes) {
  // Coarse sanity of the annealing dynamic: overall acceptance ratio is
  // strictly below 1 and the walk eventually froze (finished).
  Rng rng(10);
  const Graph g = make_gnp(80, 0.1, rng);
  Bisection b = Bisection::random(g, rng);
  const SaStats stats = sa_refine(b, rng, fast_sa());
  EXPECT_LT(stats.moves_accepted, stats.moves_proposed);
  EXPECT_LT(stats.final_temperature, stats.initial_temperature);
}

class SaProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(SaProperty, LegalOnRandomGraphs) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 23 + 9);
  const Graph g = make_gnp(n, 6.0 / n, rng);
  Bisection b = Bisection::random(g, rng);
  const Weight before = b.cut();
  sa_refine(b, rng, fast_sa());
  EXPECT_LE(b.cut(), before);
  EXPECT_LE(b.count_imbalance(), 1u);
  ASSERT_EQ(b.cut(), b.recompute_cut());
}

INSTANTIATE_TEST_SUITE_P(Sizes, SaProperty,
                         testing::Values(16u, 33u, 64u, 129u));

}  // namespace
}  // namespace gbis
