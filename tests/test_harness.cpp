// Tests for the experiment harness: statistics, table printing, and
// the method runner.
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/runner.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/harness/stats.hpp"
#include "gbis/harness/table.hpp"
#include "gbis/harness/timer.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Stats, SummaryBasics) {
  const double values[] = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(values);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_EQ(s.count, 4u);
}

TEST(Stats, SummaryOddMedianAndSingleton) {
  const double odd[] = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(summarize(odd).median, 3.0);
  const double one[] = {7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

TEST(Stats, PercentileInterpolatesAndClamps) {
  const double values[] = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), summarize(values).median);
  EXPECT_DOUBLE_EQ(percentile(values, 25), 1.75);  // rank 0.75 between 1, 2
  EXPECT_DOUBLE_EQ(percentile(values, 90), 3.7);
  // Out-of-range p clamps; degenerate samples behave.
  EXPECT_DOUBLE_EQ(percentile(values, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 250), 4.0);
  const double one[] = {7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 99), 7.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Stats, PercentImprovement) {
  EXPECT_DOUBLE_EQ(percent_improvement(100.0, 10.0), 90.0);
  EXPECT_DOUBLE_EQ(percent_improvement(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(percent_improvement(10.0, 20.0), -100.0);
  // Zero baseline: both zero means nothing to improve; a regression
  // from a zero-cut baseline must NOT read as 0% — it has no defined
  // percentage, so it is NaN (rendered "n/a" by the table printer).
  EXPECT_DOUBLE_EQ(percent_improvement(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isnan(percent_improvement(0.0, 5.0)));
}

TEST(Table, NanRendersAsNotAvailable) {
  std::ostringstream out;
  TablePrinter table(out, {{"impr%", 8}});
  table.cell(percent_improvement(0.0, 5.0), 1);
  table.end_row();
  EXPECT_NE(out.str().find("n/a"), std::string::npos);
  EXPECT_EQ(out.str().find("nan"), std::string::npos);
}

TEST(Table, AlignsAndCounts) {
  std::ostringstream out;
  TablePrinter table(out, {{"name", 6}, {"value", 8}});
  table.print_header();
  table.cell("x").cell(std::int64_t{42});
  table.end_row();
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("------"), std::string::npos);
}

TEST(Table, CellCountMismatchThrows) {
  std::ostringstream out;
  TablePrinter table(out, {{"a", 4}, {"b", 4}});
  table.cell("only-one");
  EXPECT_THROW(table.end_row(), std::logic_error);
}

TEST(Table, DoublePrecision) {
  std::ostringstream out;
  TablePrinter table(out, {{"v", 8}});
  table.cell(3.14159, 3);
  table.end_row();
  EXPECT_NE(out.str().find("3.142"), std::string::npos);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  const double t0 = timer.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  // Burn a little time deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + static_cast<double>(i);
  }
  EXPECT_GE(timer.elapsed_seconds(), t0);
  timer.reset();
  EXPECT_LT(timer.elapsed_seconds(), 1.0);
}

TEST(Runner, MethodNamesAreUnique) {
  const Method all[] = {Method::kKl,     Method::kSa,       Method::kCkl,
                        Method::kCsa,    Method::kFm,       Method::kCfm,
                        Method::kMultilevelKl, Method::kGreedy,
                        Method::kSpectral,     Method::kRandom};
  std::set<std::string> names;
  for (Method m : all) names.insert(method_name(m));
  EXPECT_EQ(names.size(), std::size(all));
}

TEST(Runner, AllMethodsProduceLegalResults) {
  Rng rng(1);
  const PlantedParams params{60, 0.3, 0.3, 4};
  const Graph g = make_planted(params, rng);
  RunConfig config;
  config.starts = 1;
  config.sa.temperature_length_factor = 2.0;
  config.sa.cooling_ratio = 0.85;
  const Method all[] = {Method::kKl,     Method::kSa,       Method::kCkl,
                        Method::kCsa,    Method::kFm,       Method::kCfm,
                        Method::kMultilevelKl, Method::kGreedy,
                        Method::kSpectral,     Method::kRandom};
  for (Method m : all) {
    const RunResult r = run_method(g, m, rng, config);
    EXPECT_GE(r.best_cut, 4) << method_name(m);   // planted is optimal here
    EXPECT_LE(r.best_cut, 200) << method_name(m);
    EXPECT_GE(r.cpu_seconds, 0.0);
    EXPECT_GE(r.wall_seconds, 0.0);
    EXPECT_EQ(r.trial_seconds.size(), config.starts);
  }
}

TEST(Runner, MoreStartsNeverHurt) {
  Rng rng_a(7), rng_b(7);
  const Graph g = make_grid(8, 8);
  RunConfig one;
  one.starts = 1;
  RunConfig five;
  five.starts = 5;
  // Same RNG stream start: the five-start run sees the one-start
  // result among its candidates.
  const Weight c1 = run_method(g, Method::kKl, rng_a, one).best_cut;
  const Weight c5 = run_method(g, Method::kKl, rng_b, five).best_cut;
  EXPECT_LE(c5, c1);
}

TEST(Runner, BestSidesMatchBestCut) {
  Rng rng(5);
  const PlantedParams params{60, 0.3, 0.3, 4};
  const Graph g = make_planted(params, rng);
  RunConfig config;
  config.starts = 3;
  std::vector<std::uint8_t> sides;
  const RunResult result = run_method(g, Method::kKl, rng, config, &sides);
  ASSERT_EQ(sides.size(), g.num_vertices());
  const Bisection check(g, std::move(sides));
  EXPECT_EQ(check.cut(), result.best_cut);
  EXPECT_TRUE(check.is_balanced());
}

TEST(Runner, ZeroStartsThrows) {
  Rng rng(2);
  const Graph g = make_path(4);
  RunConfig config;
  config.starts = 0;
  EXPECT_THROW(run_method(g, Method::kKl, rng, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace gbis
