// Tests for netlist generation, graph expansions, and hMETIS I/O.
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/graph/ops.hpp"
#include "gbis/hypergraph/builder.hpp"
#include "gbis/hypergraph/expand.hpp"
#include "gbis/hypergraph/hyper_bisection.hpp"
#include "gbis/hypergraph/netlist_gen.hpp"
#include "gbis/io/hmetis.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(NetlistGen, RandomShape) {
  Rng rng(1);
  const NetlistParams params{200, 300, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  EXPECT_EQ(h.num_cells(), 200u);
  EXPECT_EQ(h.num_nets(), 300u);
  EXPECT_TRUE(h.validate());
  // Mean net size ~ 2 + mean_extra_pins = 3.
  EXPECT_NEAR(h.average_net_size(), 3.0, 0.5);
}

TEST(NetlistGen, ZeroExtraPinsGivesAllTwoPinNets) {
  Rng rng(2);
  const NetlistParams params{50, 80, 0.0};
  const Hypergraph h = make_random_netlist(params, rng);
  for (Net n = 0; n < h.num_nets(); ++n) {
    EXPECT_EQ(h.net_size(n), 2u);
  }
}

TEST(NetlistGen, ParamValidation) {
  Rng rng(3);
  EXPECT_THROW(make_random_netlist({2, 5, 1.0}, rng), std::invalid_argument);
  EXPECT_THROW(make_random_netlist({10, 0, 1.0}, rng), std::invalid_argument);
  EXPECT_THROW(make_random_netlist({10, 5, -1.0}, rng),
               std::invalid_argument);
  EXPECT_THROW(make_planted_netlist({10, 5, 1.0}, 9, rng),
               std::invalid_argument);
}

TEST(NetlistGen, PlantedCutIsBounded) {
  Rng rng(4);
  const NetlistParams params{300, 450, 1.0};
  const std::uint32_t cross = 15;
  const Hypergraph h = make_planted_netlist(params, cross, rng);
  EXPECT_TRUE(h.validate());
  // The planted (first-half / second-half) split cuts exactly the
  // cross nets: intra-block nets never span.
  std::vector<std::uint8_t> sides(h.num_cells(), 0);
  for (Cell c = h.num_cells() / 2; c < h.num_cells(); ++c) sides[c] = 1;
  const HyperBisection b(h, std::move(sides));
  EXPECT_EQ(b.cut(), cross);
}

TEST(Expand, CliqueExpansionShape) {
  HypergraphBuilder builder(4);
  builder.add_net(std::vector<Cell>{0, 1, 2});
  builder.add_net(std::vector<Cell>{2, 3});
  const Hypergraph h = builder.build();
  const Graph g = clique_expansion(h);
  EXPECT_EQ(g.num_vertices(), 4u);
  // Triangle on {0,1,2} + edge (2,3).
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  // 3-pin net edges weigh scale/2, 2-pin net edges scale/1.
  EXPECT_EQ(g.edge_weight(0, 1), kExpandScale / 2);
  EXPECT_EQ(g.edge_weight(2, 3), kExpandScale);
}

TEST(Expand, StarExpansionShape) {
  HypergraphBuilder builder(4);
  builder.add_net(std::vector<Cell>{0, 1, 2});
  builder.add_net(std::vector<Cell>{2, 3});
  const Hypergraph h = builder.build();
  const Graph g = star_expansion(h);
  EXPECT_EQ(g.num_vertices(), 6u);  // 4 cells + 2 hubs
  EXPECT_EQ(g.num_edges(), 5u);     // 3 + 2 star edges
  EXPECT_TRUE(g.has_edge(4, 0));    // hub of net 0
  EXPECT_TRUE(g.has_edge(5, 3));    // hub of net 1
  EXPECT_TRUE(is_connected(g));
}

TEST(Expand, CliqueCutUpperBoundsNetCut) {
  // For any bisection, each cut net contributes at least one cut
  // clique edge, so (clique cut) >= (net cut) with unit-ish weights.
  Rng rng(5);
  const NetlistParams params{60, 90, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  const Graph g = clique_expansion(h);
  for (int trial = 0; trial < 5; ++trial) {
    const HyperBisection hb = HyperBisection::random(h, rng);
    const Bisection gb(g, std::vector<std::uint8_t>(hb.sides().begin(),
                                                    hb.sides().end()));
    EXPECT_GE(gb.cut(), hb.cut());
  }
}

TEST(Hmetis, RoundTripPlain) {
  Rng rng(6);
  const NetlistParams params{40, 60, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  std::stringstream ss;
  write_hmetis(ss, h);
  const Hypergraph parsed = read_hmetis(ss);
  ASSERT_EQ(parsed.num_cells(), h.num_cells());
  ASSERT_EQ(parsed.num_nets(), h.num_nets());
  for (Net n = 0; n < h.num_nets(); ++n) {
    const auto a = h.pins(n);
    const auto b = parsed.pins(n);
    ASSERT_EQ(std::vector<Cell>(a.begin(), a.end()),
              std::vector<Cell>(b.begin(), b.end()));
  }
}

TEST(Hmetis, RoundTripWeighted) {
  HypergraphBuilder builder(5);
  builder.add_net(std::vector<Cell>{0, 1, 4}, 3);
  builder.add_net(std::vector<Cell>{2, 3});
  builder.set_cell_weight(1, 9);
  const Hypergraph h = builder.build();
  std::stringstream ss;
  write_hmetis(ss, h);
  const Hypergraph parsed = read_hmetis(ss);
  EXPECT_EQ(parsed.net_weight(0), 3);
  EXPECT_EQ(parsed.net_weight(1), 1);
  EXPECT_EQ(parsed.cell_weight(1), 9);
  EXPECT_TRUE(parsed.validate());
}

TEST(Hmetis, ParsesCommentsAndRejectsGarbage) {
  std::stringstream ok("% hi\n2 4\n1 2\n3 4\n");
  const Hypergraph h = read_hmetis(ok);
  EXPECT_EQ(h.num_nets(), 2u);
  EXPECT_EQ(h.num_cells(), 4u);

  std::stringstream missing("2 4\n1 2\n");
  EXPECT_THROW(read_hmetis(missing), std::runtime_error);
  std::stringstream oob("1 2\n1 5\n");
  EXPECT_THROW(read_hmetis(oob), std::runtime_error);
  std::stringstream single_pin("1 4\n2\n");
  EXPECT_THROW(read_hmetis(single_pin), std::runtime_error);
  std::stringstream bad_fmt("1 2 99\n1 2\n");
  EXPECT_THROW(read_hmetis(bad_fmt), std::runtime_error);
  std::stringstream no_header("% only\n");
  EXPECT_THROW(read_hmetis(no_header), std::runtime_error);
}

TEST(Hmetis, FileRoundTrip) {
  Rng rng(7);
  const NetlistParams params{30, 45, 1.0};
  const Hypergraph h = make_random_netlist(params, rng);
  const std::string path = testing::TempDir() + "/gbis_hmetis_test.hgr";
  write_hmetis_file(path, h);
  const Hypergraph parsed = read_hmetis_file(path);
  EXPECT_EQ(parsed.num_pins(), h.num_pins());
  EXPECT_THROW(read_hmetis_file("/nonexistent/x.hgr"), std::runtime_error);
}

}  // namespace
}  // namespace gbis
