# End-to-end CLI smoke test driven by ctest. Fails on any non-zero
# exit or on a missing expected output.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run)
  execute_process(COMMAND ${GBIS_CLI} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "gbis ${ARGN} failed (${code}): ${out} ${err}")
  endif()
endfunction()

run(gen gbreg 400 8 3 ${WORK_DIR}/g.graph --seed 7)
run(solve ${WORK_DIR}/g.graph ckl ${WORK_DIR}/g.part)
run(eval ${WORK_DIR}/g.graph ${WORK_DIR}/g.part)
run(stats ${WORK_DIR}/g.graph)
run(kway ${WORK_DIR}/g.graph 4 ${WORK_DIR}/g4.part)
run(eval ${WORK_DIR}/g.graph ${WORK_DIR}/g4.part)
run(convert ${WORK_DIR}/g.graph ${WORK_DIR}/g.metis)
run(convert ${WORK_DIR}/g.metis ${WORK_DIR}/g.dot)
run(solve ${WORK_DIR}/g.metis quench)

foreach(artifact g.part g4.part g.metis g.dot)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "expected output missing: ${artifact}")
  endif()
endforeach()

# Campaign: run the trial matrix with a journal, then resume the same
# journal — the second run must adopt every trial instead of rerunning.
run(campaign kl,ckl --starts 2 --journal ${WORK_DIR}/c.jsonl
    ${WORK_DIR}/g.graph --seed 7)
if(NOT EXISTS ${WORK_DIR}/c.jsonl)
  message(FATAL_ERROR "campaign journal missing: c.jsonl")
endif()
execute_process(COMMAND ${GBIS_CLI} campaign kl,ckl --starts 2
    --resume ${WORK_DIR}/c.jsonl ${WORK_DIR}/g.graph --seed 7
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "campaign resume failed (${code}): ${out} ${err}")
endif()
if(NOT out MATCHES "4 resumed")
  message(FATAL_ERROR "campaign resume did not adopt the journal: ${out}")
endif()

# Failure injection: bad inputs must exit with the documented codes,
# not crash. Missing file -> 3 (I/O), bad command line -> 2 (usage).
execute_process(COMMAND ${GBIS_CLI} solve /nonexistent.graph kl
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 3)
  message(FATAL_ERROR "missing-file solve exited ${code}, expected 3")
endif()
execute_process(COMMAND ${GBIS_CLI} bogus-command
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "bogus command exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} solve ${WORK_DIR}/g.graph not-a-method
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "unknown method exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} --help
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT code EQUAL 0 OR NOT out MATCHES "exit codes")
  message(FATAL_ERROR "--help exited ${code} or lacks the exit-code table")
endif()
if(NOT out MATCHES "serve")
  message(FATAL_ERROR "--help does not document the serve subcommand")
endif()

# Partition service: replay a request file and require the response
# stream to be byte-identical for 1 worker and 8 workers — the
# service's core determinism contract.
file(WRITE ${WORK_DIR}/reqs.ndjson
  "{\"id\":\"r1\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":4,\"want_sides\":true}\n"
  "{\"id\":\"r2\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\"}\n"
  "{\"id\":\"r3\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":4}\n"
  "{\"id\":\"p\",\"op\":\"ping\"}\n"
  "{\"id\":\"bad\",\"op\":\"solve\",\"method\":\"kl\"}\n"
  "{\"id\":\"s\",\"op\":\"stats\"}\n")
set(ENV{GBIS_THREADS} 1)
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/reqs.ndjson
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE code OUTPUT_VARIABLE serve1 ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve --replay (1 thread) failed (${code}): ${err}")
endif()
set(ENV{GBIS_THREADS} 8)
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/reqs.ndjson
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE code OUTPUT_VARIABLE serve8 ERROR_VARIABLE err)
unset(ENV{GBIS_THREADS})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve --replay (8 threads) failed (${code}): ${err}")
endif()
if(NOT serve1 STREQUAL serve8)
  message(FATAL_ERROR
    "serve replay is not byte-identical across thread counts:\n"
    "--- GBIS_THREADS=1 ---\n${serve1}\n--- GBIS_THREADS=8 ---\n${serve8}")
endif()
if(NOT serve1 MATCHES "\"id\":\"r1\",\"ok\":true")
  message(FATAL_ERROR "serve replay did not answer r1 ok: ${serve1}")
endif()
if(NOT serve1 MATCHES "\"id\":\"r3\",\"ok\":true.*\"cache\":\"coalesced\"")
  message(FATAL_ERROR "serve replay did not coalesce r3: ${serve1}")
endif()
if(NOT serve1 MATCHES "\"id\":\"bad\",\"ok\":false")
  message(FATAL_ERROR "serve replay did not reject the bad request: ${serve1}")
endif()

# Serve failure contract: missing replay file -> 3 (I/O), unknown
# flag -> 2 (usage).
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/nonexistent.ndjson
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 3)
  message(FATAL_ERROR "serve with missing replay file exited ${code}, expected 3")
endif()
execute_process(COMMAND ${GBIS_CLI} serve --bogus-flag
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "serve with unknown flag exited ${code}, expected 2")
endif()
