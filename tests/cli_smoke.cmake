# End-to-end CLI smoke test driven by ctest. Fails on any non-zero
# exit or on a missing expected output.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run)
  execute_process(COMMAND ${GBIS_CLI} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "gbis ${ARGN} failed (${code}): ${out} ${err}")
  endif()
endfunction()

run(gen gbreg 400 8 3 ${WORK_DIR}/g.graph --seed 7)
run(solve ${WORK_DIR}/g.graph ckl ${WORK_DIR}/g.part)
run(eval ${WORK_DIR}/g.graph ${WORK_DIR}/g.part)
run(stats ${WORK_DIR}/g.graph)
run(kway ${WORK_DIR}/g.graph 4 ${WORK_DIR}/g4.part)
run(eval ${WORK_DIR}/g.graph ${WORK_DIR}/g4.part)
run(convert ${WORK_DIR}/g.graph ${WORK_DIR}/g.metis)
run(convert ${WORK_DIR}/g.metis ${WORK_DIR}/g.dot)
run(solve ${WORK_DIR}/g.metis quench)

foreach(artifact g.part g4.part g.metis g.dot)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "expected output missing: ${artifact}")
  endif()
endforeach()

# Campaign: run the trial matrix with a journal, then resume the same
# journal — the second run must adopt every trial instead of rerunning.
run(campaign kl,ckl --starts 2 --journal ${WORK_DIR}/c.jsonl
    ${WORK_DIR}/g.graph --seed 7)
if(NOT EXISTS ${WORK_DIR}/c.jsonl)
  message(FATAL_ERROR "campaign journal missing: c.jsonl")
endif()
execute_process(COMMAND ${GBIS_CLI} campaign kl,ckl --starts 2
    --resume ${WORK_DIR}/c.jsonl ${WORK_DIR}/g.graph --seed 7
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "campaign resume failed (${code}): ${out} ${err}")
endif()
if(NOT out MATCHES "4 resumed")
  message(FATAL_ERROR "campaign resume did not adopt the journal: ${out}")
endif()

# Failure injection: bad inputs must exit with the documented codes,
# not crash. Missing file -> 3 (I/O), bad command line -> 2 (usage).
execute_process(COMMAND ${GBIS_CLI} solve /nonexistent.graph kl
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 3)
  message(FATAL_ERROR "missing-file solve exited ${code}, expected 3")
endif()
execute_process(COMMAND ${GBIS_CLI} bogus-command
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "bogus command exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} solve ${WORK_DIR}/g.graph not-a-method
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "unknown method exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} --help
  RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_QUIET)
if(NOT code EQUAL 0 OR NOT out MATCHES "exit codes")
  message(FATAL_ERROR "--help exited ${code} or lacks the exit-code table")
endif()
if(NOT out MATCHES "serve")
  message(FATAL_ERROR "--help does not document the serve subcommand")
endif()

# Partition service: replay a request file and require the response
# stream to be byte-identical for 1 worker and 8 workers — the
# service's core determinism contract.
file(WRITE ${WORK_DIR}/reqs.ndjson
  "{\"id\":\"r1\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":4,\"want_sides\":true}\n"
  "{\"id\":\"r2\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\"}\n"
  "{\"id\":\"r3\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":4}\n"
  "{\"id\":\"p\",\"op\":\"ping\"}\n"
  "{\"id\":\"bad\",\"op\":\"solve\",\"method\":\"kl\"}\n"
  "{\"id\":\"s\",\"op\":\"stats\"}\n")
set(ENV{GBIS_THREADS} 1)
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/reqs.ndjson
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE code OUTPUT_VARIABLE serve1 ERROR_VARIABLE err)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve --replay (1 thread) failed (${code}): ${err}")
endif()
set(ENV{GBIS_THREADS} 8)
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/reqs.ndjson
  WORKING_DIRECTORY ${WORK_DIR}
  RESULT_VARIABLE code OUTPUT_VARIABLE serve8 ERROR_VARIABLE err)
unset(ENV{GBIS_THREADS})
if(NOT code EQUAL 0)
  message(FATAL_ERROR "serve --replay (8 threads) failed (${code}): ${err}")
endif()
# Wall-clock latency fields (key suffix "_us", by the docs/SERVICE.md
# convention) are the one documented exception to byte identity —
# strip them, then require the rest to match exactly.
function(strip_timing text out_var)
  # JSON fields whose key carries the "_us" wall-clock marker. Values
  # are numbers (latencies) or strings (latency exemplar trace ids,
  # whose bucket placement is wall-clock too).
  string(REGEX REPLACE ",\"[a-zA-Z0-9_]*_us\":(\"[^\"]*\"|[-+0-9.eE]+)" ""
    text "${text}")
  # Prom series embedded in a "prom" response string: drop every
  # escaped line (…\n) naming a *_us metric. Escaped quotes are
  # removed first so backslash only ever means a line boundary; this
  # mangles the comparison copy, but mangles both sides identically.
  string(REPLACE "\\\"" "" text "${text}")
  string(REGEX REPLACE "[^\\\\]*_us[^\\\\]*\\\\n" "" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

strip_timing("${serve1}" serve1_cmp)
strip_timing("${serve8}" serve8_cmp)
if(NOT serve1_cmp STREQUAL serve8_cmp)
  message(FATAL_ERROR
    "serve replay is not byte-identical across thread counts:\n"
    "--- GBIS_THREADS=1 ---\n${serve1}\n--- GBIS_THREADS=8 ---\n${serve8}")
endif()
if(NOT serve1 MATCHES "\"id\":\"r1\",\"ok\":true")
  message(FATAL_ERROR "serve replay did not answer r1 ok: ${serve1}")
endif()
if(NOT serve1 MATCHES "\"id\":\"r3\",\"ok\":true.*\"cache\":\"coalesced\"")
  message(FATAL_ERROR "serve replay did not coalesce r3: ${serve1}")
endif()
if(NOT serve1 MATCHES "\"id\":\"bad\",\"ok\":false")
  message(FATAL_ERROR "serve replay did not reject the bad request: ${serve1}")
endif()

# Serve telemetry: stats v2, the prom exposition, the access log, and
# the --stats-file snapshot must all come back — and every
# deterministic byte of them must be identical at 1 and 8 workers.
file(WRITE ${WORK_DIR}/telem.ndjson
  "{\"id\":\"t1\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\"}\n"
  "{\"id\":\"t2\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\"}\n"
  "{\"id\":\"ts\",\"op\":\"stats\"}\n"
  "{\"id\":\"tp\",\"op\":\"stats\",\"format\":\"prom\"}\n")
# The access log appends; clear leftovers from a previous ctest run.
file(REMOVE ${WORK_DIR}/access1.jsonl ${WORK_DIR}/access8.jsonl)
foreach(threads 1 8)
  set(ENV{GBIS_THREADS} ${threads})
  execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/telem.ndjson
      --access-log ${WORK_DIR}/access${threads}.jsonl
      --stats-file ${WORK_DIR}/prom${threads}.txt
      --slow-ms 0
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE telem${threads} ERROR_VARIABLE err)
  unset(ENV{GBIS_THREADS})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "serve telemetry replay (${threads} threads) failed (${code}): ${err}")
  endif()
endforeach()
if(NOT telem1 MATCHES "\"stats_version\":5")
  message(FATAL_ERROR "stats response is not v5: ${telem1}")
endif()
if(NOT telem1 MATCHES "\"trace_spans\":")
  message(FATAL_ERROR "stats response lacks v5 tracing counters: ${telem1}")
endif()
if(NOT telem1 MATCHES "\"quality_fast\":")
  message(FATAL_ERROR "stats response lacks v4 quality counters: ${telem1}")
endif()
if(NOT telem1 MATCHES "\"solve_by_ckl\":")
  message(FATAL_ERROR "stats response lacks v4 per-method counters: ${telem1}")
endif()
if(NOT telem1 MATCHES "\"queue_depth\":")
  message(FATAL_ERROR "stats response lacks gauges: ${telem1}")
endif()
if(NOT telem1 MATCHES "\"prom\":\"")
  message(FATAL_ERROR "prom-format stats response missing: ${telem1}")
endif()
strip_timing("${telem1}" telem1_cmp)
strip_timing("${telem8}" telem8_cmp)
if(NOT telem1_cmp STREQUAL telem8_cmp)
  message(FATAL_ERROR
    "serve telemetry responses differ across thread counts:\n"
    "--- GBIS_THREADS=1 ---\n${telem1}\n--- GBIS_THREADS=8 ---\n${telem8}")
endif()

file(READ ${WORK_DIR}/access1.jsonl access1)
file(READ ${WORK_DIR}/access8.jsonl access8)
if(NOT access1 MATCHES "\"seq\":0,\"id\":\"t1\",\"op\":\"solve\",\"status\":\"ok\"")
  message(FATAL_ERROR "access log lacks the expected first entry: ${access1}")
endif()
strip_timing("${access1}" access1_cmp)
strip_timing("${access8}" access8_cmp)
if(NOT access1_cmp STREQUAL access8_cmp)
  message(FATAL_ERROR
    "access logs differ across thread counts:\n"
    "--- GBIS_THREADS=1 ---\n${access1}\n--- GBIS_THREADS=8 ---\n${access8}")
endif()

# The prom snapshot: drop whole series whose metric name carries the
# "_us" marker (their bucket placement is wall-clock), compare the rest.
file(READ ${WORK_DIR}/prom1.txt prom1)
file(READ ${WORK_DIR}/prom8.txt prom8)
if(NOT prom1 MATCHES "# TYPE gbis_svc_requests_total counter")
  message(FATAL_ERROR "prom snapshot lacks the counter catalog: ${prom1}")
endif()
function(strip_us_series text out_var)
  string(REGEX REPLACE "[^\n]*_us[^\n]*\n" "" text "${text}")
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()
strip_us_series("${prom1}" prom1_cmp)
strip_us_series("${prom8}" prom8_cmp)
if(NOT prom1_cmp STREQUAL prom8_cmp)
  message(FATAL_ERROR
    "prom snapshots differ across thread counts:\n"
    "--- GBIS_THREADS=1 ---\n${prom1}\n--- GBIS_THREADS=8 ---\n${prom8}")
endif()

# Lint the exposition with the checked-in validator when python3 is
# around (CI always has it; dev boxes may not).
find_program(PYTHON3 python3)
if(PYTHON3 AND DEFINED PROM_LINT)
  execute_process(COMMAND ${PYTHON3} ${PROM_LINT} --strict
      ${WORK_DIR}/prom1.txt ${WORK_DIR}/prom8.txt
    RESULT_VARIABLE code OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "prom_lint rejected the snapshot: ${out} ${err}")
  endif()
endif()

# Usage contract for the new flags: a negative --slow-ms is 2 (usage).
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/telem.ndjson
    --slow-ms -1
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "negative --slow-ms exited ${code}, expected 2")
endif()

# Crash-safety chaos: the service fault plan SIGKILLs the server at
# the third dispatched batch (crash@batch:2), after two batches of
# responses — and their cache-journal entries — are already flushed. A
# warm restart on the same journal must answer the pre-crash solves as
# cached hits whose bytes are identical to the pre-crash hit responses,
# at 1 worker and at 8.
file(WRITE ${WORK_DIR}/chaos.ndjson
  "{\"id\":\"ca\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":2,\"seed\":201,\"want_sides\":true}\n"
  "{\"id\":\"cb\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\",\"seed\":202}\n"
  "{\"id\":\"ca\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":2,\"seed\":201,\"want_sides\":true}\n"
  "{\"id\":\"cb\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\",\"seed\":202}\n"
  "{\"id\":\"cc\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":2,\"seed\":203}\n"
  "{\"id\":\"cd\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\",\"seed\":204}\n")
foreach(threads 1 8)
  file(REMOVE ${WORK_DIR}/chaos${threads}.jsonl ${WORK_DIR}/flight${threads}.jsonl)
  set(ENV{GBIS_THREADS} ${threads})
  set(ENV{GBIS_SVC_FAULTS} "crash@batch:2")
  execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/chaos.ndjson
      --batch 2 --cache-file ${WORK_DIR}/chaos${threads}.jsonl
      --flight-file ${WORK_DIR}/flight${threads}.jsonl
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE crash_out ERROR_QUIET)
  unset(ENV{GBIS_SVC_FAULTS})
  if(code EQUAL 0)
    message(FATAL_ERROR
      "chaos serve (${threads} threads) survived the injected crash")
  endif()
  # The flight recorder's black box must survive the SIGKILL: the crash
  # path dumps completed span sets (and any in-flight work) before the
  # process dies, each line tagged with its deterministic trace id.
  if(NOT EXISTS ${WORK_DIR}/flight${threads}.jsonl)
    message(FATAL_ERROR
      "chaos serve (${threads} threads) left no flight dump behind")
  endif()
  file(READ ${WORK_DIR}/flight${threads}.jsonl flight_dump)
  if(NOT flight_dump MATCHES "\"state\":\"done\"")
    message(FATAL_ERROR
      "flight dump (${threads} threads) has no completed span sets:\n"
      "${flight_dump}")
  endif()
  if(NOT flight_dump MATCHES "\"trace\":\"[0-9a-f][0-9a-f][0-9a-f][0-9a-f]")
    message(FATAL_ERROR
      "flight dump (${threads} threads) lines carry no trace ids:\n"
      "${flight_dump}")
  endif()
  string(REGEX MATCHALL "[^\n]+" crash_lines "${crash_out}")
  list(LENGTH crash_lines crash_count)
  if(NOT crash_count EQUAL 4)
    message(FATAL_ERROR
      "chaos serve (${threads} threads) flushed ${crash_count} responses "
      "before the crash, expected 4:\n${crash_out}")
  endif()
  list(GET crash_lines 2 precrash_hit_a)
  list(GET crash_lines 3 precrash_hit_b)
  if(NOT precrash_hit_a MATCHES "\"cache\":\"hit\"")
    message(FATAL_ERROR "pre-crash repeat was not a hit: ${precrash_hit_a}")
  endif()
  execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/chaos.ndjson
      --batch 2 --cache-file ${WORK_DIR}/chaos${threads}.jsonl
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE warm_out ERROR_VARIABLE err)
  unset(ENV{GBIS_THREADS})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "warm restart (${threads} threads) failed (${code}): ${err}")
  endif()
  string(REGEX MATCHALL "[^\n]+" warm_lines "${warm_out}")
  list(LENGTH warm_lines warm_count)
  if(NOT warm_count EQUAL 6)
    message(FATAL_ERROR
      "warm restart (${threads} threads) answered ${warm_count} of 6:\n"
      "${warm_out}")
  endif()
  # The journal replay makes the first occurrences warm hits, and their
  # bytes must match the pre-crash hit responses exactly.
  list(GET warm_lines 0 warm_hit_a)
  list(GET warm_lines 1 warm_hit_b)
  if(NOT warm_hit_a STREQUAL precrash_hit_a OR
     NOT warm_hit_b STREQUAL precrash_hit_b)
    message(FATAL_ERROR
      "warm hits differ from the pre-crash responses "
      "(${threads} threads):\n--- pre-crash ---\n${precrash_hit_a}\n"
      "${precrash_hit_b}\n--- warm ---\n${warm_hit_a}\n${warm_hit_b}")
  endif()
  list(GET warm_lines 4 warm_cold)
  if(NOT warm_cold MATCHES "\"cache\":\"miss\"")
    message(FATAL_ERROR
      "post-restart request cc was not a cold solve: ${warm_cold}")
  endif()
  set(warm${threads} "${warm_out}")
endforeach()
if(NOT warm1 STREQUAL warm8)
  message(FATAL_ERROR
    "warm-restart streams differ across thread counts:\n"
    "--- GBIS_THREADS=1 ---\n${warm1}\n--- GBIS_THREADS=8 ---\n${warm8}")
endif()

# Serve failure contract: missing replay file -> 3 (I/O), unknown
# flag -> 2 (usage), --replay combined with a listener -> 2 (the two
# input modes are exclusive).
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/nonexistent.ndjson
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 3)
  message(FATAL_ERROR "serve with missing replay file exited ${code}, expected 3")
endif()
execute_process(COMMAND ${GBIS_CLI} serve --bogus-flag
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "serve with unknown flag exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/telem.ndjson
    --listen 127.0.0.1:0
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "serve --replay + --listen exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/telem.ndjson
    --brownout-window 0
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 2)
  message(FATAL_ERROR "zero --brownout-window exited ${code}, expected 2")
endif()
execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/telem.ndjson
    --cache-file ${WORK_DIR}/no_such_dir/j.jsonl
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(NOT code EQUAL 3)
  message(FATAL_ERROR "unopenable --cache-file exited ${code}, expected 3")
endif()

# Socket mode: stream the same requests over loopback TCP and a unix
# socket (tools/svc_client.py spawns the server, polls --ready-file,
# half-closes after sending, SIGTERMs, and demands exit 130). After the
# "_us" strip, every transport x thread-count combination must be
# byte-identical to the stdio replay — the socket layer adds framing,
# not behavior. Unique seeds per request keep cache labels independent
# of batch boundaries and TCP segmentation.
if(PYTHON3 AND DEFINED SVC_CLIENT)
  file(WRITE ${WORK_DIR}/sock_reqs.ndjson
    "{\"id\":\"k1\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\",\"seed\":101}\n"
    "{\"id\":\"k2\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"auto\",\"budget\":4,\"seed\":102,\"want_sides\":true}\n"
    "{\"id\":\"p\",\"op\":\"ping\"}\n"
    "{\"id\":\"k3\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"sa\",\"seed\":103}\n")
  set(ENV{GBIS_THREADS} 1)
  execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/sock_reqs.ndjson
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE sock_expected ERROR_VARIABLE err)
  unset(ENV{GBIS_THREADS})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "socket-smoke replay baseline failed (${code}): ${err}")
  endif()
  strip_timing("${sock_expected}" sock_expected_cmp)
  foreach(transport tcp unix)
    foreach(threads 1 8)
      set(ENV{GBIS_THREADS} ${threads})
      execute_process(COMMAND ${PYTHON3} ${SVC_CLIENT} ${GBIS_CLI}
          ${WORK_DIR}/sock_reqs.ndjson --transport ${transport}
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE code OUTPUT_VARIABLE sock_out ERROR_VARIABLE err)
      unset(ENV{GBIS_THREADS})
      if(NOT code EQUAL 0)
        message(FATAL_ERROR
          "socket smoke (${transport}, ${threads} threads) failed "
          "(${code}): ${err}")
      endif()
      strip_timing("${sock_out}" sock_out_cmp)
      if(NOT sock_out_cmp STREQUAL sock_expected_cmp)
        message(FATAL_ERROR
          "socket responses (${transport}, ${threads} threads) differ "
          "from the stdio replay:\n--- socket ---\n${sock_out}\n"
          "--- replay ---\n${sock_expected}")
      endif()
    endforeach()
  endforeach()

  # Quality ladder: for each rung, the client's --quality decoration
  # over a socket must answer byte-identically to a stdio replay of
  # the same decorated requests, at 1 and 8 threads. The baseline file
  # spells the requests exactly as annotate_quality splices them
  # (quality key first), so the comparison covers the decoration bytes
  # too, not just the ladder's determinism.
  file(WRITE ${WORK_DIR}/qual_base.ndjson
    "{\"id\":\"q1\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"budget\":4,\"seed\":201,\"want_sides\":true}\n"
    "{\"id\":\"q2\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"budget\":4,\"seed\":202}\n")
  foreach(tier fast balanced best)
    file(WRITE ${WORK_DIR}/qual_${tier}.ndjson
      "{\"quality\":\"${tier}\",\"id\":\"q1\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"budget\":4,\"seed\":201,\"want_sides\":true}\n"
      "{\"quality\":\"${tier}\",\"id\":\"q2\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"budget\":4,\"seed\":202}\n")
    set(ENV{GBIS_THREADS} 1)
    execute_process(COMMAND ${GBIS_CLI} serve --replay ${WORK_DIR}/qual_${tier}.ndjson
      WORKING_DIRECTORY ${WORK_DIR}
      RESULT_VARIABLE code OUTPUT_VARIABLE qual_expected ERROR_VARIABLE err)
    unset(ENV{GBIS_THREADS})
    if(NOT code EQUAL 0)
      message(FATAL_ERROR
        "quality-${tier} replay baseline failed (${code}): ${err}")
    endif()
    strip_timing("${qual_expected}" qual_expected_cmp)
    foreach(threads 1 8)
      set(ENV{GBIS_THREADS} ${threads})
      execute_process(COMMAND ${PYTHON3} ${SVC_CLIENT} ${GBIS_CLI}
          ${WORK_DIR}/qual_base.ndjson --transport tcp --quality ${tier}
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE code OUTPUT_VARIABLE qual_out ERROR_VARIABLE err)
      unset(ENV{GBIS_THREADS})
      if(NOT code EQUAL 0)
        message(FATAL_ERROR
          "quality-${tier} socket smoke (${threads} threads) failed "
          "(${code}): ${err}")
      endif()
      strip_timing("${qual_out}" qual_out_cmp)
      if(NOT qual_out_cmp STREQUAL qual_expected_cmp)
        message(FATAL_ERROR
          "quality-${tier} socket responses (${threads} threads) differ "
          "from the stdio replay:\n--- socket ---\n${qual_out}\n"
          "--- replay ---\n${qual_expected}")
      endif()
    endforeach()
  endforeach()

  # Escalating shutdown: a second SIGTERM 50 ms after the first must
  # shorten the drain, never kill the process — the exit code stays
  # 130 (svc_client.py enforces it).
  execute_process(COMMAND ${PYTHON3} ${SVC_CLIENT} ${GBIS_CLI}
      ${WORK_DIR}/sock_reqs.ndjson --transport tcp --sigterm-count 2
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_QUIET ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR
      "double-SIGTERM escalation smoke failed (${code}): ${err}")
  endif()

  # Retry mode: line-at-a-time delivery with brownout backoff enabled
  # answers the same bytes as the stdio replay when nothing sheds.
  execute_process(COMMAND ${PYTHON3} ${SVC_CLIENT} ${GBIS_CLI}
      ${WORK_DIR}/sock_reqs.ndjson --transport tcp --retry 2
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE retry_out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "retry-mode socket smoke failed (${code}): ${err}")
  endif()
  strip_timing("${retry_out}" retry_out_cmp)
  if(NOT retry_out_cmp STREQUAL sock_expected_cmp)
    message(FATAL_ERROR
      "retry-mode responses differ from the stdio replay:\n"
      "--- retry ---\n${retry_out}\n--- replay ---\n${sock_expected}")
  endif()

  # Mutation chain: script a mutate -> warm-solve -> mutate chain over
  # the socket with --chain (@fp:ID tokens resolve to the child
  # fingerprints the server just minted), --record the resolved request
  # lines, then replay those lines over stdio. Chain mode is
  # line-at-a-time, so the stdio replay uses --batch 1 to reproduce the
  # same batch boundaries; after the "_us" strip every transport x
  # thread-count combination must match the stdio bytes. The chain
  # grows fresh vertices (400, 401) so the new edges cannot collide
  # with the generated graph.
  file(WRITE ${WORK_DIR}/chain_reqs.ndjson
    "{\"id\":\"c0\",\"op\":\"solve\",\"path\":\"${WORK_DIR}/g.graph\",\"method\":\"kl\",\"seed\":301}\n"
    "{\"id\":\"m1\",\"op\":\"mutate\",\"path\":\"${WORK_DIR}/g.graph\",\"add_vertices\":1,\"add_edges\":[400,0]}\n"
    "{\"id\":\"w1\",\"op\":\"solve\",\"graph\":\"@fp:m1\",\"method\":\"kl\",\"seed\":301}\n"
    "{\"id\":\"m2\",\"op\":\"mutate\",\"parent\":\"@fp:m1\",\"add_vertices\":1,\"add_edges\":[401,1]}\n"
    "{\"id\":\"w2\",\"op\":\"solve\",\"graph\":\"@fp:m2\",\"method\":\"kl\",\"seed\":302}\n")
  set(ENV{GBIS_THREADS} 1)
  execute_process(COMMAND ${PYTHON3} ${SVC_CLIENT} ${GBIS_CLI}
      ${WORK_DIR}/chain_reqs.ndjson --transport tcp --chain
      --record ${WORK_DIR}/chain_resolved.ndjson
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE chain_first ERROR_VARIABLE err)
  unset(ENV{GBIS_THREADS})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "mutation-chain socket smoke failed (${code}): ${err}")
  endif()
  if(NOT EXISTS ${WORK_DIR}/chain_resolved.ndjson)
    message(FATAL_ERROR "--record did not write the resolved request file")
  endif()
  file(READ ${WORK_DIR}/chain_resolved.ndjson chain_resolved)
  if(chain_resolved MATCHES "@fp:")
    message(FATAL_ERROR
      "recorded chain still holds unresolved tokens:\n${chain_resolved}")
  endif()
  if(NOT chain_first MATCHES "\"id\":\"m1\",\"ok\":true,\"op\":\"mutate\"")
    message(FATAL_ERROR "chain mutate m1 did not succeed:\n${chain_first}")
  endif()
  if(NOT chain_first MATCHES "\"id\":\"w1\",\"ok\":true.*\"warm\":true")
    message(FATAL_ERROR
      "solve after mutation did not warm-start:\n${chain_first}")
  endif()
  set(ENV{GBIS_THREADS} 1)
  execute_process(COMMAND ${GBIS_CLI} serve
      --replay ${WORK_DIR}/chain_resolved.ndjson --batch 1
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code OUTPUT_VARIABLE chain_expected ERROR_VARIABLE err)
  unset(ENV{GBIS_THREADS})
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "chain replay baseline failed (${code}): ${err}")
  endif()
  strip_timing("${chain_expected}" chain_expected_cmp)
  strip_timing("${chain_first}" chain_first_cmp)
  if(NOT chain_first_cmp STREQUAL chain_expected_cmp)
    message(FATAL_ERROR
      "chain socket responses differ from the stdio replay:\n"
      "--- socket ---\n${chain_first}\n--- replay ---\n${chain_expected}")
  endif()
  foreach(transport tcp unix)
    foreach(threads 1 8)
      set(ENV{GBIS_THREADS} ${threads})
      execute_process(COMMAND ${PYTHON3} ${SVC_CLIENT} ${GBIS_CLI}
          ${WORK_DIR}/chain_reqs.ndjson --transport ${transport} --chain
        WORKING_DIRECTORY ${WORK_DIR}
        RESULT_VARIABLE code OUTPUT_VARIABLE chain_out ERROR_VARIABLE err)
      unset(ENV{GBIS_THREADS})
      if(NOT code EQUAL 0)
        message(FATAL_ERROR
          "mutation chain (${transport}, ${threads} threads) failed "
          "(${code}): ${err}")
      endif()
      strip_timing("${chain_out}" chain_out_cmp)
      if(NOT chain_out_cmp STREQUAL chain_expected_cmp)
        message(FATAL_ERROR
          "mutation chain (${transport}, ${threads} threads) differs "
          "from the stdio replay:\n--- socket ---\n${chain_out}\n"
          "--- replay ---\n${chain_expected}")
      endif()
    endforeach()
  endforeach()

  # Chaos mid-mutation-chain: SIGKILL the server at the third batch of
  # the resolved chain (--batch 2 puts w2 alone there), then warm
  # restart on the same journal. The replayed mutates must answer
  # byte-identically to the pre-crash responses — the journal's lineage
  # records reproduce the exact child fingerprints — and the whole
  # warm stream must be thread-count invariant.
  foreach(threads 1 8)
    file(REMOVE ${WORK_DIR}/chainj${threads}.jsonl)
    set(ENV{GBIS_THREADS} ${threads})
    set(ENV{GBIS_SVC_FAULTS} "crash@batch:2")
    execute_process(COMMAND ${GBIS_CLI} serve
        --replay ${WORK_DIR}/chain_resolved.ndjson
        --batch 2 --cache-file ${WORK_DIR}/chainj${threads}.jsonl
      WORKING_DIRECTORY ${WORK_DIR}
      RESULT_VARIABLE code OUTPUT_VARIABLE chain_crash ERROR_QUIET)
    unset(ENV{GBIS_SVC_FAULTS})
    if(code EQUAL 0)
      message(FATAL_ERROR
        "chain chaos (${threads} threads) survived the injected crash")
    endif()
    string(REGEX MATCHALL "[^\n]+" crash_lines "${chain_crash}")
    list(LENGTH crash_lines crash_count)
    if(NOT crash_count EQUAL 4)
      message(FATAL_ERROR
        "chain chaos (${threads} threads) flushed ${crash_count} responses "
        "before the crash, expected 4:\n${chain_crash}")
    endif()
    execute_process(COMMAND ${GBIS_CLI} serve
        --replay ${WORK_DIR}/chain_resolved.ndjson
        --batch 2 --cache-file ${WORK_DIR}/chainj${threads}.jsonl
      WORKING_DIRECTORY ${WORK_DIR}
      RESULT_VARIABLE code OUTPUT_VARIABLE chain_warm ERROR_VARIABLE err)
    unset(ENV{GBIS_THREADS})
    if(NOT code EQUAL 0)
      message(FATAL_ERROR
        "chain warm restart (${threads} threads) failed (${code}): ${err}")
    endif()
    string(REGEX MATCHALL "[^\n]+" warm_lines "${chain_warm}")
    list(LENGTH warm_lines warm_count)
    if(NOT warm_count EQUAL 5)
      message(FATAL_ERROR
        "chain warm restart (${threads} threads) answered ${warm_count} "
        "of 5:\n${chain_warm}")
    endif()
    # Mutate responses carry no cache label and no timing: the lineage
    # replay must reproduce them byte-for-byte.
    list(GET crash_lines 1 precrash_m1)
    list(GET crash_lines 3 precrash_m2)
    list(GET warm_lines 1 replay_m1)
    list(GET warm_lines 3 replay_m2)
    if(NOT replay_m1 STREQUAL precrash_m1 OR
       NOT replay_m2 STREQUAL precrash_m2)
      message(FATAL_ERROR
        "replayed mutates differ from the pre-crash responses "
        "(${threads} threads):\n--- pre-crash ---\n${precrash_m1}\n"
        "${precrash_m2}\n--- warm ---\n${replay_m1}\n${replay_m2}")
    endif()
    list(GET warm_lines 2 replay_w1)
    if(NOT replay_w1 MATCHES "\"cache\":\"hit\"")
      message(FATAL_ERROR
        "post-restart w1 was not a journaled hit: ${replay_w1}")
    endif()
    list(GET warm_lines 4 replay_w2)
    if(NOT replay_w2 MATCHES "\"ok\":true")
      message(FATAL_ERROR
        "post-restart w2 did not solve: ${replay_w2}")
    endif()
    set(chain_warm${threads} "${chain_warm}")
  endforeach()
  strip_timing("${chain_warm1}" chain_warm1_cmp)
  strip_timing("${chain_warm8}" chain_warm8_cmp)
  if(NOT chain_warm1_cmp STREQUAL chain_warm8_cmp)
    message(FATAL_ERROR
      "chain warm-restart streams differ across thread counts:\n"
      "--- GBIS_THREADS=1 ---\n${chain_warm1}\n"
      "--- GBIS_THREADS=8 ---\n${chain_warm8}")
  endif()
endif()
