# End-to-end CLI smoke test driven by ctest. Fails on any non-zero
# exit or on a missing expected output.
file(MAKE_DIRECTORY ${WORK_DIR})

function(run)
  execute_process(COMMAND ${GBIS_CLI} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "gbis ${ARGN} failed (${code}): ${out} ${err}")
  endif()
endfunction()

run(gen gbreg 400 8 3 ${WORK_DIR}/g.graph --seed 7)
run(solve ${WORK_DIR}/g.graph ckl ${WORK_DIR}/g.part)
run(eval ${WORK_DIR}/g.graph ${WORK_DIR}/g.part)
run(stats ${WORK_DIR}/g.graph)
run(kway ${WORK_DIR}/g.graph 4 ${WORK_DIR}/g4.part)
run(eval ${WORK_DIR}/g.graph ${WORK_DIR}/g4.part)
run(convert ${WORK_DIR}/g.graph ${WORK_DIR}/g.metis)
run(convert ${WORK_DIR}/g.metis ${WORK_DIR}/g.dot)
run(solve ${WORK_DIR}/g.metis quench)

foreach(artifact g.part g4.part g.metis g.dot)
  if(NOT EXISTS ${WORK_DIR}/${artifact})
    message(FATAL_ERROR "expected output missing: ${artifact}")
  endif()
endforeach()

# Failure injection: bad inputs must exit non-zero, not crash.
execute_process(COMMAND ${GBIS_CLI} solve /nonexistent.graph kl
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "missing-file solve unexpectedly succeeded")
endif()
execute_process(COMMAND ${GBIS_CLI} bogus-command
  RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "bogus command unexpectedly succeeded")
endif()
