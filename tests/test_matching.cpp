// Tests for random maximal matching (compaction step 1).
#include <vector>

#include <gtest/gtest.h>

#include "gbis/core/matching.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Matching, EmptyAndEdgeless) {
  Rng rng(1);
  GraphBuilder builder(5);
  const Graph g = builder.build();
  const Matching m = maximal_matching(g, rng);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(Matching, SingleEdge) {
  Rng rng(2);
  const Graph g = make_path(2);
  const Matching m = maximal_matching(g, rng);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_TRUE(is_maximal_matching(g, m));
}

TEST(Matching, PerfectOnEvenCycle) {
  Rng rng(3);
  const Graph g = make_cycle(10);
  const Matching m = maximal_matching(g, rng);
  EXPECT_TRUE(is_maximal_matching(g, m));
  EXPECT_GE(m.size(), 4u);  // maximal matching on C10 has >= 4 edges
}

TEST(Matching, CoversAtLeastHalfTheMaximum) {
  // Greedy maximal matchings are 1/2-approximations; on a complete
  // graph the maximum is n/2, so greedy must also reach n/2 (every
  // vertex can be matched while any two are free).
  Rng rng(4);
  const Graph g = make_complete(12);
  const Matching m = maximal_matching(g, rng);
  EXPECT_EQ(m.size(), 6u);
}

TEST(Matching, AllPoliciesProduceMaximalMatchings) {
  Rng rng(5);
  const Graph g = make_gnp(100, 0.05, rng);
  for (MatchPolicy policy :
       {MatchPolicy::kRandom, MatchPolicy::kHeavyEdge,
        MatchPolicy::kFirstFit}) {
    const Matching m = maximal_matching(g, rng, policy);
    EXPECT_TRUE(is_maximal_matching(g, m));
  }
}

TEST(Matching, HeavyEdgePrefersWeight) {
  // A triangle fan where one edge dominates: heavy-edge matching must
  // pick it.
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 100);
  builder.add_edge(0, 2, 1);
  builder.add_edge(0, 3, 1);
  const Graph g = builder.build();
  Rng rng(6);
  const Matching m = maximal_matching(g, rng, MatchPolicy::kHeavyEdge);
  ASSERT_FALSE(m.empty());
  bool found_heavy = false;
  for (const auto& [u, v] : m) {
    found_heavy = found_heavy || (u == 0 && v == 1) || (u == 1 && v == 0);
  }
  EXPECT_TRUE(found_heavy);
}

TEST(Matching, FirstFitIsDeterministic) {
  Rng rng1(7), rng2(8);  // different seeds must not matter
  const Graph g = make_grid(6, 6);
  const Matching m1 = maximal_matching(g, rng1, MatchPolicy::kFirstFit);
  const Matching m2 = maximal_matching(g, rng2, MatchPolicy::kFirstFit);
  EXPECT_EQ(m1, m2);
}

TEST(Matching, RandomPolicyVariesWithSeed) {
  const Graph g = make_grid(8, 8);
  Rng rng1(1), rng2(2);
  const Matching m1 = maximal_matching(g, rng1);
  const Matching m2 = maximal_matching(g, rng2);
  EXPECT_NE(m1, m2);  // astronomically unlikely to coincide
}

TEST(Matching, ValidatorsRejectBadMatchings) {
  const Graph g = make_path(4);  // edges (0,1),(1,2),(2,3)
  EXPECT_FALSE(is_matching(g, {{0, 2}}));          // not an edge
  EXPECT_FALSE(is_matching(g, {{0, 1}, {1, 2}}));  // vertex reuse
  EXPECT_FALSE(is_matching(g, {{0, 0}}));          // self pair
  EXPECT_FALSE(is_matching(g, {{0, 9}}));          // out of range
  EXPECT_TRUE(is_matching(g, {{0, 1}}));
  EXPECT_FALSE(is_maximal_matching(g, {{0, 1}}));  // (2,3) still free
  EXPECT_TRUE(is_maximal_matching(g, {{0, 1}, {2, 3}}));
  EXPECT_TRUE(is_maximal_matching(g, {{1, 2}}));  // 0 and 3 isolated-free
}

class MatchingProperty : public testing::TestWithParam<std::uint32_t> {};

TEST_P(MatchingProperty, AlwaysMaximalOnRandomGraphs) {
  const std::uint32_t n = GetParam();
  Rng rng(n * 101 + 7);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_gnp(n, 4.0 / n, rng);
    const Matching m = maximal_matching(g, rng);
    ASSERT_TRUE(is_maximal_matching(g, m)) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatchingProperty,
                         testing::Values(10u, 25u, 64u, 150u, 333u));

}  // namespace
}  // namespace gbis
