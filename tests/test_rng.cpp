// Unit tests for the RNG substrate: engines, distribution helpers,
// determinism, and basic statistical sanity.
#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/rng/fibonacci.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/rng/splitmix.hpp"
#include "gbis/rng/xoshiro.hpp"

namespace gbis {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256ss a(7), b(7);
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 1000; ++i) from_a.insert(a.next());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) collisions += from_a.count(b.next());
  EXPECT_EQ(collisions, 0);
}

TEST(LaggedFibonacci, IsDeterministic) {
  LaggedFibonacci a(99), b(99);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(LaggedFibonacci, MatchesRecurrence) {
  // Capture 55 outputs, then verify X[i] = X[i-55] + X[i-24].
  LaggedFibonacci f(3);
  std::vector<std::uint64_t> history;
  for (int i = 0; i < 200; ++i) history.push_back(f.next());
  for (std::size_t i = 55; i < history.size(); ++i) {
    EXPECT_EQ(history[i], history[i - 55] + history[i - 24]) << "at " << i;
  }
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  constexpr int kBuckets = 10, kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 600);  // ~6 sigma
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Real01InUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.real01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits, 30000, 900);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is 1/100!
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(23);
  const auto sample = rng.sample_indices(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (std::uint32_t idx : sample) EXPECT_LT(idx, 50u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(29);
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, FibonacciEngineSelectable) {
  Rng x(RngEngine::kXoshiro, 31);
  Rng f(RngEngine::kFibonacci, 31);
  EXPECT_EQ(f.engine(), RngEngine::kFibonacci);
  // Engines produce different streams from the same seed.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff = any_diff || (x.next() != f.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, SpawnGivesIndependentStream) {
  Rng parent(37);
  Rng child = parent.spawn(0);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (parent.next() != child.next());
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace gbis
