// Certified-optimum tests: branch and bound supplies the true optimum
// at sizes beyond enumeration (n ~ 40-56), letting us verify claims
// the paper could only assert "with high probability":
//  - the planted Gbreg width really is the minimum bisection;
//  - the heuristics never report below it, and CKL attains it.
#include <algorithm>
#include <limits>
#include <tuple>

#include <gtest/gtest.h>

#include "gbis/core/compaction.hpp"
#include "gbis/exact/branch_bound.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/kl/kl.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

using CertParam = std::tuple<std::uint32_t, std::uint32_t>;  // (two_n, d)

class CertifiedGbreg : public testing::TestWithParam<CertParam> {};

TEST_P(CertifiedGbreg, PlantedWidthIsOptimal) {
  const auto [two_n, d] = GetParam();
  Rng rng(two_n * 7 + d);
  const std::uint64_t b = 2;
  const RegularPlantedParams params{two_n, b, d};
  ASSERT_TRUE(regular_planted_params_valid(params));
  const Graph g = make_regular_planted(params, rng);

  // Tighten the solver with a KL incumbent.
  Bisection incumbent = Bisection::random(g, rng);
  kl_refine(incumbent);
  BranchBoundOptions options;
  options.initial_upper_bound = std::min<Weight>(incumbent.cut(),
                                                 static_cast<Weight>(b));
  const ExactBisection exact = branch_bound_bisection(g, options);
  EXPECT_EQ(exact.cut, static_cast<Weight>(b))
      << "planted width not optimal at two_n=" << two_n << " d=" << d;
}

INSTANTIATE_TEST_SUITE_P(Grid, CertifiedGbreg,
                         testing::Combine(testing::Values(40u, 48u, 56u),
                                          testing::Values(3u, 4u)));

TEST(Certified, CklAttainsTheCertifiedOptimum) {
  Rng rng(11);
  const RegularPlantedParams params{48, 2, 3};
  const Graph g = make_regular_planted(params, rng);
  BranchBoundOptions options;
  options.initial_upper_bound = 2;
  const ExactBisection exact = branch_bound_bisection(g, options);

  Weight ckl_best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 4; ++start) {
    ckl_best = std::min(ckl_best, ckl(g, rng).cut());
  }
  EXPECT_EQ(ckl_best, exact.cut);
}

TEST(Certified, HeuristicsNeverBeatTheOptimumAtMidSize) {
  Rng rng(13);
  const PlantedParams params{44, 0.25, 0.25, 4};
  const Graph g = make_planted(params, rng);
  Bisection incumbent = Bisection::random(g, rng);
  kl_refine(incumbent);
  BranchBoundOptions options;
  options.initial_upper_bound = incumbent.cut();
  const ExactBisection exact = branch_bound_bisection(g, options);
  for (int start = 0; start < 4; ++start) {
    Bisection b = Bisection::random(g, rng);
    kl_refine(b);
    EXPECT_GE(b.cut(), exact.cut);
    EXPECT_GE(ckl(g, rng).cut(), exact.cut);
  }
}

}  // namespace
}  // namespace gbis
