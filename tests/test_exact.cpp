// Tests for the exact solvers (brute force, tree DP, cycle DP) —
// including cross-validation of the specialized solvers against brute
// force on small instances.
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/exact/brute.hpp"
#include "gbis/exact/cycles.hpp"
#include "gbis/exact/tree.hpp"
#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/partition/bisection.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

TEST(Brute, KnownOptimaOnSpecialGraphs) {
  EXPECT_EQ(brute_force_bisection(make_path(8)).cut, 1);
  EXPECT_EQ(brute_force_bisection(make_cycle(8)).cut, 2);
  EXPECT_EQ(brute_force_bisection(make_ladder(4)).cut, 2);
  EXPECT_EQ(brute_force_bisection(make_grid(4, 4)).cut, 4);
  EXPECT_EQ(brute_force_bisection(make_complete(6)).cut, 9);
  EXPECT_EQ(brute_force_bisection(make_hypercube(3)).cut, 4);
  EXPECT_EQ(brute_force_bisection(make_complete_bipartite(4, 4)).cut, 8);
}

TEST(Brute, WitnessMatchesReportedCut) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = make_gnp(12, 0.3, rng);
    const ExactBisection result = brute_force_bisection(g);
    const Bisection b(g, result.sides);
    EXPECT_EQ(b.cut(), result.cut);
    EXPECT_TRUE(b.is_balanced());
  }
}

TEST(Brute, OddVertexCount) {
  const Graph g = make_path(7);
  const ExactBisection result = brute_force_bisection(g);
  EXPECT_EQ(result.cut, 1);
  const Bisection b(g, result.sides);
  EXPECT_LE(b.count_imbalance(), 1u);
}

TEST(Brute, WeightedEdges) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1, 10);
  builder.add_edge(2, 3, 10);
  builder.add_edge(0, 2, 1);
  builder.add_edge(1, 3, 1);
  // Optimal split keeps the heavy edges intact: {0,1} vs {2,3}, cut 2.
  EXPECT_EQ(brute_force_bisection(builder.build()).cut, 2);
}

TEST(Brute, TinyGraphs) {
  EXPECT_EQ(brute_force_bisection(Graph{}).cut, 0);
  EXPECT_EQ(brute_force_bisection(make_path(1)).cut, 0);
  EXPECT_EQ(brute_force_bisection(make_path(2)).cut, 1);
}

TEST(Brute, SizeLimitEnforced) {
  const Graph g = make_cycle(30);
  EXPECT_THROW(brute_force_bisection(g), std::invalid_argument);
  EXPECT_THROW(brute_force_bisection(make_cycle(10), 8),
               std::invalid_argument);
}

TEST(TreeDp, PathAndStar) {
  EXPECT_EQ(tree_bisection_width(make_path(10)), 1);
  EXPECT_EQ(tree_bisection_width(make_path(9)), 1);
  GraphBuilder star(7);
  for (Vertex v = 1; v < 7; ++v) star.add_edge(0, v);
  EXPECT_EQ(tree_bisection_width(star.build()), 3);
}

TEST(TreeDp, CompleteBinaryTree) {
  // Complete binary tree on 2^k - 1 nodes: cutting near the root
  // separates a subtree of (n-1)/2; one more vertex balances via an
  // extra cut. Verify against brute force instead of folklore.
  const Graph g = make_binary_tree(15);
  EXPECT_EQ(tree_bisection_width(g), brute_force_bisection(g).cut);
}

TEST(TreeDp, MatchesBruteForceOnRandomTrees) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    // Random tree via random parent attachment.
    const std::uint32_t n = 6 + static_cast<std::uint32_t>(rng.below(9));
    GraphBuilder builder(n);
    for (Vertex v = 1; v < n; ++v) {
      builder.add_edge(v, static_cast<Vertex>(rng.below(v)));
    }
    const Graph g = builder.build();
    EXPECT_EQ(tree_bisection_width(g), brute_force_bisection(g).cut)
        << "trial " << trial << " n=" << n;
  }
}

TEST(TreeDp, MatchesBruteForceOnRandomForests) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint32_t n = 8 + static_cast<std::uint32_t>(rng.below(7));
    GraphBuilder builder(n);
    for (Vertex v = 1; v < n; ++v) {
      if (rng.bernoulli(0.8)) {
        builder.add_edge(v, static_cast<Vertex>(rng.below(v)));
      }
    }
    const Graph g = builder.build();
    EXPECT_EQ(tree_bisection_width(g), brute_force_bisection(g).cut)
        << "trial " << trial;
  }
}

TEST(TreeDp, WeightedTree) {
  GraphBuilder builder(4);  // path with weighted middle edge
  builder.add_edge(0, 1, 5);
  builder.add_edge(1, 2, 1);
  builder.add_edge(2, 3, 5);
  EXPECT_EQ(tree_bisection_width(builder.build()), 1);
}

TEST(TreeDp, RejectsCyclicGraphs) {
  EXPECT_THROW(tree_bisection_width(make_cycle(6)), std::invalid_argument);
}

TEST(TreeDp, TrivialInputs) {
  EXPECT_EQ(tree_bisection_width(make_path(1)), 0);
  EXPECT_EQ(tree_bisection_width(make_path(2)), 1);
  GraphBuilder empty(0);
  EXPECT_EQ(tree_bisection_width(empty.build()), 0);
}

TEST(Cycles, SingleCycleIsTwo) {
  const ExactBisection result = cycles_bisection(make_cycle(10));
  EXPECT_EQ(result.cut, 2);
  const Bisection b(make_cycle(10), result.sides);
  // Witness must be balanced; cut is validated below on a fresh graph.
  EXPECT_TRUE(b.is_balanced());
}

TEST(Cycles, PerfectPackingIsZero) {
  const std::uint32_t sizes[] = {4, 6, 10};  // subset {4,6} sums to 10 = n/2
  const Graph g = make_union_of_cycles(sizes);
  const ExactBisection result = cycles_bisection(g);
  EXPECT_EQ(result.cut, 0);
  const Bisection b(g, result.sides);
  EXPECT_EQ(b.cut(), 0);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Cycles, NoPackingIsTwo) {
  const std::uint32_t sizes[] = {3, 3, 4};  // n/2 = 5; sums: 3, 4, 6, 7, 10
  const Graph g = make_union_of_cycles(sizes);
  const ExactBisection result = cycles_bisection(g);
  EXPECT_EQ(result.cut, 2);
  const Bisection b(g, result.sides);
  EXPECT_EQ(b.cut(), 2);
  EXPECT_TRUE(b.is_balanced());
}

TEST(Cycles, MatchesBruteForce) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::uint32_t> sizes;
    std::uint32_t total = 0;
    while (total < 10) {
      const auto s = static_cast<std::uint32_t>(3 + rng.below(6));
      sizes.push_back(s);
      total += s;
    }
    const Graph g = make_union_of_cycles(sizes);
    if (g.num_vertices() > 20) continue;
    const ExactBisection fast = cycles_bisection(g);
    const ExactBisection slow = brute_force_bisection(g);
    EXPECT_EQ(fast.cut, slow.cut) << "trial " << trial;
    const Bisection b(g, fast.sides);
    EXPECT_EQ(b.cut(), fast.cut);
    EXPECT_TRUE(b.is_balanced());
  }
}

TEST(Cycles, RejectsNonCycleGraphs) {
  EXPECT_THROW(cycles_bisection(make_path(6)), std::invalid_argument);
  EXPECT_THROW(cycles_bisection(make_grid(3, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace gbis
