// Tests for the compaction drivers (CKL/CSA) — the paper's core
// contribution — including the headline behaviour: compaction improves
// sparse-graph results.
#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "gbis/core/compaction.hpp"
#include "gbis/gen/planted.hpp"
#include "gbis/gen/regular_planted.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/graph/builder.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

SaOptions fast_sa() {
  SaOptions options;
  options.temperature_length_factor = 4.0;
  options.cooling_ratio = 0.9;
  return options;
}

TEST(Compaction, CklReturnsLegalBisection) {
  Rng rng(1);
  const Graph g = make_regular_planted({200, 8, 3}, rng);
  CompactionStats stats;
  const Bisection b = ckl(g, rng, {}, {}, &stats);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_EQ(stats.final_cut, b.cut());
  EXPECT_EQ(stats.coarse_vertices, 100u);
  EXPECT_EQ(stats.coarse_cut, stats.projected_cut);
  EXPECT_LE(stats.final_cut, stats.projected_cut);  // refinement helps
}

TEST(Compaction, CsaReturnsLegalBisection) {
  Rng rng(2);
  const Graph g = make_regular_planted({120, 4, 3}, rng);
  CompactionStats stats;
  const Bisection b = csa(g, rng, fast_sa(), {}, &stats);
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
  EXPECT_EQ(stats.coarse_cut, stats.projected_cut);
}

TEST(Compaction, CoarseGraphIsDenser) {
  Rng rng(3);
  const Graph g = make_regular_planted({300, 8, 3}, rng);
  CompactionStats stats;
  ckl(g, rng, {}, {}, &stats);
  EXPECT_GT(stats.coarse_average_degree, g.average_degree());
}

TEST(Compaction, OddVertexCount) {
  Rng rng(4);
  GraphBuilder builder(9);
  for (Vertex v = 0; v + 1 < 9; ++v) builder.add_edge(v, v + 1);
  const Graph g = builder.build();
  const Bisection b = ckl(g, rng);
  EXPECT_LE(b.count_imbalance(), 1u);
}

TEST(Compaction, RecoversPlantedCutOnSparseRegular) {
  // The paper's headline: on Gbreg(·, b, 3), CKL finds the planted cut
  // where plain KL usually does not. Use best-of-two per the protocol.
  Rng rng(5);
  const Graph g = make_regular_planted({600, 8, 3}, rng);
  Weight best = std::numeric_limits<Weight>::max();
  for (int start = 0; start < 2; ++start) {
    best = std::min(best, ckl(g, rng).cut());
  }
  EXPECT_LE(best, 12);  // at or near the planted width 8
}

TEST(Compaction, CustomRefinerIsUsedOnBothLevels) {
  // A counting refiner must be invoked exactly twice (coarse + fine).
  Rng rng(6);
  const Graph g = make_grid(6, 6);
  int calls = 0;
  const Refiner counter = [&calls](Bisection&, Rng&) { ++calls; };
  compacted_bisect(g, rng, counter);
  EXPECT_EQ(calls, 2);
}

TEST(Compaction, MatchPolicySelectable) {
  Rng rng(7);
  const Graph g = make_grid(8, 8);
  CompactionOptions options;
  options.match_policy = MatchPolicy::kHeavyEdge;
  const Bisection b = ckl(g, rng, {}, options);
  EXPECT_TRUE(b.is_balanced());
  options.match_policy = MatchPolicy::kFirstFit;
  const Bisection b2 = ckl(g, rng, {}, options);
  EXPECT_TRUE(b2.is_balanced());
}

TEST(Compaction, NoPairLeftoversStillLegal) {
  Rng rng(8);
  // A star graph leaves many unmatched leaves.
  GraphBuilder builder(16);
  for (Vertex v = 1; v < 16; ++v) builder.add_edge(0, v);
  const Graph g = builder.build();
  CompactionOptions options;
  options.pair_leftovers = false;
  const Bisection b = ckl(g, rng, {}, options);
  // Weight balance may be off (supernode weights differ) but counts
  // must end within the bisection tolerance after KL refinement.
  EXPECT_LE(b.count_imbalance(), 1u);
}

TEST(Compaction, FmRefinerWorks) {
  Rng rng(9);
  const Graph g = make_regular_planted({200, 8, 4}, rng);
  const Bisection b = compacted_bisect(g, rng, fm_refiner());
  EXPECT_TRUE(b.is_balanced());
  EXPECT_EQ(b.cut(), b.recompute_cut());
}

TEST(Compaction, StatsProjectedCutEqualsCoarseCut) {
  // The projection invariant visible through the driver's stats, over
  // several random instances.
  Rng rng(10);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = make_regular_planted({150 * 2, 6, 3}, rng);
    CompactionStats stats;
    ckl(g, rng, {}, {}, &stats);
    ASSERT_EQ(stats.coarse_cut, stats.projected_cut) << "trial " << trial;
  }
}

}  // namespace
}  // namespace gbis
