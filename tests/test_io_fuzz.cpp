// Failure-injection fuzzing of every parser: random byte soup and
// random structured-ish input must either parse or throw — never
// crash, hang, or return a structurally invalid object.
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "gbis/io/edge_list.hpp"
#include "gbis/io/hmetis.hpp"
#include "gbis/io/metis.hpp"
#include "gbis/io/partition_io.hpp"
#include "gbis/rng/rng.hpp"

namespace gbis {
namespace {

std::string random_soup(Rng& rng, std::size_t length) {
  // Characters the tokenizers actually meet: digits, spaces, newlines,
  // signs, letters, comment markers.
  static constexpr char kAlphabet[] =
      "0123456789 \n\t-+#%vabc.";
  std::string soup;
  soup.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    soup += kAlphabet[rng.below(sizeof(kAlphabet) - 1)];
  }
  return soup;
}

/// A header-plausible prefix followed by soup: exercises deeper parser
/// states than pure noise.
std::string structured_soup(Rng& rng, const char* header) {
  return std::string(header) + "\n" + random_soup(rng, 200);
}

class IoFuzz : public testing::TestWithParam<std::uint64_t> {};

TEST_P(IoFuzz, EdgeListNeverCrashes) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    std::stringstream ss(round % 2 == 0 ? random_soup(rng, 300)
                                        : structured_soup(rng, "10 5"));
    try {
      const Graph g = read_edge_list(ss);
      EXPECT_TRUE(g.validate());  // if it parses, it must be sound
    } catch (const std::runtime_error&) {
      // expected for malformed input
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(IoFuzz, MetisNeverCrashes) {
  Rng rng(GetParam() + 1000);
  for (int round = 0; round < 50; ++round) {
    std::stringstream ss(round % 2 == 0 ? random_soup(rng, 300)
                                        : structured_soup(rng, "4 3"));
    try {
      const Graph g = read_metis(ss);
      EXPECT_TRUE(g.validate());
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(IoFuzz, HmetisNeverCrashes) {
  Rng rng(GetParam() + 2000);
  for (int round = 0; round < 50; ++round) {
    std::stringstream ss(round % 2 == 0 ? random_soup(rng, 300)
                                        : structured_soup(rng, "3 6"));
    try {
      const Hypergraph h = read_hmetis(ss);
      EXPECT_TRUE(h.validate());
    } catch (const std::runtime_error&) {
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST_P(IoFuzz, PartitionNeverCrashes) {
  Rng rng(GetParam() + 3000);
  for (int round = 0; round < 50; ++round) {
    std::stringstream ss(random_soup(rng, 200));
    try {
      (void)read_partition(ss, 0, 4);
    } catch (const std::runtime_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoFuzz, testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace gbis
