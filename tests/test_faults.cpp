// Robustness suite: fault-isolated trials, cooperative deadlines,
// graceful shutdown, checkpoint/resume, and the deterministic fault
// injector that drives them. The load-bearing property throughout:
// because trial t's Rng depends only on (seed, t), a campaign that is
// faulted, interrupted, journaled, and resumed reports cuts
// bit-identical to an uninterrupted run — for any thread count.
#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "gbis/gen/gnp.hpp"
#include "gbis/gen/special.hpp"
#include "gbis/harness/checkpoint.hpp"
#include "gbis/harness/fault_injection.hpp"
#include "gbis/harness/parallel_runner.hpp"
#include "gbis/harness/shutdown.hpp"
#include "gbis/harness/thread_pool.hpp"
#include "gbis/io/io_error.hpp"
#include "gbis/rng/rng.hpp"
#include "gbis/util/deadline.hpp"

namespace gbis {
namespace {

RunConfig fast_config(std::uint32_t starts, std::uint32_t threads) {
  RunConfig config;
  config.starts = starts;
  config.threads = threads;
  config.sa.temperature_length_factor = 2.0;
  config.sa.cooling_ratio = 0.85;
  return config;
}

Graph test_graph() {
  Rng rng(7);
  return make_gnp(96, gnp_p_for_degree(96, 3.0), rng);
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// --- Deadline --------------------------------------------------------------

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.unlimited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_NO_THROW(deadline.check());
}

TEST(Deadline, ExpiresAndThrows) {
  const Deadline deadline = Deadline::after(0.005);
  EXPECT_FALSE(deadline.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(deadline.expired());
  EXPECT_THROW(deadline.check(), DeadlineExceeded);
}

TEST(Deadline, RemainingSecondsDecreases) {
  const Deadline deadline = Deadline::after(10.0);
  const double first = deadline.remaining_seconds();
  EXPECT_GT(first, 0.0);
  EXPECT_LE(first, 10.0);
}

// --- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, ParsesEveryKind) {
  const FaultPlan plan =
      FaultPlan::parse("throw@trial:17,hang@trial:23,stop@trial:0");
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.at(17), FaultKind::kThrow);
  EXPECT_EQ(plan.at(23), FaultKind::kHang);
  EXPECT_EQ(plan.at(0), FaultKind::kStop);
  EXPECT_EQ(plan.at(5), FaultKind::kNone);
  EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("throw@trial:"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("throw@vertex:3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("explode@trial:3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("throw@trial:3,,"), std::invalid_argument);
}

TEST(FaultPlan, FromEnvParsesAndToleratesGarbage) {
  ::setenv("GBIS_FAULTS", "throw@trial:4", 1);
  EXPECT_EQ(FaultPlan::from_env().at(4), FaultKind::kThrow);
  // Malformed env must not throw (a bad knob degrades, never crashes).
  ::setenv("GBIS_FAULTS", "not-a-spec", 1);
  EXPECT_TRUE(FaultPlan::from_env().empty());
  ::unsetenv("GBIS_FAULTS");
  EXPECT_TRUE(FaultPlan::from_env().empty());
}

TEST(SvcFaults, FromEnvParsesAndToleratesGarbage) {
  ::setenv("GBIS_SVC_FAULTS", "oom@solve:2,throw@req:0", 1);
  const SvcFaultPlan plan = SvcFaultPlan::from_env();
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.at(SvcFaultSite::kSolve, 2), SvcFaultKind::kOom);
  ::setenv("GBIS_SVC_FAULTS", "kaboom@everything:9", 1);
  EXPECT_TRUE(SvcFaultPlan::from_env().empty());
  ::unsetenv("GBIS_SVC_FAULTS");
  EXPECT_TRUE(SvcFaultPlan::from_env().empty());
}

TEST(SvcFaults, InjectorThrowsTheDocumentedExceptionTypes) {
  const SvcFaultPlan plan =
      SvcFaultPlan::parse("throw@req:0,oom@solve:0,hang@solve:1");
  // No fault at this site/ordinal: a no-op.
  maybe_inject_svc_fault(&plan, SvcFaultSite::kBatch, 0, Deadline());
  maybe_inject_svc_fault(nullptr, SvcFaultSite::kReq, 0, Deadline());
  EXPECT_THROW(
      maybe_inject_svc_fault(&plan, SvcFaultSite::kReq, 0, Deadline()),
      InjectedFault);
  EXPECT_THROW(
      maybe_inject_svc_fault(&plan, SvcFaultSite::kSolve, 0, Deadline()),
      std::bad_alloc);
  // A hang against an already-expired deadline resolves immediately.
  EXPECT_THROW(maybe_inject_svc_fault(&plan, SvcFaultSite::kSolve, 1,
                                      Deadline::after(1e-9)),
               DeadlineExceeded);
  // ... and against an unlimited deadline, the stop flag frees it.
  std::atomic<bool> stop{true};
  EXPECT_THROW(maybe_inject_svc_fault(&plan, SvcFaultSite::kSolve, 1,
                                      Deadline(), &stop),
               DeadlineExceeded);
}

// --- Shutdown escalation (second signal during a graceful drain) -----------

TEST(Shutdown, EscalationIsASecondPhaseAboveGracefulShutdown) {
  reset_shutdown();
  EXPECT_FALSE(shutdown_requested());
  EXPECT_FALSE(shutdown_escalated());
  request_shutdown();  // first signal: graceful drain
  EXPECT_TRUE(shutdown_requested());
  EXPECT_FALSE(shutdown_escalated());
  request_escalation();  // second signal: bounded-flush exit
  EXPECT_TRUE(shutdown_requested());
  EXPECT_TRUE(shutdown_escalated());
  reset_shutdown();  // clears both phases
  EXPECT_FALSE(shutdown_requested());
  EXPECT_FALSE(shutdown_escalated());
}

// --- ThreadPool fault isolation -------------------------------------------

TEST(ThreadPool, CollectRecordsEveryFailureSlot) {
  // Multi-failure regression: the old pool kept only the first captured
  // exception; the collect path must keep one outcome per index.
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    const std::vector<JobOutcome> outcomes =
        pool.parallel_for_collect(12, [](std::size_t i) {
          if (i % 3 == 0) {
            throw std::runtime_error("job " + std::to_string(i));
          }
        });
    ASSERT_EQ(outcomes.size(), 12u);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (i % 3 == 0) {
        EXPECT_EQ(outcomes[i].state, JobState::kError) << i;
        ASSERT_TRUE(outcomes[i].error);
        try {
          std::rethrow_exception(outcomes[i].error);
        } catch (const std::runtime_error& error) {
          EXPECT_EQ(std::string(error.what()), "job " + std::to_string(i));
        }
      } else {
        EXPECT_EQ(outcomes[i].state, JobState::kDone) << i;
        EXPECT_FALSE(outcomes[i].error);
      }
    }
  }
}

TEST(ThreadPool, CollectDrainsOnStopWithoutHanging) {
  // Single worker: claims are sequential, so the drain point is exact —
  // jobs 0-3 run, 4-63 come back kNotRun.
  {
    ThreadPool pool(1);
    std::atomic<bool> stop{false};
    const std::vector<JobOutcome> outcomes = pool.parallel_for_collect(
        64,
        [&](std::size_t i) {
          if (i == 3) stop.store(true, std::memory_order_release);
        },
        &stop);
    ASSERT_EQ(outcomes.size(), 64u);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(outcomes[i].state, JobState::kDone) << i;
    }
    for (std::size_t i = 4; i < 64; ++i) {
      EXPECT_EQ(outcomes[i].state, JobState::kNotRun) << i;
    }
  }
  // Multi-worker: the exact drain point races, but the batch must still
  // return (pending reaches 0) with every slot resolved.
  {
    ThreadPool pool(4);
    std::atomic<bool> stop{true};  // pre-set: nothing should run
    const std::vector<JobOutcome> outcomes = pool.parallel_for_collect(
        64, [](std::size_t) {}, &stop);
    ASSERT_EQ(outcomes.size(), 64u);
    for (const JobOutcome& outcome : outcomes) {
      EXPECT_EQ(outcome.state, JobState::kNotRun);
    }
  }
}

TEST(ThreadPool, StrictRethrowsLowestIndexError) {
  // With one worker indices are claimed in order, so the first failure
  // is index 3 and nothing after the drain threshold runs.
  ThreadPool pool(1);
  std::vector<int> ran(16, 0);
  try {
    pool.parallel_for(16, [&](std::size_t i) {
      ran[i] = 1;
      if (i == 3 || i == 5) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_EQ(std::string(error.what()), "boom 3");
  }
  EXPECT_EQ(ran[3], 1);
  EXPECT_EQ(ran[5], 0);  // drained after the first failure
}

// --- Trial fault isolation -------------------------------------------------

TEST(TrialIsolation, InjectedThrowDegradesOnlyThatTrial) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  const RunConfig config = fast_config(/*starts=*/4, /*threads=*/2);
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);

  const std::vector<TrialResult> clean =
      run_trials(graphs, trials, config, /*seed=*/123, config.threads);

  const FaultPlan plan = FaultPlan::parse("throw@trial:1");
  TrialRunOptions options;
  options.faults = &plan;
  const std::vector<TrialResult> faulted = run_trials_ex(
      graphs, trials, config, /*seed=*/123, config.threads, options);

  ASSERT_EQ(faulted.size(), 4u);
  EXPECT_EQ(faulted[1].status, TrialStatus::kFailed);
  EXPECT_NE(faulted[1].error.find("injected"), std::string::npos);
  for (std::size_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(faulted[i].status, TrialStatus::kOk) << i;
    // Sibling trials are untouched: bit-identical to the clean run.
    EXPECT_EQ(faulted[i].cut, clean[i].cut) << i;
  }
}

TEST(TrialIsolation, InjectedHangHitsDeadlineNotTheCampaign) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  RunConfig config = fast_config(/*starts=*/3, /*threads=*/2);
  config.trial_deadline = 0.05;
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);

  const FaultPlan plan = FaultPlan::parse("hang@trial:2");
  TrialRunOptions options;
  options.faults = &plan;
  const std::vector<TrialResult> results = run_trials_ex(
      graphs, trials, config, /*seed=*/9, config.threads, options);

  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status, TrialStatus::kOk);
  EXPECT_EQ(results[1].status, TrialStatus::kOk);
  EXPECT_EQ(results[2].status, TrialStatus::kTimedOut);
}

TEST(TrialIsolation, CellAggregationCountsStatuses) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  const RunConfig config = fast_config(/*starts=*/3, /*threads=*/1);
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);
  const FaultPlan plan = FaultPlan::parse("throw@trial:0,throw@trial:2");
  TrialRunOptions options;
  options.faults = &plan;
  const std::vector<TrialResult> raw = run_trials_ex(
      graphs, trials, config, /*seed=*/5, config.threads, options);
  const std::vector<MethodOutcome> cells =
      reduce_trial_matrix(raw, 1, config.starts);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].status, TrialStatus::kOk);  // one start survived
  EXPECT_EQ(cells[0].ok, 1u);
  EXPECT_EQ(cells[0].failed, 2u);
  EXPECT_EQ(cells[0].best_cut, raw[1].cut);
  EXPECT_FALSE(cells[0].first_error.empty());
}

// --- Checkpoint journal ----------------------------------------------------

TEST(CheckpointJournal, RoundTripsRecords) {
  const std::string path = temp_path("journal_roundtrip.jsonl");
  {
    CheckpointJournal journal(path, /*fingerprint=*/0xabcdef0123456789ULL,
                              /*num_trials=*/6);
    journal.append({0, TrialStatus::kOk, 42, 0.5, "", nullptr});
    journal.append({3, TrialStatus::kFailed, 0, 0.25,
                    "metis: line 2: \"quoted\"\nnewline", nullptr});
    journal.append({5, TrialStatus::kTimedOut, 0, 1.0, "deadline", nullptr});
  }
  const CheckpointJournal::Loaded loaded = CheckpointJournal::load(path);
  EXPECT_EQ(loaded.fingerprint, 0xabcdef0123456789ULL);
  EXPECT_EQ(loaded.num_trials, 6u);
  ASSERT_EQ(loaded.records.size(), 3u);
  EXPECT_EQ(loaded.records[0].trial_id, 0u);
  EXPECT_EQ(loaded.records[0].status, TrialStatus::kOk);
  EXPECT_EQ(loaded.records[0].cut, 42);
  EXPECT_DOUBLE_EQ(loaded.records[0].cpu_seconds, 0.5);
  EXPECT_EQ(loaded.records[1].trial_id, 3u);
  EXPECT_EQ(loaded.records[1].status, TrialStatus::kFailed);
  EXPECT_EQ(loaded.records[1].error,
            "metis: line 2: \"quoted\"\nnewline");
  EXPECT_EQ(loaded.records[2].status, TrialStatus::kTimedOut);
}

TEST(CheckpointJournal, LoadErrorsNameTheLine) {
  EXPECT_THROW(CheckpointJournal::load(temp_path("no_such_journal.jsonl")),
               IoError);
  const std::string path = temp_path("journal_bad.jsonl");
  {
    CheckpointJournal journal(path, 1, 2);
    journal.append({0, TrialStatus::kOk, 1, 0.1, "", nullptr});
  }
  {
    // Corrupt it: a record with an out-of-range id.
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"trial\",\"id\":9,\"status\":\"ok\"}\n", f);
    std::fclose(f);
  }
  try {
    CheckpointJournal::load(path);
    FAIL() << "expected IoError";
  } catch (const IoError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(CheckpointFingerprint, SensitiveToInputsButNotThreads) {
  const Graph g = test_graph();
  const Graph graphs[] = {g};
  const Method methods[] = {Method::kKl, Method::kSa};
  RunConfig config = fast_config(2, 1);
  const std::vector<TrialSpec> trials =
      enumerate_trial_matrix(1, methods, config.starts);

  const std::uint64_t base =
      campaign_fingerprint(1, config, trials, graphs);
  EXPECT_NE(base, campaign_fingerprint(2, config, trials, graphs));

  RunConfig other = config;
  other.sa.cooling_ratio = 0.99;
  EXPECT_NE(base, campaign_fingerprint(1, other, trials, graphs));

  // Threads do not affect outcomes, so they must not affect identity:
  // a journal from a 1-thread run resumes on an 8-thread run.
  RunConfig threaded = config;
  threaded.threads = 8;
  EXPECT_EQ(base, campaign_fingerprint(1, threaded, trials, graphs));
}

// --- Campaign: shutdown, journal, resume -----------------------------------

TEST(Campaign, ResumeRefusesForeignJournal) {
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  const RunConfig config = fast_config(2, 1);
  const std::string path = temp_path("journal_foreign.jsonl");

  CampaignOptions options;
  options.journal_path = path;
  const FaultPlan no_faults;
  options.faults = &no_faults;
  run_campaign(graphs, methods, config, /*seed=*/1, options);

  CampaignOptions resume;
  resume.resume_path = path;
  resume.faults = &no_faults;
  EXPECT_THROW(run_campaign(graphs, methods, config, /*seed=*/2, resume),
               std::runtime_error);
}

// The tentpole acceptance test: kill a campaign halfway via injected
// in-process SIGTERM (stop@trial:N -> request_shutdown(), exactly what
// the signal handler does), confirm the journal is valid, resume, and
// require the resumed tables bit-identical to an uninterrupted run —
// at 1 thread and at 8.
TEST(Campaign, KillAndResumeIsBitIdentical) {
  const Graph g = test_graph();
  const Graph graphs[] = {g};
  const Method methods[] = {Method::kKl, Method::kSa, Method::kCkl};

  for (unsigned threads : {1u, 8u}) {
    RunConfig config = fast_config(/*starts=*/2, threads);
    const std::uint64_t seed = 20260806;
    const FaultPlan no_faults;

    // Reference: uninterrupted, no journal.
    CampaignOptions plain;
    plain.faults = &no_faults;
    const CampaignResult reference =
        run_campaign(graphs, methods, config, seed, plain);
    ASSERT_EQ(reference.ok, 6u);

    // Interrupted: trial 2 requests shutdown as it starts. With the
    // process-wide stop flag wired in, the pool drains and the tail of
    // the matrix is skipped (never journaled).
    const std::string path =
        temp_path("journal_resume_" + std::to_string(threads) + ".jsonl");
    const FaultPlan stop_plan = FaultPlan::parse("stop@trial:2");
    reset_shutdown();
    CampaignOptions interrupted;
    interrupted.journal_path = path;
    interrupted.stop = &shutdown_flag();
    interrupted.faults = &stop_plan;
    const CampaignResult partial =
        run_campaign(graphs, methods, config, seed, interrupted);
    reset_shutdown();
    EXPECT_TRUE(partial.interrupted);
    if (threads == 1) {
      // Sequential claiming makes the drain deterministic: trials 0-2
      // complete, 3-5 are skipped. At 8 threads every trial may already
      // be claimed when the flag flips, so only the flag is guaranteed.
      EXPECT_EQ(partial.ok, 3u);
      EXPECT_EQ(partial.skipped, 3u);
    }

    // The journal on disk is valid mid-campaign state.
    const CheckpointJournal::Loaded loaded = CheckpointJournal::load(path);
    EXPECT_EQ(loaded.fingerprint, partial.fingerprint);
    EXPECT_EQ(loaded.records.size(), partial.ok);
    for (const TrialRecord& record : loaded.records) {
      EXPECT_EQ(record.status, TrialStatus::kOk);
    }

    // Resume: adopt the journal, run the rest, compare everything.
    CampaignOptions resume;
    resume.journal_path = path;
    resume.resume_path = path;
    resume.faults = &no_faults;
    const CampaignResult resumed =
        run_campaign(graphs, methods, config, seed, resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.ok, 6u);
    EXPECT_EQ(resumed.resumed, partial.ok);

    ASSERT_EQ(resumed.trials.size(), reference.trials.size());
    for (std::size_t t = 0; t < reference.trials.size(); ++t) {
      EXPECT_EQ(resumed.trials[t].status, TrialStatus::kOk) << t;
      EXPECT_EQ(resumed.trials[t].cut, reference.trials[t].cut)
          << "trial " << t << " at " << threads << " threads";
    }
    ASSERT_EQ(resumed.cells.size(), reference.cells.size());
    for (std::size_t c = 0; c < reference.cells.size(); ++c) {
      EXPECT_EQ(resumed.cells[c].best_cut, reference.cells[c].best_cut)
          << "cell " << c << " at " << threads << " threads";
      EXPECT_EQ(resumed.cells[c].best_start, reference.cells[c].best_start);
    }

    // The completed journal now covers every trial.
    EXPECT_EQ(CheckpointJournal::load(path).records.size(), 6u);
  }
}

TEST(Campaign, ShutdownFlagSkipsUndequeuedTrials) {
  // Pre-set stop: nothing should run, everything comes back skipped,
  // and the result is flagged interrupted.
  const Graph graphs[] = {test_graph()};
  const Method methods[] = {Method::kKl};
  const RunConfig config = fast_config(4, 2);
  const FaultPlan no_faults;
  std::atomic<bool> stop{true};
  CampaignOptions options;
  options.stop = &stop;
  options.faults = &no_faults;
  const CampaignResult result =
      run_campaign(graphs, methods, config, /*seed=*/3, options);
  EXPECT_TRUE(result.interrupted);
  EXPECT_EQ(result.ok, 0u);
  EXPECT_EQ(result.skipped, 4u);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].status, TrialStatus::kSkipped);
}

}  // namespace
}  // namespace gbis
